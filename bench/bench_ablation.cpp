// Ablation: the offset-aware interference refinement of the holistic
// backend vs. the classical independent-periodic-with-jitter formulation.
//
// All applications release in phase, so the backend can place interferer
// jobs in absolute windows and discard provably-finished or not-yet-released
// ones.  This bench quantifies what that buys: per-benchmark WCRT tightness
// (sum of graph bounds under a fixed candidate) and the feasibility rate of
// random repaired candidates under each backend.
#include <iostream>

#include "bench_common.hpp"
#include "ftmc/benchmarks/cruise.hpp"
#include "ftmc/benchmarks/dream.hpp"
#include "ftmc/benchmarks/synth.hpp"
#include "ftmc/core/evaluator.hpp"
#include "ftmc/dse/decoder.hpp"
#include "ftmc/sched/holistic.hpp"
#include "ftmc/util/table.hpp"

using namespace ftmc;

namespace {

struct Row {
  std::string name;
  double offset_feasible = 0;   // % of random candidates feasible
  double classic_feasible = 0;
  double tightness_gain = 0;    // mean bound inflation of classic vs offset
};

Row measure(const benchmarks::Benchmark& bench) {
  sched::HolisticAnalysis::Options classic_options;
  classic_options.precedence_aware = false;
  const sched::HolisticAnalysis offset_backend;
  const sched::HolisticAnalysis classic_backend(classic_options);
  const core::Evaluator offset_eval(bench.arch, bench.apps, offset_backend);
  const core::Evaluator classic_eval(bench.arch, bench.apps, classic_backend);

  const dse::Decoder decoder(bench.arch, bench.apps);
  util::Rng rng(31337);

  constexpr int kCandidates = 60;
  int offset_ok = 0, classic_ok = 0;
  double inflation_sum = 0.0;
  int inflation_count = 0;
  for (int trial = 0; trial < kCandidates; ++trial) {
    dse::Chromosome chromosome =
        dse::random_chromosome(decoder.shape(), rng);
    const core::Candidate candidate = decoder.decode(chromosome, rng);
    const auto offset = offset_eval.evaluate(candidate);
    const auto classic = classic_eval.evaluate(candidate);
    offset_ok += offset.feasible() ? 1 : 0;
    classic_ok += classic.feasible() ? 1 : 0;
    for (std::size_t g = 0; g < offset.graph_wcrt.size(); ++g) {
      const auto tight = offset.graph_wcrt[g];
      const auto loose = classic.graph_wcrt[g];
      if (tight <= 0 || tight >= sched::kUnschedulable ||
          loose >= sched::kUnschedulable)
        continue;
      inflation_sum += static_cast<double>(loose) /
                       static_cast<double>(tight);
      ++inflation_count;
    }
  }
  Row row;
  row.name = bench.name;
  row.offset_feasible = 100.0 * offset_ok / kCandidates;
  row.classic_feasible = 100.0 * classic_ok / kCandidates;
  row.tightness_gain =
      inflation_count == 0 ? 0.0 : inflation_sum / inflation_count;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Reporter reporter(argc, argv);
  util::Table table(
      "Backend ablation: offset-aware vs classical jitter-only analysis\n"
      "(60 random repaired candidates per benchmark)");
  table.set_header({"Benchmark", "feasible % (offset-aware)",
                    "feasible % (classic)", "classic/offset bound ratio"});
  bool offset_never_worse = true;
  obs::Json rows = obs::Json::array();
  for (const auto& bench :
       {benchmarks::synth_benchmark(1), benchmarks::dt_med_benchmark(),
        benchmarks::cruise_benchmark()}) {
    const Row row = measure(bench);
    offset_never_worse &= row.offset_feasible >= row.classic_feasible;
    table.add_row({row.name, util::Table::cell(row.offset_feasible, 1),
                   util::Table::cell(row.classic_feasible, 1),
                   util::Table::cell(row.tightness_gain, 2) + "x"});
    rows.push(obs::Json::object()
                  .set("name", row.name)
                  .set("offset_feasible_pct",
                       obs::Json::number(row.offset_feasible, 1))
                  .set("classic_feasible_pct",
                       obs::Json::number(row.classic_feasible, 1))
                  .set("tightness_gain",
                       obs::Json::number(row.tightness_gain, 2)));
  }
  table.print(std::cout);
  std::cout << "\nOffset-aware accepts at least as many candidates: "
            << (offset_never_worse ? "yes" : "NO") << '\n';
  obs::Json summary = obs::Json::object();
  summary.set("bench", "ablation")
      .set("benchmarks", std::move(rows))
      .set("offset_never_worse", offset_never_worse);
  reporter.finish(summary);
  return 0;
}
