// Microbenchmarks (google-benchmark) for the analysis stack, exercising the
// complexity claim of Section 3: Algorithm 1 costs O(|V|^2 + |V| * C) on top
// of the backend's C, so wall time should grow roughly polynomially in the
// task count.  Also measures the simulator and a full candidate evaluation
// (the DSE inner loop).
#include <benchmark/benchmark.h>

#include "ftmc/benchmarks/synth.hpp"
#include "ftmc/core/evaluation_cache.hpp"
#include "ftmc/core/evaluator.hpp"
#include "ftmc/core/mc_analysis.hpp"
#include "ftmc/dse/decoder.hpp"
#include "ftmc/sched/holistic.hpp"
#include "ftmc/sim/simulator.hpp"
#include "ftmc/util/thread_pool.hpp"

namespace {

using namespace ftmc;

struct Instance {
  model::Architecture arch;
  model::ApplicationSet apps;
  core::Candidate candidate;
  hardening::HardenedSystem system;
};

/// Synthetic instance with ~`tasks` tasks and a repaired random candidate.
Instance make_instance(std::size_t tasks) {
  benchmarks::SynthParams params;
  params.seed = 99 + tasks;
  params.graph_count = std::max<std::size_t>(2, tasks / 6);
  params.min_tasks = 5;
  params.max_tasks = 7;
  params.graph_utilization = 0.5 / static_cast<double>(params.graph_count);
  auto apps = benchmarks::synthetic_applications(params);
  auto arch = model::ArchitectureBuilder{}
                  .add_processors({"pe", 0, 50.0, 150.0, 2e-9, 1.0}, 4)
                  .bandwidth(100.0)
                  .build();
  const dse::Decoder decoder(arch, apps);
  util::Rng rng(tasks);
  dse::Chromosome chromosome = dse::random_chromosome(decoder.shape(), rng);
  core::Candidate candidate = decoder.decode(chromosome, rng);
  auto system = hardening::apply_hardening(apps, candidate.plan,
                                           candidate.base_mapping,
                                           arch.processor_count());
  return Instance{std::move(arch), std::move(apps), std::move(candidate),
                  std::move(system)};
}

void BM_HolisticBackend(benchmark::State& state) {
  const Instance instance = make_instance(state.range(0));
  const sched::HolisticAnalysis backend;
  const auto bounds = core::nominal_bounds_of(instance.system);
  const auto priorities = sched::assign_priorities(instance.system.apps);
  // Production path: bind the candidate once, solve per bounds vector.
  const auto prepared =
      backend.prepare(instance.arch, instance.system.apps,
                      instance.system.mapping, priorities);
  for (auto _ : state) {
    benchmark::DoNotOptimize(prepared->solve(bounds));
  }
  state.SetLabel(std::to_string(instance.system.apps.task_count()) +
                 " tasks");
}
BENCHMARK(BM_HolisticBackend)->Arg(12)->Arg(24)->Arg(48)->Arg(96);

/// Reference arm: the retired rebuild-per-call entry point, kept only to
/// quantify what prepare() amortizes (problem build per solve).
void BM_HolisticBackendRebuild(benchmark::State& state) {
  const Instance instance = make_instance(state.range(0));
  const sched::HolisticAnalysis backend;
  const auto bounds = core::nominal_bounds_of(instance.system);
  const auto priorities = sched::assign_priorities(instance.system.apps);
  for (auto _ : state) {
    benchmark::DoNotOptimize(backend.analyze(
        instance.arch, instance.system.apps, instance.system.mapping, bounds,
        priorities));
  }
  state.SetLabel(std::to_string(instance.system.apps.task_count()) +
                 " tasks");
}
BENCHMARK(BM_HolisticBackendRebuild)->Arg(24)->Arg(96);

void BM_McAnalysisProposed(benchmark::State& state) {
  const Instance instance = make_instance(state.range(0));
  const sched::HolisticAnalysis backend;
  const core::McAnalysis analysis(backend);
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis.analyze(instance.arch, instance.system,
                                              instance.candidate.drop));
  }
  state.SetLabel(std::to_string(instance.system.apps.task_count()) +
                 " tasks");
}
BENCHMARK(BM_McAnalysisProposed)->Arg(12)->Arg(24)->Arg(48)->Arg(96);

/// Same analysis with the transition scenarios fanned out over a thread
/// pool (results bitwise identical; see tests/test_parallel_analysis.cpp).
void BM_McAnalysisProposedParallel(benchmark::State& state) {
  const Instance instance = make_instance(state.range(0));
  const sched::HolisticAnalysis backend;
  const core::McAnalysis analysis(backend);
  util::ThreadPool pool(static_cast<std::size_t>(state.range(1)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        analysis.analyze(instance.arch, instance.system,
                         instance.candidate.drop,
                         core::McAnalysis::Mode::kProposed, &pool));
  }
  state.SetLabel(std::to_string(instance.system.apps.task_count()) +
                 " tasks, " + std::to_string(pool.thread_count()) +
                 " threads");
}
BENCHMARK(BM_McAnalysisProposedParallel)
    ->Args({48, 2})
    ->Args({48, 4})
    ->Args({96, 2})
    ->Args({96, 4})
    ->Args({96, 8});

/// Every task re-executed: every task is a transition trigger, so the
/// scenario count (and thus the bounds-construction work Algorithm 1 does
/// per candidate) is maximal for the instance size.
Instance make_all_hardened_instance(std::size_t tasks) {
  Instance instance = make_instance(tasks);
  hardening::HardeningPlan plan(instance.apps.task_count());
  for (auto& task : plan) {
    task.technique = hardening::Technique::kReexecution;
    task.reexecutions = 2;
  }
  instance.candidate.plan = plan;
  instance.system = hardening::apply_hardening(
      instance.apps, plan, instance.candidate.base_mapping,
      instance.arch.processor_count());
  return instance;
}

/// Scenario construction cost: arena (sparse edits over the all-critical
/// template, reused lane buffers) vs rebuild (one fresh bounds vector per
/// scenario).  Identical results (pinned by tests/test_kernel_fuzz.cpp);
/// the difference is allocation and copy traffic only.
void BM_McAnalysisScenarioConstruction(benchmark::State& state) {
  const Instance instance = make_all_hardened_instance(state.range(0));
  const sched::HolisticAnalysis backend;
  const bool arena = state.range(1) != 0;
  const core::McAnalysis analysis(
      backend, sched::PriorityPolicy::kRateMonotonic,
      arena ? core::McAnalysis::Construction::kArena
            : core::McAnalysis::Construction::kRebuild);
  std::size_t scenarios = 0;
  for (auto _ : state) {
    const auto result = analysis.analyze(instance.arch, instance.system,
                                         instance.candidate.drop);
    scenarios = result.scenario_count;
    benchmark::DoNotOptimize(result);
  }
  state.SetLabel(std::to_string(instance.system.apps.task_count()) +
                 " tasks, " + std::to_string(scenarios) + " scenarios, " +
                 (arena ? "arena" : "rebuild"));
}
BENCHMARK(BM_McAnalysisScenarioConstruction)
    ->Args({24, 0})
    ->Args({24, 1})
    ->Args({48, 0})
    ->Args({48, 1})
    ->Args({96, 0})
    ->Args({96, 1});

void BM_SimulatorHyperperiod(benchmark::State& state) {
  const Instance instance = make_instance(state.range(0));
  const auto priorities = sched::assign_priorities(instance.system.apps);
  const sim::Simulator simulator(instance.arch, instance.system,
                                 instance.candidate.drop, priorities);
  util::Rng rng(7);
  sim::RandomFaults faults(rng.split(), 0.3);
  sim::UniformExecution durations(rng.split());
  for (auto _ : state) {
    benchmark::DoNotOptimize(simulator.run(faults, durations));
  }
}
BENCHMARK(BM_SimulatorHyperperiod)->Arg(24)->Arg(96);

void BM_FullCandidateEvaluation(benchmark::State& state) {
  const Instance instance = make_instance(state.range(0));
  const sched::HolisticAnalysis backend;
  const core::Evaluator evaluator(instance.arch, instance.apps, backend);
  for (auto _ : state) {
    benchmark::DoNotOptimize(evaluator.evaluate(instance.candidate));
  }
}
BENCHMARK(BM_FullCandidateEvaluation)->Arg(24)->Arg(48);

/// Steady-state hit path of the evaluation cache: after the first
/// iteration every lookup is a hit, so this measures hash + sharded-map
/// lookup + Evaluation copy — the cost a converged DSE pays per duplicate
/// offspring instead of a full Algorithm-1 rerun.
void BM_FullCandidateEvaluationCached(benchmark::State& state) {
  const Instance instance = make_instance(state.range(0));
  const sched::HolisticAnalysis backend;
  core::EvaluationCache cache;
  core::Evaluator::Options options;
  options.cache = &cache;
  const core::Evaluator evaluator(instance.arch, instance.apps, backend,
                                  options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(evaluator.evaluate(instance.candidate));
  }
  state.SetLabel("hit rate " +
                 std::to_string(cache.stats().hit_rate()).substr(0, 4));
}
BENCHMARK(BM_FullCandidateEvaluationCached)->Arg(24)->Arg(48);

/// The key computation alone (content hash of the decoded candidate).
void BM_CandidateHash(benchmark::State& state) {
  const Instance instance = make_instance(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::candidate_hash(instance.candidate));
  }
}
BENCHMARK(BM_CandidateHash)->Arg(48)->Arg(96);

}  // namespace

BENCHMARK_MAIN();
