// Shared telemetry surface of the experiment benches.
//
// Every bench ends with one machine-readable line
//
//   JSON: {"bench":"<name>", ...}
//
// built with obs::Json (one escaping/number policy for the whole repo) and
// validated by tools/check_metrics.py in CI.  The reporter also understands
//
//   --metrics-json=FILE   (or env FTMC_METRICS_JSON)
//   --chrome-trace=FILE   (or env FTMC_CHROME_TRACE)
//
// writing the final registry snapshot / Chrome trace next to the bench
// output, so a perf investigation can re-run any bench with full telemetry
// without recompiling anything.  See bench/README.md for the schema.
#pragma once

#include <cstdlib>
#include <iostream>
#include <string>

#include "ftmc/obs/export.hpp"
#include "ftmc/obs/json.hpp"
#include "ftmc/obs/trace.hpp"

namespace ftmc::bench {

class Reporter {
 public:
  /// Parse telemetry options; enables span recording immediately when a
  /// trace destination is given (construct before the timed work).
  Reporter(int argc, char** argv) {
    metrics_path_ =
        value_of(argc, argv, "--metrics-json=", "FTMC_METRICS_JSON");
    trace_path_ =
        value_of(argc, argv, "--chrome-trace=", "FTMC_CHROME_TRACE");
    if (!trace_path_.empty()) obs::enable_tracing();
  }

  /// Prints the canonical `JSON: {...}` summary line and writes the
  /// requested side files.  Call once, as the last output of the bench.
  void finish(const obs::Json& summary) const {
    std::cout << "JSON: " << summary << '\n';
    obs::export_metrics_file(metrics_path_);
    obs::export_chrome_trace_file(trace_path_);
  }

 private:
  static std::string value_of(int argc, char** argv, const char* prefix,
                              const char* env) {
    const std::string wanted(prefix);
    for (int i = 1; i < argc; ++i) {
      const std::string arg(argv[i]);
      if (arg.rfind(wanted, 0) == 0) return arg.substr(wanted.size());
    }
    const char* from_env = std::getenv(env);
    return from_env == nullptr ? "" : from_env;
  }

  std::string metrics_path_;
  std::string trace_path_;
};

}  // namespace ftmc::bench
