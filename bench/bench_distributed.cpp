// Distributed island campaign scaling (the `ftmc campaign --workers=N`
// acceptance bench):
//
//   1 worker    every island evaluates on the same spawned `ftmc serve`
//               worker (--threads=1), so the per-worker mutex serializes
//               all evaluation — the floor a single evaluation endpoint
//               imposes no matter how many islands run;
//   N workers   one single-threaded worker per island, islands evaluate
//               concurrently (the regime the worker fleet exists for).
//
// Both arms run the identical campaign (same seeds, same migration
// cadence) and decode is content-seeded, so the fronts must be bitwise
// identical: the speedup is pure horizontal scaling, never a different
// search.  CI gates `speedup >= 2` on hosts with >= 4 cores
// (tools/check_metrics.py, check_distributed_summary).
//
// Environment knobs: FTMC_ISLANDS (default 4), FTMC_GENERATIONS (default
// 8), FTMC_POPULATION (default 16).
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "ftmc/benchmarks/synth.hpp"
#include "ftmc/dist/remote_executor.hpp"
#include "ftmc/dist/worker.hpp"
#include "ftmc/dse/campaign.hpp"
#include "ftmc/dse/decoder.hpp"
#include "ftmc/io/text_format.hpp"
#include "ftmc/sched/holistic.hpp"
#include "ftmc/util/table.hpp"

using namespace ftmc;

namespace {

std::size_t env_or(const char* name, std::size_t fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr) return fallback;
  const long parsed = std::atol(raw);
  return parsed > 0 ? static_cast<std::size_t>(parsed) : fallback;
}

/// The synth benchmark written as a system file for the spawned workers.
std::string write_bench_system(const benchmarks::Benchmark& benchmark) {
  const dse::Decoder decoder(benchmark.arch, benchmark.apps);
  util::Rng rng(2014);
  dse::Chromosome chromosome = dse::random_chromosome(decoder.shape(), rng);
  const core::Candidate candidate = decoder.decode(chromosome, rng);
  const std::string path = "/tmp/ftmc_bench_distributed.ftmc";
  std::ofstream out(path);
  io::write_system(out, benchmark.arch, benchmark.apps, &candidate);
  return path;
}

dse::CampaignOptions campaign_options(std::size_t islands,
                                      std::size_t generations,
                                      std::size_t population) {
  dse::CampaignOptions options;
  options.ga.population = population;
  options.ga.offspring = population;
  options.ga.generations = generations;
  options.ga.threads = 1;  // decode stays cheap; evaluation is remote
  for (std::size_t i = 0; i < islands; ++i)
    options.seeds.push_back(11 * (i + 1));
  options.migration_every = generations / 2;
  options.migration_size = 2;
  options.parallel_islands = true;
  return options;
}

/// One campaign against a fresh fleet of `spawn` single-threaded workers;
/// returns wall seconds and the front through out-params.
double run_arm(const dse::Campaign& campaign, const std::string& path,
               std::size_t spawn, std::size_t islands,
               std::size_t generations, std::size_t population,
               std::vector<dse::Individual>& front) {
  dist::WorkerFleetOptions fleet_options;
  fleet_options.ftmc_binary = FTMC_BINARY;
  fleet_options.system_path = path;
  fleet_options.spawn = spawn;
  fleet_options.worker_threads = 1;
  dist::WorkerFleet fleet(std::move(fleet_options));

  dse::CampaignOptions options =
      campaign_options(islands, generations, population);
  const std::vector<std::uint64_t> seeds = options.seeds;
  options.executor_factory = [&fleet, &path, seeds](std::size_t island) {
    return std::unique_ptr<dse::Executor>(
        std::make_unique<dist::RemoteExecutor>(
            fleet, fleet.assign(island), path,
            seeds[island % seeds.size()]));
  };

  const auto begin = std::chrono::steady_clock::now();
  dse::CampaignResult result = campaign.run(options);
  const double wall = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - begin)
                          .count();
  front = std::move(result.front);
  return wall;
}

bool same_front(const std::vector<dse::Individual>& a,
                const std::vector<dse::Individual>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].objectives != b[i].objectives) return false;
    if (a[i].chromosome != b[i].chromosome) return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Reporter reporter(argc, argv);
  const std::size_t islands = env_or("FTMC_ISLANDS", 4);
  const std::size_t generations = env_or("FTMC_GENERATIONS", 8);
  const std::size_t population = env_or("FTMC_POPULATION", 16);

  const benchmarks::Benchmark benchmark = benchmarks::synth_benchmark(1);
  const std::string path = write_bench_system(benchmark);
  sched::HolisticAnalysis backend;
  const dse::Campaign campaign(benchmark.arch, benchmark.apps, backend);

  std::cout << "distributed campaign: " << islands << " islands x "
            << generations << " generations, population " << population
            << " (FTMC_ISLANDS / FTMC_GENERATIONS / FTMC_POPULATION)\n";

  std::vector<dse::Individual> single_front;
  const double single_s = run_arm(campaign, path, 1, islands, generations,
                                  population, single_front);
  std::vector<dse::Individual> fleet_front;
  const double fleet_s = run_arm(campaign, path, islands, islands,
                                 generations, population, fleet_front);

  const bool identical = same_front(single_front, fleet_front);
  const double speedup = fleet_s > 0 ? single_s / fleet_s : 0.0;

  util::Table table("ftmc campaign: one shared worker vs one per island");
  table.set_header({"arm", "workers", "wall [s]", "speedup"});
  table.add_row({"shared worker", "1", util::Table::cell(single_s, 2),
                 "1.00x"});
  table.add_row({"worker per island", std::to_string(islands),
                 util::Table::cell(fleet_s, 2),
                 util::Table::cell(speedup, 2) + "x"});
  table.print(std::cout);
  std::cout << "(fronts cross-checked "
            << (identical ? "bitwise identical" : "DIFFERENT")
            << "; the speedup is horizontal scaling, not a different "
               "search)\n";

  obs::Json summary = obs::Json::object();
  summary.set("bench", "distributed")
      .set("islands", islands)
      .set("generations", generations)
      .set("population", population)
      // CI gates the speedup only on hosts with enough cores to show it.
      .set("hardware_concurrency",
           static_cast<std::uint64_t>(std::thread::hardware_concurrency()))
      .set("single_worker_s", obs::Json::number(single_s, 2))
      .set("fleet_s", obs::Json::number(fleet_s, 2))
      .set("speedup", obs::Json::number(speedup, 2))
      .set("identical", identical);
  reporter.finish(summary);
  return identical ? 0 : 1;
}
