// Reproduces Section 5.2, "Effect of Task Dropping":
//
//  (a) optimized expected power with dropping enabled vs. forbidden
//      (paper: +14.66% / +16.16% / +18.52% more power without dropping for
//      DT-med / DT-large / Cruise);
//  (b) the "rescue ratio": the share of DSE candidates that are infeasible
//      without task dropping but feasible with it (paper: 0.02% Synth-1,
//      0.685% Synth-2, 29.00% DT-med, 22.49% DT-large, 99.98% Cruise);
//  (c) the share of applied hardening techniques that are re-executions in
//      the final optimized designs (paper: 87.03% / 98.66% / 83.23% for
//      DT-med / DT-large / Cruise vs. 44.29% for Synth-1).
//
// The paper runs 5,000 generations with population 100; the bench defaults
// to a smaller budget and prints the setting used.
// Environment knobs: FTMC_GENERATIONS (default 60), FTMC_POPULATION (40),
// FTMC_SEED (2014).
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <iostream>
#include <mutex>

#include "bench_common.hpp"
#include "ftmc/benchmarks/cruise.hpp"
#include "ftmc/benchmarks/dream.hpp"
#include "ftmc/benchmarks/synth.hpp"
#include "ftmc/dse/ga.hpp"
#include "ftmc/sched/holistic.hpp"
#include "ftmc/util/table.hpp"
#include "ftmc/util/thread_pool.hpp"

using namespace ftmc;

namespace {

std::size_t env_or(const char* name, std::size_t fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr) return fallback;
  const long parsed = std::atol(raw);
  return parsed > 0 ? static_cast<std::size_t>(parsed) : fallback;
}

struct BenchmarkOutcome {
  std::string name;
  double power_with_dropping = 0.0;
  double power_without_dropping = 0.0;
  double rescue_ratio = 0.0;       // share of candidates rescued by dropping
  double reexecution_share = 0.0;  // of applied hardenings in final Pareto
  std::size_t evaluations = 0;
};

dse::GaOptions base_options(std::uint64_t seed) {
  dse::GaOptions options;
  options.population = env_or("FTMC_POPULATION", 40);
  options.offspring = options.population;
  options.generations = env_or("FTMC_GENERATIONS", 60);
  options.seed = seed;
  options.optimize_service = false;  // pure power optimization (5.2a)
  return options;
}

BenchmarkOutcome run_benchmark(const benchmarks::Benchmark& bench,
                               std::uint64_t seed) {
  const sched::HolisticAnalysis backend;
  BenchmarkOutcome outcome;
  outcome.name = bench.name;

  // --- DSE with dropping, tracking every candidate for the rescue ratio --
  std::vector<core::Candidate> evaluated;
  std::vector<bool> feasible_with;
  std::mutex collect_mutex;
  std::size_t applied = 0, reexec = 0;
  {
    dse::GeneticOptimizer optimizer(bench.arch, bench.apps, backend);
    optimizer.set_observer([&](const core::Candidate& candidate,
                               const core::Evaluation& evaluation) {
      std::lock_guard lock(collect_mutex);
      evaluated.push_back(candidate);
      feasible_with.push_back(evaluation.feasible());
      // Hardening-technique census over every explored candidate.
      for (const auto& decision : candidate.plan) {
        if (decision.technique == hardening::Technique::kNone) continue;
        ++applied;
        if (decision.technique == hardening::Technique::kReexecution)
          ++reexec;
      }
    });
    const auto result = optimizer.run(base_options(seed));
    outcome.power_with_dropping = result.best_feasible_power;
    outcome.evaluations = result.evaluations;
    outcome.reexecution_share =
        applied == 0 ? 0.0
                     : 100.0 * static_cast<double>(reexec) /
                           static_cast<double>(applied);
  }

  // --- Rescue ratio: re-evaluate every candidate with dropping disabled ---
  {
    core::Evaluator::Options no_drop;
    no_drop.allow_dropping = false;
    const core::Evaluator evaluator(bench.arch, bench.apps, backend, no_drop);
    std::atomic<std::size_t> rescued{0};
    util::ThreadPool pool;
    pool.parallel_for(evaluated.size(), [&](std::size_t index) {
      if (!feasible_with[index]) return;
      if (!evaluator.evaluate(evaluated[index]).feasible()) ++rescued;
    });
    outcome.rescue_ratio = evaluated.empty()
                               ? 0.0
                               : 100.0 * static_cast<double>(rescued) /
                                     static_cast<double>(evaluated.size());
  }

  // --- DSE without dropping ------------------------------------------------
  {
    dse::GeneticOptimizer optimizer(bench.arch, bench.apps, backend);
    auto options = base_options(seed);
    options.decoder.allow_dropping = false;
    options.evaluator.allow_dropping = false;
    const auto result = optimizer.run(options);
    outcome.power_without_dropping = result.best_feasible_power;
  }
  return outcome;
}

std::string pct(double value) { return util::Table::cell(value, 2) + "%"; }

}  // namespace

int main(int argc, char** argv) {
  const bench::Reporter reporter(argc, argv);
  const std::uint64_t seed = env_or("FTMC_SEED", 2014);
  std::cout << "Section 5.2 reproduction (population "
            << env_or("FTMC_POPULATION", 40) << ", "
            << env_or("FTMC_GENERATIONS", 60)
            << " generations; paper: 100 x 5000)\n\n";

  std::vector<BenchmarkOutcome> outcomes;
  for (const auto& bench :
       {benchmarks::synth_benchmark(1), benchmarks::synth_benchmark(2),
        benchmarks::dt_med_benchmark(), benchmarks::dt_large_benchmark(),
        benchmarks::cruise_benchmark()}) {
    std::cout << "running " << bench.name << "...\n";
    outcomes.push_back(run_benchmark(bench, seed));
  }

  util::Table table("\nEffect of task dropping");
  table.set_header({"Benchmark", "power w/ drop [mW]", "power w/o drop [mW]",
                    "extra power w/o drop", "rescue ratio",
                    "re-exec share", "evals"});
  for (const auto& outcome : outcomes) {
    const bool both = outcome.power_with_dropping > 0 &&
                      outcome.power_without_dropping > 0 &&
                      std::isfinite(outcome.power_with_dropping) &&
                      std::isfinite(outcome.power_without_dropping);
    const double extra =
        both ? 100.0 * (outcome.power_without_dropping -
                        outcome.power_with_dropping) /
                   outcome.power_with_dropping
             : 0.0;
    table.add_row({outcome.name,
                   std::isnan(outcome.power_with_dropping)
                       ? "infeasible"
                       : util::Table::cell(outcome.power_with_dropping, 1),
                   std::isnan(outcome.power_without_dropping)
                       ? "infeasible"
                       : util::Table::cell(outcome.power_without_dropping, 1),
                   both ? pct(extra) : "-", pct(outcome.rescue_ratio),
                   pct(outcome.reexecution_share),
                   util::Table::cell(outcome.evaluations)});
  }
  table.print(std::cout);
  std::cout << "\nPaper reference: extra power w/o dropping 14.66% (DT-med), "
               "16.16% (DT-large), 18.52% (Cruise);\nrescue ratios 0.02% "
               "(Synth-1), 0.685% (Synth-2), 29.00% (DT-med), 22.49% "
               "(DT-large), 99.98% (Cruise);\nre-execution shares 87.03% "
               "(DT-med), 98.66% (DT-large), 83.23% (Cruise), 44.29% "
               "(Synth-1).\n";

  obs::Json benchmarks_json = obs::Json::array();
  for (const auto& outcome : outcomes)
    benchmarks_json.push(
        obs::Json::object()
            .set("name", outcome.name)
            .set("power_with_dropping",
                 obs::Json::number(outcome.power_with_dropping, 1))
            .set("power_without_dropping",
                 obs::Json::number(outcome.power_without_dropping, 1))
            .set("rescue_ratio_pct",
                 obs::Json::number(outcome.rescue_ratio, 2))
            .set("reexecution_share_pct",
                 obs::Json::number(outcome.reexecution_share, 2))
            .set("evaluations", outcome.evaluations));
  obs::Json summary = obs::Json::object();
  summary.set("bench", "dropping")
      .set("population", env_or("FTMC_POPULATION", 40))
      .set("generations", env_or("FTMC_GENERATIONS", 60))
      .set("seed", seed)
      .set("benchmarks", std::move(benchmarks_json));
  reporter.finish(summary);
  return 0;
}
