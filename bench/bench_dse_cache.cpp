// A/B measurement of the evaluation memoization layer + scenario
// parallelism in the DSE hot path (ISSUE 1 acceptance bench):
//
//   seed path       cache disabled, Algorithm 1's transition scenarios
//                   analyzed sequentially inside each candidate evaluation
//                   (the behavior before the EvaluationCache existed);
//   cold cache      run-local EvaluationCache shared by all GA workers +
//                   per-scenario parallelism on the same pool; the cache
//                   starts empty, so misses pay full price and the gain is
//                   bounded by the GA's duplicate-candidate rate;
//   warm cache      the same run against an externally owned, already
//                   populated cache — the re-exploration regime the layer
//                   targets (hyperparameter iteration, objective toggles,
//                   repeated runs on an unchanged model), where nearly every
//                   evaluation is a hit;
//   cold store      persistent EvalStore (`--cache-dir`) starting empty:
//                   every evaluation computes and appends to disk — the
//                   first campaign on a new model pays this;
//   warm store      the store reopened fully populated, as a fresh process
//                   (or a later campaign shard) finds it: evaluations
//                   replay from the mmap'd log (ISSUE 7 targets >= 5x over
//                   cold store here).
//
// All runs use identical GA settings and seeds; the search trajectories are
// identical by construction (tests/test_evaluation_cache.cpp and
// tests/test_ga.cpp enforce observational equivalence), so the wall-clock
// ratios are pure analysis-stack speedups.  Each arm reports the median of
// FTMC_REPS repetitions to tame scheduler noise.
//
// Environment knobs: FTMC_GENERATIONS (default 50), FTMC_POPULATION (40),
// FTMC_SEED (2014), FTMC_THREADS (hardware), FTMC_REPS (3).
//
// The last line is a one-line JSON summary for CI and scripted regression
// tracking; the exit code is non-zero if any arm's best power diverges.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "ftmc/benchmarks/synth.hpp"
#include "ftmc/core/eval_store.hpp"
#include "ftmc/core/evaluation_cache.hpp"
#include "ftmc/dse/ga.hpp"
#include "ftmc/sched/holistic.hpp"
#include "ftmc/util/table.hpp"

using namespace ftmc;

namespace {

std::size_t env_or(const char* name, std::size_t fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr) return fallback;
  const long parsed = std::atol(raw);
  return parsed > 0 ? static_cast<std::size_t>(parsed) : fallback;
}

struct RunOutcome {
  double seconds = 0.0;
  double best_power = 0.0;
  double hit_rate = 0.0;
  double scenarios_per_second = 0.0;
};

RunOutcome run_once(const benchmarks::Benchmark& benchmark,
                    const dse::GaOptions& options) {
  const sched::HolisticAnalysis backend;
  const dse::GeneticOptimizer optimizer(benchmark.arch, benchmark.apps,
                                        backend);
  const auto start = std::chrono::steady_clock::now();
  const dse::GaResult result = optimizer.run(options);
  RunOutcome outcome;
  outcome.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  outcome.best_power = result.best_feasible_power;
  std::size_t evaluations = 0, hits = 0, scenarios = 0;
  double eval_seconds = 0.0;
  for (const dse::GenerationStats& stats : result.history) {
    evaluations += stats.evaluations;
    hits += stats.cache_hits;
    scenarios += stats.scenarios_analyzed;
    eval_seconds += stats.evaluation_seconds;
  }
  outcome.hit_rate = evaluations > 0
                         ? static_cast<double>(hits) / evaluations
                         : 0.0;
  outcome.scenarios_per_second =
      eval_seconds > 0.0 ? static_cast<double>(scenarios) / eval_seconds
                         : 0.0;
  return outcome;
}

/// Median-of-N wall clock; the other fields are taken from the median run.
RunOutcome median_of(std::vector<RunOutcome> outcomes) {
  std::sort(outcomes.begin(), outcomes.end(),
            [](const RunOutcome& a, const RunOutcome& b) {
              return a.seconds < b.seconds;
            });
  return outcomes[outcomes.size() / 2];
}

RunOutcome run_median(const benchmarks::Benchmark& benchmark,
                      const dse::GaOptions& options, std::size_t reps) {
  std::vector<RunOutcome> outcomes;
  for (std::size_t r = 0; r < reps; ++r)
    outcomes.push_back(run_once(benchmark, options));
  return median_of(std::move(outcomes));
}

bool same_power(double a, double b) {
  return a == b || (std::isnan(a) && std::isnan(b));
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Reporter reporter(argc, argv);
  const std::size_t generations = env_or("FTMC_GENERATIONS", 50);
  const std::size_t population = env_or("FTMC_POPULATION", 40);
  const std::uint64_t seed = env_or("FTMC_SEED", 2014);
  const std::size_t threads = env_or("FTMC_THREADS", 0);
  const std::size_t reps = env_or("FTMC_REPS", 3);

  std::cout << "DSE cache/parallelism A/B: " << generations
            << " generations, population " << population << ", seed " << seed
            << ", median of " << reps
            << " (FTMC_GENERATIONS / FTMC_POPULATION / FTMC_SEED / "
               "FTMC_THREADS / FTMC_REPS)\n";

  util::Table table(std::to_string(generations) +
                    "-generation synth DSE: seed path vs cache + "
                    "scenario parallelism");
  table.set_header({"benchmark", "seed [s]", "cold [s]", "cold speedup",
                    "cold hits", "warm [s]", "warm speedup", "scenarios/s",
                    "store cold [s]", "store warm [s]", "store speedup",
                    "best power equal"});

  obs::Json json_benchmarks = obs::Json::array();
  bool all_equal = true;
  for (int index : {1, 2}) {
    const benchmarks::Benchmark benchmark =
        benchmarks::synth_benchmark(index);

    dse::GaOptions options;
    options.population = population;
    options.offspring = population;
    options.generations = generations;
    options.seed = seed;
    options.threads = threads;

    dse::GaOptions seed_path = options;
    seed_path.cache_evaluations = false;
    seed_path.parallel_scenarios = false;

    const RunOutcome before = run_median(benchmark, seed_path, reps);
    const RunOutcome cold = run_median(benchmark, options, reps);

    // Warm regime: an externally owned cache survives across runs; warm it
    // once, then measure.  (The GA's run-local genotype memo dies with each
    // run, so warm hits all flow through the candidate-keyed cache.)
    core::EvaluationCache shared_cache;
    dse::GaOptions warm_path = options;
    warm_path.evaluator.cache = &shared_cache;
    run_once(benchmark, warm_path);
    const RunOutcome warm = run_median(benchmark, warm_path, reps);

    // Persistent-store regime (ISSUE 7): the same campaign against the
    // disk-backed L2 alone.  Cold-store reps wipe the store first (every
    // evaluation computes and appends); warm-store reps reopen the store a
    // fresh process would find fully populated, so evaluations replay from
    // the mmap'd log instead of rerunning Algorithm 1.  The run-local L1
    // dies with each run, so warm-store hits all flow through the store.
    const std::string store_dir =
        "/tmp/ftmc_bench_dse_store_" + std::to_string(index);
    const auto run_with_store = [&](bool wipe) {
      if (wipe) {
        std::remove((store_dir + "/evals.log").c_str());
        std::remove((store_dir + "/evals.idx").c_str());
      }
      core::EvalStore store(store_dir);
      dse::GaOptions store_path = options;
      store_path.evaluator.store = &store;
      return run_once(benchmark, store_path);
    };
    std::vector<RunOutcome> cold_store_runs, warm_store_runs;
    for (std::size_t r = 0; r < reps; ++r)
      cold_store_runs.push_back(run_with_store(/*wipe=*/true));
    for (std::size_t r = 0; r < reps; ++r)
      warm_store_runs.push_back(run_with_store(/*wipe=*/false));
    const RunOutcome cold_store = median_of(std::move(cold_store_runs));
    const RunOutcome warm_store = median_of(std::move(warm_store_runs));

    const bool equal = same_power(before.best_power, cold.best_power) &&
                       same_power(before.best_power, warm.best_power) &&
                       same_power(before.best_power, cold_store.best_power) &&
                       same_power(before.best_power, warm_store.best_power);
    table.add_row(
        {benchmark.name, util::Table::cell(before.seconds, 2),
         util::Table::cell(cold.seconds, 2),
         util::Table::cell(before.seconds / cold.seconds, 2) + "x",
         util::Table::cell(cold.hit_rate * 100.0, 1) + "%",
         util::Table::cell(warm.seconds, 2),
         util::Table::cell(before.seconds / warm.seconds, 2) + "x",
         util::Table::cell(cold.scenarios_per_second, 0),
         util::Table::cell(cold_store.seconds, 2),
         util::Table::cell(warm_store.seconds, 2),
         util::Table::cell(cold_store.seconds / warm_store.seconds, 2) + "x",
         equal ? "yes" : "NO"});

    all_equal = all_equal && equal;
    json_benchmarks.push(
        obs::Json::object()
            .set("name", benchmark.name)
            .set("seed_s", obs::Json::number(before.seconds, 4))
            .set("cold_s", obs::Json::number(cold.seconds, 4))
            .set("cold_speedup",
                 obs::Json::number(before.seconds / cold.seconds, 2))
            .set("cold_hit_rate", obs::Json::number(cold.hit_rate, 3))
            .set("warm_s", obs::Json::number(warm.seconds, 4))
            .set("warm_speedup",
                 obs::Json::number(before.seconds / warm.seconds, 2))
            .set("scenarios_per_s",
                 obs::Json::number(cold.scenarios_per_second, 0))
            .set("cold_store_s", obs::Json::number(cold_store.seconds, 4))
            .set("warm_store_s", obs::Json::number(warm_store.seconds, 4))
            .set("store_speedup",
                 obs::Json::number(
                     cold_store.seconds / warm_store.seconds, 2))
            .set("warm_store_hit_rate",
                 obs::Json::number(warm_store.hit_rate, 3))
            .set("equal", equal));
  }
  table.print(std::cout);
  std::cout
      << "(identical seeds and trajectories in every arm; 'best power "
         "equal' cross-checks the differential guarantee.  Cold speedup "
         "is bounded by the GA's duplicate-candidate rate; warm shows the "
         "steady-state regime of repeated exploration on an unchanged "
         "model.)\n";
  obs::Json summary = obs::Json::object();
  summary.set("bench", "dse_cache")
      .set("generations", generations)
      .set("population", population)
      .set("reps", reps)
      .set("benchmarks", std::move(json_benchmarks))
      .set("equal", all_equal);
  reporter.finish(summary);
  return all_equal ? 0 : 1;
}
