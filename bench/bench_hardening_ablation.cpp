// Ablation: value of exploring the hardening technique per task.
//
// Section 5.2 observes that the optimizer overwhelmingly picks re-execution
// on the control benchmarks.  This bench quantifies the other side: what
// does restricting the explored hardening space cost?  Three DSE runs per
// benchmark —
//   free         techniques explored per task (the paper's setup),
//   reexec-only  the decoder rewrites every replication gene to
//                re-execution,
//   replication  re-execution forbidden (replication/none only; reliability
//                repair limited to replication) — shows the voter-failure
//                floor: very tight f_t constraints become unreachable.
#include <cmath>
#include <cstdlib>
#include <iostream>

#include "bench_common.hpp"
#include "ftmc/benchmarks/cruise.hpp"
#include "ftmc/benchmarks/dream.hpp"
#include "ftmc/dse/ga.hpp"
#include "ftmc/sched/holistic.hpp"
#include "ftmc/util/table.hpp"

using namespace ftmc;

namespace {

std::size_t env_or(const char* name, std::size_t fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr) return fallback;
  const long parsed = std::atol(raw);
  return parsed > 0 ? static_cast<std::size_t>(parsed) : fallback;
}

/// One restricted DSE run; the restriction is enforced by the decoder on
/// every chromosome (Lamarckian, so the gene pool follows).
double best_power(const benchmarks::Benchmark& bench,
                  dse::TechniqueRestriction restriction) {
  const sched::HolisticAnalysis backend;
  dse::GeneticOptimizer optimizer(bench.arch, bench.apps, backend);
  dse::GaOptions options;
  options.population = env_or("FTMC_POPULATION", 40);
  options.offspring = options.population;
  options.generations = env_or("FTMC_GENERATIONS", 50);
  options.seed = 99;
  options.optimize_service = false;
  options.decoder.restriction = restriction;
  const auto result = optimizer.run(options);
  return result.best_feasible_power;
}

std::string cell(double value) {
  return std::isnan(value) ? "infeasible" : util::Table::cell(value, 1);
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Reporter reporter(argc, argv);
  util::Table table(
      "Hardening-space ablation: best feasible power [mW]\n(free = paper "
      "setup; reexec-only / replication-only restrict the explored "
      "techniques)");
  table.set_header({"Benchmark", "free", "reexec-only", "replication-only"});
  obs::Json rows = obs::Json::array();
  for (const auto& bench :
       {benchmarks::dt_med_benchmark(), benchmarks::cruise_benchmark()}) {
    std::cout << "running " << bench.name << "...\n";
    const double free_power =
        best_power(bench, dse::TechniqueRestriction::kNone);
    const double reexec_power =
        best_power(bench, dse::TechniqueRestriction::kReexecutionOnly);
    const double replication_power =
        best_power(bench, dse::TechniqueRestriction::kReplicationOnly);
    table.add_row({bench.name, cell(free_power), cell(reexec_power),
                   cell(replication_power)});
    rows.push(obs::Json::object()
                  .set("name", bench.name)
                  .set("free_power", obs::Json::number(free_power, 1))
                  .set("reexec_power", obs::Json::number(reexec_power, 1))
                  .set("replication_power",
                       obs::Json::number(replication_power, 1)));
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: free ~= reexec-only (the optimizer picks\n"
               "re-execution anyway, Section 5.2); replication-only is far\n"
               "worse or infeasible (always-on replicas cost utilization and\n"
               "the fallible voter caps achievable reliability).\n";
  obs::Json summary = obs::Json::object();
  summary.set("bench", "hardening_ablation").set("benchmarks", std::move(rows));
  reporter.finish(summary);
  return 0;
}
