// Reproduces the motivational example of Figure 1: three task graphs with
// two criticality levels on a 2-PE platform.
//
//  (a) fault-free: all three applications meet the deadline;
//  (b) a fault in task A (re-executed) pushes the high-critical sink E past
//      the deadline when nothing is dropped;
//  (c) with the low-criticality graph {G, H, I} droppable and dropped on
//      the critical-state transition, E meets the deadline again.
//
// Prints the three schedules as ASCII Gantt charts.
#include <iostream>

#include "ftmc/core/mc_analysis.hpp"
#include "bench_common.hpp"
#include "ftmc/model/task_graph.hpp"
#include "ftmc/sched/holistic.hpp"
#include "ftmc/sim/simulator.hpp"
#include "ftmc/sim/trace.hpp"

using namespace ftmc;

namespace {

model::ApplicationSet figure1_apps() {
  std::vector<model::TaskGraph> graphs;
  {
    model::TaskGraphBuilder high("high");
    const auto a = high.add_task("A", 100, 100, 5, 10);
    const auto b = high.add_task("B", 100, 100, 5, 10);
    const auto e = high.add_task("E", 130, 130, 5, 10);
    high.connect(a, e, 0).connect(b, e, 0);
    high.period(500).reliability(1e-9);
    graphs.push_back(high.build());
  }
  {
    model::TaskGraphBuilder mid("mid");
    const auto c = mid.add_task("C", 80, 80, 5, 10);
    const auto f = mid.add_task("F", 80, 80, 5, 10);
    mid.connect(c, f, 0);
    mid.period(500).reliability(1e-9);
    graphs.push_back(mid.build());
  }
  {
    // Short-period low-criticality graph: its second instance (released at
    // 250) is what collides with E after A's re-execution — and what the
    // critical-state transition drops.
    model::TaskGraphBuilder low("low");
    const auto g = low.add_task("G", 40, 40, 5, 10);
    const auto h = low.add_task("H", 40, 40, 5, 10);
    const auto i = low.add_task("I", 40, 40, 5, 10);
    low.connect(g, h, 0).connect(h, i, 0);
    low.period(250).droppable(1.0);
    graphs.push_back(low.build());
  }
  return model::ApplicationSet{std::move(graphs)};
}

model::Architecture two_pes() {
  return model::ArchitectureBuilder{}
      .add_processor({"pe1", 0, 50.0, 150.0, 1e-9, 1.0})
      .add_processor({"pe2", 0, 50.0, 150.0, 1e-9, 1.0})
      .bandwidth(100.0)
      .build();
}

void report(const char* title, const model::ApplicationSet& apps,
            const model::Architecture& arch, const sim::SimResult& trace) {
  std::cout << "\n--- " << title << " ---\n";
  sim::render_gantt(std::cout, arch, apps, trace, 520, 10);
  for (std::uint32_t g = 0; g < apps.graph_count(); ++g) {
    const auto response = trace.graph_response[g];
    std::cout << apps.graph(model::GraphId{g}).name() << ": ";
    if (response < 0)
      std::cout << "dropped";
    else
      std::cout << "response " << response << " / deadline "
                << apps.graph(model::GraphId{g}).deadline()
                << (response <= apps.graph(model::GraphId{g}).deadline()
                        ? "  (met)"
                        : "  (MISSED)");
    std::cout << '\n';
  }
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Reporter reporter(argc, argv);
  const auto apps = figure1_apps();
  const auto arch = two_pes();

  // A is hardened by re-execution (Figure 1 hardens A and B; B's active
  // replication is timing-transparent, so re-execution of A is the trigger
  // that matters for the schedule).
  hardening::HardeningPlan plan(apps.task_count());
  plan[0].technique = hardening::Technique::kReexecution;
  plan[0].reexecutions = 1;
  // A, E on pe1 with the low graph's G, H; B on pe2 with C, F and I.
  const std::vector<model::ProcessorId> mapping = {
      model::ProcessorId{0}, model::ProcessorId{1}, model::ProcessorId{0},
      model::ProcessorId{1}, model::ProcessorId{1}, model::ProcessorId{0},
      model::ProcessorId{0}, model::ProcessorId{1}};
  const auto system = hardening::apply_hardening(apps, plan, mapping, 2);
  const auto priorities = sched::assign_priorities(system.apps);

  sim::WcetExecution wcet;
  // (a) no fault
  {
    const sim::Simulator simulator(arch, system, {false, false, false},
                                   priorities);
    sim::NoFaults no_faults;
    report("(b) fault-free, nothing dropped", system.apps, arch,
           simulator.run(no_faults, wcet));
  }
  // (b) fault in A, nothing droppable
  bool miss_without_dropping = false;
  {
    const sim::Simulator simulator(arch, system, {false, false, false},
                                   priorities);
    sim::PlannedFaults faults;
    faults.add(sim::AttemptKey{0, 0, 1});
    const auto trace = simulator.run(faults, wcet);
    miss_without_dropping = trace.deadline_miss;
    report("(c) fault in A, nothing dropped", system.apps, arch, trace);
  }
  // (c) fault in A, low-criticality graph dropped
  bool met_with_dropping = false;
  {
    const sim::Simulator simulator(arch, system, {false, false, true},
                                   priorities);
    sim::PlannedFaults faults;
    faults.add(sim::AttemptKey{0, 0, 1});
    const auto trace = simulator.run(faults, wcet);
    met_with_dropping = !trace.deadline_miss;
    report("(d) fault in A, low-criticality tasks G,H,I dropped",
           system.apps, arch, trace);
  }

  // Analysis agrees with the traces.
  const sched::HolisticAnalysis backend;
  const core::McAnalysis analysis(backend);
  const auto keeping = analysis.analyze(arch, system, {false, false, false});
  const auto dropping = analysis.analyze(arch, system, {false, false, true});
  std::cout << "\nAlgorithm 1 verdicts: keeping everything -> "
            << (keeping.schedulable() ? "schedulable" : "NOT schedulable")
            << "; dropping {G,H,I} -> "
            << (dropping.schedulable() ? "schedulable" : "NOT schedulable")
            << '\n';

  const bool reproduced = miss_without_dropping && met_with_dropping &&
                          !keeping.schedulable() && dropping.schedulable();
  std::cout << "Figure 1 narrative reproduced: "
            << (reproduced ? "yes" : "NO") << '\n';
  obs::Json summary = obs::Json::object();
  summary.set("bench", "motivational")
      .set("miss_without_dropping", miss_without_dropping)
      .set("met_with_dropping", met_with_dropping)
      .set("keeping_schedulable", keeping.schedulable())
      .set("dropping_schedulable", dropping.schedulable())
      .set("reproduced", reproduced);
  reporter.finish(summary);
  return reproduced ? 0 : 1;
}
