// Reproduces Figure 5: co-optimization of service and power for DT-med.
//
// Bi-objective DSE (minimize expected power, maximize post-dropping QoS)
// over the DT-med benchmark, whose droppable applications t1/t2/t3 carry
// service values 1/2/4.  The paper reports five Pareto-optimal points
// spanning the range from "drop everything" (phi; lowest power) to "drop
// nothing" ({t1,t2,t3}; maximum service).
//
// Environment knobs: FTMC_GENERATIONS (default 80), FTMC_POPULATION (50),
// FTMC_SEED (5).
#include <algorithm>
#include <cstdlib>
#include <iostream>

#include "ftmc/benchmarks/dream.hpp"
#include "bench_common.hpp"
#include "ftmc/dse/ga.hpp"
#include "ftmc/sched/holistic.hpp"
#include "ftmc/util/table.hpp"

using namespace ftmc;

namespace {

std::size_t env_or(const char* name, std::size_t fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr) return fallback;
  const long parsed = std::atol(raw);
  return parsed > 0 ? static_cast<std::size_t>(parsed) : fallback;
}

/// Figure-5-style label: the set of *alive* droppable applications.
std::string alive_label(const model::ApplicationSet& apps,
                        const core::DropSet& drop) {
  std::string label = "{";
  bool first = true;
  for (const model::GraphId g : apps.droppable_graphs()) {
    if (drop[g.value]) continue;
    if (!first) label += ",";
    label += apps.graph(g).name();
    first = false;
  }
  label += "}";
  return label == "{}" ? "phi" : label;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Reporter reporter(argc, argv);
  const auto bench = benchmarks::dt_med_benchmark();
  const sched::HolisticAnalysis backend;
  dse::GeneticOptimizer optimizer(bench.arch, bench.apps, backend);

  dse::GaOptions options;
  options.population = env_or("FTMC_POPULATION", 50);
  options.offspring = options.population;
  options.generations = env_or("FTMC_GENERATIONS", 80);
  options.seed = env_or("FTMC_SEED", 5);
  options.optimize_service = true;

  std::cout << "Figure 5 reproduction: power/service Pareto front for "
            << bench.name << " (population " << options.population << ", "
            << options.generations << " generations; paper: 100 x 5000)\n";

  auto result = optimizer.run(options);

  std::sort(result.pareto.begin(), result.pareto.end(),
            [](const dse::Individual& a, const dse::Individual& b) {
              return a.evaluation.power < b.evaluation.power;
            });

  util::Table table("\nPareto-optimal designs (service = sum of sv over "
                    "non-dropped droppable applications)");
  table.set_header({"alive droppable apps", "service", "power [mW]"});
  for (const auto& individual : result.pareto) {
    table.add_row({alive_label(bench.apps, individual.candidate.drop),
                   util::Table::cell(individual.evaluation.service, 1),
                   util::Table::cell(individual.evaluation.power, 1)});
  }
  table.print(std::cout);

  // Shape checks: the front is monotone (more service costs more power) and
  // spans from low-service/low-power towards high-service/high-power.
  bool monotone = true;
  for (std::size_t i = 1; i < result.pareto.size(); ++i) {
    monotone &= result.pareto[i].evaluation.service >
                result.pareto[i - 1].evaluation.service;
  }
  std::cout << "\nPareto points found: " << result.pareto.size()
            << " (paper: 5)\n"
            << "Front monotone in (power, service): "
            << (monotone ? "yes" : "NO") << '\n'
            << "Evaluations: " << result.evaluations << '\n';
  obs::Json summary = obs::Json::object();
  summary.set("bench", "pareto")
      .set("pareto_points", result.pareto.size())
      .set("monotone", monotone)
      .set("evaluations", result.evaluations);
  reporter.finish(summary);
  return result.pareto.empty() ? 1 : 0;
}
