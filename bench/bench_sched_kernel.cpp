// A/B measurement of the prepared-problem analysis kernel (ISSUE 2
// acceptance bench): multi-scenario candidate evaluation on the DT-med
// (dream) and DT-large benchmarks, same candidates in every arm.
//
//   rebuild+sweep      the seed path: every scenario rebuilds the holistic
//                      problem from scratch and runs the full-sweep global
//                      fixed point (Options{prepared_kernel = false,
//                      worklist_fixed_point = false});
//   rebuild+worklist   per-scenario rebuild, change-driven worklist fixed
//                      point — isolates the fixed-point gain;
//   prepared+worklist  one PreparedProblem per candidate shared by the
//                      normal state, the Naive pass, and every transition
//                      scenario — isolates the prepare-once gain on top
//                      (warm-start and batching disabled: the ISSUE 2
//                      baseline, every scenario solved cold and scalar);
//   warm               prepared + warm-start: each scenario's worklist is
//                      seeded from the Naive-pass trajectory, replaying
//                      unaffected nodes — isolates the incremental gain;
//   warm+batch         the default path: warm-start plus batched SoA
//                      solving of the scenario fan-out.
//
// Each arm runs McAnalysis::analyze (Algorithm 1, Proposed mode) over the
// same seeded random candidates and reports the median of FTMC_REPS
// repetitions; per-task WCRT bounds are checksummed across arms, so the
// printed speedups compare bit-identical computations (the differential
// guarantee of tests/test_prepared_problem.cpp).  A self-contained micro
// benchmark also compares the packed bitset relation-row test against the
// vector<vector<bool>> layout it replaced.
//
// The last line is a one-line JSON summary (like bench_dse_cache) for CI
// and scripted regression tracking.
//
// Environment knobs: FTMC_CANDIDATES (default 24), FTMC_SEED (2014),
// FTMC_THREADS (0 = scenarios sequential; N > 0 fans scenarios out on a
// pool), FTMC_REPS (3).
#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <vector>

#include "bench_common.hpp"
#include "ftmc/benchmarks/dream.hpp"
#include "ftmc/core/mc_analysis.hpp"
#include "ftmc/dse/decoder.hpp"
#include "ftmc/sched/holistic.hpp"
#include "ftmc/util/rng.hpp"
#include "ftmc/util/table.hpp"
#include "ftmc/util/thread_pool.hpp"

using namespace ftmc;

namespace {

std::size_t env_or(const char* name, std::size_t fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr) return fallback;
  const long parsed = std::atol(raw);
  return parsed > 0 ? static_cast<std::size_t>(parsed) : fallback;
}

/// One decoded candidate with its hardened system (the per-candidate unit
/// the DSE evaluates).
struct PreparedCandidate {
  core::Candidate candidate;
  hardening::HardenedSystem system;
};

std::vector<PreparedCandidate> make_candidates(
    const benchmarks::Benchmark& benchmark, std::size_t count,
    std::uint64_t seed) {
  const dse::Decoder decoder(benchmark.arch, benchmark.apps);
  util::Rng rng(seed);
  std::vector<PreparedCandidate> candidates;
  candidates.reserve(count);
  for (std::size_t c = 0; c < count; ++c) {
    dse::Chromosome chromosome = dse::random_chromosome(decoder.shape(), rng);
    core::Candidate candidate = decoder.decode(chromosome, rng);
    auto system = hardening::apply_hardening(
        benchmark.apps, candidate.plan, candidate.base_mapping,
        benchmark.arch.processor_count());
    candidates.push_back({std::move(candidate), std::move(system)});
  }
  return candidates;
}

struct ArmOutcome {
  double seconds = 0.0;
  std::uint64_t checksum = 0;  ///< FNV-ish fold of every WCRT bound
  std::size_t scenarios = 0;
};

ArmOutcome run_arm(const benchmarks::Benchmark& benchmark,
                   const std::vector<PreparedCandidate>& candidates,
                   const sched::HolisticAnalysis& backend,
                   util::ThreadPool* pool) {
  const core::McAnalysis analysis(backend);
  ArmOutcome outcome;
  const auto start = std::chrono::steady_clock::now();
  for (const PreparedCandidate& pc : candidates) {
    const core::McAnalysisResult result = analysis.analyze(
        benchmark.arch, pc.system, pc.candidate.drop,
        core::McAnalysis::Mode::kProposed, pool);
    outcome.scenarios += result.scenario_count;
    for (const model::Time bound : result.wcrt)
      outcome.checksum =
          (outcome.checksum ^ static_cast<std::uint64_t>(bound)) *
          0x100000001b3ULL;
  }
  outcome.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return outcome;
}

ArmOutcome run_arm_median(const benchmarks::Benchmark& benchmark,
                          const std::vector<PreparedCandidate>& candidates,
                          const sched::HolisticAnalysis& backend,
                          util::ThreadPool* pool, std::size_t reps) {
  std::vector<ArmOutcome> outcomes;
  for (std::size_t r = 0; r < reps; ++r)
    outcomes.push_back(run_arm(benchmark, candidates, backend, pool));
  std::sort(outcomes.begin(), outcomes.end(),
            [](const ArmOutcome& a, const ArmOutcome& b) {
              return a.seconds < b.seconds;
            });
  return outcomes[outcomes.size() / 2];
}

/// Bitset-row vs vector<vector<bool>> membership micro: the inner loop of
/// offset_interference is "is u related to i" over the interferer list; this
/// reproduces that access pattern on a synthetic relation.
struct MicroOutcome {
  double bool_ns = 0.0;
  double bitset_ns = 0.0;
  double bool_build_us = 0.0;
  double bitset_build_us = 0.0;
};

MicroOutcome relation_micro() {
  constexpr std::size_t kNodes = 384;
  constexpr std::size_t kInterferers = 24;
  constexpr std::size_t kReps = 400;
  util::Rng rng(7);

  std::vector<std::vector<bool>> dense(kNodes,
                                       std::vector<bool>(kNodes, false));
  const std::size_t words = (kNodes + 63) / 64;
  std::vector<std::uint64_t> bits(kNodes * words, 0);
  for (std::size_t i = 0; i < kNodes; ++i)
    for (std::size_t u = 0; u < kNodes; ++u)
      if (rng.chance(0.25)) {
        dense[i][u] = true;
        bits[i * words + (u >> 6)] |= std::uint64_t{1} << (u & 63);
      }
  // The kernel's access pattern: per node i, test membership of each entry
  // of its interferer list (row-hot, list in ascending order).
  std::vector<std::vector<std::size_t>> interferers(kNodes);
  for (auto& list : interferers) {
    list.resize(kInterferers);
    for (std::size_t& u : list) u = rng.index(kNodes);
    std::sort(list.begin(), list.end());
  }
  const double queries =
      static_cast<double>(kReps) * kNodes * kInterferers;

  MicroOutcome outcome;
  volatile std::size_t sink = 0;
  {
    const auto start = std::chrono::steady_clock::now();
    std::size_t hits = 0;
    for (std::size_t rep = 0; rep < kReps; ++rep)
      for (std::size_t i = 0; i < kNodes; ++i) {
        const std::vector<bool>& row = dense[i];
        for (const std::size_t u : interferers[i]) hits += row[u] ? 1 : 0;
      }
    sink = hits;
    outcome.bool_ns = std::chrono::duration<double, std::nano>(
                          std::chrono::steady_clock::now() - start)
                          .count() /
                      queries;
  }
  {
    const auto start = std::chrono::steady_clock::now();
    std::size_t hits = 0;
    for (std::size_t rep = 0; rep < kReps; ++rep)
      for (std::size_t i = 0; i < kNodes; ++i) {
        const std::uint64_t* row = bits.data() + i * words;
        for (const std::size_t u : interferers[i])
          hits += (row[u >> 6] >> (u & 63)) & 1u;
      }
    sink = sink + hits;
    outcome.bitset_ns = std::chrono::duration<double, std::nano>(
                            std::chrono::steady_clock::now() - start)
                            .count() /
                        queries;
  }
  // Construction: the matrix is rebuilt per prepare (once per candidate —
  // and, before this kernel, once per scenario); the flat layout is a
  // single allocation instead of one per row.
  constexpr std::size_t kBuildReps = 200;
  {
    const auto start = std::chrono::steady_clock::now();
    for (std::size_t rep = 0; rep < kBuildReps; ++rep) {
      std::vector<std::vector<bool>> built(kNodes,
                                           std::vector<bool>(kNodes, false));
      built[rep % kNodes][rep % kNodes] = true;
      sink = sink + (built[0][0] ? 1 : 0);
    }
    outcome.bool_build_us = std::chrono::duration<double, std::micro>(
                                std::chrono::steady_clock::now() - start)
                                .count() /
                            kBuildReps;
  }
  {
    const auto start = std::chrono::steady_clock::now();
    for (std::size_t rep = 0; rep < kBuildReps; ++rep) {
      std::vector<std::uint64_t> built(kNodes * words, 0);
      built[rep % built.size()] = 1;
      sink = sink + built[0];
    }
    outcome.bitset_build_us = std::chrono::duration<double, std::micro>(
                                  std::chrono::steady_clock::now() - start)
                                  .count() /
                              kBuildReps;
  }
  (void)sink;
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Reporter reporter(argc, argv);
  const std::size_t candidate_count = env_or("FTMC_CANDIDATES", 24);
  const std::uint64_t seed = env_or("FTMC_SEED", 2014);
  const std::size_t threads = env_or("FTMC_THREADS", 0);
  const std::size_t reps = env_or("FTMC_REPS", 3);

  std::cout << "Analysis-kernel A/B: " << candidate_count
            << " candidates per benchmark, seed " << seed << ", median of "
            << reps << ", scenario threads " << (threads == 0 ? 1 : threads)
            << " (FTMC_CANDIDATES / FTMC_SEED / FTMC_THREADS / FTMC_REPS)\n";

  sched::HolisticAnalysis::Options seed_options;
  seed_options.prepared_kernel = false;
  seed_options.worklist_fixed_point = false;
  sched::HolisticAnalysis::Options rebuild_options;
  rebuild_options.prepared_kernel = false;
  sched::HolisticAnalysis::Options prepared_options;  // ISSUE 2 baseline
  prepared_options.warm_start = false;
  prepared_options.scenario_batch = 1;
  sched::HolisticAnalysis::Options warm_options;
  warm_options.scenario_batch = 1;
  const sched::HolisticAnalysis seed_backend(seed_options);
  const sched::HolisticAnalysis rebuild_backend(rebuild_options);
  const sched::HolisticAnalysis prepared_backend(prepared_options);
  const sched::HolisticAnalysis warm_backend(warm_options);
  const sched::HolisticAnalysis warm_batch_backend;  // defaults: warm+batch

  std::unique_ptr<util::ThreadPool> pool;
  if (threads > 0) pool = std::make_unique<util::ThreadPool>(threads);

  util::Table table(
      "Multi-scenario candidate evaluation: per-scenario rebuild + full "
      "sweep (seed) vs prepared kernel");
  table.set_header({"benchmark", "scenarios", "seed [s]", "worklist [s]",
                    "prepared [s]", "warm [s]", "warm+batch [s]",
                    "batch speedup", "total speedup", "scen/s",
                    "identical"});

  obs::Json json_benchmarks = obs::Json::array();
  bool all_identical = true;
  double dream_total_speedup = 0.0;
  for (const bool large : {false, true}) {
    const benchmarks::Benchmark benchmark =
        large ? benchmarks::dt_large_benchmark()
              : benchmarks::dt_med_benchmark();
    const std::vector<PreparedCandidate> candidates =
        make_candidates(benchmark, candidate_count, seed);

    const ArmOutcome seed_arm = run_arm_median(benchmark, candidates,
                                               seed_backend, pool.get(), reps);
    const ArmOutcome worklist_arm = run_arm_median(
        benchmark, candidates, rebuild_backend, pool.get(), reps);
    const ArmOutcome prepared_arm = run_arm_median(
        benchmark, candidates, prepared_backend, pool.get(), reps);
    const ArmOutcome warm_arm = run_arm_median(benchmark, candidates,
                                               warm_backend, pool.get(), reps);
    const ArmOutcome warm_batch_arm = run_arm_median(
        benchmark, candidates, warm_batch_backend, pool.get(), reps);

    const bool identical = seed_arm.checksum == worklist_arm.checksum &&
                           seed_arm.checksum == prepared_arm.checksum &&
                           seed_arm.checksum == warm_arm.checksum &&
                           seed_arm.checksum == warm_batch_arm.checksum;
    all_identical = all_identical && identical;
    const double worklist_speedup = seed_arm.seconds / worklist_arm.seconds;
    const double warm_speedup = prepared_arm.seconds / warm_arm.seconds;
    // The headline of this bench: warm + batched scenario solving vs the
    // cold scalar prepared kernel (the ISSUE 2 baseline).
    const double batch_speedup = prepared_arm.seconds / warm_batch_arm.seconds;
    const double total_speedup = seed_arm.seconds / warm_batch_arm.seconds;
    const double scenarios_per_s =
        warm_batch_arm.seconds > 0.0
            ? static_cast<double>(warm_batch_arm.scenarios) /
                  warm_batch_arm.seconds
            : 0.0;
    if (!large) dream_total_speedup = total_speedup;

    table.add_row({benchmark.name, std::to_string(seed_arm.scenarios),
                   util::Table::cell(seed_arm.seconds, 3),
                   util::Table::cell(worklist_arm.seconds, 3),
                   util::Table::cell(prepared_arm.seconds, 3),
                   util::Table::cell(warm_arm.seconds, 3),
                   util::Table::cell(warm_batch_arm.seconds, 3),
                   util::Table::cell(batch_speedup, 2) + "x",
                   util::Table::cell(total_speedup, 2) + "x",
                   util::Table::cell(scenarios_per_s, 0),
                   identical ? "yes" : "NO"});

    json_benchmarks.push(
        obs::Json::object()
            .set("name", benchmark.name)
            .set("scenarios", seed_arm.scenarios)
            .set("seed_s", obs::Json::number(seed_arm.seconds, 4))
            .set("rebuild_worklist_s",
                 obs::Json::number(worklist_arm.seconds, 4))
            .set("prepared_s", obs::Json::number(prepared_arm.seconds, 4))
            .set("warm_s", obs::Json::number(warm_arm.seconds, 4))
            .set("warm_batch_s", obs::Json::number(warm_batch_arm.seconds, 4))
            .set("worklist_speedup", obs::Json::number(worklist_speedup, 2))
            .set("warm_speedup", obs::Json::number(warm_speedup, 2))
            .set("batch_speedup", obs::Json::number(batch_speedup, 2))
            .set("total_speedup", obs::Json::number(total_speedup, 2))
            .set("scenarios_per_s", obs::Json::number(scenarios_per_s, 0))
            .set("identical", identical));
  }
  table.print(std::cout);

  const MicroOutcome micro = relation_micro();
  std::cout << "relation-row micro: membership vector<vector<bool>> "
            << util::Table::cell(micro.bool_ns, 2) << " ns vs packed bitset "
            << util::Table::cell(micro.bitset_ns, 2) << " ns ("
            << util::Table::cell(micro.bool_ns / micro.bitset_ns, 2)
            << "x); construction "
            << util::Table::cell(micro.bool_build_us, 1) << " us vs "
            << util::Table::cell(micro.bitset_build_us, 1) << " us ("
            << util::Table::cell(
                   micro.bool_build_us / micro.bitset_build_us, 1)
            << "x)\n";
  std::cout << "(same candidates and seeds in every arm; 'identical' "
               "cross-checks the WCRT checksum across the five kernel "
               "configurations.)\n";

  obs::Json summary = obs::Json::object();
  summary.set("bench", "sched_kernel")
      .set("candidates", candidate_count)
      .set("reps", reps)
      .set("threads", threads)
      .set("benchmarks", std::move(json_benchmarks))
      .set("bitset_ns", obs::Json::number(micro.bitset_ns, 2))
      .set("bool_ns", obs::Json::number(micro.bool_ns, 2))
      .set("bitset_build_us", obs::Json::number(micro.bitset_build_us, 1))
      .set("bool_build_us", obs::Json::number(micro.bool_build_us, 1))
      .set("identical", all_identical);
  reporter.finish(summary);
  return all_identical && dream_total_speedup > 0.0 ? 0 : 1;
}
