// Throughput of `ftmc serve` request handling (ISSUE 7 acceptance bench):
//
//   cold    a fresh Server per request — pays the system parse, evaluator
//           construction, and simulation prepare that every one-shot CLI
//           invocation pays before any useful work;
//   hot     one resident Server answering the whole request stream — the
//           regime `ftmc serve` exists for: parse once, keep the
//           PreparedProblem/PreparedSim and evaluation caches resident.
//
// The request mix is analyze + evaluate + simulate (round-robin), the same
// methods the daemon serves in production.  Responses are cross-checked:
// the hot server's rendered reports must equal the cold reference bytes
// (tests/test_serve.cpp pins the same property against the CLI renderer),
// so the speedup is pure state reuse, never a different answer.
//
// A third section measures concurrent TCP serving (ISSUE 8): one resident
// server pinned to --threads=1 (no intra-request fan-out, so any gain is
// pure connection concurrency), driven by 1/2/4/8 client connections over
// loopback TCP.  Every response is byte-compared against the serial
// expectation for the same request document, and the summary reports the
// aggregate request rate, p95 latency per level, and speedup_8x (the
// acceptance criterion: >= 3x on a multi-core CI runner).
//
// Environment knobs: FTMC_REQUESTS (hot requests, default 300),
// FTMC_COLD_REQUESTS (default 15), FTMC_PROFILES (simulate profiles,
// default 200), FTMC_THREADS (hardware), FTMC_CONC_REQUESTS (requests per
// TCP concurrency level, default 120).
//
// The last line is a one-line JSON summary for CI and scripted regression
// tracking; the exit code is non-zero if any hot/cold response diverges.
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "ftmc/serve/protocol.hpp"

#include "bench_common.hpp"
#include "ftmc/benchmarks/synth.hpp"
#include "ftmc/dse/decoder.hpp"
#include "ftmc/io/text_format.hpp"
#include "ftmc/serve/json_parse.hpp"
#include "ftmc/serve/server.hpp"
#include "ftmc/util/table.hpp"

using namespace ftmc;

namespace {

std::size_t env_or(const char* name, std::size_t fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr) return fallback;
  const long parsed = std::atol(raw);
  return parsed > 0 ? static_cast<std::size_t>(parsed) : fallback;
}

/// A synth benchmark with a decoded candidate, written as a system file —
/// what a serve deployment loads at startup.
std::string write_bench_system() {
  const benchmarks::Benchmark benchmark = benchmarks::synth_benchmark(1);
  const dse::Decoder decoder(benchmark.arch, benchmark.apps);
  util::Rng rng(2014);
  dse::Chromosome chromosome = dse::random_chromosome(decoder.shape(), rng);
  const core::Candidate candidate = decoder.decode(chromosome, rng);
  const std::string path = "/tmp/ftmc_bench_serve.ftmc";
  std::ofstream out(path);
  io::write_system(out, benchmark.arch, benchmark.apps, &candidate);
  return path;
}

serve::ServeOptions server_options(const std::string& path,
                                   std::size_t threads) {
  serve::ServeOptions options;
  options.system_paths = {path};
  options.threads = threads;
  options.sample_interval_ms = 0;  // telemetry arms opt in explicitly
  return options;
}

/// The round-robin request mix (the simulate seed varies so the hot arm
/// cannot be served by a memoized simulation result).
std::string request_at(std::size_t i, std::size_t profiles) {
  const std::string head =
      R"({"v": "ftmc.rpc.v1", "id": )" + std::to_string(i);
  switch (i % 3) {
    case 0:
      return head + R"(, "method": "analyze"})";
    case 1:
      return head + R"(, "method": "evaluate"})";
    default:
      return head + R"(, "method": "simulate", "params": {"profiles": )" +
             std::to_string(profiles) + R"(, "fault_prob": "0.3", "seed": )" +
             std::to_string(1 + i) + "}}";
  }
}

/// Rendered report (or full result for evaluate) — the identity surface.
/// `cache_hit` legitimately differs between a fresh and a resident server,
/// so compare the payload that reaches the user's terminal instead.
std::string identity_of(const std::string& response) {
  const serve::JsonValue root = serve::parse_json(response);
  if (!root.bool_or("ok", false)) return "ERROR: " + response;
  const serve::JsonValue* result = root.get("result");
  const std::string output = result->str_or("output", "");
  if (!output.empty()) return output;
  return "power=" + std::to_string(result->num_or("power", -1.0)) +
         " service=" + std::to_string(result->num_or("service", -1.0)) +
         " feasible=" + std::to_string(result->bool_or("feasible", false));
}

/// Minimal framed-protocol TCP client (loopback).
struct BenchClient {
  int fd = -1;
  std::unique_ptr<serve::FrameReader> reader;

  explicit BenchClient(std::uint16_t port) {
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
      ::close(fd);
      fd = -1;
      return;
    }
    reader = std::make_unique<serve::FrameReader>(fd);
  }
  ~BenchClient() {
    if (fd >= 0) ::close(fd);
  }
  std::string call(const std::string& request) {
    serve::write_frame(fd, request);
    std::string payload;
    if (!reader->read(payload)) return "";
    return payload;
  }
};

struct LevelResult {
  std::size_t connections = 0;
  std::size_t requests = 0;
  double rps = 0.0;
  double p95_ms = 0.0;
  bool identical = true;
};

/// One concurrency level: `connections` clients split the request stream
/// round-robin; every response must match its serial expectation byte for
/// byte.
LevelResult run_level(std::uint16_t port, std::size_t connections,
                      const std::vector<std::string>& requests,
                      const std::vector<std::string>& expected) {
  LevelResult level;
  level.connections = connections;
  level.requests = requests.size();
  std::vector<std::vector<double>> latencies(connections);
  std::vector<char> client_ok(connections, 1);
  std::vector<std::thread> clients;
  clients.reserve(connections);
  const auto begin = std::chrono::steady_clock::now();
  for (std::size_t c = 0; c < connections; ++c)
    clients.emplace_back([&, c] {
      BenchClient client(port);
      if (client.fd < 0) {
        client_ok[c] = 0;
        return;
      }
      for (std::size_t i = c; i < requests.size(); i += connections) {
        const auto sent = std::chrono::steady_clock::now();
        const std::string response = client.call(requests[i]);
        latencies[c].push_back(std::chrono::duration<double>(
                                   std::chrono::steady_clock::now() - sent)
                                   .count());
        if (response != expected[i]) client_ok[c] = 0;
      }
    });
  for (std::thread& client : clients) client.join();
  const double wall = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - begin)
                          .count();
  std::vector<double> all;
  for (const auto& per_client : latencies)
    all.insert(all.end(), per_client.begin(), per_client.end());
  std::sort(all.begin(), all.end());
  level.identical =
      std::all_of(client_ok.begin(), client_ok.end(),
                  [](char ok) { return ok != 0; }) &&
      all.size() == requests.size();
  level.rps = wall > 0 ? static_cast<double>(all.size()) / wall : 0.0;
  level.p95_ms =
      all.empty()
          ? 0.0
          : all[std::min(all.size() - 1,
                         static_cast<std::size_t>(0.95 * (all.size() - 1) +
                                                  0.5))] *
                1e3;
  return level;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Reporter reporter(argc, argv);
  const std::size_t hot_requests = env_or("FTMC_REQUESTS", 300);
  const std::size_t cold_requests = env_or("FTMC_COLD_REQUESTS", 15);
  const std::size_t profiles = env_or("FTMC_PROFILES", 200);
  const std::size_t threads = env_or("FTMC_THREADS", 0);
  const std::string path = write_bench_system();

  std::cout << "serve throughput: " << hot_requests << " hot / "
            << cold_requests
            << " cold requests, analyze+evaluate+simulate mix, "
            << profiles
            << " simulate profiles (FTMC_REQUESTS / FTMC_COLD_REQUESTS / "
               "FTMC_PROFILES / FTMC_THREADS)\n";

  // Cold: every request pays full startup, like a one-shot CLI run.
  const auto cold_start = std::chrono::steady_clock::now();
  std::vector<std::string> cold_identities(3);
  for (std::size_t i = 0; i < cold_requests; ++i) {
    serve::Server server(server_options(path, threads));
    const std::string identity =
        identity_of(server.handle(request_at(i % 3, profiles)));
    if (cold_identities[i % 3].empty()) cold_identities[i % 3] = identity;
  }
  const double cold_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    cold_start)
          .count();

  // Hot: one resident server answers the whole stream.
  serve::Server server(server_options(path, threads));
  (void)server.handle(request_at(0, profiles));  // warm the residents
  bool identical = true;
  const auto hot_start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < hot_requests; ++i) {
    const std::string response = server.handle(request_at(i % 3, profiles));
    if (i < 3) identical = identical &&
                           identity_of(response) == cold_identities[i % 3];
  }
  const double hot_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    hot_start)
          .count();

  const double cold_rps = static_cast<double>(cold_requests) / cold_seconds;
  const double hot_rps = static_cast<double>(hot_requests) / hot_seconds;
  util::Table table("ftmc serve: resident state vs per-request startup");
  table.set_header(
      {"arm", "requests", "wall [s]", "requests/s", "speedup"});
  table.add_row({"cold (fresh server per request)",
                 std::to_string(cold_requests),
                 util::Table::cell(cold_seconds, 2),
                 util::Table::cell(cold_rps, 1), "1.00x"});
  table.add_row({"hot (resident server)", std::to_string(hot_requests),
                 util::Table::cell(hot_seconds, 2),
                 util::Table::cell(hot_rps, 1),
                 util::Table::cell(hot_rps / cold_rps, 2) + "x"});
  table.print(std::cout);
  std::cout << "(responses cross-checked " << (identical ? "equal" : "UNEQUAL")
            << "; the speedup is state reuse, not a different answer)\n";

  // Telemetry overhead: the same hot stream with the full observability
  // surface on (access log + background sampler) — the acceptance gate is
  // that serving with telemetry costs only a few percent.
  const std::string access_log_path = "/tmp/ftmc_bench_serve_access.jsonl";
  std::remove(access_log_path.c_str());
  serve::ServeOptions telemetry_options = server_options(path, threads);
  telemetry_options.access_log = access_log_path;
  telemetry_options.sample_interval_ms = 50;
  serve::Server telemetry_server(std::move(telemetry_options));
  (void)telemetry_server.handle(request_at(0, profiles));  // warm
  const auto telemetry_start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < hot_requests; ++i) {
    const std::string response =
        telemetry_server.handle(request_at(i % 3, profiles));
    if (i < 3) identical = identical &&
                           identity_of(response) == cold_identities[i % 3];
  }
  const double telemetry_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    telemetry_start)
          .count();
  const double telemetry_rps =
      static_cast<double>(hot_requests) / telemetry_seconds;
  const double overhead_pct =
      hot_rps > 0 ? (hot_rps - telemetry_rps) / hot_rps * 100.0 : 0.0;
  std::cout << "telemetry on (access log + 50ms sampler): "
            << util::Table::cell(telemetry_rps, 1) << " requests/s, "
            << util::Table::cell(overhead_pct, 1)
            << "% overhead vs hot; responses still byte-identical\n";

  // Concurrent TCP sessions: server pinned to one worker thread, so the
  // only parallelism is across connections.
  const std::size_t conc_requests = env_or("FTMC_CONC_REQUESTS", 120);
  serve::ServeOptions tcp_options = server_options(path, 1);
  tcp_options.max_connections = 8;
  serve::Server tcp_server(std::move(tcp_options));
  std::thread tcp_thread([&] { (void)tcp_server.serve_tcp(0, ""); });
  while (tcp_server.bound_port() == 0)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));

  std::vector<std::string> requests;
  requests.reserve(conc_requests);
  for (std::size_t i = 0; i < conc_requests; ++i)
    requests.push_back(request_at(i, profiles));
  // Serial expectations through the same server (warmed above is a
  // different instance; warm this one first so cache_hit is stable).
  (void)tcp_server.handle(request_at(0, profiles));
  (void)tcp_server.handle(request_at(1, profiles));
  std::vector<std::string> expected;
  expected.reserve(requests.size());
  for (const std::string& request : requests)
    expected.push_back(tcp_server.handle(request));

  util::Table tcp_table(
      "ftmc serve: concurrent TCP sessions (server --threads=1)");
  tcp_table.set_header(
      {"connections", "requests", "requests/s", "p95 [ms]", "identical"});
  std::vector<LevelResult> levels;
  for (const std::size_t connections : {1u, 2u, 4u, 8u}) {
    levels.push_back(
        run_level(tcp_server.bound_port(), connections, requests, expected));
    const LevelResult& level = levels.back();
    identical = identical && level.identical;
    tcp_table.add_row({std::to_string(level.connections),
                       std::to_string(level.requests),
                       util::Table::cell(level.rps, 1),
                       util::Table::cell(level.p95_ms, 2),
                       level.identical ? "yes" : "NO"});
  }
  tcp_table.print(std::cout);
  const double speedup_8x =
      levels.front().rps > 0 ? levels.back().rps / levels.front().rps : 0.0;
  std::cout << "(8-connection aggregate speedup "
            << util::Table::cell(speedup_8x, 2)
            << "x over 1 connection; every response byte-identical to the "
               "serial expectation)\n";

  (void)tcp_server.handle(R"({"v": "ftmc.rpc.v1", "method": "shutdown"})");
  tcp_thread.join();

  obs::Json tcp_levels = obs::Json::array();
  for (const LevelResult& level : levels)
    tcp_levels.push(obs::Json::object()
                        .set("connections", level.connections)
                        .set("requests", level.requests)
                        .set("rps", obs::Json::number(level.rps, 1))
                        .set("p95_ms", obs::Json::number(level.p95_ms, 2))
                        .set("identical", level.identical));

  obs::Json summary = obs::Json::object();
  summary.set("bench", "serve")
      .set("hot_requests", hot_requests)
      .set("cold_requests", cold_requests)
      .set("profiles", profiles)
      // CI gates speedup_8x only on hosts with enough cores to show it.
      .set("hardware_concurrency",
           static_cast<std::uint64_t>(std::thread::hardware_concurrency()))
      .set("cold_rps", obs::Json::number(cold_rps, 1))
      .set("hot_rps", obs::Json::number(hot_rps, 1))
      .set("speedup", obs::Json::number(hot_rps / cold_rps, 2))
      .set("telemetry_rps", obs::Json::number(telemetry_rps, 1))
      .set("overhead_pct", obs::Json::number(overhead_pct, 1))
      .set("conc_requests", conc_requests)
      .set("tcp_levels", std::move(tcp_levels))
      .set("speedup_8x", obs::Json::number(speedup_8x, 2))
      .set("identical", identical);
  reporter.finish(summary);
  return identical ? 0 : 1;
}
