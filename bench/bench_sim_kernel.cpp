// A/B measurement of the prepared simulation kernel (ISSUE 3 acceptance
// bench): a Monte-Carlo fault-injection campaign on the DT-large (dream)
// benchmark, same failure profiles in every arm.
//
//   seed               the original path: every profile rebuilds all static
//                      tables and allocates a fresh trace
//                      (ftmc::sim::reference::run, always full trace);
//   prepared kFull     one PreparedSim shared by all profiles, per-worker
//                      scratch, full trace — isolates the prepare-once +
//                      allocation-reuse gain;
//   prepared kResponses  the Monte-Carlo setting: same kernel, no job
//                      records / segments / per-instance responses — adds
//                      the trace-gating gain on top.
//
// Every arm simulates the identical profile set (the monte_carlo_wcrt seed
// formula), hands profiles to workers through an atomic counter, and folds
// per-graph worst / percentiles / miss counts into a checksum, so the
// printed speedups compare bit-identical campaign results (the differential
// guarantee of tests/test_sim_kernel.cpp).
//
// The last line is a one-line JSON summary (like bench_sched_kernel) for CI
// and scripted regression tracking.
//
// Environment knobs: FTMC_MC_PROFILES (default 2000), FTMC_SEED (2014),
// FTMC_THREADS (0 = hardware concurrency), FTMC_REPS (3, median).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <functional>
#include <iostream>
#include <mutex>
#include <vector>

#include "bench_common.hpp"
#include "ftmc/benchmarks/dream.hpp"
#include "ftmc/dse/decoder.hpp"
#include "ftmc/sched/priority.hpp"
#include "ftmc/sim/prepared_sim.hpp"
#include "ftmc/sim/reference_sim.hpp"
#include "ftmc/util/rng.hpp"
#include "ftmc/util/stats.hpp"
#include "ftmc/util/table.hpp"
#include "ftmc/util/thread_pool.hpp"

using namespace ftmc;

namespace {

std::size_t env_or(const char* name, std::size_t fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr) return fallback;
  const long parsed = std::atol(raw);
  return parsed > 0 ? static_cast<std::size_t>(parsed) : fallback;
}

constexpr double kFaultProbability = 0.3;

/// The system under simulation: DT-large with one seeded random candidate.
struct Rig {
  benchmarks::Benchmark benchmark;
  hardening::HardenedSystem system;
  core::DropSet drop;
  std::vector<std::uint32_t> priorities;
};

Rig make_rig(std::uint64_t seed) {
  benchmarks::Benchmark benchmark = benchmarks::dt_large_benchmark();
  const dse::Decoder decoder(benchmark.arch, benchmark.apps);
  util::Rng rng(seed);
  dse::Chromosome chromosome = dse::random_chromosome(decoder.shape(), rng);
  const core::Candidate candidate = decoder.decode(chromosome, rng);
  auto system = hardening::apply_hardening(benchmark.apps, candidate.plan,
                                           candidate.base_mapping,
                                           benchmark.arch.processor_count());
  auto priorities = sched::assign_priorities(system.apps);
  return Rig{std::move(benchmark), std::move(system), candidate.drop,
             std::move(priorities)};
}

struct ArmOutcome {
  double seconds = 0.0;
  std::uint64_t checksum = 0;  ///< FNV-ish fold of the campaign statistics
  std::size_t events = 0;      ///< simulation events processed
};

/// Runs one campaign: `profiles` fault realizations (the monte_carlo_wcrt
/// seed formula) handed out through an atomic counter, aggregated exactly
/// like monte_carlo_wcrt, folded into a checksum.  `simulate` returns the
/// result of one profile given its per-profile RNG streams.
ArmOutcome run_campaign(
    const Rig& rig, std::size_t profiles, std::uint64_t seed,
    util::ThreadPool& pool,
    const std::function<const sim::SimResult&(sim::RandomFaults&,
                                              sim::UniformExecution&)>&
        simulate) {
  const std::size_t graphs = rig.system.apps.graph_count();
  std::vector<std::vector<double>> samples(graphs);
  std::vector<model::Time> worst(graphs, -1);
  std::vector<std::size_t> dropped(graphs, 0);
  std::atomic<std::size_t> miss_count{0};
  std::atomic<std::size_t> events_total{0};
  std::atomic<std::size_t> next_profile{0};
  std::mutex merge_mutex;

  const auto start = std::chrono::steady_clock::now();
  pool.parallel_for(std::max<std::size_t>(pool.thread_count(), 1),
                    [&](std::size_t) {
    std::vector<std::vector<double>> local_samples(graphs);
    std::vector<model::Time> local_worst(graphs, -1);
    std::vector<std::size_t> local_dropped(graphs, 0);
    std::size_t local_miss = 0;
    std::size_t local_events = 0;
    for (;;) {
      const std::size_t profile =
          next_profile.fetch_add(1, std::memory_order_relaxed);
      if (profile >= profiles) break;
      util::Rng base(seed + 0x51ed270b * static_cast<std::uint64_t>(profile));
      sim::RandomFaults faults(base.split(), kFaultProbability);
      sim::UniformExecution durations(base.split());
      const sim::SimResult& result = simulate(faults, durations);
      local_events += result.events;
      if (result.deadline_miss) ++local_miss;
      for (std::size_t g = 0; g < graphs; ++g) {
        const model::Time response = result.graph_response[g];
        if (response < 0) {
          ++local_dropped[g];
          continue;
        }
        local_worst[g] = std::max(local_worst[g], response);
        local_samples[g].push_back(static_cast<double>(response));
      }
    }
    std::lock_guard lock(merge_mutex);
    for (std::size_t g = 0; g < graphs; ++g) {
      worst[g] = std::max(worst[g], local_worst[g]);
      dropped[g] += local_dropped[g];
      samples[g].insert(samples[g].end(), local_samples[g].begin(),
                        local_samples[g].end());
    }
    miss_count += local_miss;
    events_total += local_events;
  });

  ArmOutcome outcome;
  outcome.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  outcome.events = events_total;
  const auto fold = [&outcome](std::uint64_t value) {
    outcome.checksum = (outcome.checksum ^ value) * 0x100000001b3ULL;
  };
  fold(miss_count);
  for (std::size_t g = 0; g < graphs; ++g) {
    std::sort(samples[g].begin(), samples[g].end());
    fold(static_cast<std::uint64_t>(worst[g]));
    fold(dropped[g]);
    fold(samples[g].size());
    if (!samples[g].empty()) {
      fold(static_cast<std::uint64_t>(samples[g].front()));
      fold(static_cast<std::uint64_t>(
          util::percentile_sorted(samples[g], 0.95)));
      fold(static_cast<std::uint64_t>(
          util::percentile_sorted(samples[g], 0.99)));
    }
  }
  return outcome;
}

/// Runs every arm once per round and keeps each arm's fastest round: the
/// arms see the same background load, and the minimum is the standard
/// noise-robust estimator on a shared machine.
std::vector<ArmOutcome> best_of_interleaved(
    std::size_t reps, const std::vector<std::function<ArmOutcome()>>& arms) {
  std::vector<ArmOutcome> best(arms.size());
  for (std::size_t r = 0; r < reps; ++r)
    for (std::size_t a = 0; a < arms.size(); ++a) {
      const ArmOutcome outcome = arms[a]();
      if (r == 0 || outcome.seconds < best[a].seconds) best[a] = outcome;
    }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Reporter reporter(argc, argv);
  const std::size_t profiles = env_or("FTMC_MC_PROFILES", 2000);
  const std::uint64_t seed = env_or("FTMC_SEED", 2014);
  const std::size_t threads = env_or("FTMC_THREADS", 0);
  const std::size_t reps = env_or("FTMC_REPS", 3);

  const Rig rig = make_rig(seed);
  util::ThreadPool pool(threads);
  std::cout << "Simulation-kernel A/B: " << rig.benchmark.name << ", "
            << profiles << " failure profiles, seed " << seed
            << ", interleaved arms, best of " << reps << " rounds, "
            << pool.thread_count()
            << " workers (FTMC_MC_PROFILES / FTMC_SEED / FTMC_THREADS / "
               "FTMC_REPS)\n";

  sim::SimOptions legacy_options;  // full trace, one hyperperiod
  const auto seed_campaign = [&] {
    return run_campaign(
        rig, profiles, seed, pool,
        [&](sim::RandomFaults& faults,
            sim::UniformExecution& durations) -> const sim::SimResult& {
          thread_local sim::SimResult result;
          result = sim::reference::run(rig.benchmark.arch, rig.system,
                                       rig.drop, rig.priorities, faults,
                                       durations, legacy_options);
          return result;
        });
  };
  const auto prepared_campaign = [&](sim::TraceLevel level) {
    return [&rig, profiles, seed, &pool, level] {
      const sim::PreparedSim prepared(rig.benchmark.arch, rig.system,
                                      rig.drop, rig.priorities);
      sim::RunOptions options;
      options.trace = level;
      return run_campaign(
          rig, profiles, seed, pool,
          [&](sim::RandomFaults& faults,
              sim::UniformExecution& durations) -> const sim::SimResult& {
            return prepared.run(faults, durations, options,
                                sim::PreparedSim::thread_scratch());
          });
    };
  };
  const std::vector<ArmOutcome> best = best_of_interleaved(
      reps, {seed_campaign, prepared_campaign(sim::TraceLevel::kFull),
             prepared_campaign(sim::TraceLevel::kResponses)});
  const ArmOutcome& seed_arm = best[0];
  const ArmOutcome& full_arm = best[1];
  const ArmOutcome& responses_arm = best[2];

  const bool identical = seed_arm.checksum == full_arm.checksum &&
                         seed_arm.checksum == responses_arm.checksum &&
                         seed_arm.events == full_arm.events &&
                         seed_arm.events == responses_arm.events;
  const double full_speedup = seed_arm.seconds / full_arm.seconds;
  const double responses_speedup = seed_arm.seconds / responses_arm.seconds;
  const auto events_per_s = [](const ArmOutcome& arm) {
    return static_cast<double>(arm.events) / arm.seconds;
  };

  util::Table table(
      "Monte-Carlo campaign: per-profile rebuild + full trace (seed) vs "
      "prepared kernel");
  table.set_header({"arm", "time [s]", "events/s", "speedup", "identical"});
  table.add_row({"seed (rebuild, full trace)",
                 util::Table::cell(seed_arm.seconds, 3),
                 util::Table::cell(events_per_s(seed_arm) / 1e6, 2) + "M",
                 "1.00x", "-"});
  table.add_row({"prepared, full trace",
                 util::Table::cell(full_arm.seconds, 3),
                 util::Table::cell(events_per_s(full_arm) / 1e6, 2) + "M",
                 util::Table::cell(full_speedup, 2) + "x",
                 seed_arm.checksum == full_arm.checksum ? "yes" : "NO"});
  table.add_row({"prepared, responses only",
                 util::Table::cell(responses_arm.seconds, 3),
                 util::Table::cell(events_per_s(responses_arm) / 1e6, 2) + "M",
                 util::Table::cell(responses_speedup, 2) + "x",
                 seed_arm.checksum == responses_arm.checksum ? "yes" : "NO"});
  table.print(std::cout);
  std::cout << "(same profiles and per-profile seeds in every arm; "
               "'identical' cross-checks worst / p95 / p99 / miss / dropped "
               "counts and the processed-event total.)\n";

  obs::Json summary = obs::Json::object();
  summary.set("bench", "sim_kernel")
      .set("benchmark", rig.benchmark.name)
      .set("profiles", profiles)
      .set("reps", reps)
      .set("threads", pool.thread_count())
      .set("events", seed_arm.events)
      .set("seed_s", obs::Json::number(seed_arm.seconds, 4))
      .set("prepared_full_s", obs::Json::number(full_arm.seconds, 4))
      .set("prepared_responses_s",
           obs::Json::number(responses_arm.seconds, 4))
      .set("full_speedup", obs::Json::number(full_speedup, 2))
      .set("responses_speedup", obs::Json::number(responses_speedup, 2))
      .set("responses_events_per_s",
           obs::Json::number(events_per_s(responses_arm), 0))
      .set("identical", identical);
  reporter.finish(summary);
  return identical ? 0 : 1;
}
