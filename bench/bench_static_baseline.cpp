// Compares the paper's static hardening-mapping / DYNAMIC scheduling flow
// against the static contingency-schedule baseline of prior work ([2], [3]
// in Table 1) on the same hardened designs.
//
// The paper's Section 1 argument, made measurable:
//   "At compile time, a static schedule should be synthesized for each
//    possible fault scenario.  For instance, in [2], 19 different schedules
//    had to be pre-calculated at compile time for an application with five
//    tasks.  The static scheduling may simplify the optimization complexity
//    but it is inefficient in terms of resource usage, and too rigid to be
//    reactive to dynamic system mode changes."
//
// For each benchmark's Table-2-style hardened design we report: the number
// of contingency schedule tables (and their total entries) the static
// runtime must store as the tolerated-fault budget grows, whether the
// static tables meet all deadlines (they cannot drop anything), and the
// dynamic-flow verdict (Algorithm 1, with dropping) on the same design.
#include <iostream>

#include "bench_common.hpp"
#include "ftmc/baseline/static_schedule.hpp"
#include "ftmc/benchmarks/cruise.hpp"
#include "ftmc/core/mc_analysis.hpp"
#include "ftmc/sched/holistic.hpp"
#include "ftmc/sched/priority.hpp"
#include "ftmc/util/table.hpp"

using namespace ftmc;

int main(int argc, char** argv) {
  const bench::Reporter reporter(argc, argv);
  const auto cruise = benchmarks::cruise_benchmark();
  const auto configs = benchmarks::cruise_sample_configs(cruise);
  const sched::HolisticAnalysis backend;
  const core::McAnalysis analysis(backend);

  util::Table table(
      "Static contingency scheduling ([2]-style) vs the paper's dynamic "
      "flow\n(Cruise benchmark, the three Table-2 sample designs)");
  table.set_header({"Design", "fault budget", "schedules", "table entries",
                    "static deadlines", "dynamic verdict (w/ dropping)"});

  obs::Json rows = obs::Json::array();
  for (const auto& config : configs) {
    const auto system = hardening::apply_hardening(
        cruise.apps, config.candidate.plan, config.candidate.base_mapping,
        cruise.arch.processor_count());
    const auto priorities = sched::assign_priorities(system.apps);

    const auto verdict =
        analysis.analyze(cruise.arch, system, config.candidate.drop);
    const std::string dynamic = verdict.schedulable()
                                    ? "schedulable"
                                    : "not schedulable";

    for (const int budget : {1, 2}) {
      const auto contingency = baseline::contingency_analysis(
          cruise.arch, system, budget, priorities);
      table.add_row(
          {config.name, std::to_string(budget),
           util::Table::cell(contingency.schedule_count),
           util::Table::cell(contingency.table_entries),
           contingency.all_deadlines_met ? "met" : "MISSED",
           dynamic});
      rows.push(obs::Json::object()
                    .set("design", config.name)
                    .set("fault_budget", budget)
                    .set("schedules", contingency.schedule_count)
                    .set("table_entries", contingency.table_entries)
                    .set("static_deadlines_met",
                         contingency.all_deadlines_met)
                    .set("dynamic_schedulable", verdict.schedulable()));
    }
  }
  table.print(std::cout);
  std::cout <<
      "\nReading: one fault already needs a table per hardened job, two\n"
      "faults square that — the \"19 schedules for 5 tasks\" blow-up of\n"
      "[2].  The dynamic flow stores no tables and stays schedulable by\n"
      "dropping low-criticality load exactly in the scenarios where the\n"
      "rigid static tables overrun deadlines.\n";
  obs::Json summary = obs::Json::object();
  summary.set("bench", "static_baseline").set("designs", std::move(rows));
  reporter.finish(summary);
  return 0;
}
