// Reproduces Table 2: WCRT [ms] of the two critical applications of the
// Cruise benchmark, for three sample mappings, under four estimators:
//
//   Adhoc     an artificial worst-case trace (all faults at time zero) —
//             looks plausible but is NOT safe,
//   WC-Sim    Monte-Carlo maximum over random failure profiles (paper:
//             10,000) — a lower bound on the true WCRT,
//   Proposed  Algorithm 1 — safe and chronology-aware,
//   Naive     zero-bcet single-pass bound — safe but pessimistic.
//
// Expected shape (paper, Section 5.1): Proposed >= max(Adhoc, WC-Sim) and
// Naive >= Proposed on every mapping; Adhoc < WC-Sim on at least some
// mappings (simulation beats the ad-hoc trace, so neither is safe).
//
// Environment knobs: FTMC_MC_PROFILES (default 10000).
#include <array>
#include <cstdlib>
#include <iostream>

#include "bench_common.hpp"
#include "ftmc/benchmarks/cruise.hpp"
#include "ftmc/core/mc_analysis.hpp"
#include "ftmc/sched/holistic.hpp"
#include "ftmc/sim/adhoc.hpp"
#include "ftmc/sim/monte_carlo.hpp"
#include "ftmc/util/table.hpp"

using namespace ftmc;

namespace {

std::size_t env_or(const char* name, std::size_t fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr) return fallback;
  const long parsed = std::atol(raw);
  return parsed > 0 ? static_cast<std::size_t>(parsed) : fallback;
}

std::string ms(model::Time t) {
  if (t < 0) return "-";
  if (t >= sched::kUnschedulable) return "unsched";
  return util::Table::cell(model::to_milliseconds(t), 0);
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Reporter reporter(argc, argv);
  const auto cruise = benchmarks::cruise_benchmark();
  const auto configs = benchmarks::cruise_sample_configs(cruise);
  const std::size_t profiles = env_or("FTMC_MC_PROFILES", 10'000);

  const sched::HolisticAnalysis backend;
  const core::McAnalysis analysis(backend);

  util::Table table(
      "Table 2: WCRT [ms] of the two critical applications (speed_ctrl, "
      "brake_mon) of Cruise\n(WC-Sim over " +
      std::to_string(profiles) + " failure profiles)");
  table.set_header({"Estimator", "Mapping 1", "", "Mapping 2", "",
                    "Mapping 3", ""});

  std::vector<std::array<model::Time, 2>> adhoc_rows, sim_rows, proposed_rows,
      naive_rows;

  for (const auto& config : configs) {
    const auto system = hardening::apply_hardening(
        cruise.apps, config.candidate.plan, config.candidate.base_mapping,
        cruise.arch.processor_count());
    const auto priorities = sched::assign_priorities(system.apps);
    const model::GraphId speed = system.apps.find_graph("speed_ctrl");
    const model::GraphId brake = system.apps.find_graph("brake_mon");

    const auto adhoc = sim::adhoc_wcrt(cruise.arch, system,
                                       config.candidate.drop, priorities);
    adhoc_rows.push_back({adhoc[speed.value], adhoc[brake.value]});

    // The search sweeps several fault densities: sparse profiles explore
    // normal/critical interleavings, dense ones the all-faults regime whose
    // perturbations surface the scheduling anomalies that make the Adhoc
    // estimate unsafe.
    std::array<model::Time, 2> worst{-1, -1};
    for (const double fault_probability : {0.3, 0.5, 0.7, 0.9}) {
      sim::MonteCarloOptions mc;
      mc.profiles = profiles / 4;
      mc.seed = 2014;
      mc.fault_probability = fault_probability;
      const auto wc_sim = sim::monte_carlo_wcrt(
          cruise.arch, system, config.candidate.drop, priorities, mc);
      worst[0] = std::max(worst[0], wc_sim.worst_response[speed.value]);
      worst[1] = std::max(worst[1], wc_sim.worst_response[brake.value]);
    }
    sim_rows.push_back(worst);

    const auto proposed =
        analysis.analyze(cruise.arch, system, config.candidate.drop,
                         core::McAnalysis::Mode::kProposed);
    proposed_rows.push_back({proposed.graph_wcrt(system.apps, speed),
                             proposed.graph_wcrt(system.apps, brake)});

    const auto naive =
        analysis.analyze(cruise.arch, system, config.candidate.drop,
                         core::McAnalysis::Mode::kNaive);
    naive_rows.push_back({naive.graph_wcrt(system.apps, speed),
                          naive.graph_wcrt(system.apps, brake)});
  }

  auto add_row = [&](const char* name,
                     const std::vector<std::array<model::Time, 2>>& rows) {
    table.add_row({name, ms(rows[0][0]), ms(rows[0][1]), ms(rows[1][0]),
                   ms(rows[1][1]), ms(rows[2][0]), ms(rows[2][1])});
  };
  add_row("Adhoc", adhoc_rows);
  add_row("WC-Sim", sim_rows);
  add_row("Proposed", proposed_rows);
  add_row("Naive", naive_rows);
  table.print(std::cout);

  // Shape checks mirroring the paper's discussion.
  bool safe = true, naive_pessimistic = true, adhoc_beaten = false;
  for (std::size_t m = 0; m < 3; ++m) {
    for (std::size_t g = 0; g < 2; ++g) {
      safe &= proposed_rows[m][g] >= adhoc_rows[m][g];
      safe &= proposed_rows[m][g] >= sim_rows[m][g];
      naive_pessimistic &= naive_rows[m][g] >= proposed_rows[m][g];
      adhoc_beaten |= sim_rows[m][g] > adhoc_rows[m][g];
    }
  }
  std::cout << "\nProposed upper-bounds Adhoc and WC-Sim everywhere: "
            << (safe ? "yes" : "NO — SAFETY VIOLATION") << '\n'
            << "Naive >= Proposed everywhere:                      "
            << (naive_pessimistic ? "yes" : "NO") << '\n'
            << "WC-Sim exceeds Adhoc somewhere (Adhoc unsafe):     "
            << (adhoc_beaten ? "yes" : "no (needs more profiles)") << '\n';
  obs::Json summary = obs::Json::object();
  summary.set("bench", "table2")
      .set("profiles", profiles)
      .set("safe", safe)
      .set("naive_pessimistic", naive_pessimistic)
      .set("adhoc_beaten", adhoc_beaten);
  reporter.finish(summary);
  return safe && naive_pessimistic ? 0 : 1;
}
