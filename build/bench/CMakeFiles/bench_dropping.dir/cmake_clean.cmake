file(REMOVE_RECURSE
  "CMakeFiles/bench_dropping.dir/bench_dropping.cpp.o"
  "CMakeFiles/bench_dropping.dir/bench_dropping.cpp.o.d"
  "bench_dropping"
  "bench_dropping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dropping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
