# Empty dependencies file for bench_dropping.
# This may be replaced when dependencies are built.
