file(REMOVE_RECURSE
  "CMakeFiles/bench_hardening_ablation.dir/bench_hardening_ablation.cpp.o"
  "CMakeFiles/bench_hardening_ablation.dir/bench_hardening_ablation.cpp.o.d"
  "bench_hardening_ablation"
  "bench_hardening_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hardening_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
