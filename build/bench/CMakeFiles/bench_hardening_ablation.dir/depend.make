# Empty dependencies file for bench_hardening_ablation.
# This may be replaced when dependencies are built.
