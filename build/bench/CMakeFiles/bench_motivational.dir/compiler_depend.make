# Empty compiler generated dependencies file for bench_motivational.
# This may be replaced when dependencies are built.
