# Empty dependencies file for bench_static_baseline.
# This may be replaced when dependencies are built.
