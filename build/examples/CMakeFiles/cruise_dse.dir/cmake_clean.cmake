file(REMOVE_RECURSE
  "CMakeFiles/cruise_dse.dir/cruise_dse.cpp.o"
  "CMakeFiles/cruise_dse.dir/cruise_dse.cpp.o.d"
  "cruise_dse"
  "cruise_dse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cruise_dse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
