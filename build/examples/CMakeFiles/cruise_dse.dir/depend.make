# Empty dependencies file for cruise_dse.
# This may be replaced when dependencies are built.
