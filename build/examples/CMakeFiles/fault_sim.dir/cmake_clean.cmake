file(REMOVE_RECURSE
  "CMakeFiles/fault_sim.dir/fault_sim.cpp.o"
  "CMakeFiles/fault_sim.dir/fault_sim.cpp.o.d"
  "fault_sim"
  "fault_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fault_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
