# Empty dependencies file for fault_sim.
# This may be replaced when dependencies are built.
