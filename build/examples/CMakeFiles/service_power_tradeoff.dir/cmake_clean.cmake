file(REMOVE_RECURSE
  "CMakeFiles/service_power_tradeoff.dir/service_power_tradeoff.cpp.o"
  "CMakeFiles/service_power_tradeoff.dir/service_power_tradeoff.cpp.o.d"
  "service_power_tradeoff"
  "service_power_tradeoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/service_power_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
