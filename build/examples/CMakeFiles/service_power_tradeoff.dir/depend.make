# Empty dependencies file for service_power_tradeoff.
# This may be replaced when dependencies are built.
