file(REMOVE_RECURSE
  "CMakeFiles/ftmc_baseline.dir/static_schedule.cpp.o"
  "CMakeFiles/ftmc_baseline.dir/static_schedule.cpp.o.d"
  "libftmc_baseline.a"
  "libftmc_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftmc_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
