file(REMOVE_RECURSE
  "libftmc_baseline.a"
)
