# Empty dependencies file for ftmc_baseline.
# This may be replaced when dependencies are built.
