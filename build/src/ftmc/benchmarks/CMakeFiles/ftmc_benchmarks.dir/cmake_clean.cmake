file(REMOVE_RECURSE
  "CMakeFiles/ftmc_benchmarks.dir/cruise.cpp.o"
  "CMakeFiles/ftmc_benchmarks.dir/cruise.cpp.o.d"
  "CMakeFiles/ftmc_benchmarks.dir/dream.cpp.o"
  "CMakeFiles/ftmc_benchmarks.dir/dream.cpp.o.d"
  "CMakeFiles/ftmc_benchmarks.dir/platforms.cpp.o"
  "CMakeFiles/ftmc_benchmarks.dir/platforms.cpp.o.d"
  "CMakeFiles/ftmc_benchmarks.dir/synth.cpp.o"
  "CMakeFiles/ftmc_benchmarks.dir/synth.cpp.o.d"
  "libftmc_benchmarks.a"
  "libftmc_benchmarks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftmc_benchmarks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
