file(REMOVE_RECURSE
  "libftmc_benchmarks.a"
)
