# Empty compiler generated dependencies file for ftmc_benchmarks.
# This may be replaced when dependencies are built.
