file(REMOVE_RECURSE
  "CMakeFiles/ftmc_core.dir/evaluator.cpp.o"
  "CMakeFiles/ftmc_core.dir/evaluator.cpp.o.d"
  "CMakeFiles/ftmc_core.dir/exec_model.cpp.o"
  "CMakeFiles/ftmc_core.dir/exec_model.cpp.o.d"
  "CMakeFiles/ftmc_core.dir/mc_analysis.cpp.o"
  "CMakeFiles/ftmc_core.dir/mc_analysis.cpp.o.d"
  "CMakeFiles/ftmc_core.dir/objectives.cpp.o"
  "CMakeFiles/ftmc_core.dir/objectives.cpp.o.d"
  "libftmc_core.a"
  "libftmc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftmc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
