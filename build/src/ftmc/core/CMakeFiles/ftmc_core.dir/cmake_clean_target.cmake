file(REMOVE_RECURSE
  "libftmc_core.a"
)
