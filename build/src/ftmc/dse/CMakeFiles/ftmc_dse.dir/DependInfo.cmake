
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ftmc/dse/chromosome.cpp" "src/ftmc/dse/CMakeFiles/ftmc_dse.dir/chromosome.cpp.o" "gcc" "src/ftmc/dse/CMakeFiles/ftmc_dse.dir/chromosome.cpp.o.d"
  "/root/repo/src/ftmc/dse/decoder.cpp" "src/ftmc/dse/CMakeFiles/ftmc_dse.dir/decoder.cpp.o" "gcc" "src/ftmc/dse/CMakeFiles/ftmc_dse.dir/decoder.cpp.o.d"
  "/root/repo/src/ftmc/dse/ga.cpp" "src/ftmc/dse/CMakeFiles/ftmc_dse.dir/ga.cpp.o" "gcc" "src/ftmc/dse/CMakeFiles/ftmc_dse.dir/ga.cpp.o.d"
  "/root/repo/src/ftmc/dse/spea2.cpp" "src/ftmc/dse/CMakeFiles/ftmc_dse.dir/spea2.cpp.o" "gcc" "src/ftmc/dse/CMakeFiles/ftmc_dse.dir/spea2.cpp.o.d"
  "/root/repo/src/ftmc/dse/variation.cpp" "src/ftmc/dse/CMakeFiles/ftmc_dse.dir/variation.cpp.o" "gcc" "src/ftmc/dse/CMakeFiles/ftmc_dse.dir/variation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ftmc/core/CMakeFiles/ftmc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/ftmc/util/CMakeFiles/ftmc_util.dir/DependInfo.cmake"
  "/root/repo/build/src/ftmc/sched/CMakeFiles/ftmc_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/ftmc/hardening/CMakeFiles/ftmc_hardening.dir/DependInfo.cmake"
  "/root/repo/build/src/ftmc/model/CMakeFiles/ftmc_model.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
