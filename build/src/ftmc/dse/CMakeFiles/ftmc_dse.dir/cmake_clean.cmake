file(REMOVE_RECURSE
  "CMakeFiles/ftmc_dse.dir/chromosome.cpp.o"
  "CMakeFiles/ftmc_dse.dir/chromosome.cpp.o.d"
  "CMakeFiles/ftmc_dse.dir/decoder.cpp.o"
  "CMakeFiles/ftmc_dse.dir/decoder.cpp.o.d"
  "CMakeFiles/ftmc_dse.dir/ga.cpp.o"
  "CMakeFiles/ftmc_dse.dir/ga.cpp.o.d"
  "CMakeFiles/ftmc_dse.dir/spea2.cpp.o"
  "CMakeFiles/ftmc_dse.dir/spea2.cpp.o.d"
  "CMakeFiles/ftmc_dse.dir/variation.cpp.o"
  "CMakeFiles/ftmc_dse.dir/variation.cpp.o.d"
  "libftmc_dse.a"
  "libftmc_dse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftmc_dse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
