file(REMOVE_RECURSE
  "libftmc_dse.a"
)
