# Empty dependencies file for ftmc_dse.
# This may be replaced when dependencies are built.
