
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ftmc/hardening/reliability.cpp" "src/ftmc/hardening/CMakeFiles/ftmc_hardening.dir/reliability.cpp.o" "gcc" "src/ftmc/hardening/CMakeFiles/ftmc_hardening.dir/reliability.cpp.o.d"
  "/root/repo/src/ftmc/hardening/transform.cpp" "src/ftmc/hardening/CMakeFiles/ftmc_hardening.dir/transform.cpp.o" "gcc" "src/ftmc/hardening/CMakeFiles/ftmc_hardening.dir/transform.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ftmc/model/CMakeFiles/ftmc_model.dir/DependInfo.cmake"
  "/root/repo/build/src/ftmc/util/CMakeFiles/ftmc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
