file(REMOVE_RECURSE
  "CMakeFiles/ftmc_hardening.dir/reliability.cpp.o"
  "CMakeFiles/ftmc_hardening.dir/reliability.cpp.o.d"
  "CMakeFiles/ftmc_hardening.dir/transform.cpp.o"
  "CMakeFiles/ftmc_hardening.dir/transform.cpp.o.d"
  "libftmc_hardening.a"
  "libftmc_hardening.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftmc_hardening.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
