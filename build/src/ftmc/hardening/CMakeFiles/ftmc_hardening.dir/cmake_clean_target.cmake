file(REMOVE_RECURSE
  "libftmc_hardening.a"
)
