# Empty dependencies file for ftmc_hardening.
# This may be replaced when dependencies are built.
