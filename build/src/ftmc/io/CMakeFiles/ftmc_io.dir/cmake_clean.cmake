file(REMOVE_RECURSE
  "CMakeFiles/ftmc_io.dir/dot_export.cpp.o"
  "CMakeFiles/ftmc_io.dir/dot_export.cpp.o.d"
  "CMakeFiles/ftmc_io.dir/text_format.cpp.o"
  "CMakeFiles/ftmc_io.dir/text_format.cpp.o.d"
  "libftmc_io.a"
  "libftmc_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftmc_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
