# Empty compiler generated dependencies file for ftmc_io.
# This may be replaced when dependencies are built.
