
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ftmc/model/application_set.cpp" "src/ftmc/model/CMakeFiles/ftmc_model.dir/application_set.cpp.o" "gcc" "src/ftmc/model/CMakeFiles/ftmc_model.dir/application_set.cpp.o.d"
  "/root/repo/src/ftmc/model/architecture.cpp" "src/ftmc/model/CMakeFiles/ftmc_model.dir/architecture.cpp.o" "gcc" "src/ftmc/model/CMakeFiles/ftmc_model.dir/architecture.cpp.o.d"
  "/root/repo/src/ftmc/model/mapping.cpp" "src/ftmc/model/CMakeFiles/ftmc_model.dir/mapping.cpp.o" "gcc" "src/ftmc/model/CMakeFiles/ftmc_model.dir/mapping.cpp.o.d"
  "/root/repo/src/ftmc/model/task_graph.cpp" "src/ftmc/model/CMakeFiles/ftmc_model.dir/task_graph.cpp.o" "gcc" "src/ftmc/model/CMakeFiles/ftmc_model.dir/task_graph.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ftmc/util/CMakeFiles/ftmc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
