file(REMOVE_RECURSE
  "CMakeFiles/ftmc_model.dir/application_set.cpp.o"
  "CMakeFiles/ftmc_model.dir/application_set.cpp.o.d"
  "CMakeFiles/ftmc_model.dir/architecture.cpp.o"
  "CMakeFiles/ftmc_model.dir/architecture.cpp.o.d"
  "CMakeFiles/ftmc_model.dir/mapping.cpp.o"
  "CMakeFiles/ftmc_model.dir/mapping.cpp.o.d"
  "CMakeFiles/ftmc_model.dir/task_graph.cpp.o"
  "CMakeFiles/ftmc_model.dir/task_graph.cpp.o.d"
  "libftmc_model.a"
  "libftmc_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftmc_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
