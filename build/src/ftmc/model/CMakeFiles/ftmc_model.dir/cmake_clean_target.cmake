file(REMOVE_RECURSE
  "libftmc_model.a"
)
