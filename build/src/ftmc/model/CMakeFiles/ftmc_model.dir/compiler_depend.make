# Empty compiler generated dependencies file for ftmc_model.
# This may be replaced when dependencies are built.
