file(REMOVE_RECURSE
  "CMakeFiles/ftmc_sched.dir/analysis.cpp.o"
  "CMakeFiles/ftmc_sched.dir/analysis.cpp.o.d"
  "CMakeFiles/ftmc_sched.dir/holistic.cpp.o"
  "CMakeFiles/ftmc_sched.dir/holistic.cpp.o.d"
  "CMakeFiles/ftmc_sched.dir/priority.cpp.o"
  "CMakeFiles/ftmc_sched.dir/priority.cpp.o.d"
  "libftmc_sched.a"
  "libftmc_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftmc_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
