file(REMOVE_RECURSE
  "libftmc_sched.a"
)
