# Empty compiler generated dependencies file for ftmc_sched.
# This may be replaced when dependencies are built.
