
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ftmc/sim/adhoc.cpp" "src/ftmc/sim/CMakeFiles/ftmc_sim.dir/adhoc.cpp.o" "gcc" "src/ftmc/sim/CMakeFiles/ftmc_sim.dir/adhoc.cpp.o.d"
  "/root/repo/src/ftmc/sim/monte_carlo.cpp" "src/ftmc/sim/CMakeFiles/ftmc_sim.dir/monte_carlo.cpp.o" "gcc" "src/ftmc/sim/CMakeFiles/ftmc_sim.dir/monte_carlo.cpp.o.d"
  "/root/repo/src/ftmc/sim/simulator.cpp" "src/ftmc/sim/CMakeFiles/ftmc_sim.dir/simulator.cpp.o" "gcc" "src/ftmc/sim/CMakeFiles/ftmc_sim.dir/simulator.cpp.o.d"
  "/root/repo/src/ftmc/sim/trace.cpp" "src/ftmc/sim/CMakeFiles/ftmc_sim.dir/trace.cpp.o" "gcc" "src/ftmc/sim/CMakeFiles/ftmc_sim.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ftmc/model/CMakeFiles/ftmc_model.dir/DependInfo.cmake"
  "/root/repo/build/src/ftmc/hardening/CMakeFiles/ftmc_hardening.dir/DependInfo.cmake"
  "/root/repo/build/src/ftmc/core/CMakeFiles/ftmc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/ftmc/util/CMakeFiles/ftmc_util.dir/DependInfo.cmake"
  "/root/repo/build/src/ftmc/sched/CMakeFiles/ftmc_sched.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
