file(REMOVE_RECURSE
  "CMakeFiles/ftmc_sim.dir/adhoc.cpp.o"
  "CMakeFiles/ftmc_sim.dir/adhoc.cpp.o.d"
  "CMakeFiles/ftmc_sim.dir/monte_carlo.cpp.o"
  "CMakeFiles/ftmc_sim.dir/monte_carlo.cpp.o.d"
  "CMakeFiles/ftmc_sim.dir/simulator.cpp.o"
  "CMakeFiles/ftmc_sim.dir/simulator.cpp.o.d"
  "CMakeFiles/ftmc_sim.dir/trace.cpp.o"
  "CMakeFiles/ftmc_sim.dir/trace.cpp.o.d"
  "libftmc_sim.a"
  "libftmc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftmc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
