
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ftmc/util/log.cpp" "src/ftmc/util/CMakeFiles/ftmc_util.dir/log.cpp.o" "gcc" "src/ftmc/util/CMakeFiles/ftmc_util.dir/log.cpp.o.d"
  "/root/repo/src/ftmc/util/rng.cpp" "src/ftmc/util/CMakeFiles/ftmc_util.dir/rng.cpp.o" "gcc" "src/ftmc/util/CMakeFiles/ftmc_util.dir/rng.cpp.o.d"
  "/root/repo/src/ftmc/util/stats.cpp" "src/ftmc/util/CMakeFiles/ftmc_util.dir/stats.cpp.o" "gcc" "src/ftmc/util/CMakeFiles/ftmc_util.dir/stats.cpp.o.d"
  "/root/repo/src/ftmc/util/table.cpp" "src/ftmc/util/CMakeFiles/ftmc_util.dir/table.cpp.o" "gcc" "src/ftmc/util/CMakeFiles/ftmc_util.dir/table.cpp.o.d"
  "/root/repo/src/ftmc/util/thread_pool.cpp" "src/ftmc/util/CMakeFiles/ftmc_util.dir/thread_pool.cpp.o" "gcc" "src/ftmc/util/CMakeFiles/ftmc_util.dir/thread_pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
