file(REMOVE_RECURSE
  "CMakeFiles/ftmc_util.dir/log.cpp.o"
  "CMakeFiles/ftmc_util.dir/log.cpp.o.d"
  "CMakeFiles/ftmc_util.dir/rng.cpp.o"
  "CMakeFiles/ftmc_util.dir/rng.cpp.o.d"
  "CMakeFiles/ftmc_util.dir/stats.cpp.o"
  "CMakeFiles/ftmc_util.dir/stats.cpp.o.d"
  "CMakeFiles/ftmc_util.dir/table.cpp.o"
  "CMakeFiles/ftmc_util.dir/table.cpp.o.d"
  "CMakeFiles/ftmc_util.dir/thread_pool.cpp.o"
  "CMakeFiles/ftmc_util.dir/thread_pool.cpp.o.d"
  "libftmc_util.a"
  "libftmc_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftmc_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
