file(REMOVE_RECURSE
  "libftmc_util.a"
)
