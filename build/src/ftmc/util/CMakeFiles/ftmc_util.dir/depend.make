# Empty dependencies file for ftmc_util.
# This may be replaced when dependencies are built.
