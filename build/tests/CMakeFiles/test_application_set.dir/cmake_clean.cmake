file(REMOVE_RECURSE
  "CMakeFiles/test_application_set.dir/test_application_set.cpp.o"
  "CMakeFiles/test_application_set.dir/test_application_set.cpp.o.d"
  "test_application_set"
  "test_application_set.pdb"
  "test_application_set[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_application_set.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
