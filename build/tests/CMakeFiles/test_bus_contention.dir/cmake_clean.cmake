file(REMOVE_RECURSE
  "CMakeFiles/test_bus_contention.dir/test_bus_contention.cpp.o"
  "CMakeFiles/test_bus_contention.dir/test_bus_contention.cpp.o.d"
  "test_bus_contention"
  "test_bus_contention.pdb"
  "test_bus_contention[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bus_contention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
