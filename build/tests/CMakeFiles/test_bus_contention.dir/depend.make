# Empty dependencies file for test_bus_contention.
# This may be replaced when dependencies are built.
