# Empty compiler generated dependencies file for test_exec_model.
# This may be replaced when dependencies are built.
