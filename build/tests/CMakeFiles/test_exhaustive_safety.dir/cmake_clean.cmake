file(REMOVE_RECURSE
  "CMakeFiles/test_exhaustive_safety.dir/test_exhaustive_safety.cpp.o"
  "CMakeFiles/test_exhaustive_safety.dir/test_exhaustive_safety.cpp.o.d"
  "test_exhaustive_safety"
  "test_exhaustive_safety.pdb"
  "test_exhaustive_safety[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_exhaustive_safety.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
