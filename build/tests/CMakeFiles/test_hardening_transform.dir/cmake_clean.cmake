file(REMOVE_RECURSE
  "CMakeFiles/test_hardening_transform.dir/test_hardening_transform.cpp.o"
  "CMakeFiles/test_hardening_transform.dir/test_hardening_transform.cpp.o.d"
  "test_hardening_transform"
  "test_hardening_transform.pdb"
  "test_hardening_transform[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hardening_transform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
