# Empty dependencies file for test_hardening_transform.
# This may be replaced when dependencies are built.
