file(REMOVE_RECURSE
  "CMakeFiles/test_holistic.dir/test_holistic.cpp.o"
  "CMakeFiles/test_holistic.dir/test_holistic.cpp.o.d"
  "test_holistic"
  "test_holistic.pdb"
  "test_holistic[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_holistic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
