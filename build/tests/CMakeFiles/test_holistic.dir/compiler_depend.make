# Empty compiler generated dependencies file for test_holistic.
# This may be replaced when dependencies are built.
