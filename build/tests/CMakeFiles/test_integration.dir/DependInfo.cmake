
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_integration.cpp" "tests/CMakeFiles/test_integration.dir/test_integration.cpp.o" "gcc" "tests/CMakeFiles/test_integration.dir/test_integration.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ftmc/baseline/CMakeFiles/ftmc_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/ftmc/io/CMakeFiles/ftmc_io.dir/DependInfo.cmake"
  "/root/repo/build/src/ftmc/dse/CMakeFiles/ftmc_dse.dir/DependInfo.cmake"
  "/root/repo/build/src/ftmc/sim/CMakeFiles/ftmc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/ftmc/benchmarks/CMakeFiles/ftmc_benchmarks.dir/DependInfo.cmake"
  "/root/repo/build/src/ftmc/core/CMakeFiles/ftmc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/ftmc/sched/CMakeFiles/ftmc_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/ftmc/hardening/CMakeFiles/ftmc_hardening.dir/DependInfo.cmake"
  "/root/repo/build/src/ftmc/model/CMakeFiles/ftmc_model.dir/DependInfo.cmake"
  "/root/repo/build/src/ftmc/util/CMakeFiles/ftmc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
