file(REMOVE_RECURSE
  "CMakeFiles/test_mc_analysis.dir/test_mc_analysis.cpp.o"
  "CMakeFiles/test_mc_analysis.dir/test_mc_analysis.cpp.o.d"
  "test_mc_analysis"
  "test_mc_analysis.pdb"
  "test_mc_analysis[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mc_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
