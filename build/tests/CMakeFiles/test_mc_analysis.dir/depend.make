# Empty dependencies file for test_mc_analysis.
# This may be replaced when dependencies are built.
