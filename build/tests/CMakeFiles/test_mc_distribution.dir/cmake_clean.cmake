file(REMOVE_RECURSE
  "CMakeFiles/test_mc_distribution.dir/test_mc_distribution.cpp.o"
  "CMakeFiles/test_mc_distribution.dir/test_mc_distribution.cpp.o.d"
  "test_mc_distribution"
  "test_mc_distribution.pdb"
  "test_mc_distribution[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mc_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
