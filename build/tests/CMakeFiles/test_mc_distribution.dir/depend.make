# Empty dependencies file for test_mc_distribution.
# This may be replaced when dependencies are built.
