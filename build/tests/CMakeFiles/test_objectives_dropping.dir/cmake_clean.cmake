file(REMOVE_RECURSE
  "CMakeFiles/test_objectives_dropping.dir/test_objectives_dropping.cpp.o"
  "CMakeFiles/test_objectives_dropping.dir/test_objectives_dropping.cpp.o.d"
  "test_objectives_dropping"
  "test_objectives_dropping.pdb"
  "test_objectives_dropping[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_objectives_dropping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
