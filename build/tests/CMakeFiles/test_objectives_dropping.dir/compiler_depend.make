# Empty compiler generated dependencies file for test_objectives_dropping.
# This may be replaced when dependencies are built.
