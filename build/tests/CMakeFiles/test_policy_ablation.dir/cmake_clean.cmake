file(REMOVE_RECURSE
  "CMakeFiles/test_policy_ablation.dir/test_policy_ablation.cpp.o"
  "CMakeFiles/test_policy_ablation.dir/test_policy_ablation.cpp.o.d"
  "test_policy_ablation"
  "test_policy_ablation.pdb"
  "test_policy_ablation[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_policy_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
