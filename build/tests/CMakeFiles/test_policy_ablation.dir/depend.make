# Empty dependencies file for test_policy_ablation.
# This may be replaced when dependencies are built.
