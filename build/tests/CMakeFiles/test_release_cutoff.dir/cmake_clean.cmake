file(REMOVE_RECURSE
  "CMakeFiles/test_release_cutoff.dir/test_release_cutoff.cpp.o"
  "CMakeFiles/test_release_cutoff.dir/test_release_cutoff.cpp.o.d"
  "test_release_cutoff"
  "test_release_cutoff.pdb"
  "test_release_cutoff[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_release_cutoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
