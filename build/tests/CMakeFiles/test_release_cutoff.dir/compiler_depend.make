# Empty compiler generated dependencies file for test_release_cutoff.
# This may be replaced when dependencies are built.
