file(REMOVE_RECURSE
  "CMakeFiles/test_safety_property.dir/test_safety_property.cpp.o"
  "CMakeFiles/test_safety_property.dir/test_safety_property.cpp.o.d"
  "test_safety_property"
  "test_safety_property.pdb"
  "test_safety_property[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_safety_property.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
