# Empty dependencies file for test_safety_property.
# This may be replaced when dependencies are built.
