file(REMOVE_RECURSE
  "CMakeFiles/test_static_baseline.dir/test_static_baseline.cpp.o"
  "CMakeFiles/test_static_baseline.dir/test_static_baseline.cpp.o.d"
  "test_static_baseline"
  "test_static_baseline.pdb"
  "test_static_baseline[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_static_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
