# Empty compiler generated dependencies file for test_static_baseline.
# This may be replaced when dependencies are built.
