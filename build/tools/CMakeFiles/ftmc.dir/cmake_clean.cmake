file(REMOVE_RECURSE
  "CMakeFiles/ftmc.dir/ftmc_cli.cpp.o"
  "CMakeFiles/ftmc.dir/ftmc_cli.cpp.o.d"
  "ftmc"
  "ftmc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftmc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
