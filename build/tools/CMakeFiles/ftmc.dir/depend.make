# Empty dependencies file for ftmc.
# This may be replaced when dependencies are built.
