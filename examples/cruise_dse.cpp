// Full design-space exploration on the Cruise benchmark: optimize the
// hardening, mapping, and drop-set of a 5-application automotive system for
// expected power, then print the chosen design in human-readable form.
//
//   $ ./examples/cruise_dse [generations] [population]
#include <cstdlib>
#include <iostream>

#include "ftmc/benchmarks/cruise.hpp"
#include "ftmc/dse/ga.hpp"
#include "ftmc/sched/holistic.hpp"
#include "ftmc/util/table.hpp"

using namespace ftmc;

int main(int argc, char** argv) {
  const auto bench = benchmarks::cruise_benchmark();
  const sched::HolisticAnalysis backend;
  dse::GeneticOptimizer optimizer(bench.arch, bench.apps, backend);

  dse::GaOptions options;
  options.generations = argc > 1 ? std::atoi(argv[1]) : 60;
  options.population = argc > 2 ? std::atoi(argv[2]) : 40;
  options.offspring = options.population;
  options.seed = 7;
  options.optimize_service = false;
  options.on_generation = [](const dse::GenerationStats& stats) {
    if (stats.generation % 10 == 0)
      std::cout << "generation " << stats.generation
                << ": best feasible power = " << stats.best_feasible_power
                << " mW\n";
  };

  std::cout << "Optimizing " << bench.name << " ("
            << bench.apps.task_count() << " tasks, "
            << bench.arch.processor_count() << " PEs)...\n";
  const auto result = optimizer.run(options);
  if (result.pareto.empty()) {
    std::cout << "no feasible design found — raise the budget\n";
    return 1;
  }

  // Lowest-power feasible design.
  const dse::Individual* best = &result.pareto.front();
  for (const auto& individual : result.pareto)
    if (individual.evaluation.power < best->evaluation.power)
      best = &individual;

  std::cout << "\nBest design: " << best->evaluation.power
            << " mW expected power, service "
            << best->evaluation.service << "\n\n";

  util::Table allocation("Processor allocation");
  allocation.set_header({"PE", "allocated"});
  for (std::uint32_t p = 0; p < bench.arch.processor_count(); ++p)
    allocation.add_row({bench.arch.processor(model::ProcessorId{p}).name,
                        best->candidate.allocation[p] ? "yes" : "no"});
  allocation.print(std::cout);

  util::Table drops("\nMode-change policy");
  drops.set_header({"application", "criticality", "on critical state"});
  for (std::uint32_t g = 0; g < bench.apps.graph_count(); ++g) {
    const auto& graph = bench.apps.graph(model::GraphId{g});
    drops.add_row({graph.name(), graph.droppable() ? "droppable" : "critical",
                   best->candidate.drop[g] ? "DROP" : "keep"});
  }
  drops.print(std::cout);

  util::Table plan("\nTask mapping & hardening");
  plan.set_header({"task", "PE", "hardening"});
  for (std::size_t i = 0; i < bench.apps.task_count(); ++i) {
    const auto ref = bench.apps.task_ref(i);
    const auto& decision = best->candidate.plan[i];
    std::string hardening = hardening::to_string(decision.technique);
    if (decision.technique == hardening::Technique::kReexecution)
      hardening += " (k=" + std::to_string(decision.reexecutions) + ")";
    plan.add_row(
        {bench.apps.graph(ref.graph_id()).name() + "/" +
             bench.apps.task(ref).name,
         bench.arch.processor(best->candidate.base_mapping[i]).name,
         hardening});
  }
  plan.print(std::cout);

  std::cout << "\nWCRT bounds (Algorithm 1):\n";
  for (std::uint32_t g = 0; g < bench.apps.graph_count(); ++g) {
    const auto& graph = bench.apps.graph(model::GraphId{g});
    std::cout << "  " << graph.name() << ": "
              << model::to_milliseconds(best->evaluation.graph_wcrt[g])
              << " ms (deadline " << model::to_milliseconds(graph.deadline())
              << " ms)"
              << (best->candidate.drop[g] ? "  [normal state only — dropped "
                                            "in the critical state]"
                                          : "")
              << '\n';
  }
  std::cout << "evaluations: " << result.evaluations << "\n";
  return 0;
}
