// Fault-injection walkthrough: simulate one hardened system under different
// fault scenarios and visualize the schedules — no fault, a re-executed
// fault, an exhausted re-execution budget, and a passive-replica activation.
//
//   $ ./examples/fault_sim
#include <iostream>

#include "ftmc/model/task_graph.hpp"
#include "ftmc/sched/priority.hpp"
#include "ftmc/sim/simulator.hpp"
#include "ftmc/sim/trace.hpp"

using namespace ftmc;
using model::kMillisecond;

namespace {

void show(const char* title, const model::Architecture& arch,
          const hardening::HardenedSystem& system,
          const sim::SimResult& trace) {
  std::cout << "\n=== " << title << " ===\n";
  sim::render_gantt(std::cout, arch, system.apps, trace,
                    500 * kMillisecond, 10 * kMillisecond);
  for (const auto& job : trace.jobs) {
    const auto ref = system.apps.task_ref(job.flat_task);
    std::cout << "  " << system.apps.task(ref).name << "[" << job.instance
              << "] " << sim::to_string(job.state);
    if (job.state == sim::JobState::kFinished)
      std::cout << " @" << model::to_milliseconds(job.finish_time) << "ms"
                << " attempts=" << job.attempts
                << (job.result_faulty ? " FAULTY" : "");
    std::cout << '\n';
  }
  std::cout << "  critical-state entry: "
            << (trace.critical_entry[0] < 0
                    ? std::string("never")
                    : std::to_string(model::to_milliseconds(
                          trace.critical_entry[0])) + "ms")
            << ", unsafe result: " << (trace.unsafe_result ? "YES" : "no")
            << '\n';
}

}  // namespace

int main() {
  // One sensing->control->actuation application; `control` re-executable
  // twice, `sense` passively replicated.
  model::TaskGraphBuilder builder("app");
  const auto sense = builder.add_task("sense", 30 * kMillisecond,
                                      50 * kMillisecond, 6 * kMillisecond,
                                      4 * kMillisecond);
  const auto control = builder.add_task("control", 50 * kMillisecond,
                                        80 * kMillisecond, 6 * kMillisecond,
                                        4 * kMillisecond);
  const auto act = builder.add_task("act", 20 * kMillisecond,
                                    35 * kMillisecond, 6 * kMillisecond,
                                    4 * kMillisecond);
  builder.connect(sense, control, 256).connect(control, act, 128);
  builder.period(500 * kMillisecond).reliability(1e-11);
  std::vector<model::TaskGraph> graphs;
  graphs.push_back(builder.build());
  const model::ApplicationSet apps{std::move(graphs)};

  const model::Architecture arch =
      model::ArchitectureBuilder{}
          .add_processors({"pe", 0, 50.0, 160.0, 4e-9, 1.0}, 3)
          .bandwidth(8.0)
          .build();

  hardening::HardeningPlan plan(apps.task_count());
  plan[sense].technique = hardening::Technique::kPassiveReplication;
  plan[sense].replica_pes = {model::ProcessorId{0}, model::ProcessorId{1},
                             model::ProcessorId{2}};
  plan[sense].voter_pe = model::ProcessorId{0};
  plan[control].technique = hardening::Technique::kReexecution;
  plan[control].reexecutions = 2;
  const std::vector<model::ProcessorId> mapping = {
      model::ProcessorId{0}, model::ProcessorId{0}, model::ProcessorId{1}};
  const auto system =
      hardening::apply_hardening(apps, plan, mapping, arch.processor_count());
  const auto priorities = sched::assign_priorities(system.apps);
  const sim::Simulator simulator(arch, system, {false}, priorities);
  sim::WcetExecution wcet;

  // Find the flat indices of the interesting tasks in T'.
  std::size_t control_flat = 0, primary_flat = 0;
  for (std::size_t i = 0; i < system.apps.task_count(); ++i) {
    const auto& name = system.apps.task(system.apps.task_ref(i)).name;
    if (name == "control") control_flat = i;
    if (name == "sense#r0") primary_flat = i;
  }

  {
    sim::NoFaults none;
    show("fault-free (standby never runs)", arch, system,
         simulator.run(none, wcet));
  }
  {
    sim::PlannedFaults faults;
    faults.add(sim::AttemptKey{control_flat, 0, 1});
    show("one fault in `control` (re-executed, recovered)", arch, system,
         simulator.run(faults, wcet));
  }
  {
    sim::PlannedFaults faults;
    faults.add(sim::AttemptKey{control_flat, 0, 1});
    faults.add(sim::AttemptKey{control_flat, 0, 2});
    faults.add(sim::AttemptKey{control_flat, 0, 3});
    show("three faults in `control` (budget exhausted, unsafe)", arch,
         system, simulator.run(faults, wcet));
  }
  {
    sim::PlannedFaults faults;
    faults.add(sim::AttemptKey{primary_flat, 0, 1});
    show("fault in primary `sense#r0` (standby activated, outvoted)", arch,
         system, simulator.run(faults, wcet));
  }
  return 0;
}
