// Quickstart: model a small mixed-criticality system, harden it, analyze
// worst-case response times with Algorithm 1, cross-check with the
// simulator, and evaluate the power/service objectives.
//
//   $ ./examples/quickstart
#include <iostream>

#include "ftmc/core/evaluator.hpp"
#include "ftmc/core/mc_analysis.hpp"
#include "ftmc/hardening/hardening.hpp"
#include "ftmc/model/architecture.hpp"
#include "ftmc/model/task_graph.hpp"
#include "ftmc/sched/holistic.hpp"
#include "ftmc/sim/monte_carlo.hpp"
#include "ftmc/sim/simulator.hpp"

using namespace ftmc;
using model::kMillisecond;

int main() {
  // --- 1. Platform: two PEs on a shared bus -------------------------------
  model::Architecture arch = model::ArchitectureBuilder{}
                                 .add_processor({"pe0", 0, 50.0, 150.0,
                                                 1.0e-8, 1.0})
                                 .add_processor({"pe1", 0, 50.0, 150.0,
                                                 1.0e-8, 1.0})
                                 .bandwidth(2.0)
                                 .build();

  // --- 2. Applications: one critical control loop, one droppable logger --
  model::TaskGraphBuilder control("control");
  const auto sense = control.add_task("sense", 10 * kMillisecond,
                                      20 * kMillisecond, 3 * kMillisecond,
                                      2 * kMillisecond);
  const auto act = control.add_task("act", 15 * kMillisecond,
                                    30 * kMillisecond, 3 * kMillisecond,
                                    2 * kMillisecond);
  control.connect(sense, act, 512)
      .period(200 * kMillisecond)
      .reliability(1.0e-12);

  model::TaskGraphBuilder logger("logger");
  const auto sample = logger.add_task("sample", 8 * kMillisecond,
                                      15 * kMillisecond, 3 * kMillisecond,
                                      2 * kMillisecond);
  const auto store = logger.add_task("store", 5 * kMillisecond,
                                     10 * kMillisecond, 3 * kMillisecond,
                                     2 * kMillisecond);
  logger.connect(sample, store, 256)
      .period(200 * kMillisecond)
      .droppable(/*service value=*/2.0);

  std::vector<model::TaskGraph> graphs;
  graphs.push_back(control.build());
  graphs.push_back(logger.build());
  const model::ApplicationSet apps(std::move(graphs));

  // --- 3. Design point: harden the control tasks, drop the logger --------
  core::Candidate candidate;
  candidate.allocation = {true, true};
  candidate.drop = {false, true};  // logger sacrificed in critical mode
  candidate.plan.resize(apps.task_count());
  candidate.base_mapping = {model::ProcessorId{0}, model::ProcessorId{0},
                            model::ProcessorId{1}, model::ProcessorId{1}};
  // Re-execute both control tasks once on fault.
  for (std::size_t flat : {std::size_t{0}, std::size_t{1}}) {
    candidate.plan[flat].technique = hardening::Technique::kReexecution;
    candidate.plan[flat].reexecutions = 1;
  }

  // --- 4. Evaluate: reliability + WCRT (Algorithm 1) + objectives --------
  const sched::HolisticAnalysis backend;
  const core::Evaluator evaluator(arch, apps, backend);
  const core::Evaluation evaluation = evaluator.evaluate(candidate);

  std::cout << "feasible:            "
            << (evaluation.feasible() ? "yes" : "no") << '\n'
            << "expected power [mW]: " << evaluation.power << '\n'
            << "service value:       " << evaluation.service << '\n'
            << "scenarios analyzed:  " << evaluation.scenario_count << '\n';
  for (std::uint32_t g = 0; g < apps.graph_count(); ++g)
    std::cout << "WCRT bound " << apps.graph(model::GraphId{g}).name()
              << ": " << model::to_milliseconds(evaluation.graph_wcrt[g])
              << " ms\n";

  // --- 5. Cross-check with Monte-Carlo simulation ------------------------
  const hardening::HardenedSystem system = hardening::apply_hardening(
      apps, candidate.plan, candidate.base_mapping, arch.processor_count());
  const auto priorities = sched::assign_priorities(system.apps);
  sim::MonteCarloOptions mc;
  mc.profiles = 2000;
  const sim::MonteCarloResult observed = sim::monte_carlo_wcrt(
      arch, system, candidate.drop, priorities, mc);
  for (std::uint32_t g = 0; g < system.apps.graph_count(); ++g)
    std::cout << "simulated max "
              << system.apps.graph(model::GraphId{g}).name() << ": "
              << model::to_milliseconds(observed.worst_response[g])
              << " ms\n";
  return 0;
}
