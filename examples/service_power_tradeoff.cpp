// Service/power co-optimization (the Figure 5 use case) on a compact
// surveillance-drone system: which of the three auxiliary applications
// should be sacrificed when faults push the system into the critical state?
//
//   $ ./examples/service_power_tradeoff
#include <algorithm>
#include <iostream>

#include "ftmc/dse/ga.hpp"
#include "ftmc/model/task_graph.hpp"
#include "ftmc/sched/holistic.hpp"
#include "ftmc/util/table.hpp"

using namespace ftmc;
using model::kMillisecond;

namespace {

model::TaskGraph chain(const std::string& name, model::Time period_ms,
                       std::initializer_list<std::pair<const char*, int>>
                           tasks,
                       double f_or_negative, double service) {
  model::TaskGraphBuilder builder(name);
  std::uint32_t previous = 0;
  bool first = true;
  for (const auto& [task_name, wcet_ms] : tasks) {
    const auto id = builder.add_task(
        task_name, wcet_ms * kMillisecond * 6 / 10,
        wcet_ms * kMillisecond, 4 * kMillisecond, 3 * kMillisecond);
    if (!first) builder.connect(previous, id, 512);
    previous = id;
    first = false;
  }
  builder.period(period_ms * kMillisecond);
  if (f_or_negative > 0)
    builder.reliability(f_or_negative);
  else
    builder.droppable(service);
  return builder.build();
}

}  // namespace

int main() {
  // Flight control and failsafe are non-negotiable; video, telemetry, and
  // photo stitching can be shed under faults, at different service costs.
  std::vector<model::TaskGraph> graphs;
  graphs.push_back(chain("flight_ctrl", 500,
                         {{"imu", 30}, {"attitude", 60}, {"motors", 40}},
                         1e-12, 0));
  graphs.push_back(chain("failsafe", 1000,
                         {{"watchdog", 35}, {"geofence", 55}, {"land", 45}},
                         1e-12, 0));
  graphs.push_back(chain("video", 500,
                         {{"capture", 45}, {"encode", 80}}, -1, 5.0));
  graphs.push_back(chain("telemetry", 1000,
                         {{"collect", 60}, {"pack", 70}, {"radio", 50}},
                         -1, 3.0));
  graphs.push_back(chain("stitching", 1000,
                         {{"select", 55}, {"stitch", 120}, {"store", 45}},
                         -1, 1.0));
  const model::ApplicationSet apps{std::move(graphs)};

  const model::Architecture arch =
      model::ArchitectureBuilder{}
          .add_processors({"core", 0, 60.0, 200.0, 3e-9, 1.0}, 3)
          .bandwidth(4.0)
          .build();

  const sched::HolisticAnalysis backend;
  dse::GeneticOptimizer optimizer(arch, apps, backend);
  dse::GaOptions options;
  options.population = 40;
  options.offspring = 40;
  options.generations = 60;
  options.seed = 11;
  options.optimize_service = true;  // bi-objective

  std::cout << "Exploring the service/power trade-off ("
            << apps.task_count() << " tasks on " << arch.processor_count()
            << " cores)...\n";
  auto result = optimizer.run(options);
  std::sort(result.pareto.begin(), result.pareto.end(),
            [](const dse::Individual& a, const dse::Individual& b) {
              return a.evaluation.service < b.evaluation.service;
            });

  util::Table table("\nPareto front (what to sacrifice under faults)");
  table.set_header({"kept auxiliary apps", "service", "power [mW]"});
  for (const auto& individual : result.pareto) {
    std::string kept;
    for (const model::GraphId g : apps.droppable_graphs()) {
      if (individual.candidate.drop[g.value]) continue;
      if (!kept.empty()) kept += ", ";
      kept += apps.graph(g).name();
    }
    if (kept.empty()) kept = "(none)";
    table.add_row({kept, util::Table::cell(individual.evaluation.service, 1),
                   util::Table::cell(individual.evaluation.power, 2)});
  }
  table.print(std::cout);
  std::cout << "\n" << result.pareto.size()
            << " Pareto-optimal mode-change policies found in "
            << result.evaluations << " evaluations.\n";
  return result.pareto.empty() ? 1 : 0;
}
