#include "ftmc/baseline/static_schedule.hpp"

#include <algorithm>
#include <stdexcept>

#include "ftmc/hardening/reliability.hpp"  // scaled_time

namespace ftmc::baseline {

namespace {

struct JobLayout {
  std::vector<std::size_t> base;      // first job index per flat task
  std::vector<std::size_t> releases;  // instances per flat task
  std::size_t total = 0;
};

JobLayout layout(const hardening::HardenedSystem& system) {
  const model::ApplicationSet& apps = system.apps;
  const model::Time hyper = apps.hyperperiod();
  JobLayout result;
  result.base.resize(apps.task_count());
  result.releases.resize(apps.task_count());
  for (std::size_t i = 0; i < apps.task_count(); ++i) {
    result.base[i] = result.total;
    result.releases[i] = static_cast<std::size_t>(
        hyper / apps.graph(apps.task_ref(i).graph_id()).period());
    result.total += result.releases[i];
  }
  return result;
}

/// Re-execution budget of each job (0 for everything that cannot fault
/// into extra attempts).
std::vector<int> job_budgets(const hardening::HardenedSystem& system,
                             const JobLayout& jobs) {
  std::vector<int> budgets(jobs.total, 0);
  for (std::size_t i = 0; i < system.apps.task_count(); ++i) {
    const int k = system.info[i].reexecutions;
    if (k <= 0) continue;
    for (std::size_t r = 0; r < jobs.releases[i]; ++r)
      budgets[jobs.base[i] + r] = k;
  }
  return budgets;
}

}  // namespace

std::size_t job_count(const hardening::HardenedSystem& system) {
  return layout(system).total;
}

std::vector<FaultScenario> enumerate_scenarios(
    const hardening::HardenedSystem& system, int max_faults,
    std::size_t limit) {
  const JobLayout jobs = layout(system);
  const std::vector<int> budgets = job_budgets(system, jobs);

  std::vector<FaultScenario> scenarios;
  FaultScenario current(jobs.total, 0);
  // DFS over jobs; only jobs with a budget branch.
  auto recurse = [&](auto&& self, std::size_t job, int remaining) -> void {
    if (job == jobs.total) {
      if (scenarios.size() >= limit)
        throw std::length_error(
            "enumerate_scenarios: scenario space exceeds limit");
      scenarios.push_back(current);
      return;
    }
    const int budget = std::min(budgets[job], remaining);
    for (int extra = 0; extra <= budget; ++extra) {
      current[job] = extra;
      self(self, job + 1, remaining - extra);
    }
    current[job] = 0;
  };
  recurse(recurse, 0, max_faults);
  return scenarios;
}

StaticSchedule synthesize_schedule(
    const model::Architecture& arch, const hardening::HardenedSystem& system,
    const FaultScenario& scenario,
    const std::vector<std::uint32_t>& priorities) {
  const model::ApplicationSet& apps = system.apps;
  const JobLayout jobs = layout(system);
  if (scenario.size() != jobs.total)
    throw std::invalid_argument("synthesize_schedule: scenario size");
  if (priorities.size() != apps.task_count())
    throw std::invalid_argument("synthesize_schedule: priorities size");

  // Per-job execution time under this scenario.  Static tables must
  // reserve passive standbys unconditionally (the table cannot know at
  // compile time whether the voter will request them).
  std::vector<model::Time> exec(jobs.total, 0);
  std::vector<model::Time> release(jobs.total, 0);
  for (std::size_t i = 0; i < apps.task_count(); ++i) {
    const model::TaskRef ref = apps.task_ref(i);
    const model::Task& task = apps.task(ref);
    const hardening::HardenedTaskInfo& info = system.info[i];
    const model::Processor& pe =
        arch.processor(system.mapping.processor_of_flat(i));
    const model::Time period = apps.graph(ref.graph_id()).period();
    model::Time attempt = task.wcet;
    if (info.pays_detection) attempt += task.detection_overhead;
    const model::Time scaled = hardening::scaled_time(pe, attempt);
    for (std::size_t r = 0; r < jobs.releases[i]; ++r) {
      const std::size_t j = jobs.base[i] + r;
      exec[j] = scaled * (1 + scenario[j]);
      release[j] = static_cast<model::Time>(r) * period;
    }
  }

  // Precedence edges (same instance index within a graph).
  std::vector<std::vector<std::pair<std::size_t, model::Time>>> in_edges(
      jobs.total);
  std::vector<std::size_t> pending(jobs.total, 0);
  for (std::uint32_t g = 0; g < apps.graph_count(); ++g) {
    const model::TaskGraph& graph = apps.graph(model::GraphId{g});
    for (const model::Channel& channel : graph.channels()) {
      const std::size_t src = apps.flat_index({g, channel.src});
      const std::size_t dst = apps.flat_index({g, channel.dst});
      const model::Time delay =
          system.mapping.processor_of_flat(src) ==
                  system.mapping.processor_of_flat(dst)
              ? 0
              : arch.transfer_time(channel.size_bytes);
      for (std::size_t r = 0; r < jobs.releases[src]; ++r) {
        in_edges[jobs.base[dst] + r].push_back({jobs.base[src] + r, delay});
        ++pending[jobs.base[dst] + r];
      }
    }
  }

  // Priority-ordered, earliest-start list scheduling (non-preemptive).
  StaticSchedule schedule;
  schedule.entries.reserve(jobs.total);
  std::vector<model::Time> finish(jobs.total, 0);
  std::vector<bool> scheduled(jobs.total, false);
  std::vector<model::Time> pe_free(arch.processor_count(), 0);
  std::vector<std::size_t> ready;
  for (std::size_t j = 0; j < jobs.total; ++j)
    if (pending[j] == 0) ready.push_back(j);

  auto flat_of = [&](std::size_t job) {
    const auto it = std::upper_bound(jobs.base.begin(), jobs.base.end(), job);
    return static_cast<std::size_t>(it - jobs.base.begin()) - 1;
  };

  for (std::size_t step = 0; step < jobs.total; ++step) {
    if (ready.empty())
      throw std::logic_error("synthesize_schedule: no ready job (cycle?)");
    // Highest priority first; release time breaks ties.
    std::size_t pick = 0;
    for (std::size_t c = 1; c < ready.size(); ++c) {
      const std::size_t a = ready[c], b = ready[pick];
      const auto pa = priorities[flat_of(a)], pb = priorities[flat_of(b)];
      if (pa < pb || (pa == pb && release[a] < release[b])) pick = c;
    }
    const std::size_t job = ready[pick];
    ready.erase(ready.begin() + static_cast<std::ptrdiff_t>(pick));

    const std::size_t flat = flat_of(job);
    model::Time est = release[job];
    for (const auto& [src, delay] : in_edges[job])
      est = std::max(est, finish[src] + delay);
    const model::ProcessorId pe = system.mapping.processor_of_flat(flat);
    const model::Time start = std::max(est, pe_free[pe.value]);
    finish[job] = start + exec[job];
    pe_free[pe.value] = finish[job];
    scheduled[job] = true;
    schedule.entries.push_back(
        {flat, job - jobs.base[flat], start, finish[job], pe});
    schedule.makespan = std::max(schedule.makespan, finish[job]);

    const model::Time deadline =
        apps.graph(apps.task_ref(flat).graph_id()).deadline();
    if (finish[job] > release[job] + deadline)
      schedule.deadlines_met = false;

    for (std::size_t j = 0; j < jobs.total; ++j) {
      if (scheduled[j] || pending[j] == 0) continue;
      bool now_ready = true;
      for (const auto& [src, delay] : in_edges[j])
        now_ready &= scheduled[src];
      if (now_ready) {
        pending[j] = 0;
        ready.push_back(j);
      }
    }
  }
  return schedule;
}

ContingencyResult contingency_analysis(
    const model::Architecture& arch, const hardening::HardenedSystem& system,
    int max_faults, const std::vector<std::uint32_t>& priorities) {
  ContingencyResult result;
  for (const FaultScenario& scenario :
       enumerate_scenarios(system, max_faults)) {
    const StaticSchedule schedule =
        synthesize_schedule(arch, system, scenario, priorities);
    ++result.schedule_count;
    result.table_entries += schedule.entries.size();
    result.worst_makespan = std::max(result.worst_makespan,
                                     schedule.makespan);
    result.all_deadlines_met &= schedule.deadlines_met;
  }
  return result;
}

}  // namespace ftmc::baseline
