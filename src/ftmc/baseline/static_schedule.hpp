// Static contingency-schedule baseline (the Table 1 / Section 1 foil).
//
// Prior fault-tolerant mapping work ([2] Pop et al., [3] Bolchini et al.)
// synthesizes *static, non-preemptive* schedules: one schedule table per
// fault scenario, pre-computed at compile time and switched at run time
// ("in [2], 19 different schedules had to be pre-calculated for an
// application with five tasks").  This module reproduces that flow so the
// paper's argument against it can be measured:
//
//  - a fault scenario assigns each re-executable job a number of extra
//    attempts (bounded by its k), with the total number of faults in the
//    hyperperiod bounded by `max_faults` — exactly [2]'s fault model;
//  - for each scenario a non-preemptive list schedule of one hyperperiod is
//    synthesized (earliest-start, priority-ordered, communication-aware);
//  - the runtime must store ALL tables (memory = schedules x entries) and
//    every application must fit its deadline in EVERY scenario — static
//    tables cannot drop anything, which is precisely the flexibility the
//    paper's dynamic mixed-criticality scheduling adds.
#pragma once

#include <vector>

#include "ftmc/hardening/hardening.hpp"
#include "ftmc/model/architecture.hpp"

namespace ftmc::baseline {

/// One row of a static schedule table.
struct ScheduleEntry {
  std::size_t flat_task = 0;
  std::size_t instance = 0;
  model::Time start = 0;
  model::Time finish = 0;
  model::ProcessorId pe{0};
};

/// A complete static schedule of one hyperperiod for one fault scenario.
struct StaticSchedule {
  std::vector<ScheduleEntry> entries;
  model::Time makespan = 0;
  /// Every job finished within its instance's implicit deadline.
  bool deadlines_met = true;
};

/// Extra attempts per *job* (flat task-major, instance-minor — the same
/// layout the simulator uses); entry j is how many re-executions job j
/// performs in this scenario.
using FaultScenario = std::vector<int>;

/// Job count of one hyperperiod (scenario vector length).
std::size_t job_count(const hardening::HardenedSystem& system);

/// All scenarios with at most `max_faults` total faults, each job bounded
/// by its task's re-execution budget.  Grows combinatorially — that is the
/// point.  `limit` guards against explosion (throws std::length_error).
std::vector<FaultScenario> enumerate_scenarios(
    const hardening::HardenedSystem& system, int max_faults,
    std::size_t limit = 1'000'000);

/// Non-preemptive, communication-aware list schedule of one hyperperiod
/// under the given fault scenario.  Jobs are picked ready-first by the
/// given global priority ranks; passive standbys run whenever any primary
/// faults in the scenario (the static table must reserve their slot).
StaticSchedule synthesize_schedule(
    const model::Architecture& arch, const hardening::HardenedSystem& system,
    const FaultScenario& scenario,
    const std::vector<std::uint32_t>& priorities);

/// The full contingency analysis of [2]-style static fault tolerance.
struct ContingencyResult {
  std::size_t schedule_count = 0;   ///< tables the runtime must store
  std::size_t table_entries = 0;    ///< total rows across all tables
  model::Time worst_makespan = 0;   ///< max over scenarios
  bool all_deadlines_met = true;    ///< every scenario fits every deadline
};

ContingencyResult contingency_analysis(
    const model::Architecture& arch, const hardening::HardenedSystem& system,
    int max_faults, const std::vector<std::uint32_t>& priorities);

}  // namespace ftmc::baseline
