// A packaged benchmark instance: platform + application set.
#pragma once

#include <string>

#include "ftmc/model/application_set.hpp"
#include "ftmc/model/architecture.hpp"

namespace ftmc::benchmarks {

struct Benchmark {
  std::string name;
  model::Architecture arch;
  model::ApplicationSet apps;
};

}  // namespace ftmc::benchmarks
