#include "ftmc/benchmarks/cruise.hpp"

#include "ftmc/benchmarks/platforms.hpp"

namespace ftmc::benchmarks {

namespace {

using model::Time;
constexpr Time ms = model::kMillisecond;

model::TaskGraph speed_ctrl() {
  model::TaskGraphBuilder builder("speed_ctrl");
  //                          name        bcet     wcet     ve     dt
  const auto ws_front = builder.add_task("ws_front", 20 * ms, 35 * ms, 8 * ms, 5 * ms);
  const auto ws_rear = builder.add_task("ws_rear", 20 * ms, 35 * ms, 8 * ms, 5 * ms);
  const auto fusion = builder.add_task("fusion", 40 * ms, 70 * ms, 8 * ms, 5 * ms);
  const auto ctrl = builder.add_task("ctrl_law", 80 * ms, 140 * ms, 8 * ms, 5 * ms);
  const auto throttle = builder.add_task("throttle", 50 * ms, 90 * ms, 8 * ms, 5 * ms);
  const auto supervisor = builder.add_task("supervisor", 30 * ms, 55 * ms, 8 * ms, 5 * ms);
  builder.connect(ws_front, fusion, 1024)
      .connect(ws_rear, fusion, 1024)
      .connect(fusion, ctrl, 2048)
      .connect(ctrl, throttle, 512)
      .connect(ctrl, supervisor, 512)
      .period(1000 * ms)
      .reliability(1.0e-12);  // failures per microsecond
  return builder.build();
}

model::TaskGraph brake_mon() {
  model::TaskGraphBuilder builder("brake_mon");
  const auto pedal = builder.add_task("pedal", 25 * ms, 40 * ms, 8 * ms, 5 * ms);
  const auto validator = builder.add_task("validator", 45 * ms, 75 * ms, 8 * ms, 5 * ms);
  const auto arbiter = builder.add_task("arbiter", 55 * ms, 95 * ms, 8 * ms, 5 * ms);
  const auto cutoff = builder.add_task("cutoff", 35 * ms, 60 * ms, 8 * ms, 5 * ms);
  builder.connect(pedal, validator, 512)
      .connect(validator, arbiter, 1024)
      .connect(arbiter, cutoff, 256)
      .period(1000 * ms)
      .reliability(1.0e-12);
  return builder.build();
}

model::TaskGraph nav_display() {
  model::TaskGraphBuilder builder("nav_display");
  const auto route = builder.add_task("route", 70 * ms, 125 * ms, 6 * ms, 4 * ms);
  const auto render = builder.add_task("render_map", 125 * ms, 215 * ms, 6 * ms, 4 * ms);
  const auto hud = builder.add_task("hud", 65 * ms, 110 * ms, 6 * ms, 4 * ms);
  builder.connect(route, render, 4096)
      .connect(render, hud, 2048)
      .period(1000 * ms)
      .droppable(3.0);
  return builder.build();
}

model::TaskGraph diag_log() {
  model::TaskGraphBuilder builder("diag_log");
  const auto sample = builder.add_task("sample", 15 * ms, 25 * ms, 6 * ms, 4 * ms);
  const auto compress = builder.add_task("compress", 25 * ms, 45 * ms, 6 * ms, 4 * ms);
  const auto store = builder.add_task("store", 10 * ms, 20 * ms, 6 * ms, 4 * ms);
  builder.connect(sample, compress, 2048)
      .connect(compress, store, 1024)
      .period(250 * ms)
      .droppable(2.0);
  return builder.build();
}

model::TaskGraph media() {
  model::TaskGraphBuilder builder("media");
  const auto decode = builder.add_task("decode", 145 * ms, 250 * ms, 6 * ms, 4 * ms);
  const auto output = builder.add_task("output", 45 * ms, 85 * ms, 6 * ms, 4 * ms);
  builder.connect(decode, output, 4096).period(1000 * ms).droppable(1.0);
  return builder.build();
}

}  // namespace

Benchmark cruise_benchmark() {
  std::vector<model::TaskGraph> graphs;
  graphs.push_back(speed_ctrl());
  graphs.push_back(brake_mon());
  graphs.push_back(nav_display());
  graphs.push_back(diag_log());
  graphs.push_back(media());
  return Benchmark{"Cruise", automotive_platform(),
                   model::ApplicationSet(std::move(graphs))};
}

std::vector<NamedConfig> cruise_sample_configs(const Benchmark& cruise) {
  const model::ApplicationSet& apps = cruise.apps;
  const std::size_t pes = cruise.arch.processor_count();

  // Shared hardening: every control task re-executable once; `fusion`
  // passively replicated (primaries on the lockstep pair, standby on
  // `perf`, voter on lockstep_a).
  auto base_plan = [&]() {
    hardening::HardeningPlan plan(apps.task_count());
    auto set_reexec = [&](const char* graph, const char* task, int k) {
      const model::GraphId g = apps.find_graph(graph);
      const model::TaskGraph& tg = apps.graph(g);
      for (std::uint32_t v = 0; v < tg.task_count(); ++v) {
        if (tg.task(v).name != task) continue;
        hardening::TaskHardening decision;
        decision.technique = hardening::Technique::kReexecution;
        decision.reexecutions = k;
        plan[apps.flat_index({g.value, v})] = decision;
      }
    };
    set_reexec("speed_ctrl", "ws_front", 1);
    set_reexec("speed_ctrl", "ws_rear", 1);
    set_reexec("speed_ctrl", "ctrl_law", 1);
    set_reexec("speed_ctrl", "throttle", 1);
    set_reexec("speed_ctrl", "supervisor", 1);
    set_reexec("brake_mon", "pedal", 1);
    set_reexec("brake_mon", "validator", 1);
    set_reexec("brake_mon", "arbiter", 1);
    set_reexec("brake_mon", "cutoff", 1);

    const model::GraphId g = apps.find_graph("speed_ctrl");
    const model::TaskGraph& tg = apps.graph(g);
    for (std::uint32_t v = 0; v < tg.task_count(); ++v) {
      if (tg.task(v).name != "fusion") continue;
      hardening::TaskHardening decision;
      decision.technique = hardening::Technique::kPassiveReplication;
      decision.replica_pes = {model::ProcessorId{0}, model::ProcessorId{1},
                              model::ProcessorId{2}};
      decision.voter_pe = model::ProcessorId{0};
      plan[apps.flat_index({g.value, v})] = decision;
    }
    return plan;
  };

  auto make_candidate = [&](const std::vector<std::uint32_t>& flat_mapping) {
    core::Candidate candidate;
    candidate.allocation.assign(pes, true);
    candidate.drop.resize(apps.graph_count());
    for (std::uint32_t g = 0; g < apps.graph_count(); ++g)
      candidate.drop[g] = apps.graph(model::GraphId{g}).droppable();
    candidate.plan = base_plan();
    candidate.base_mapping.reserve(apps.task_count());
    for (std::size_t i = 0; i < apps.task_count(); ++i)
      candidate.base_mapping.push_back(
          model::ProcessorId{flat_mapping[i % flat_mapping.size()] %
                             static_cast<std::uint32_t>(pes)});
    return candidate;
  };

  // Flat task order: speed_ctrl(6), brake_mon(4), nav_display(3),
  // diag_log(3), media(2) = 18 tasks.  Loads are balanced so that the
  // all-faults critical state stays near (but mostly below) 100% per PE,
  // the regime Table 2 exercises.
  std::vector<NamedConfig> configs;
  configs.push_back(
      {"Mapping 1", make_candidate({// speed_ctrl alternating locksteps
                                    0, 1, 0, 0, 1, 0,
                                    // brake_mon: pedal on lockstep_b, rest on perf
                                    1, 2, 2, 2,
                                    // nav_display on perf
                                    2, 2, 2,
                                    // diag_log spread over both locksteps and perf
                                    0, 1, 2,
                                    // media on eco
                                    3, 3})});
  configs.push_back(
      {"Mapping 2", make_candidate({// speed_ctrl spread, control on perf
                                    0, 1, 2, 2, 0, 1,
                                    // brake_mon clustered on eco
                                    3, 3, 3, 3,
                                    // nav_display on lockstep_b
                                    1, 1, 1,
                                    // diag_log spread over lockstep_b, perf, lockstep_a
                                    1, 2, 0,
                                    // media on eco
                                    3, 3})});
  configs.push_back(
      {"Mapping 3", make_candidate({// speed_ctrl on the lockstep pair
                                    0, 0, 1, 1, 0, 1,
                                    // brake_mon on perf
                                    2, 2, 2, 2,
                                    // nav_display on eco
                                    3, 3, 3,
                                    // diag_log spread over perf and both locksteps
                                    2, 0, 1,
                                    // media on lockstep_b
                                    1, 1})});
  return configs;
}

}  // namespace ftmc::benchmarks
