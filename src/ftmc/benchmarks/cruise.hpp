// The "Cruise" benchmark: a cruise-control application (after Kandasamy et
// al. [20]) plus three synthetic applications added by the paper to raise
// complexity.  The exact task parameters of [20]/[6] are not public; this
// reconstruction keeps the published structure — two non-droppable control
// applications (whose WCRTs Table 2 reports) and three droppable
// applications — with parameters chosen so that the deadline sits close to
// the faulty-case makespan, which is the regime where the paper observes
// task dropping to matter most (99.98% rescue ratio, Section 5.2).
#pragma once

#include <vector>

#include "ftmc/benchmarks/benchmark.hpp"
#include "ftmc/core/evaluator.hpp"

namespace ftmc::benchmarks {

/// 4-PE automotive platform + 5 applications:
///   speed_ctrl (critical), brake_mon (critical),
///   nav_display (sv 3), diag_log (sv 2), media (sv 1).
Benchmark cruise_benchmark();

/// A named design point of the Cruise benchmark (hardening + mapping +
/// dropped set), as used for Table 2's "three sample mappings".
struct NamedConfig {
  std::string name;
  core::Candidate candidate;
};

/// The three sample configurations analyzed in Table 2: identical hardening
/// (re-execution on most control tasks, one passive replication), three
/// different task-to-PE mappings, all droppable applications in T_d.
std::vector<NamedConfig> cruise_sample_configs(const Benchmark& cruise);

}  // namespace ftmc::benchmarks
