#include "ftmc/benchmarks/dream.hpp"

#include "ftmc/benchmarks/platforms.hpp"

namespace ftmc::benchmarks {

namespace {

using model::Time;
constexpr Time ms = model::kMillisecond;

struct ChainTask {
  const char* name;
  Time bcet_ms;
  Time wcet_ms;
};

/// Linear end-to-end chain with uniform channel size; the workhorse shape
/// of the DREAM benchmarks.
model::TaskGraph chain(const char* name, Time period_ms,
                       std::initializer_list<ChainTask> tasks,
                       double reliability_or_negative, double service,
                       std::uint64_t channel_bytes = 1024,
                       Time ve_ms = 6, Time dt_ms = 4) {
  model::TaskGraphBuilder builder(name);
  std::uint32_t previous = 0;
  bool first = true;
  for (const ChainTask& task : tasks) {
    const std::uint32_t id =
        builder.add_task(task.name, task.bcet_ms * ms, task.wcet_ms * ms,
                         ve_ms * ms, dt_ms * ms);
    if (!first) builder.connect(previous, id, channel_bytes);
    previous = id;
    first = false;
  }
  builder.period(period_ms * ms);
  if (reliability_or_negative > 0)
    builder.reliability(reliability_or_negative);
  else
    builder.droppable(service);
  return builder.build();
}

}  // namespace

Benchmark dt_med_benchmark() {
  std::vector<model::TaskGraph> graphs;
  graphs.push_back(chain("crit_flight", 1000,
                         {{"sense", 25, 45},
                          {"filter", 35, 65},
                          {"law", 55, 95},
                          {"mix", 30, 55},
                          {"actuate", 25, 45}},
                         1.0e-12, 0.0));
  graphs.push_back(chain("crit_nav", 2000,
                         {{"gps", 40, 70},
                          {"imu", 35, 60},
                          {"kalman", 90, 160},
                          {"guidance", 70, 120},
                          {"waypoint", 45, 80},
                          {"report", 30, 55}},
                         1.0e-12, 0.0));
  graphs.push_back(chain("crit_comm", 1000,
                         {{"rx", 20, 40},
                          {"decode_cmd", 35, 65},
                          {"validate", 30, 55},
                          {"dispatch", 20, 40}},
                         2.0e-12, 0.0));
  // The droppable applications carry a substantial share of the load: in
  // the critical state (all critical tasks at their Eq.(1) budgets) the
  // platform cannot host them on the power-optimal allocation, which is
  // what makes task dropping pay off in Section 5.2.
  graphs.push_back(chain("t1", 1000,
                         {{"t1_src", 60, 105},
                          {"t1_proc", 110, 195},
                          {"t1_sink", 50, 90}},
                         -1.0, 1.0));
  graphs.push_back(chain("t2", 2000,
                         {{"t2_src", 90, 150},
                          {"t2_proc_a", 150, 270},
                          {"t2_proc_b", 135, 230},
                          {"t2_sink", 60, 110}},
                         -1.0, 2.0));
  graphs.push_back(chain("t3", 1000,
                         {{"t3_src", 75, 120},
                          {"t3_proc", 155, 275},
                          {"t3_merge", 95, 170},
                          {"t3_sink", 50, 90}},
                         -1.0, 4.0));
  return Benchmark{"DT-med", symmetric_platform(4),
                   model::ApplicationSet(std::move(graphs))};
}

Benchmark dt_large_benchmark() {
  std::vector<model::TaskGraph> graphs;
  graphs.push_back(chain("crit_engine", 1000,
                         {{"crank", 20, 40},
                          {"phase", 30, 55},
                          {"inject", 60, 105},
                          {"ignite", 45, 80},
                          {"knock", 35, 65},
                          {"limp", 25, 45}},
                         1.0e-12, 0.0));
  graphs.push_back(chain("crit_gear", 2000,
                         {{"shaft", 30, 55},
                          {"slip", 45, 85},
                          {"strategy", 85, 150},
                          {"clutch", 55, 95},
                          {"confirm", 30, 55}},
                         1.0e-12, 0.0));
  graphs.push_back(chain("crit_stability", 500,
                         {{"yaw", 12, 22},
                          {"estimator", 25, 45},
                          {"torque_vec", 30, 55},
                          {"brake_cmd", 15, 28}},
                         2.0e-12, 0.0));
  graphs.push_back(chain("crit_battery", 2000,
                         {{"cell_scan", 50, 90},
                          {"soc", 70, 125},
                          {"thermal", 60, 105},
                          {"balance", 55, 95},
                          {"contactor", 25, 45},
                          {"bms_log", 30, 55}},
                         2.0e-12, 0.0));
  graphs.push_back(chain("d1_telemetry", 1000,
                         {{"d1_pack", 70, 120},
                          {"d1_crypt", 120, 210},
                          {"d1_tx", 55, 100}},
                         -1.0, 1.0));
  graphs.push_back(chain("d2_comfort", 2000,
                         {{"d2_cabin", 100, 175},
                          {"d2_climate", 145, 255},
                          {"d2_vent", 75, 130},
                          {"d2_panel", 55, 100}},
                         -1.0, 2.0));
  graphs.push_back(chain("d3_vision", 1000,
                         {{"d3_grab", 90, 150},
                          {"d3_detect", 175, 310},
                          {"d3_track", 115, 205},
                          {"d3_overlay", 70, 120}},
                         -1.0, 3.0));
  graphs.push_back(chain("d4_audio", 500,
                         {{"d4_decode", 40, 70},
                          {"d4_mix", 25, 45},
                          {"d4_out", 12, 24}},
                         -1.0, 1.5));
  return Benchmark{"DT-large", large_platform(),
                   model::ApplicationSet(std::move(graphs))};
}

}  // namespace ftmc::benchmarks
