// DT-med / DT-large: control benchmarks inspired by the DREAM tool's
// "medium/large distributed non-preemptive real-time CORBA application"
// [21].  Following the paper, invocation periods and execution times of the
// original task sets are scaled by 20x to add complexity and uncertainty.
// The original parameter tables are not public; these reconstructions keep
// the benchmarks' shape — several distributed end-to-end chains with
// harmonic periods — and the paper's droppable/critical split (DT-med has
// exactly the three droppable applications t1..t3 of Figure 5).
#pragma once

#include "ftmc/benchmarks/benchmark.hpp"

namespace ftmc::benchmarks {

/// 4 identical PEs; 3 critical chains + droppable t1 (sv 1), t2 (sv 2),
/// t3 (sv 4).
Benchmark dt_med_benchmark();

/// 6 heterogeneous PEs; 4 critical + 4 droppable applications, ~45 tasks.
Benchmark dt_large_benchmark();

}  // namespace ftmc::benchmarks
