#include "ftmc/benchmarks/platforms.hpp"

namespace ftmc::benchmarks {

using model::Architecture;
using model::ArchitectureBuilder;
using model::Processor;

Architecture symmetric_platform(std::size_t count,
                                double bandwidth_bytes_per_us) {
  ArchitectureBuilder builder;
  Processor prototype;
  prototype.name = "pe";
  prototype.type = 0;
  prototype.static_power = 80.0;
  prototype.dynamic_power = 220.0;
  prototype.fault_rate = 2.0e-9;  // per us
  prototype.speed_factor = 1.0;
  builder.add_processors(prototype, count);
  builder.bandwidth(bandwidth_bytes_per_us);
  return builder.build();
}

Architecture automotive_platform() {
  ArchitectureBuilder builder;
  builder.add_processor({"lockstep_a", 0, 120.0, 300.0, 2.0e-9, 1.0});
  builder.add_processor({"lockstep_b", 0, 120.0, 300.0, 2.0e-9, 1.0});
  builder.add_processor({"perf", 1, 90.0, 260.0, 5.0e-9, 0.8});
  builder.add_processor({"eco", 2, 40.0, 120.0, 1.0e-8, 1.5});
  builder.bandwidth(2.0);  // bytes per us (CAN-FD-ish once messages ~kB)
  return builder.build();
}

Architecture large_platform() {
  ArchitectureBuilder builder;
  builder.add_processor({"fast_0", 0, 110.0, 280.0, 2.0e-9, 0.9});
  builder.add_processor({"fast_1", 0, 110.0, 280.0, 2.0e-9, 0.9});
  builder.add_processor({"mid_0", 1, 80.0, 210.0, 3.0e-9, 1.0});
  builder.add_processor({"mid_1", 1, 80.0, 210.0, 3.0e-9, 1.0});
  builder.add_processor({"eco_0", 2, 45.0, 130.0, 6.0e-9, 1.4});
  builder.add_processor({"eco_1", 2, 45.0, 130.0, 6.0e-9, 1.4});
  builder.bandwidth(4.0);
  return builder.build();
}

}  // namespace ftmc::benchmarks
