// Reference MPSoC platforms used by the benchmark suite and the experiment
// benches.  Power numbers are in mW, fault rates per microsecond (Section
// 2.1; magnitudes follow soft-error-rate literature [11][12]: a 100 ms
// execution sees a fault with probability ~1e-3..1e-4).
#pragma once

#include "ftmc/model/architecture.hpp"

namespace ftmc::benchmarks {

/// `count` identical PEs ("pe_0".."pe_{count-1}") on a shared bus.
model::Architecture symmetric_platform(std::size_t count,
                                       double bandwidth_bytes_per_us = 2.0);

/// Heterogeneous 4-PE automotive-style platform: two fast lockstep-class
/// cores, one mid, one slow low-power core.
model::Architecture automotive_platform();

/// Larger 6-PE heterogeneous platform for the DT-large benchmark.
model::Architecture large_platform();

}  // namespace ftmc::benchmarks
