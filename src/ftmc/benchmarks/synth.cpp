#include "ftmc/benchmarks/synth.hpp"

#include <algorithm>
#include <cmath>

#include "ftmc/benchmarks/platforms.hpp"

namespace ftmc::benchmarks {

namespace {

model::TaskGraph random_graph(const SynthParams& params, util::Rng& rng,
                              std::size_t index, bool droppable) {
  const std::size_t task_count = static_cast<std::size_t>(
      rng.uniform_int(static_cast<std::int64_t>(params.min_tasks),
                      static_cast<std::int64_t>(params.max_tasks)));
  const model::Time period =
      params.period_menu[rng.index(params.period_menu.size())];

  // Split the WCET budget over tasks with random positive weights.
  const double budget =
      params.graph_utilization * static_cast<double>(period);
  std::vector<double> weights(task_count);
  double weight_sum = 0.0;
  for (double& weight : weights) {
    weight = rng.uniform_real(0.5, 1.5);
    weight_sum += weight;
  }

  std::string prefix = "g";
  prefix += std::to_string(index);
  prefix += "_v";
  model::TaskGraphBuilder builder("synth" + std::to_string(index));
  for (std::size_t v = 0; v < task_count; ++v) {
    const auto wcet = std::max<model::Time>(
        1000, static_cast<model::Time>(budget * weights[v] / weight_sum));
    const auto bcet = std::max<model::Time>(
        1, static_cast<model::Time>(
               static_cast<double>(wcet) *
               params.bcet_fraction * rng.uniform_real(0.8, 1.2)));
    builder.add_task(prefix + std::to_string(v), std::min(bcet, wcet), wcet,
                     params.voting_overhead, params.detection_overhead);
  }

  // Random tree spine + extra forward edges.
  for (std::uint32_t v = 1; v < task_count; ++v) {
    const auto parent = static_cast<std::uint32_t>(rng.index(v));
    builder.connect(parent, v,
                    1 + rng.index(params.max_channel_bytes));
  }
  for (std::uint32_t u = 0; u + 1 < task_count; ++u)
    for (std::uint32_t v = u + 1; v < task_count; ++v)
      if (rng.chance(params.extra_edge_probability))
        builder.connect(u, v, 1 + rng.index(params.max_channel_bytes));

  builder.period(period);
  if (droppable) {
    builder.droppable(static_cast<double>(rng.uniform_int(1, 5)));
  } else {
    const double log_min = std::log10(params.reliability_min);
    const double log_max = std::log10(params.reliability_max);
    builder.reliability(std::pow(10.0, rng.uniform_real(log_min, log_max)));
  }
  return builder.build();
}

}  // namespace

model::ApplicationSet synthetic_applications(const SynthParams& params) {
  util::Rng rng(params.seed);
  std::vector<model::TaskGraph> graphs;
  graphs.reserve(params.graph_count);
  for (std::size_t g = 0; g < params.graph_count; ++g) {
    // Keep graph 0 critical so every instance has a reliability constraint.
    const bool droppable =
        g != 0 && rng.chance(params.droppable_fraction);
    graphs.push_back(random_graph(params, rng, g, droppable));
  }
  return model::ApplicationSet(std::move(graphs));
}

Benchmark synth_benchmark(int index) {
  SynthParams params;
  switch (index) {
    case 1:
      params.seed = 1001;
      params.graph_count = 4;
      params.graph_utilization = 0.15;
      break;
    case 2:
      params.seed = 2002;
      params.graph_count = 5;
      params.min_tasks = 5;
      params.max_tasks = 9;
      params.graph_utilization = 0.12;
      break;
    default:
      throw std::invalid_argument("synth_benchmark: index must be 1 or 2");
  }
  return Benchmark{"Synth-" + std::to_string(index),
                   symmetric_platform(index == 1 ? 4 : 5),
                   synthetic_applications(params)};
}

}  // namespace ftmc::benchmarks
