// TGFF-style synthetic task-graph generator, used for the paper's Synth-1
// and Synth-2 benchmarks and for property-test fuzzing.
//
// Graphs are random DAGs grown as a random tree (each task after the first
// picks one earlier parent) plus extra forward edges, so every graph is
// connected and acyclic by construction.  Periods come from a harmonic menu
// (keeping the hyperperiod small), and per-graph WCET budgets are set as a
// fraction of the period so the generated systems are loaded but feasible —
// the "deadline far from makespan" regime in which the paper measures tiny
// rescue ratios for Synth-1/2.
#pragma once

#include "ftmc/benchmarks/benchmark.hpp"
#include "ftmc/util/rng.hpp"

namespace ftmc::benchmarks {

struct SynthParams {
  std::uint64_t seed = 1;
  std::size_t graph_count = 4;
  std::size_t min_tasks = 4;
  std::size_t max_tasks = 8;
  /// Harmonic period menu [us].
  std::vector<model::Time> period_menu = {500 * model::kMillisecond,
                                          1000 * model::kMillisecond,
                                          2000 * model::kMillisecond};
  /// Sum of task WCETs per graph, as a fraction of its period.
  double graph_utilization = 0.18;
  double bcet_fraction = 0.6;  ///< bcet ~= fraction * wcet (jittered)
  /// Probability of an extra forward edge between any earlier/later pair.
  double extra_edge_probability = 0.15;
  double droppable_fraction = 0.5;
  model::Time detection_overhead = 2 * model::kMillisecond;
  model::Time voting_overhead = 3 * model::kMillisecond;
  std::uint64_t max_channel_bytes = 2048;
  /// Reliability constraints drawn log-uniformly from this range
  /// [failures per us].
  double reliability_min = 1.0e-13;
  double reliability_max = 1.0e-11;
};

/// Generates the application set for the given parameters (deterministic in
/// `params.seed`).  At least one graph is kept non-droppable.
model::ApplicationSet synthetic_applications(const SynthParams& params);

/// The two synthetic benchmarks of the paper's evaluation (fixed seeds,
/// Synth-2 larger and busier than Synth-1).
Benchmark synth_benchmark(int index);

}  // namespace ftmc::benchmarks
