#include "ftmc/core/eval_store.hpp"

#include <fcntl.h>
#include <sys/file.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <bit>
#include <cerrno>
#include <cstring>
#include <span>
#include <utility>

#include "ftmc/core/serialize.hpp"
#include "ftmc/obs/metrics.hpp"
#include "ftmc/util/byte_stream.hpp"
#include "ftmc/util/file_io.hpp"
#include "ftmc/util/hash.hpp"
#include "ftmc/util/log.hpp"

namespace ftmc::core {
namespace {

struct StoreCounters {
  obs::Counter hits{"store.hits"};
  obs::Counter misses{"store.misses"};
  obs::Counter appends{"store.appends"};
  obs::Counter rebuilds{"store.index.rebuilds"};
  obs::Counter torn_bytes{"store.torn_bytes"};
  obs::Gauge bytes_mapped{"store.bytes_mapped"};
};

StoreCounters& counters() {
  static StoreCounters instance;
  return instance;
}

[[noreturn]] void fail(const std::string& what, const std::string& path) {
  throw StoreError(what + " '" + path + "': " + std::strerror(errno));
}

std::uint64_t load_u64(const std::uint8_t* p) {
  std::uint64_t value = 0;
  for (int i = 0; i < 8; ++i)
    value |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return value;
}

std::uint32_t load_u32(const std::uint8_t* p) {
  std::uint32_t value = 0;
  for (int i = 0; i < 4; ++i)
    value |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return value;
}

void store_u64(std::uint8_t* p, std::uint64_t value) {
  for (int i = 0; i < 8; ++i)
    p[i] = static_cast<std::uint8_t>(value >> (8 * i));
}

void write_all(int fd, const std::uint8_t* data, std::size_t size,
               const std::string& path) {
  std::size_t written = 0;
  while (written < size) {
    const ssize_t n = ::write(fd, data + written, size - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      fail("cannot append to evaluation store log", path);
    }
    written += static_cast<std::size_t>(n);
  }
}

void pread_all(int fd, std::uint8_t* data, std::size_t size,
               std::uint64_t offset, const std::string& path) {
  std::size_t done = 0;
  while (done < size) {
    const ssize_t n = ::pread(fd, data + done, size - done,
                              static_cast<off_t>(offset + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      fail("cannot read evaluation store log", path);
    }
    if (n == 0)
      throw StoreError("evaluation store log '" + path +
                       "' shrank while reading (concurrent truncation?)");
    done += static_cast<std::size_t>(n);
  }
}

std::uint64_t file_size_of(int fd, const std::string& path) {
  struct stat st;
  if (::fstat(fd, &st) != 0) fail("cannot stat evaluation store file", path);
  return static_cast<std::uint64_t>(st.st_size);
}

}  // namespace

EvalStore::EvalStore(std::string dir, EvalStoreOptions options)
    : dir_(std::move(dir)), options_(options) {
  if (!options_.read_only) {
    // mkdir -p: a --cache-dir root need not pre-exist.
    for (std::size_t slash = dir_.find('/', 1); slash != std::string::npos;
         slash = dir_.find('/', slash + 1)) {
      const std::string parent = dir_.substr(0, slash);
      if (::mkdir(parent.c_str(), 0755) != 0 && errno != EEXIST)
        fail("cannot create evaluation store directory", parent);
    }
    if (::mkdir(dir_.c_str(), 0755) != 0 && errno != EEXIST)
      fail("cannot create evaluation store directory", dir_);
  }
  try {
    open_log();
    const bool index_ok = load_index();
    const std::uint64_t scan_from =
        index_ok ? std::max<std::uint64_t>(stats_.log_bytes, kLogHeaderSize)
                 : kLogHeaderSize;
    if (log_file_size_ > 0) scan_log_tail(scan_from);
    map_log(log_valid_end_);
    // Count overlay keys the mapped index does not already know about.
    std::uint64_t fresh = 0;
    for (const auto& [key, offset] : overlay_) {
      std::uint64_t ignored;
      if (!index_lookup(key, &ignored)) ++fresh;
    }
    stats_.records = idx_record_count_ + fresh;
    stats_.log_bytes = log_valid_end_;
    if (!index_ok && !overlay_.empty()) {
      // The log holds records the index does not cover at all: the index
      // file was missing, stale, or corrupted.  Rebuild it from the log —
      // loudly, so silent index loss cannot masquerade as a cold store.
      ++stats_.index_rebuilds;
      counters().rebuilds.add(1);
      util::log_warn("evaluation store '", dir_, "': rebuilding index from ",
                     stats_.records, " logged records");
      if (!options_.read_only) persist_index_locked();
    }
    update_mapped_gauge_locked();
  } catch (...) {
    unmap_all();
    if (log_fd_ >= 0) ::close(log_fd_);
    log_fd_ = -1;
    throw;
  }
}

EvalStore::~EvalStore() {
  if (!options_.read_only && log_fd_ >= 0) {
    try {
      flush();
    } catch (const std::exception& error) {
      util::log_warn("evaluation store '", dir_,
                     "': flush on close failed: ", error.what());
    }
  }
  unmap_all();
  if (log_fd_ >= 0) ::close(log_fd_);
}

void EvalStore::open_log() {
  const std::string path = log_path();
  const int flags =
      options_.read_only ? O_RDONLY : (O_RDWR | O_CREAT);
  log_fd_ = ::open(path.c_str(), flags | O_CLOEXEC, 0644);
  if (log_fd_ < 0) fail("cannot open evaluation store log", path);
  log_file_size_ = file_size_of(log_fd_, path);
  if (log_file_size_ == 0) {
    if (options_.read_only) return;  // empty store: no header yet
    util::ByteWriter header;
    for (std::size_t i = 0; i < 8; ++i)
      header.u8(static_cast<std::uint8_t>(kLogMagic[i]));
    header.u32(kVersion);
    header.u32(0);  // reserved
    const std::vector<std::uint8_t> bytes = header.take();
    write_all(log_fd_, bytes.data(), bytes.size(), path);
    if (options_.durable_appends && ::fsync(log_fd_) != 0)
      fail("cannot fsync evaluation store log", path);
    log_file_size_ = kLogHeaderSize;
  }
  if (log_file_size_ < kLogHeaderSize)
    throw StoreError("evaluation store log '" + path + "' is truncated: " +
                     std::to_string(log_file_size_) +
                     " bytes is shorter than the 16-byte header");
  std::uint8_t header[kLogHeaderSize];
  pread_all(log_fd_, header, sizeof header, 0, path);
  if (std::memcmp(header, kLogMagic, 8) != 0)
    throw StoreError("not an ftmc evaluation store: magic bytes of '" + path +
                     "' are not \"FTMCSTOR\"");
  const std::uint32_t version = load_u32(header + 8);
  if (version != kVersion)
    throw StoreError("unsupported evaluation store version " +
                     std::to_string(version) + " in '" + path +
                     "' (this build reads v" + std::to_string(kVersion) +
                     ")");
}

bool EvalStore::load_index() {
  const std::string path = index_path();
  if (!util::file_exists(path)) return false;
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return false;
  const std::uint64_t size = file_size_of(fd, path);
  std::uint8_t header[kIndexHeaderSize];
  if (size < kIndexHeaderSize) {
    ::close(fd);
    return false;
  }
  pread_all(fd, header, sizeof header, 0, path);
  const std::uint64_t slot_count = load_u64(header + 16);
  const std::uint64_t record_count = load_u64(header + 24);
  const std::uint64_t covered = load_u64(header + 32);
  const std::uint64_t slots_digest = load_u64(header + 40);
  const bool plausible =
      std::memcmp(header, kIndexMagic, 8) == 0 &&
      load_u32(header + 8) == kVersion && slot_count > 0 &&
      std::has_single_bit(slot_count) && record_count <= slot_count &&
      size == kIndexHeaderSize + slot_count * 16 &&
      covered >= kLogHeaderSize && covered <= log_file_size_;
  if (!plausible) {
    ::close(fd);
    return false;
  }
  void* map = ::mmap(nullptr, static_cast<std::size_t>(size), PROT_READ,
                     MAP_SHARED, fd, 0);
  ::close(fd);  // the mapping outlives the descriptor
  if (map == MAP_FAILED) return false;
  const auto* bytes = static_cast<const std::uint8_t*>(map);
  if (util::fnv1a_bytes({bytes + kIndexHeaderSize,
                         static_cast<std::size_t>(slot_count * 16)}) !=
      slots_digest) {
    ::munmap(map, static_cast<std::size_t>(size));
    return false;
  }
  idx_map_ = bytes;
  idx_map_size_ = static_cast<std::size_t>(size);
  idx_slot_count_ = slot_count;
  idx_record_count_ = record_count;
  stats_.log_bytes = covered;  // where the tail scan starts
  return true;
}

void EvalStore::scan_log_tail(std::uint64_t from) {
  const std::string path = log_path();
  log_valid_end_ = std::min(from, log_file_size_);
  if (from >= log_file_size_) return;
  const std::size_t len = static_cast<std::size_t>(log_file_size_ - from);
  std::vector<std::uint8_t> tail(len);
  pread_all(log_fd_, tail.data(), len, from, path);
  std::size_t off = 0;
  while (off + kRecordHeaderSize <= len) {
    const std::uint64_t key = load_u64(tail.data() + off);
    const std::uint64_t cand_bytes = load_u32(tail.data() + off + 8);
    const std::uint64_t eval_bytes = load_u32(tail.data() + off + 12);
    const std::uint64_t digest = load_u64(tail.data() + off + 16);
    const std::uint64_t payload = cand_bytes + eval_bytes;
    if (off + kRecordHeaderSize + payload > len) break;
    const std::uint8_t* body = tail.data() + off + kRecordHeaderSize;
    if (util::fnv1a_bytes({body, static_cast<std::size_t>(payload)}) !=
        digest)
      break;
    overlay_[key] = from + off;
    off += kRecordHeaderSize + static_cast<std::size_t>(payload);
  }
  log_valid_end_ = from + off;
  overlay_end_ = log_valid_end_;
  const std::uint64_t torn = log_file_size_ - log_valid_end_;
  if (torn == 0) return;
  if (options_.strict_open)
    throw StoreError(
        "evaluation store log '" + path + "' has a torn " +
        std::to_string(torn) + "-byte tail at offset " +
        std::to_string(log_valid_end_) +
        " (crash mid-append); reopen without strict_open to recover the "
        "fully-written records");
  util::log_warn("evaluation store '", dir_, "': discarding torn ", torn,
                 "-byte log tail at offset ", log_valid_end_,
                 " (crash mid-append); ", overlay_.size(),
                 " fully-written tail records recovered");
  stats_.torn_bytes_discarded += torn;
  counters().torn_bytes.add(torn);
  if (!options_.read_only &&
      ::ftruncate(log_fd_, static_cast<off_t>(log_valid_end_)) != 0)
    fail("cannot truncate torn evaluation store log", path);
}

void EvalStore::map_log(std::uint64_t length) {
  if (length == 0) return;
  void* map = ::mmap(nullptr, static_cast<std::size_t>(length), PROT_READ,
                     MAP_SHARED, log_fd_, 0);
  if (map == MAP_FAILED) fail("cannot mmap evaluation store log", log_path());
  log_map_ = static_cast<const std::uint8_t*>(map);
  log_map_size_ = static_cast<std::size_t>(length);
}

void EvalStore::map_index(std::uint64_t file_size) {
  const int fd = ::open(index_path().c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) fail("cannot reopen evaluation store index", index_path());
  void* map = ::mmap(nullptr, static_cast<std::size_t>(file_size), PROT_READ,
                     MAP_SHARED, fd, 0);
  ::close(fd);
  if (map == MAP_FAILED)
    fail("cannot mmap evaluation store index", index_path());
  idx_map_ = static_cast<const std::uint8_t*>(map);
  idx_map_size_ = static_cast<std::size_t>(file_size);
}

void EvalStore::unmap_all() {
  if (log_map_ != nullptr)
    ::munmap(const_cast<std::uint8_t*>(log_map_), log_map_size_);
  log_map_ = nullptr;
  log_map_size_ = 0;
  if (idx_map_ != nullptr)
    ::munmap(const_cast<std::uint8_t*>(idx_map_), idx_map_size_);
  idx_map_ = nullptr;
  idx_map_size_ = 0;
  idx_slot_count_ = 0;
  idx_record_count_ = 0;
}

bool EvalStore::index_lookup(std::uint64_t key, std::uint64_t* offset) const {
  if (idx_slot_count_ == 0) return false;
  const std::uint64_t mask = idx_slot_count_ - 1;
  const std::uint8_t* slots = idx_map_ + kIndexHeaderSize;
  std::uint64_t i = key & mask;
  for (std::uint64_t probes = 0; probes < idx_slot_count_; ++probes) {
    const std::uint8_t* slot = slots + i * 16;
    const std::uint64_t slot_offset = load_u64(slot + 8);
    if (slot_offset == 0) return false;  // empty slot ends the probe chain
    if (load_u64(slot) == key) {
      *offset = slot_offset;
      return true;
    }
    i = (i + 1) & mask;
  }
  return false;
}

std::optional<Evaluation> EvalStore::read_record_locked(
    std::uint64_t offset, std::uint64_t key, const Candidate& candidate,
    bool* candidate_matches) const {
  *candidate_matches = false;
  const std::string path = log_path();
  std::uint8_t header[kRecordHeaderSize];
  if (offset + kRecordHeaderSize <= log_map_size_)
    std::memcpy(header, log_map_ + offset, sizeof header);
  else
    pread_all(log_fd_, header, sizeof header, offset, path);
  if (load_u64(header) != key)
    throw StoreError("evaluation store log '" + path +
                     "' record at offset " + std::to_string(offset) +
                     " does not carry the indexed key");
  const std::size_t cand_bytes = load_u32(header + 8);
  const std::size_t eval_bytes = load_u32(header + 12);
  const std::size_t payload = cand_bytes + eval_bytes;
  std::vector<std::uint8_t> copy;
  const std::uint8_t* body;
  if (offset + kRecordHeaderSize + payload <= log_map_size_) {
    body = log_map_ + offset + kRecordHeaderSize;
  } else {
    copy.resize(payload);
    pread_all(log_fd_, copy.data(), payload, offset + kRecordHeaderSize,
              path);
    body = copy.data();
  }
  try {
    util::ByteReader in({body, payload}, "store record");
    const Candidate stored = read_candidate(in);
    if (!(stored == candidate)) return std::nullopt;  // collision -> miss
    Evaluation evaluation = read_evaluation(in);
    *candidate_matches = true;
    return evaluation;
  } catch (const util::ByteStreamError& error) {
    throw StoreError("evaluation store log '" + path +
                     "' record at offset " + std::to_string(offset) +
                     " is corrupted: " + error.what());
  }
}

std::optional<Evaluation> EvalStore::find(std::uint64_t key,
                                          const Candidate& candidate) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t offset = 0;
  bool found = false;
  if (const auto it = overlay_.find(key); it != overlay_.end()) {
    offset = it->second;
    found = true;
  } else {
    found = index_lookup(key, &offset);
  }
  if (found) {
    bool matches = false;
    std::optional<Evaluation> evaluation =
        read_record_locked(offset, key, candidate, &matches);
    if (matches) {
      ++stats_.hits;
      counters().hits.add(1);
      return evaluation;
    }
  }
  ++stats_.misses;
  counters().misses.add(1);
  return std::nullopt;
}

void EvalStore::put(std::uint64_t key, const Candidate& candidate,
                    const Evaluation& evaluation) {
  if (options_.read_only)
    throw StoreError("evaluation store '" + dir_ +
                     "' is read-only: put() is not allowed");
  util::ByteWriter body;
  write_candidate(body, candidate);
  const std::size_t cand_bytes = body.size();
  write_evaluation(body, evaluation);
  const std::vector<std::uint8_t> payload = body.take();
  const std::size_t eval_bytes = payload.size() - cand_bytes;

  util::ByteWriter record_writer;
  record_writer.u64(key);
  record_writer.u32(static_cast<std::uint32_t>(cand_bytes));
  record_writer.u32(static_cast<std::uint32_t>(eval_bytes));
  record_writer.u64(util::fnv1a_bytes(payload));
  std::vector<std::uint8_t> record = record_writer.take();
  record.insert(record.end(), payload.begin(), payload.end());

  const std::string path = log_path();
  std::lock_guard<std::mutex> lock(mutex_);
  // Re-check residency under the lock: a concurrent evaluator may have
  // appended this candidate between the caller's find() and this put(), and
  // duplicate log records are pure bloat.
  std::uint64_t existing = 0;
  bool resident = false;
  if (const auto it = overlay_.find(key); it != overlay_.end()) {
    existing = it->second;
    resident = true;
  } else {
    resident = index_lookup(key, &existing);
  }
  if (resident) {
    bool matches = false;
    (void)read_record_locked(existing, key, candidate, &matches);
    if (matches) return;
  }

  // flock serializes appends across processes; within the process the mutex
  // already does.  One write(2) per record means a crash can only tear the
  // log's tail, which the per-record digest detects at the next open.
  if (::flock(log_fd_, LOCK_EX) != 0)
    fail("cannot lock evaluation store log", path);
  const off_t offset = ::lseek(log_fd_, 0, SEEK_END);
  if (offset < 0) {
    ::flock(log_fd_, LOCK_UN);
    fail("cannot seek evaluation store log", path);
  }
  try {
    write_all(log_fd_, record.data(), record.size(), path);
  } catch (...) {
    ::flock(log_fd_, LOCK_UN);
    throw;
  }
  if (options_.durable_appends && ::fsync(log_fd_) != 0) {
    ::flock(log_fd_, LOCK_UN);
    fail("cannot fsync evaluation store log", path);
  }
  ::flock(log_fd_, LOCK_UN);

  if (!resident) ++stats_.records;
  overlay_[key] = static_cast<std::uint64_t>(offset);
  overlay_end_ = std::max<std::uint64_t>(
      overlay_end_, static_cast<std::uint64_t>(offset) + record.size());
  ++stats_.appends;
  counters().appends.add(1);
}

void EvalStore::flush() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (options_.read_only || log_fd_ < 0) return;
  if (::fsync(log_fd_) != 0)
    fail("cannot fsync evaluation store log", log_path());
  persist_index_locked();
  update_mapped_gauge_locked();
}

void EvalStore::absorb_sibling_records_locked() {
  // Sibling processes sharing this log append their records under the same
  // flock ours use, so everything past this process's validated prefix is a
  // run of complete records from an arbitrary interleaving of writers.  The
  // index snapshot below claims coverage of every log byte up to `covered`;
  // absorbing the interleaved records first keeps that claim honest —
  // otherwise a sibling's records inside the covered range would be invisible
  // to every future open (the tail scan starts after `covered`).
  if (::flock(log_fd_, LOCK_SH) != 0)
    fail("cannot lock evaluation store log", log_path());
  std::uint64_t log_end = 0;
  try {
    log_end = file_size_of(log_fd_, log_path());
  } catch (...) {
    ::flock(log_fd_, LOCK_UN);
    throw;
  }
  ::flock(log_fd_, LOCK_UN);
  const std::uint64_t from = log_valid_end_;
  if (log_end <= from) return;
  // Bytes below log_end are immutable (the log is append-only), so the scan
  // itself needs no lock.
  const std::size_t len = static_cast<std::size_t>(log_end - from);
  std::vector<std::uint8_t> tail(len);
  pread_all(log_fd_, tail.data(), len, from, log_path());
  std::size_t off = 0;
  while (off + kRecordHeaderSize <= len) {
    const std::uint64_t key = load_u64(tail.data() + off);
    const std::uint64_t cand_bytes = load_u32(tail.data() + off + 8);
    const std::uint64_t eval_bytes = load_u32(tail.data() + off + 12);
    const std::uint64_t digest = load_u64(tail.data() + off + 16);
    const std::uint64_t payload = cand_bytes + eval_bytes;
    if (off + kRecordHeaderSize + payload > len) break;
    const std::uint8_t* body = tail.data() + off + kRecordHeaderSize;
    if (util::fnv1a_bytes({body, static_cast<std::size_t>(payload)}) !=
        digest)
      break;  // a sibling crashed mid-append; open() recovers/truncates
    overlay_.emplace(key, from + off);  // our own newer re-put offsets win
    off += kRecordHeaderSize + static_cast<std::size_t>(payload);
  }
  overlay_end_ = std::max(overlay_end_, from + off);
}

void EvalStore::persist_index_locked() {
  absorb_sibling_records_locked();
  // Merge the mapped index with the overlay (overlay wins: it holds the
  // newest offset for re-put keys).
  std::unordered_map<std::uint64_t, std::uint64_t> entries;
  entries.reserve(idx_record_count_ + overlay_.size());
  if (idx_slot_count_ > 0) {
    const std::uint8_t* slots = idx_map_ + kIndexHeaderSize;
    for (std::uint64_t i = 0; i < idx_slot_count_; ++i) {
      const std::uint64_t offset = load_u64(slots + i * 16 + 8);
      if (offset != 0) entries[load_u64(slots + i * 16)] = offset;
    }
  }
  for (const auto& [key, offset] : overlay_) entries[key] = offset;

  const std::uint64_t covered = std::max(log_valid_end_, overlay_end_);
  const std::uint64_t slot_count = std::bit_ceil(
      std::max<std::uint64_t>(16, entries.size() * 2));
  std::vector<std::uint8_t> slots(
      static_cast<std::size_t>(slot_count) * 16, 0);
  const std::uint64_t mask = slot_count - 1;
  for (const auto& [key, offset] : entries) {
    std::uint64_t i = key & mask;
    while (load_u64(slots.data() + i * 16 + 8) != 0) i = (i + 1) & mask;
    store_u64(slots.data() + i * 16, key);
    store_u64(slots.data() + i * 16 + 8, offset);
  }

  util::ByteWriter file;
  for (std::size_t i = 0; i < 8; ++i)
    file.u8(static_cast<std::uint8_t>(kIndexMagic[i]));
  file.u32(kVersion);
  file.u32(0);  // reserved
  file.u64(slot_count);
  file.u64(entries.size());
  file.u64(covered);
  file.u64(util::fnv1a_bytes(slots));
  std::vector<std::uint8_t> bytes = file.take();
  bytes.insert(bytes.end(), slots.begin(), slots.end());
  util::write_file_atomic(index_path(), bytes);

  if (idx_map_ != nullptr)
    ::munmap(const_cast<std::uint8_t*>(idx_map_), idx_map_size_);
  idx_map_ = nullptr;
  idx_map_size_ = 0;
  map_index(bytes.size());
  idx_slot_count_ = slot_count;
  idx_record_count_ = entries.size();

  // Remap the log so everything the new index covers is mmap-served.
  if (covered > log_map_size_) {
    if (log_map_ != nullptr)
      ::munmap(const_cast<std::uint8_t*>(log_map_), log_map_size_);
    log_map_ = nullptr;
    log_map_size_ = 0;
    map_log(covered);
    log_valid_end_ = covered;
  }
  overlay_.clear();
  stats_.records = entries.size();
  stats_.log_bytes = covered;
}

EvalStoreStats EvalStore::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  update_mapped_gauge_locked();
  return stats_;
}

void EvalStore::update_mapped_gauge_locked() const {
  stats_.bytes_mapped = log_map_size_ + idx_map_size_;
  counters().bytes_mapped.set(stats_.bytes_mapped);
}

std::string store_directory(const std::string& root,
                            std::uint64_t system_digest) {
  static const char* const kHex = "0123456789abcdef";
  std::string name = "sys-";
  for (int shift = 60; shift >= 0; shift -= 4)
    name.push_back(kHex[(system_digest >> shift) & 0xF]);
  return root + "/" + name;
}

}  // namespace ftmc::core
