// Persistent, memory-mapped, content-addressed evaluation store — the L2
// behind EvaluationCache.
//
// The in-process EvaluationCache (the L1) dies with its process, so every
// campaign shard, resume, and repeated experiment re-pays Algorithm 1 from
// zero.  EvalStore persists (key, Candidate, Evaluation) triples to disk so
// memoized evaluations survive restarts and are shared across campaign
// shards, `ftmc optimize --cache-dir=` invocations, and `ftmc serve`
// clients.  Keys are Evaluator::candidate_key values — the FNV-1a candidate
// content hash seeded with the options fingerprint — and lookups verify the
// stored candidate byte-for-byte, so a hash collision degrades to a miss,
// never a wrong result (the same contract as EvaluationCache).
//
// On-disk layout under one directory:
//
//   evals.log   append-only record log
//     [0..16)   header: magic "FTMCSTOR" | version u32 | reserved u32
//     records   key u64 | cand_bytes u32 | eval_bytes u32 | digest u64
//               | payload (serialized Candidate then Evaluation,
//                 little-endian field stream of core/serialize.hpp);
//               digest = fnv1a_bytes(payload)
//
//   evals.idx   open-addressing index snapshot (rewritten atomically)
//     [0..48)   header: magic "FTMCSIDX" | version u32 | reserved u32
//               | slot_count u64 | record_count u64 | log_bytes u64
//               | slots_digest u64
//     slots     slot_count x (key u64, log_offset u64); offset 0 = empty;
//               probe sequence: key & (slot_count-1), linear
//
// Crash safety: appends are a single flock-guarded write(2), so a crash can
// only tear the *tail* of the log.  Every record carries its own payload
// digest; open() walks the log suffix not covered by the index, recovers
// every fully-written record, and truncates the torn tail loudly (or, with
// strict_open, rejects it with StoreError so tests and audits can observe
// the damage).  The index is a pure cache of the log — when missing, stale,
// or corrupted it is rebuilt from the log and the rebuild is counted.  The
// log prefix and the index are both mmap'd read-only; records appended by
// this process after open are served via pread until flush() remaps.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "ftmc/core/evaluator.hpp"

namespace ftmc::core {

/// Structural store damage (bad magic/version, unreadable files, torn tail
/// under strict_open).  Ordinary misses and collisions are not errors.
class StoreError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct EvalStoreOptions {
  /// Opens the log read-only and never writes the index back; put() throws.
  bool read_only = false;
  /// Rejects a torn log tail with StoreError instead of truncating it.
  bool strict_open = false;
  /// fsync(2) the log after every append (durability over throughput).
  bool durable_appends = false;
};

struct EvalStoreStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t appends = 0;
  std::uint64_t records = 0;        ///< distinct keys currently resident
  std::uint64_t bytes_mapped = 0;   ///< log + index bytes mmap'd
  std::uint64_t log_bytes = 0;      ///< validated log length at open
  std::uint64_t torn_bytes_discarded = 0;
  std::uint64_t index_rebuilds = 0;
};

class EvalStore {
 public:
  static constexpr std::uint32_t kVersion = 1;
  static constexpr const char* kLogMagic = "FTMCSTOR";
  static constexpr const char* kIndexMagic = "FTMCSIDX";
  static constexpr std::size_t kLogHeaderSize = 16;
  static constexpr std::size_t kRecordHeaderSize = 24;
  static constexpr std::size_t kIndexHeaderSize = 48;

  /// Opens (creating when absent, unless read_only) the store rooted at
  /// directory `dir`.  Throws StoreError on structural damage.
  explicit EvalStore(std::string dir, EvalStoreOptions options = {});
  ~EvalStore();

  EvalStore(const EvalStore&) = delete;
  EvalStore& operator=(const EvalStore&) = delete;

  /// Looks up `key` (an Evaluator::candidate_key) and verifies the stored
  /// candidate matches exactly; a collision counts as a miss.
  std::optional<Evaluation> find(std::uint64_t key,
                                 const Candidate& candidate);

  /// Appends the evaluation for `key` (skipped when an identical candidate
  /// is already resident).  Throws StoreError on a read-only store.
  void put(std::uint64_t key, const Candidate& candidate,
           const Evaluation& evaluation);

  /// fsyncs the log and atomically rewrites the index to cover it; called
  /// by the destructor on writable stores.
  void flush();

  EvalStoreStats stats() const;

  const std::string& directory() const noexcept { return dir_; }
  std::string log_path() const { return dir_ + "/evals.log"; }
  std::string index_path() const { return dir_ + "/evals.idx"; }

 private:
  struct TailRecord {
    std::uint64_t key;
    std::uint64_t offset;
  };

  void open_log();
  bool load_index();
  void scan_log_tail(std::uint64_t from);
  void map_log(std::uint64_t length);
  void map_index(std::uint64_t file_size);
  void unmap_all();
  void persist_index_locked();
  void absorb_sibling_records_locked();
  bool index_lookup(std::uint64_t key, std::uint64_t* offset) const;
  std::optional<Evaluation> read_record_locked(std::uint64_t offset,
                                               std::uint64_t key,
                                               const Candidate& candidate,
                                               bool* candidate_matches) const;
  void update_mapped_gauge_locked() const;

  std::string dir_;
  EvalStoreOptions options_;

  int log_fd_ = -1;
  std::uint64_t log_file_size_ = 0;  ///< size observed at open
  const std::uint8_t* log_map_ = nullptr;
  std::size_t log_map_size_ = 0;
  std::uint64_t log_valid_end_ = 0;  ///< validated log length (>= mapped)
  std::uint64_t overlay_end_ = 0;    ///< end of the last record this
                                     ///< process appended (index coverage)

  const std::uint8_t* idx_map_ = nullptr;
  std::size_t idx_map_size_ = 0;
  std::uint64_t idx_slot_count_ = 0;
  std::uint64_t idx_record_count_ = 0;

  /// Records not covered by the mapped index: the tail scanned at open plus
  /// everything put() since the last flush().  Key -> log offset.
  std::unordered_map<std::uint64_t, std::uint64_t> overlay_;

  mutable std::mutex mutex_;
  mutable EvalStoreStats stats_;
};

/// Store directory for one system under a shared --cache-dir root:
/// "<root>/sys-<16 hex digits of system_digest>".  Store keys hash the
/// *candidate* only, so candidates of unrelated systems can collide
/// byte-for-byte and sharing one store across systems could return a wrong
/// evaluation — each system file therefore gets its own store, keyed by
/// the file's content digest (util::fnv1a_bytes of its bytes).
std::string store_directory(const std::string& root,
                            std::uint64_t system_digest);

}  // namespace ftmc::core
