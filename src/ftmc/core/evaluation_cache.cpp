#include "ftmc/core/evaluation_cache.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

#include "ftmc/obs/metrics.hpp"

namespace ftmc::core {

namespace {

/// Registry mirror of CacheStats: the per-shard counters stay the source
/// of truth for GaResult::cache (an exact per-instance tally), while the
/// process-wide registry aggregates across every cache instance for
/// --metrics-json / dashboards.
struct CacheCounters {
  obs::Counter hits{"cache.eval.hits"};
  obs::Counter misses{"cache.eval.misses"};
  obs::Counter insertions{"cache.eval.insertions"};
  obs::Counter evictions{"cache.eval.evictions"};
};

CacheCounters& cache_counters() {
  static CacheCounters counters;
  return counters;
}

}  // namespace

EvaluationCache::EvaluationCache(std::size_t capacity, std::size_t shards) {
  if (capacity == 0)
    throw std::invalid_argument("EvaluationCache: zero capacity");
  if (shards == 0) throw std::invalid_argument("EvaluationCache: zero shards");
  const std::size_t shard_count = std::bit_ceil(shards);
  capacity_ = std::max(capacity, shard_count);  // >= 1 entry per shard
  shard_capacity_ = capacity_ / shard_count;
  shards_.reserve(shard_count);
  for (std::size_t i = 0; i < shard_count; ++i)
    shards_.push_back(std::make_unique<Shard>());
}

std::optional<Evaluation> EvaluationCache::find(std::uint64_t key,
                                                const Candidate& candidate) {
  Shard& shard = shard_of(key);
  std::lock_guard lock(shard.mutex);
  const auto it = shard.table.find(key);
  if (it == shard.table.end() || !(it->second.candidate == candidate)) {
    // Absent, or a 64-bit collision between distinct candidates: both are
    // misses — the caller recomputes, correctness is never at stake.
    ++shard.misses;
    cache_counters().misses.add(1);
    return std::nullopt;
  }
  ++shard.hits;
  cache_counters().hits.add(1);
  return it->second.evaluation;
}

void EvaluationCache::insert(std::uint64_t key, const Candidate& candidate,
                             const Evaluation& evaluation) {
  Shard& shard = shard_of(key);
  std::lock_guard lock(shard.mutex);
  const auto it = shard.table.find(key);
  if (it != shard.table.end()) {
    it->second = Entry{candidate, evaluation};
    return;
  }
  if (shard.table.size() >= shard_capacity_) {
    // Bounded shard: drop an arbitrary resident entry.  The DSE working set
    // is dominated by the recent archive, and a wrong eviction only costs
    // one recomputation.
    shard.table.erase(shard.table.begin());
    ++shard.evictions;
    cache_counters().evictions.add(1);
  }
  shard.table.emplace(key, Entry{candidate, evaluation});
  ++shard.insertions;
  cache_counters().insertions.add(1);
}

CacheStats EvaluationCache::stats() const {
  CacheStats stats;
  for (const auto& shard : shards_) {
    std::lock_guard lock(shard->mutex);
    stats.hits += shard->hits;
    stats.misses += shard->misses;
    stats.insertions += shard->insertions;
    stats.evictions += shard->evictions;
    stats.entries += shard->table.size();
  }
  return stats;
}

void EvaluationCache::clear() {
  for (auto& shard : shards_) {
    std::lock_guard lock(shard->mutex);
    shard->table.clear();
  }
}

}  // namespace ftmc::core
