#include "ftmc/core/evaluation_cache.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

#include "ftmc/obs/metrics.hpp"

namespace ftmc::core {

namespace {

/// Registry mirror of CacheStats: the per-shard counters stay the source
/// of truth for GaResult::cache (an exact per-instance tally), while the
/// process-wide registry aggregates across every cache instance for
/// --metrics-json / dashboards.
struct CacheCounters {
  obs::Counter hits{"cache.eval.hits"};
  obs::Counter misses{"cache.eval.misses"};
  obs::Counter insertions{"cache.eval.insertions"};
  obs::Counter evictions{"cache.eval.evictions"};
  obs::Counter byte_evictions{"cache.eval.byte_evictions"};
};

CacheCounters& cache_counters() {
  static CacheCounters counters;
  return counters;
}

}  // namespace

EvaluationCache::EvaluationCache(std::size_t capacity, std::size_t shards,
                                 std::size_t capacity_bytes) {
  if (capacity == 0)
    throw std::invalid_argument("EvaluationCache: zero capacity");
  if (shards == 0) throw std::invalid_argument("EvaluationCache: zero shards");
  const std::size_t shard_count = std::bit_ceil(shards);
  capacity_ = std::max(capacity, shard_count);  // >= 1 entry per shard
  capacity_bytes_ = capacity_bytes;
  shard_capacity_ = capacity_ / shard_count;
  shard_byte_capacity_ = capacity_bytes_ / shard_count;
  shards_.reserve(shard_count);
  for (std::size_t i = 0; i < shard_count; ++i)
    shards_.push_back(std::make_unique<Shard>());
}

std::size_t EvaluationCache::entry_footprint(
    const Candidate& candidate, const Evaluation& evaluation) noexcept {
  std::size_t bytes = sizeof(Entry);
  bytes += (candidate.allocation.size() + candidate.drop.size() + 7) / 8;
  bytes += candidate.plan.size() * sizeof(hardening::TaskHardening);
  for (const hardening::TaskHardening& task : candidate.plan)
    bytes += task.replica_pes.size() * sizeof(model::ProcessorId);
  bytes += candidate.base_mapping.size() * sizeof(model::ProcessorId);
  bytes += evaluation.graph_wcrt.size() * sizeof(model::Time);
  return bytes;
}

void EvaluationCache::evict_one(Shard& shard, bool byte_bound) {
  // Bounded shard: drop an arbitrary resident entry.  The DSE working set
  // is dominated by the recent archive, and a wrong eviction only costs
  // one recomputation.
  const auto victim = shard.table.begin();
  shard.bytes -= entry_footprint(victim->second.candidate,
                                 victim->second.evaluation);
  shard.table.erase(victim);
  ++shard.evictions;
  cache_counters().evictions.add(1);
  if (byte_bound) {
    ++shard.byte_evictions;
    cache_counters().byte_evictions.add(1);
  }
}

std::optional<Evaluation> EvaluationCache::find(std::uint64_t key,
                                                const Candidate& candidate) {
  Shard& shard = shard_of(key);
  std::lock_guard lock(shard.mutex);
  const auto it = shard.table.find(key);
  if (it == shard.table.end() || !(it->second.candidate == candidate)) {
    // Absent, or a 64-bit collision between distinct candidates: both are
    // misses — the caller recomputes, correctness is never at stake.
    ++shard.misses;
    cache_counters().misses.add(1);
    return std::nullopt;
  }
  ++shard.hits;
  cache_counters().hits.add(1);
  return it->second.evaluation;
}

void EvaluationCache::insert(std::uint64_t key, const Candidate& candidate,
                             const Evaluation& evaluation) {
  const std::size_t footprint = entry_footprint(candidate, evaluation);
  Shard& shard = shard_of(key);
  std::lock_guard lock(shard.mutex);
  const auto it = shard.table.find(key);
  if (it != shard.table.end()) {
    shard.bytes -= entry_footprint(it->second.candidate,
                                   it->second.evaluation);
    it->second = Entry{candidate, evaluation};
    shard.bytes += footprint;
    return;
  }
  if (shard.table.size() >= shard_capacity_) evict_one(shard, false);
  if (shard_byte_capacity_ > 0)
    // Make room under the byte bound before inserting, so the new entry is
    // never its own victim (an oversized single entry is still admitted).
    while (!shard.table.empty() &&
           shard.bytes + footprint > shard_byte_capacity_)
      evict_one(shard, true);
  shard.table.emplace(key, Entry{candidate, evaluation});
  shard.bytes += footprint;
  ++shard.insertions;
  cache_counters().insertions.add(1);
}

CacheStats EvaluationCache::stats() const {
  CacheStats stats;
  for (const auto& shard : shards_) {
    // One lock hold per shard covers its counters AND its table, so each
    // shard contributes an internally consistent snapshot (no torn reads
    // between, say, `insertions` and `entries` while a writer is mid-insert
    // on that shard).
    std::lock_guard lock(shard->mutex);
    stats.hits += shard->hits;
    stats.misses += shard->misses;
    stats.insertions += shard->insertions;
    stats.evictions += shard->evictions;
    stats.byte_evictions += shard->byte_evictions;
    stats.entries += shard->table.size();
    stats.bytes += shard->bytes;
  }
  return stats;
}

void EvaluationCache::clear() {
  for (auto& shard : shards_) {
    std::lock_guard lock(shard->mutex);
    shard->table.clear();
    shard->bytes = 0;
  }
}

}  // namespace ftmc::core
