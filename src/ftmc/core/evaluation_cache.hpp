// Content-addressed memoization of Evaluator::evaluate results.
//
// The DSE hot path reruns Algorithm 1 — one normal-state pass plus one
// holistic analysis per transition scenario — for every offspring of every
// generation, even when crossover/mutation/repair regenerate a candidate
// the GA has already seen (increasingly common once the archive converges).
// This cache keys the full Evaluation by a stable 64-bit content hash of
// the decoded Candidate (allocation, drop set, hardening plan, base
// mapping) mixed with a fingerprint of the evaluator's options, and stores
// the candidate itself so lookups verify exact equality — a hash collision
// degrades to a miss, never to a wrong result.
//
// Concurrency: the table is sharded by hash, one striped mutex per shard,
// so concurrent GA workers mostly touch disjoint shards.  Eviction is a
// cheap per-shard bounded policy (drop an arbitrary resident entry when the
// shard is full); hit/miss/insert/evict counters are aggregated on demand.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "ftmc/core/evaluator.hpp"

namespace ftmc::core {

/// Aggregated cache counters.  Every per-shard contribution (counters,
/// entry count, and byte tally) is read under that shard's stripe mutex in
/// one critical section, so the snapshot is internally consistent: the
/// invariant entries == insertions - evictions holds in every snapshot even
/// while the pool is hammering the cache.
struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
  /// Subset of `evictions` forced by the byte bound rather than the entry
  /// bound (zero when capacity_bytes() == 0).
  std::uint64_t byte_evictions = 0;
  std::size_t entries = 0;
  /// Estimated heap footprint of the resident entries.
  std::size_t bytes = 0;

  std::uint64_t lookups() const noexcept { return hits + misses; }
  double hit_rate() const noexcept {
    const std::uint64_t total = lookups();
    return total == 0 ? 0.0 : static_cast<double>(hits) /
                                  static_cast<double>(total);
  }
};

class EvaluationCache {
 public:
  /// `capacity` bounds the total resident entries and `capacity_bytes`
  /// (0 = unbounded) their estimated heap footprint; both are split evenly
  /// across `shards`, which is rounded up to a power of two.  Whichever
  /// bound trips first evicts.
  explicit EvaluationCache(std::size_t capacity = 1 << 16,
                           std::size_t shards = 16,
                           std::size_t capacity_bytes = 0);

  EvaluationCache(const EvaluationCache&) = delete;
  EvaluationCache& operator=(const EvaluationCache&) = delete;

  std::size_t capacity() const noexcept { return capacity_; }
  std::size_t capacity_bytes() const noexcept { return capacity_bytes_; }
  std::size_t shard_count() const noexcept { return shards_.size(); }

  /// Estimated resident footprint of one cached (candidate, evaluation)
  /// pair — the unit the byte bound and CacheStats::bytes account in.
  static std::size_t entry_footprint(const Candidate& candidate,
                                     const Evaluation& evaluation) noexcept;

  /// Looks up `key` (as produced by Evaluator::candidate_key) and verifies
  /// the stored candidate matches exactly.  Counts a hit or a miss.
  std::optional<Evaluation> find(std::uint64_t key,
                                 const Candidate& candidate);

  /// Inserts (or overwrites) the evaluation for `key`, evicting an
  /// arbitrary resident entry when the shard is at capacity.
  void insert(std::uint64_t key, const Candidate& candidate,
              const Evaluation& evaluation);

  /// Consistent aggregate over all shards.
  CacheStats stats() const;

  /// Drops all entries; counters are preserved.
  void clear();

 private:
  struct Entry {
    Candidate candidate;
    Evaluation evaluation;
  };
  struct Shard {
    mutable std::mutex mutex;
    std::unordered_map<std::uint64_t, Entry> table;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;
    std::uint64_t byte_evictions = 0;
    std::size_t bytes = 0;  ///< sum of entry_footprint over `table`
  };

  void evict_one(Shard& shard, bool byte_bound);

  Shard& shard_of(std::uint64_t key) noexcept {
    // digest() avalanches, so the top bits are as good as any; the bottom
    // bits index the shard table buckets.
    return *shards_[(key >> 48) & (shards_.size() - 1)];
  }

  std::size_t capacity_;
  std::size_t capacity_bytes_;
  std::size_t shard_capacity_;
  std::size_t shard_byte_capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace ftmc::core
