#include "ftmc/core/evaluator.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "ftmc/core/eval_store.hpp"
#include "ftmc/core/evaluation_cache.hpp"
#include "ftmc/util/hash.hpp"

namespace ftmc::core {

std::uint64_t candidate_hash(const Candidate& candidate, std::uint64_t seed) {
  util::Fnv1aHasher hasher(seed);
  hasher.feed_bits(candidate.allocation);
  hasher.feed_bits(candidate.drop);
  hasher.feed(static_cast<std::uint64_t>(candidate.plan.size()));
  for (const hardening::TaskHardening& decision : candidate.plan) {
    hasher.feed(static_cast<std::uint8_t>(decision.technique));
    hasher.feed(decision.reexecutions);
    hasher.feed_range(std::span<const model::ProcessorId>(
        decision.replica_pes));
    hasher.feed(decision.voter_pe);
  }
  hasher.feed_range(std::span<const model::ProcessorId>(
      candidate.base_mapping));
  return hasher.digest();
}

Evaluator::Evaluator(const model::Architecture& arch,
                     const model::ApplicationSet& apps,
                     const sched::SchedulingAnalysis& backend)
    : arch_(&arch), apps_(&apps), backend_(&backend), options_() {}

Evaluator::Evaluator(const model::Architecture& arch,
                     const model::ApplicationSet& apps,
                     const sched::SchedulingAnalysis& backend,
                     Options options)
    : arch_(&arch), apps_(&apps), backend_(&backend), options_(options) {}

std::string Evaluator::structural_error(const Candidate& candidate) const {
  if (candidate.allocation.size() != arch_->processor_count())
    return "allocation size mismatch";
  if (candidate.drop.size() != apps_->graph_count())
    return "drop set size mismatch";
  if (candidate.plan.size() != apps_->task_count())
    return "hardening plan size mismatch";
  if (candidate.base_mapping.size() != apps_->task_count())
    return "base mapping size mismatch";
  for (std::uint32_t g = 0; g < apps_->graph_count(); ++g)
    if (candidate.drop[g] && !apps_->graph(model::GraphId{g}).droppable())
      return "non-droppable graph in drop set";
  bool any_allocated = false;
  for (bool allocated : candidate.allocation) any_allocated |= allocated;
  if (!any_allocated) return "no processor allocated";
  for (const model::ProcessorId pe : candidate.base_mapping)
    if (pe.value >= arch_->processor_count()) return "mapped PE out of range";
  try {
    hardening::validate_plan(*apps_, candidate.plan,
                             arch_->processor_count());
  } catch (const std::invalid_argument& error) {
    return error.what();
  }
  return {};
}

std::uint64_t Evaluator::options_fingerprint() const {
  util::Fnv1aHasher hasher;
  hasher.feed(static_cast<std::uint8_t>(options_.mode));
  hasher.feed(static_cast<std::uint8_t>(options_.policy));
  hasher.feed(options_.infeasibility_penalty);
  hasher.feed(options_.allow_dropping);
  return hasher.digest();
}

std::uint64_t Evaluator::candidate_key(const Candidate& candidate) const {
  return candidate_hash(candidate, options_fingerprint());
}

Evaluation Evaluator::evaluate(const Candidate& candidate) const {
  return evaluate(candidate, nullptr);
}

Evaluation Evaluator::evaluate(const Candidate& candidate,
                               bool* cache_hit) const {
  if (cache_hit != nullptr) *cache_hit = false;
  if (options_.cache == nullptr && options_.store == nullptr)
    return evaluate_uncached(candidate);

  const std::uint64_t key = candidate_key(candidate);
  if (options_.cache != nullptr) {
    if (std::optional<Evaluation> cached =
            options_.cache->find(key, candidate)) {
      if (cache_hit != nullptr) *cache_hit = true;
      return *std::move(cached);
    }
  }
  if (options_.store != nullptr) {
    // L2: the persistent store.  A hit warms the in-process L1 so repeated
    // lookups stop paying the decode.
    if (std::optional<Evaluation> stored =
            options_.store->find(key, candidate)) {
      if (options_.cache != nullptr)
        options_.cache->insert(key, candidate, *stored);
      if (cache_hit != nullptr) *cache_hit = true;
      return *std::move(stored);
    }
  }
  // Concurrent workers evaluating the same fresh candidate may both miss
  // and compute; the duplicate insert is a benign overwrite with an
  // identical value (evaluation is deterministic).
  Evaluation evaluation = evaluate_uncached(candidate);
  if (options_.cache != nullptr)
    options_.cache->insert(key, candidate, evaluation);
  if (options_.store != nullptr)
    options_.store->put(key, candidate, evaluation);
  return evaluation;
}

Evaluation Evaluator::evaluate_uncached(const Candidate& candidate) const {
  if (const std::string error = structural_error(candidate); !error.empty())
    throw std::invalid_argument("Evaluator::evaluate: " + error);

  Evaluation evaluation;

  // Mapping validity: every PE the candidate actually uses (base mapping,
  // replicas, voters) must be allocated.
  auto allocated = [&](model::ProcessorId pe) {
    return candidate.allocation[pe.value];
  };
  evaluation.mapping_valid = true;
  for (const model::ProcessorId pe : candidate.base_mapping)
    evaluation.mapping_valid &= allocated(pe);
  for (const hardening::TaskHardening& decision : candidate.plan) {
    for (const model::ProcessorId pe : decision.replica_pes)
      evaluation.mapping_valid &= allocated(pe);
    if (decision.technique == hardening::Technique::kActiveReplication ||
        decision.technique == hardening::Technique::kPassiveReplication)
      evaluation.mapping_valid &= allocated(decision.voter_pe);
  }

  const hardening::ReliabilityReport reliability = hardening::check_reliability(
      *arch_, *apps_, candidate.plan, candidate.base_mapping);
  evaluation.reliability_ok = reliability.all_satisfied;

  const hardening::HardenedSystem system = hardening::apply_hardening(
      *apps_, candidate.plan, candidate.base_mapping,
      arch_->processor_count());

  DropSet drop = candidate.drop;
  if (!options_.allow_dropping)
    drop.assign(apps_->graph_count(), false);

  const McAnalysis analysis(*backend_, options_.policy);
  const McAnalysisResult verdict = analysis.analyze(
      *arch_, system, drop, options_.mode, options_.scenario_pool);
  evaluation.normal_schedulable = verdict.normal_schedulable;
  evaluation.critical_schedulable = verdict.critical_schedulable;
  evaluation.scenario_count = verdict.scenario_count;
  evaluation.scenario_solves = verdict.scenario_solves;
  evaluation.graph_wcrt.reserve(system.apps.graph_count());
  for (std::uint32_t g = 0; g < system.apps.graph_count(); ++g) {
    // Dropped applications carry no critical-state guarantee; report their
    // normal-state bound (the guarantee they do have).
    evaluation.graph_wcrt.push_back(
        drop[g] ? verdict.normal.graph_wcrt(system.apps, model::GraphId{g})
                : verdict.graph_wcrt(system.apps, model::GraphId{g}));
  }

  // Power needs a consistent allocation even for mapping-invalid
  // candidates; widen to the PEs actually used so the objective stays
  // defined (the penalty dominates anyway).
  Allocation power_allocation = candidate.allocation;
  for (const model::ProcessorId pe : system.mapping.flat())
    power_allocation[pe.value] = true;
  evaluation.power =
      expected_power(*arch_, system, power_allocation, &drop);
  evaluation.service = service_value(*apps_, drop);

  if (!evaluation.feasible()) {
    // Graded penalty: infeasible candidates are pushed far above any
    // feasible power, but remain ordered by how badly they violate the
    // constraints, giving the GA a gradient towards feasibility (a flat
    // penalty makes every infeasible candidate equivalent and the search
    // blind until the first feasible point appears).
    double violation = 0.0;
    for (std::uint32_t g = 0; g < system.apps.graph_count(); ++g) {
      const model::GraphId id{g};
      const model::TaskGraph& graph = system.apps.graph(id);
      const model::Time deadline = graph.deadline();
      // Dropped applications only owe their deadline in the normal state.
      const model::Time wcrt = drop[g]
                                   ? verdict.normal.graph_wcrt(system.apps, id)
                                   : verdict.graph_wcrt(system.apps, id);
      if (wcrt <= deadline) continue;
      // Continuous miss measure: partial overrun plus the fraction of the
      // graph's tasks already past the deadline — a mapping that fixes some
      // tasks of a still-failing graph must score better than one that
      // fixes none, or the GA sees a plateau.
      std::size_t late = 0;
      for (std::uint32_t v = 0; v < graph.task_count(); ++v) {
        const std::size_t flat = system.apps.flat_index({g, v});
        const model::Time bound = drop[g]
                                      ? verdict.normal.windows[flat].max_finish
                                      : verdict.wcrt[flat];
        if (bound > deadline) ++late;
      }
      violation += 0.5 +
                   static_cast<double>(late) /
                       static_cast<double>(graph.task_count()) +
                   std::min(2.0, static_cast<double>(wcrt - deadline) /
                                     static_cast<double>(deadline));
    }
    for (std::uint32_t g = 0; g < reliability.failure_rate.size(); ++g) {
      if (reliability.satisfied[g]) continue;
      const double bound =
          apps_->graph(model::GraphId{g}).reliability_constraint();
      const double ratio = reliability.failure_rate[g] / bound;
      violation += std::min(10.0, 1.0 + std::log10(std::max(ratio, 1.0)));
    }
    if (!evaluation.mapping_valid) violation += 5.0;
    evaluation.power += options_.infeasibility_penalty * (1.0 + violation);
  }
  return evaluation;
}

}  // namespace ftmc::core
