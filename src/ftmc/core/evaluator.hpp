// Candidate evaluation: feasibility (reliability + schedulability + mapping
// validity) and objective values (expected power, quality of service) for a
// fully decoded design point.  This is the fitness function behind the DSE
// engine and is also usable standalone (examples/quickstart.cpp).
#pragma once

#include <cstdint>
#include <string>

#include "ftmc/core/mc_analysis.hpp"
#include "ftmc/core/objectives.hpp"
#include "ftmc/hardening/reliability.hpp"
#include "ftmc/sched/analysis.hpp"

namespace ftmc::core {

class EvaluationCache;
class EvalStore;

/// A decoded design point (the GA's phenotype, Figure 4): which PEs are
/// powered, which droppable applications are sacrificed in the critical
/// state, how every task is hardened, and where every original task runs.
struct Candidate {
  Allocation allocation;                         ///< per PE
  DropSet drop;                                  ///< per application
  hardening::HardeningPlan plan;                 ///< per original task
  std::vector<model::ProcessorId> base_mapping;  ///< per original task

  bool operator==(const Candidate&) const = default;
};

/// Stable content hash of a candidate (ftmc::util::Fnv1aHasher over every
/// field, length-prefixed), seeded with `seed`.  Identical across runs for
/// identical candidates; the basis of EvaluationCache keys.
std::uint64_t candidate_hash(const Candidate& candidate,
                             std::uint64_t seed = 0);

/// Evaluation verdict + objectives.
struct Evaluation {
  bool mapping_valid = false;      ///< all used PEs are allocated
  bool reliability_ok = false;     ///< every f_t constraint holds
  bool normal_schedulable = false;
  bool critical_schedulable = false;
  bool feasible() const noexcept {
    return mapping_valid && reliability_ok && normal_schedulable &&
           critical_schedulable;
  }

  /// Expected power [mW]; includes the infeasibility penalty when the
  /// candidate is infeasible (paper: "penalize the solution with an
  /// exceedingly bad fitness value").
  double power = 0.0;
  /// QoS after dropping (to be maximized).
  double service = 0.0;
  /// Transition scenarios analyzed by Algorithm 1.
  std::size_t scenario_count = 0;
  /// Backend fixed-point solves run by Algorithm 1 (normal + Naive pass +
  /// unique scenarios after dedup); deterministic for a given candidate.
  std::size_t scenario_solves = 0;
  /// WCRT bound of every graph (flat over graphs of T'), for reporting.
  std::vector<model::Time> graph_wcrt;
};

class Evaluator {
 public:
  struct Options {
    McAnalysis::Mode mode = McAnalysis::Mode::kProposed;
    sched::PriorityPolicy policy =
        sched::PriorityPolicy::kRateMonotonic;
    /// Added to the power of infeasible candidates.
    double infeasibility_penalty = 1.0e9;
    /// When false, candidates whose drop set is non-empty are rejected
    /// (used for the "no task dropping" ablation of Section 5.2).
    bool allow_dropping = true;
    /// Shared memoization table for evaluate(); internally synchronized, so
    /// one cache may serve many concurrent evaluator threads.  The key mixes
    /// in a fingerprint of these options, so evaluators with different
    /// modes/policies can safely share one cache.  Must outlive the
    /// evaluator; null disables memoization.
    EvaluationCache* cache = nullptr;
    /// Persistent L2 behind `cache`: consulted on an L1 miss (a hit warms
    /// the L1) and appended to after every fresh evaluation, so memoized
    /// results survive restarts and are shared across campaign shards and
    /// serve clients.  Keys mix in the options fingerprint, exactly like
    /// the L1.  Must outlive the evaluator; null disables persistence.
    EvalStore* store = nullptr;
    /// Runs Algorithm 1's independent transition scenarios concurrently on
    /// this pool (see McAnalysis::analyze); results stay bitwise identical
    /// to the sequential path.  Must outlive the evaluator; null keeps the
    /// analysis sequential.
    util::ThreadPool* scenario_pool = nullptr;
  };

  /// All references must outlive the evaluator.
  Evaluator(const model::Architecture& arch,
            const model::ApplicationSet& apps,
            const sched::SchedulingAnalysis& backend);
  Evaluator(const model::Architecture& arch,
            const model::ApplicationSet& apps,
            const sched::SchedulingAnalysis& backend, Options options);

  const model::Architecture& architecture() const noexcept { return *arch_; }
  const model::ApplicationSet& applications() const noexcept { return *apps_; }
  const Options& options() const noexcept { return options_; }

  /// Structural sanity of a candidate (sizes, PE ranges, replica counts).
  /// Returns an empty string when valid, else a description.
  std::string structural_error(const Candidate& candidate) const;

  /// Full evaluation.  Throws std::invalid_argument on structural errors
  /// (the DSE decoder repairs candidates before calling this).  When an
  /// EvaluationCache is attached, returns the memoized result for a
  /// previously seen candidate; `cache_hit` (if non-null) reports whether
  /// this call was served from the cache.
  Evaluation evaluate(const Candidate& candidate) const;
  Evaluation evaluate(const Candidate& candidate, bool* cache_hit) const;

  /// Always recomputes, never consults or fills the cache (the reference
  /// path the differential tests compare against).
  Evaluation evaluate_uncached(const Candidate& candidate) const;

  /// Cache key of a candidate under this evaluator's options: the content
  /// hash seeded with the options fingerprint (mode, policy, penalty,
  /// dropping), so distinct configurations never alias.
  std::uint64_t candidate_key(const Candidate& candidate) const;

 private:
  std::uint64_t options_fingerprint() const;

  const model::Architecture* arch_;
  const model::ApplicationSet* apps_;
  const sched::SchedulingAnalysis* backend_;
  Options options_;
};

}  // namespace ftmc::core
