#include "ftmc/core/exec_model.hpp"

namespace ftmc::core {

model::Time nominal_wcet(const model::Task& task,
                         const hardening::HardenedTaskInfo& info) noexcept {
  if (info.role == hardening::TaskRole::kPassiveReplica) return 0;
  return task.wcet + (info.pays_detection ? task.detection_overhead : 0);
}

model::Time critical_wcet(const model::Task& task,
                          const hardening::HardenedTaskInfo& info) noexcept {
  if (info.role == hardening::TaskRole::kPassiveReplica) return task.wcet;
  const model::Time attempt =
      task.wcet + (info.pays_detection ? task.detection_overhead : 0);
  return attempt * (info.reexecutions + 1);
}

sched::ExecBounds nominal_bounds(
    const model::Task& task,
    const hardening::HardenedTaskInfo& info) noexcept {
  if (info.role == hardening::TaskRole::kPassiveReplica) return {0, 0};
  const model::Time dt =
      info.pays_detection ? task.detection_overhead : 0;
  return {task.bcet + dt, task.wcet + dt};
}

sched::ExecBounds critical_bounds(
    const model::Task& task,
    const hardening::HardenedTaskInfo& info) noexcept {
  if (info.role == hardening::TaskRole::kPassiveReplica)
    return {0, task.wcet};
  const model::Time dt =
      info.pays_detection ? task.detection_overhead : 0;
  return {task.bcet + dt, critical_wcet(task, info)};
}

sched::ExecBounds trigger_bounds(
    const model::Task& task,
    const hardening::HardenedTaskInfo& info) noexcept {
  return critical_bounds(task, info);
}

std::vector<sched::ExecBounds> nominal_bounds_of(
    const hardening::HardenedSystem& system) {
  std::vector<sched::ExecBounds> bounds;
  bounds.reserve(system.apps.task_count());
  for (std::size_t i = 0; i < system.apps.task_count(); ++i) {
    bounds.push_back(
        nominal_bounds(system.apps.task(system.apps.task_ref(i)),
                       system.info[i]));
  }
  return bounds;
}

}  // namespace ftmc::core
