// Execution-time bounds of hardened tasks in the three analysis roles of
// Algorithm 1 (Section 3).
//
//  - nominal_bounds: the normal (fault-free) state.  Re-executable tasks pay
//    the detection overhead dt on every run; passive standbys do not run at
//    all, which is modeled as [0, 0].
//  - critical_bounds: a task caught in the critical region of some state
//    transition.  Re-executable tasks may re-execute up to k times, so their
//    WCET follows Eq. (1): (wcet + dt) * (k + 1); passive standbys may or
//    may not be activated: [0, wcet].
//  - trigger_bounds: the task v whose first fault *causes* the transition —
//    it certainly re-executes (or is certainly activated), same upper bound
//    as critical_bounds.
#pragma once

#include "ftmc/hardening/hardening.hpp"
#include "ftmc/model/task_graph.hpp"
#include "ftmc/sched/analysis.hpp"

namespace ftmc::core {

/// WCET of one attempt in the normal state (includes dt for re-executable
/// tasks); exceeding this switches the system to the critical state.
model::Time nominal_wcet(const model::Task& task,
                         const hardening::HardenedTaskInfo& info) noexcept;

/// Eq. (1): worst-case execution including all re-executions.
model::Time critical_wcet(const model::Task& task,
                          const hardening::HardenedTaskInfo& info) noexcept;

sched::ExecBounds nominal_bounds(
    const model::Task& task, const hardening::HardenedTaskInfo& info) noexcept;

sched::ExecBounds critical_bounds(
    const model::Task& task, const hardening::HardenedTaskInfo& info) noexcept;

sched::ExecBounds trigger_bounds(
    const model::Task& task, const hardening::HardenedTaskInfo& info) noexcept;

/// Nominal bounds for every task of a hardened system, flat order.
std::vector<sched::ExecBounds> nominal_bounds_of(
    const hardening::HardenedSystem& system);

}  // namespace ftmc::core
