#include "ftmc/core/mc_analysis.hpp"

#include <algorithm>
#include <limits>
#include <memory>
#include <numeric>
#include <span>
#include <stdexcept>
#include <unordered_map>

#include "ftmc/obs/metrics.hpp"
#include "ftmc/obs/trace.hpp"
#include "ftmc/util/hash.hpp"
#include "ftmc/util/thread_pool.hpp"

namespace ftmc::core {

namespace {

/// Algorithm-1 orchestration counters (flushed with plain adds; nothing the
/// analysis computes ever reads them back).
struct AnalysisCounters {
  obs::Counter prepares{"analysis.prepares"};
  obs::Counter scenarios{"analysis.scenarios"};
  obs::Counter dedup_hits{"analysis.scenario_dedup_hits"};
  obs::Counter solves{"analysis.scenario_solves"};
  /// Sparse scenario edits recorded by the arena construction path (each is
  /// one task whose bounds differ from the all-critical template).
  obs::Counter bounds_edits{"analysis.bounds_edits"};
  /// Full per-scenario bounds vectors built by the rebuild reference path.
  obs::Counter bounds_rebuilds{"analysis.bounds_rebuilds"};
};

AnalysisCounters& analysis_counters() {
  static AnalysisCounters counters;
  return counters;
}

/// One sparse scenario edit: replace the template bounds at `index`.
struct ScenarioEdit {
  std::uint32_t index;
  sched::ExecBounds bounds;
  bool operator==(const ScenarioEdit&) const = default;
};

/// Per-candidate scratch for the arena construction path.  Every container
/// is cleared (never shrunk) between analyze() calls, so a warmed-up arena
/// builds, dedupes, sorts, solves, and merges all scenarios of a candidate
/// without touching the allocator.
struct ScenarioArena {
  struct Slice {
    std::size_t begin = 0;
    std::size_t count = 0;
  };
  std::vector<sched::ExecBounds> base;   ///< all-critical template
  std::vector<ScenarioEdit> edits;       ///< slices of per-scenario edits
  std::vector<Slice> slices;             ///< one per unique scenario
  std::unordered_map<std::uint64_t, std::vector<std::size_t>> index_by_hash;
  std::vector<std::size_t> order;        ///< similarity-sorted slice indices
  std::vector<sched::ExecBounds> lanes;  ///< materialized unique scenarios
  std::vector<std::span<const sched::ExecBounds>> lane_views;
  std::vector<sched::ExecBounds> naive_bounds;
  std::vector<sched::AnalysisResult> results;
  std::vector<model::Time> scenario_part;
  std::vector<model::Time> naive_part;
};

/// Arena checkout.  A plain thread_local would be unsafe: a pool worker
/// waiting inside parallel_for drains the shared queue, so a *nested*
/// analyze() can start on this thread while an outer one still has its
/// arena live across the chunk fan-out (the serve batch path does exactly
/// this).  Each concurrent analyze on a thread therefore leases its own
/// arena from a per-thread freelist; the freelist depth is bounded by the
/// nesting depth, so the reuse win is kept without the reentrancy hazard.
std::vector<std::unique_ptr<ScenarioArena>>& arena_freelist() {
  thread_local std::vector<std::unique_ptr<ScenarioArena>> freelist;
  return freelist;
}

class ArenaLease {
 public:
  ArenaLease() {
    auto& freelist = arena_freelist();
    if (freelist.empty()) {
      arena_ = std::make_unique<ScenarioArena>();
    } else {
      arena_ = std::move(freelist.back());
      freelist.pop_back();
    }
  }
  ~ArenaLease() { arena_freelist().push_back(std::move(arena_)); }
  ArenaLease(const ArenaLease&) = delete;
  ArenaLease& operator=(const ArenaLease&) = delete;

  ScenarioArena& operator*() noexcept { return *arena_; }

 private:
  std::unique_ptr<ScenarioArena> arena_;
};

}  // namespace

void validate_drop_set(const model::ApplicationSet& apps,
                       const DropSet& drop) {
  if (drop.size() != apps.graph_count())
    throw std::invalid_argument("DropSet: size does not match graph count");
  for (std::uint32_t g = 0; g < apps.graph_count(); ++g) {
    if (drop[g] && !apps.graph(model::GraphId{g}).droppable())
      throw std::invalid_argument("DropSet: graph '" +
                                  apps.graph(model::GraphId{g}).name() +
                                  "' is not droppable");
  }
}

model::Time McAnalysisResult::graph_wcrt(const model::ApplicationSet& apps,
                                         model::GraphId graph) const {
  const model::TaskGraph& g = apps.graph(graph);
  model::Time result = 0;
  for (std::uint32_t sink : g.sinks())
    result = std::max(result, wcrt.at(apps.flat_index({graph.value, sink})));
  return result;
}

namespace {

/// Deadline verdict for one backend run, restricted to non-dropped graphs
/// (dropped applications have no guarantee in the critical state).
bool non_dropped_meet_deadlines(const model::ApplicationSet& apps,
                                const sched::AnalysisResult& result,
                                const DropSet& drop) {
  for (std::uint32_t g = 0; g < apps.graph_count(); ++g) {
    if (drop[g]) continue;
    const model::GraphId id{g};
    if (result.graph_wcrt(apps, id) > apps.graph(id).deadline()) return false;
  }
  return true;
}

void merge_wcrt(std::vector<model::Time>& wcrt,
                const sched::AnalysisResult& result) {
  for (std::size_t i = 0; i < wcrt.size(); ++i)
    wcrt[i] = std::max(wcrt[i], result.windows[i].max_finish);
}

}  // namespace

McAnalysisResult McAnalysis::analyze(const model::Architecture& arch,
                                     const hardening::HardenedSystem& system,
                                     const DropSet& drop, Mode mode,
                                     util::ThreadPool* pool) const {
  const model::ApplicationSet& apps = system.apps;
  validate_drop_set(apps, drop);
  const std::size_t n = apps.task_count();
  const auto priorities = sched::assign_priorities(apps, policy_);

  // Every backend run below analyzes the same candidate (mapping +
  // priorities) against a different bounds vector, so the problem build is
  // done once here and amortized over the normal state, the Naive pass, and
  // every transition scenario (prepare-once/solve-N; the fallback adapter
  // keeps third-party backends working unchanged).
  const std::unique_ptr<sched::PreparedAnalysis> prepared = [&] {
    obs::Span span("analysis.prepare");
    analysis_counters().prepares.add(1);
    return backend_->prepare(arch, apps, system.mapping, priorities);
  }();

  auto task_of = [&](std::size_t i) -> const model::Task& {
    return apps.task(apps.task_ref(i));
  };

  McAnalysisResult result;

  // --- Normal state (lines 2-9): passive standbys at [0,0], no faults. ---
  const std::vector<sched::ExecBounds> nominal = nominal_bounds_of(system);
  result.normal = prepared->solve(nominal);
  result.scenario_solves = 1;
  // Divergent tasks carry kUnschedulable finishes, so the deadline check
  // subsumes the global schedulability flag per graph.
  result.normal_schedulable = result.normal.meets_deadlines(apps);
  result.wcrt.assign(n, 0);
  merge_wcrt(result.wcrt, result.normal);

  if (mode == Mode::kNaive) {
    // Single pessimistic pass: every task of a dropped application gets a
    // zero BCET (it may silently vanish at any point of the hyperperiod),
    // every hardened task its full critical bounds.  No chronological
    // reasoning — this is the estimator Table 2 calls "Naive".
    std::vector<sched::ExecBounds> bounds(n);
    for (std::size_t i = 0; i < n; ++i) {
      bounds[i] = critical_bounds(task_of(i), system.info[i]);
      if (drop[apps.task_ref(i).graph]) bounds[i].bcet = 0;
    }
    const auto run = prepared->solve(bounds);
    merge_wcrt(result.wcrt, run);
    result.critical_schedulable = non_dropped_meet_deadlines(apps, run, drop);
    result.scenario_count = 1;
    result.scenario_solves = 2;
    return result;
  }

  // --- Algorithm 1, lines 10-34: one scenario per possible trigger. ------
  //
  // Each scenario bound and the Naive single-pass bound are independently
  // safe, so the reported WCRT takes the pointwise minimum of
  // max-over-scenarios and Naive.  (The backend's offset-aware interference
  // test is not monotone in the input bounds — a later arrival excludes
  // more already-finished jobs — so Naive >= scenario-max is not structural;
  // intersecting the two keeps Algorithm 1 at least as tight as Naive
  // everywhere, which is also how the paper presents it.)
  //
  // The Naive pass and every scenario depend only on the normal-state
  // windows computed above, never on each other, so they form independent
  // work units.  Two optimizations, both observationally invisible:
  //
  //  1. Dedup: a scenario's bounds vector is a pure function of the
  //     trigger's normal-state window (trigger_bounds == critical_bounds),
  //     so triggers whose windows classify every task identically produce
  //     byte-identical backend invocations.  The backend is a deterministic
  //     pure function, so each distinct bounds vector is analyzed once and
  //     its result stands in for all its triggers.
  //  2. Parallelism + batching: the Naive pass runs first (it doubles as
  //     the warm-start base, see below), then the unique scenarios are
  //     chunked into solve_many() batches fanned out over the pool.  Each
  //     chunk writes into its own result slots and the merge below is a
  //     pointwise max over integers applied in a fixed order, so chunk
  //     width and thread count are bitwise irrelevant.
  std::vector<std::size_t> triggers;
  for (std::size_t v = 0; v < n; ++v)
    if (system.info[v].triggers_critical_state) triggers.push_back(v);
  result.scenario_count = triggers.size();

  // No trigger means no critical-state transition: the normal-state bound
  // already is the final WCRT and the Naive intersection pass would be
  // discarded unread — skip all of it.
  if (triggers.empty()) return result;

  // Classification of task w in the scenario triggered by v (Algorithm 1
  // lines 12-27), shared verbatim by both construction paths below.
  auto classify = [&](std::size_t w, std::size_t v, model::Time v_min_start,
                      model::Time v_max_finish) -> sched::ExecBounds {
    if (w == v) {
      // The trigger certainly re-executes / is activated (Eq. (1)).
      return trigger_bounds(task_of(w), system.info[w]);
    }
    const auto& window = result.normal.windows[w];
    if (window.max_finish < v_min_start) {
      // Completed before any fault can occur: normal state (lines 14-17;
      // nominal_bounds already yields [0,0] for passive standbys).
      return nominal_bounds(task_of(w), system.info[w]);
    }
    if (drop[apps.task_ref(w).graph]) {
      if (window.min_start > v_max_finish) {
        // Starts only after the transition completed: certainly dropped
        // (lines 20-21).
        return {0, 0};
      }
      // Transition window: either runs or is dropped (line 23).  The
      // paper writes [0, wcet]; we use the critical WCET so the bound
      // stays safe even for hardened droppable tasks (equal to wcet
      // for the unhardened ones the paper considers).  Later instances
      // whose earliest start lies beyond the completed transition never
      // release (Figure 3, task w2) — the release cutoff carries that
      // chronology into the backend.
      return {0, critical_wcet(task_of(w), system.info[w]), v_max_finish};
    }
    // Non-droppable task possibly in the critical state (line 26).
    return critical_bounds(task_of(w), system.info[w]);
  };

  ArenaLease lease;
  ScenarioArena& arena = *lease;
  arena.lane_views.clear();
  // Backing storage of the rebuild reference path (unused by the arena
  // path); declared here so the views stay valid through the solves.
  std::vector<std::vector<sched::ExecBounds>> rebuilt;

  if (construction_ == Construction::kArena) {
    // Arena path: each scenario is the all-critical template plus a sparse
    // edit list (tasks finished before the trigger, drop-set zeroing,
    // release cutoffs).  An edit is recorded only when the classified
    // bounds differ from the template, so two scenarios have equal full
    // bounds vectors exactly when their edit lists are equal — dedup over
    // edit lists is equivalent to dedup over full vectors, at a fraction
    // of the bytes hashed and compared.
    arena.base.resize(n);
    for (std::size_t i = 0; i < n; ++i)
      arena.base[i] = critical_bounds(task_of(i), system.info[i]);
    arena.edits.clear();
    arena.slices.clear();
    arena.index_by_hash.clear();
    std::uint64_t edit_count = 0;
    for (const std::size_t v : triggers) {
      const model::Time v_min_start = result.normal.windows[v].min_start;
      const model::Time v_max_finish = result.normal.windows[v].max_finish;
      const std::size_t begin = arena.edits.size();
      for (std::size_t w = 0; w < n; ++w) {
        const sched::ExecBounds bounds =
            classify(w, v, v_min_start, v_max_finish);
        if (bounds != arena.base[w])
          arena.edits.push_back({static_cast<std::uint32_t>(w), bounds});
      }
      const std::size_t count = arena.edits.size() - begin;
      // Hash-keyed dedup, first-occurrence order preserved; exact equality
      // is verified against every same-hash entry (degrade-to-miss, same
      // contract as EvaluationCache).
      const std::uint64_t digest = util::fnv1a_stream(
          count, [&](util::Fnv1aHasher& hasher, std::size_t i) {
            const ScenarioEdit& edit = arena.edits[begin + i];
            hasher.feed(edit.index);
            hasher.feed(edit.bounds.bcet);
            hasher.feed(edit.bounds.wcet);
            hasher.feed(edit.bounds.release_cutoff);
          });
      std::vector<std::size_t>& slots = arena.index_by_hash[digest];
      bool seen = false;
      for (const std::size_t slot : slots) {
        const ScenarioArena::Slice& slice = arena.slices[slot];
        if (slice.count == count &&
            std::equal(arena.edits.begin() +
                           static_cast<std::ptrdiff_t>(slice.begin),
                       arena.edits.begin() +
                           static_cast<std::ptrdiff_t>(slice.begin + count),
                       arena.edits.begin() +
                           static_cast<std::ptrdiff_t>(begin))) {
          seen = true;
          break;
        }
      }
      if (seen) {
        arena.edits.resize(begin);
        continue;
      }
      slots.push_back(arena.slices.size());
      arena.slices.push_back({begin, count});
      edit_count += count;
    }
    analysis_counters().bounds_edits.add(edit_count);
    const std::size_t unique = arena.slices.size();

    // Similarity sort (order is observationally free; it clusters nearby
    // scenarios into the same solve_many chunk for the batched kernel's
    // cross-lane sharing).  The comparator merge-walks the two edit lists
    // and compares *effective* values in (wcet, release_cutoff, bcet)
    // field order; positions edited in neither scenario hold the template
    // value in both, so skipping them reproduces exactly the order the
    // full-vector lexicographic sort would produce.
    arena.order.resize(unique);
    std::iota(arena.order.begin(), arena.order.end(), std::size_t{0});
    constexpr std::uint32_t kEnd = std::numeric_limits<std::uint32_t>::max();
    std::sort(arena.order.begin(), arena.order.end(),
              [&](std::size_t ia, std::size_t ib) {
                const ScenarioArena::Slice& sa = arena.slices[ia];
                const ScenarioArena::Slice& sb = arena.slices[ib];
                const ScenarioEdit* a = arena.edits.data() + sa.begin;
                const ScenarioEdit* const ae = a + sa.count;
                const ScenarioEdit* b = arena.edits.data() + sb.begin;
                const ScenarioEdit* const be = b + sb.count;
                while (a != ae || b != be) {
                  const std::uint32_t ai = a != ae ? a->index : kEnd;
                  const std::uint32_t bi = b != be ? b->index : kEnd;
                  const std::uint32_t i = std::min(ai, bi);
                  const sched::ExecBounds& va =
                      ai == i ? (a++)->bounds : arena.base[i];
                  const sched::ExecBounds& vb =
                      bi == i ? (b++)->bounds : arena.base[i];
                  if (va.wcet != vb.wcet) return va.wcet < vb.wcet;
                  if (va.release_cutoff != vb.release_cutoff)
                    return va.release_cutoff < vb.release_cutoff;
                  if (va.bcet != vb.bcet) return va.bcet < vb.bcet;
                }
                return false;
              });

    // Materialize each unique scenario once into a contiguous lane buffer
    // (template copy + sparse edits); solve_many consumes the views with
    // no per-scenario vector ever built.
    arena.lanes.resize(unique * n);
    arena.lane_views.resize(unique);
    for (std::size_t p = 0; p < unique; ++p) {
      sched::ExecBounds* const lane = arena.lanes.data() + p * n;
      std::copy(arena.base.begin(), arena.base.end(), lane);
      const ScenarioArena::Slice& slice = arena.slices[arena.order[p]];
      for (std::size_t e = 0; e < slice.count; ++e) {
        const ScenarioEdit& edit = arena.edits[slice.begin + e];
        lane[edit.index] = edit.bounds;
      }
      arena.lane_views[p] = std::span<const sched::ExecBounds>(lane, n);
    }
  } else {
    // Rebuild reference path: one full bounds vector per scenario, dedup
    // and sort over whole vectors.  Kept as the differential baseline the
    // arena path is pinned against (tests) and benchmarked against.
    rebuilt.reserve(triggers.size());
    std::unordered_map<std::uint64_t, std::vector<std::size_t>> index_by_hash;
    index_by_hash.reserve(triggers.size());
    for (const std::size_t v : triggers) {
      const model::Time v_min_start = result.normal.windows[v].min_start;
      const model::Time v_max_finish = result.normal.windows[v].max_finish;
      std::vector<sched::ExecBounds> bounds(n);
      for (std::size_t w = 0; w < n; ++w)
        bounds[w] = classify(w, v, v_min_start, v_max_finish);
      const std::uint64_t digest = util::fnv1a_stream(
          bounds.size(), [&](util::Fnv1aHasher& hasher, std::size_t i) {
            hasher.feed(bounds[i].bcet);
            hasher.feed(bounds[i].wcet);
            hasher.feed(bounds[i].release_cutoff);
          });
      std::vector<std::size_t>& slots = index_by_hash[digest];
      bool seen = false;
      for (const std::size_t slot : slots)
        if (rebuilt[slot] == bounds) {
          seen = true;
          break;
        }
      if (!seen) {
        slots.push_back(rebuilt.size());
        rebuilt.push_back(std::move(bounds));
      }
    }
    analysis_counters().bounds_rebuilds.add(triggers.size());
    std::sort(rebuilt.begin(), rebuilt.end(),
              [](const std::vector<sched::ExecBounds>& a,
                 const std::vector<sched::ExecBounds>& b) {
                for (std::size_t i = 0; i < a.size(); ++i) {
                  if (a[i].wcet != b[i].wcet) return a[i].wcet < b[i].wcet;
                  if (a[i].release_cutoff != b[i].release_cutoff)
                    return a[i].release_cutoff < b[i].release_cutoff;
                  if (a[i].bcet != b[i].bcet) return a[i].bcet < b[i].bcet;
                }
                return false;
              });
    arena.lane_views.resize(rebuilt.size());
    for (std::size_t p = 0; p < rebuilt.size(); ++p)
      arena.lane_views[p] = std::span<const sched::ExecBounds>(rebuilt[p]);
  }

  const std::size_t unique = arena.lane_views.size();
  analysis_counters().scenarios.add(triggers.size());
  analysis_counters().dedup_hits.add(triggers.size() - unique);
  result.scenario_solves = 2 + unique;

  // The Naive pass runs first and doubles as the warm-start base: every
  // scenario is the all-critical bounds vector plus a small delta (drop-set
  // zeroing, release cutoffs, tasks finishing before the trigger), so a
  // backend with warm-start support replays most of the Naive trajectory
  // instead of re-solving it.  solve_capture falls back to a plain solve
  // (null base) on backends without support — observationally identical.
  arena.naive_part.assign(n, 0);
  std::unique_ptr<sched::PreparedAnalysis::WarmBase> warm_base;
  {
    obs::Span span("analysis.solve");
    analysis_counters().solves.add(1);
    arena.naive_bounds.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      arena.naive_bounds[i] = critical_bounds(task_of(i), system.info[i]);
      if (drop[apps.task_ref(i).graph]) arena.naive_bounds[i].bcet = 0;
    }
    const auto run = prepared->solve_capture(arena.naive_bounds, warm_base);
    for (std::size_t i = 0; i < n; ++i)
      arena.naive_part[i] = run.windows[i].max_finish;
  }

  // Chunked scenario fan-out: the backend's preferred lane width, narrowed
  // so a thread pool still gets one chunk per worker.  Each chunk solves
  // against the shared immutable prepared problem on this worker's
  // thread-local arenas, so the fan-out allocates nothing per scenario in
  // the kernel; the result slots come from this arena too (the batched
  // driver finalizes in place, so warmed slots keep their capacity).
  std::size_t width = std::max<std::size_t>(1, prepared->preferred_batch());
  const std::size_t workers =
      pool != nullptr ? std::max<std::size_t>(1, pool->thread_count()) : 1;
  if (workers > 1)
    width = std::min(width, (unique + workers - 1) / workers);
  const std::size_t chunks = (unique + width - 1) / width;
  arena.results.resize(unique);
  auto run_chunk = [&](std::size_t chunk) {
    obs::Span span("analysis.solve");
    const std::size_t begin = chunk * width;
    const std::size_t count = std::min(width, unique - begin);
    analysis_counters().solves.add(count);
    prepared->solve_many(
        std::span<const std::span<const sched::ExecBounds>>(arena.lane_views)
            .subspan(begin, count),
        warm_base.get(),
        std::span<sched::AnalysisResult>(arena.results)
            .subspan(begin, count));
  };
  if (pool != nullptr && chunks > 1) {
    pool->parallel_for(chunks, run_chunk);
  } else {
    for (std::size_t chunk = 0; chunk < chunks; ++chunk) run_chunk(chunk);
  }

  {
    arena.scenario_part.assign(n, 0);
    for (std::size_t k = 0; k < unique; ++k) {
      const sched::AnalysisResult& run = arena.results[k];
      for (std::size_t i = 0; i < n; ++i)
        arena.scenario_part[i] =
            std::max(arena.scenario_part[i], run.windows[i].max_finish);
    }
    for (std::size_t i = 0; i < n; ++i)
      result.wcrt[i] = std::max(
          result.wcrt[i],
          std::min(arena.scenario_part[i], arena.naive_part[i]));
  }

  // Critical-state verdict from the combined bound: every non-dropped graph
  // must meet its deadline under the final WCRT.
  result.critical_schedulable = true;
  for (std::uint32_t g = 0; g < apps.graph_count(); ++g) {
    if (drop[g]) continue;
    const model::GraphId id{g};
    if (result.graph_wcrt(apps, id) > apps.graph(id).deadline())
      result.critical_schedulable = false;
  }
  return result;
}

}  // namespace ftmc::core
