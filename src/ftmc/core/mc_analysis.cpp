#include "ftmc/core/mc_analysis.hpp"

#include <algorithm>
#include <memory>
#include <span>
#include <stdexcept>
#include <unordered_map>

#include "ftmc/obs/metrics.hpp"
#include "ftmc/obs/trace.hpp"
#include "ftmc/util/hash.hpp"
#include "ftmc/util/thread_pool.hpp"

namespace ftmc::core {

namespace {

/// Algorithm-1 orchestration counters (flushed with plain adds; nothing the
/// analysis computes ever reads them back).
struct AnalysisCounters {
  obs::Counter prepares{"analysis.prepares"};
  obs::Counter scenarios{"analysis.scenarios"};
  obs::Counter dedup_hits{"analysis.scenario_dedup_hits"};
  obs::Counter solves{"analysis.scenario_solves"};
};

AnalysisCounters& analysis_counters() {
  static AnalysisCounters counters;
  return counters;
}

}  // namespace

void validate_drop_set(const model::ApplicationSet& apps,
                       const DropSet& drop) {
  if (drop.size() != apps.graph_count())
    throw std::invalid_argument("DropSet: size does not match graph count");
  for (std::uint32_t g = 0; g < apps.graph_count(); ++g) {
    if (drop[g] && !apps.graph(model::GraphId{g}).droppable())
      throw std::invalid_argument("DropSet: graph '" +
                                  apps.graph(model::GraphId{g}).name() +
                                  "' is not droppable");
  }
}

model::Time McAnalysisResult::graph_wcrt(const model::ApplicationSet& apps,
                                         model::GraphId graph) const {
  const model::TaskGraph& g = apps.graph(graph);
  model::Time result = 0;
  for (std::uint32_t sink : g.sinks())
    result = std::max(result, wcrt.at(apps.flat_index({graph.value, sink})));
  return result;
}

namespace {

/// Deadline verdict for one backend run, restricted to non-dropped graphs
/// (dropped applications have no guarantee in the critical state).
bool non_dropped_meet_deadlines(const model::ApplicationSet& apps,
                                const sched::AnalysisResult& result,
                                const DropSet& drop) {
  for (std::uint32_t g = 0; g < apps.graph_count(); ++g) {
    if (drop[g]) continue;
    const model::GraphId id{g};
    if (result.graph_wcrt(apps, id) > apps.graph(id).deadline()) return false;
  }
  return true;
}

void merge_wcrt(std::vector<model::Time>& wcrt,
                const sched::AnalysisResult& result) {
  for (std::size_t i = 0; i < wcrt.size(); ++i)
    wcrt[i] = std::max(wcrt[i], result.windows[i].max_finish);
}

}  // namespace

McAnalysisResult McAnalysis::analyze(const model::Architecture& arch,
                                     const hardening::HardenedSystem& system,
                                     const DropSet& drop, Mode mode,
                                     util::ThreadPool* pool) const {
  const model::ApplicationSet& apps = system.apps;
  validate_drop_set(apps, drop);
  const std::size_t n = apps.task_count();
  const auto priorities = sched::assign_priorities(apps, policy_);

  // Every backend run below analyzes the same candidate (mapping +
  // priorities) against a different bounds vector, so the problem build is
  // done once here and amortized over the normal state, the Naive pass, and
  // every transition scenario (prepare-once/solve-N; the fallback adapter
  // keeps third-party backends working unchanged).
  const std::unique_ptr<sched::PreparedAnalysis> prepared = [&] {
    obs::Span span("analysis.prepare");
    analysis_counters().prepares.add(1);
    return backend_->prepare(arch, apps, system.mapping, priorities);
  }();

  auto task_of = [&](std::size_t i) -> const model::Task& {
    return apps.task(apps.task_ref(i));
  };

  McAnalysisResult result;

  // --- Normal state (lines 2-9): passive standbys at [0,0], no faults. ---
  const std::vector<sched::ExecBounds> nominal = nominal_bounds_of(system);
  result.normal = prepared->solve(nominal);
  result.scenario_solves = 1;
  // Divergent tasks carry kUnschedulable finishes, so the deadline check
  // subsumes the global schedulability flag per graph.
  result.normal_schedulable = result.normal.meets_deadlines(apps);
  result.wcrt.assign(n, 0);
  merge_wcrt(result.wcrt, result.normal);

  if (mode == Mode::kNaive) {
    // Single pessimistic pass: every task of a dropped application gets a
    // zero BCET (it may silently vanish at any point of the hyperperiod),
    // every hardened task its full critical bounds.  No chronological
    // reasoning — this is the estimator Table 2 calls "Naive".
    std::vector<sched::ExecBounds> bounds(n);
    for (std::size_t i = 0; i < n; ++i) {
      bounds[i] = critical_bounds(task_of(i), system.info[i]);
      if (drop[apps.task_ref(i).graph]) bounds[i].bcet = 0;
    }
    const auto run = prepared->solve(bounds);
    merge_wcrt(result.wcrt, run);
    result.critical_schedulable = non_dropped_meet_deadlines(apps, run, drop);
    result.scenario_count = 1;
    result.scenario_solves = 2;
    return result;
  }

  // --- Algorithm 1, lines 10-34: one scenario per possible trigger. ------
  //
  // Each scenario bound and the Naive single-pass bound are independently
  // safe, so the reported WCRT takes the pointwise minimum of
  // max-over-scenarios and Naive.  (The backend's offset-aware interference
  // test is not monotone in the input bounds — a later arrival excludes
  // more already-finished jobs — so Naive >= scenario-max is not structural;
  // intersecting the two keeps Algorithm 1 at least as tight as Naive
  // everywhere, which is also how the paper presents it.)
  //
  // The Naive pass and every scenario depend only on the normal-state
  // windows computed above, never on each other, so they form independent
  // work units.  Two optimizations, both observationally invisible:
  //
  //  1. Dedup: a scenario's bounds vector is a pure function of the
  //     trigger's normal-state window (trigger_bounds == critical_bounds),
  //     so triggers whose windows classify every task identically produce
  //     byte-identical backend invocations.  The backend is a deterministic
  //     pure function, so each distinct bounds vector is analyzed once and
  //     its result stands in for all its triggers.
  //  2. Parallelism + batching: the Naive pass runs first (it doubles as
  //     the warm-start base, see below), then the unique scenarios are
  //     chunked into solve_many() batches fanned out over the pool.  Each
  //     chunk writes into its own result slots and the merge below is a
  //     pointwise max over integers applied in a fixed order, so chunk
  //     width and thread count are bitwise irrelevant.
  std::vector<std::size_t> triggers;
  for (std::size_t v = 0; v < n; ++v)
    if (system.info[v].triggers_critical_state) triggers.push_back(v);
  result.scenario_count = triggers.size();

  // No trigger means no critical-state transition: the normal-state bound
  // already is the final WCRT and the Naive intersection pass would be
  // discarded unread — skip all of it.
  if (triggers.empty()) return result;

  auto scenario_bounds = [&](std::size_t v) {
    std::vector<sched::ExecBounds> bounds(n);
    const model::Time v_min_start = result.normal.windows[v].min_start;
    const model::Time v_max_finish = result.normal.windows[v].max_finish;
    for (std::size_t w = 0; w < n; ++w) {
      if (w == v) {
        // The trigger certainly re-executes / is activated (Eq. (1)).
        bounds[w] = trigger_bounds(task_of(w), system.info[w]);
        continue;
      }
      const auto& window = result.normal.windows[w];
      if (window.max_finish < v_min_start) {
        // Completed before any fault can occur: normal state (lines 14-17;
        // nominal_bounds already yields [0,0] for passive standbys).
        bounds[w] = nominal_bounds(task_of(w), system.info[w]);
      } else if (drop[apps.task_ref(w).graph]) {
        if (window.min_start > v_max_finish) {
          // Starts only after the transition completed: certainly dropped
          // (lines 20-21).
          bounds[w] = {0, 0};
        } else {
          // Transition window: either runs or is dropped (line 23).  The
          // paper writes [0, wcet]; we use the critical WCET so the bound
          // stays safe even for hardened droppable tasks (equal to wcet
          // for the unhardened ones the paper considers).  Later instances
          // whose earliest start lies beyond the completed transition never
          // release (Figure 3, task w2) — the release cutoff carries that
          // chronology into the backend.
          bounds[w] = {0, critical_wcet(task_of(w), system.info[w]),
                       v_max_finish};
        }
      } else {
        // Non-droppable task possibly in the critical state (line 26).
        bounds[w] = critical_bounds(task_of(w), system.info[w]);
      }
    }
    return bounds;
  };

  // Hash-keyed dedup (first-occurrence order preserved): O(k) expected
  // instead of the former O(k^2) pairwise scan.  Exact equality is verified
  // against every same-hash entry, so a collision costs one extra
  // comparison — at worst a duplicate analysis, never a dropped distinct
  // scenario (the same degrade-to-miss contract as EvaluationCache).
  std::vector<std::vector<sched::ExecBounds>> unique_scenarios;
  unique_scenarios.reserve(triggers.size());
  std::unordered_map<std::uint64_t, std::vector<std::size_t>> index_by_hash;
  index_by_hash.reserve(triggers.size());
  for (const std::size_t v : triggers) {
    std::vector<sched::ExecBounds> bounds = scenario_bounds(v);
    const std::uint64_t digest = util::fnv1a_stream(
        bounds.size(), [&](util::Fnv1aHasher& hasher, std::size_t i) {
          hasher.feed(bounds[i].bcet);
          hasher.feed(bounds[i].wcet);
          hasher.feed(bounds[i].release_cutoff);
        });
    std::vector<std::size_t>& slots = index_by_hash[digest];
    bool seen = false;
    for (const std::size_t slot : slots)
      if (unique_scenarios[slot] == bounds) {
        seen = true;
        break;
      }
    if (!seen) {
      slots.push_back(unique_scenarios.size());
      unique_scenarios.push_back(std::move(bounds));
    }
  }
  // Similarity sort: the merge below is a pointwise max over all scenario
  // results, so the order of unique_scenarios is observationally free.
  // Sorting the bounds vectors lexicographically clusters scenarios that
  // differ in few entries (same drop pattern, nearby cutoffs) into adjacent
  // lanes of the same solve_many() chunk — exactly where the batched
  // kernel's cross-lane outcome sharing finds its hits.
  std::sort(unique_scenarios.begin(), unique_scenarios.end(),
            [](const std::vector<sched::ExecBounds>& a,
               const std::vector<sched::ExecBounds>& b) {
              for (std::size_t i = 0; i < a.size(); ++i) {
                if (a[i].wcet != b[i].wcet) return a[i].wcet < b[i].wcet;
                if (a[i].release_cutoff != b[i].release_cutoff)
                  return a[i].release_cutoff < b[i].release_cutoff;
                if (a[i].bcet != b[i].bcet) return a[i].bcet < b[i].bcet;
              }
              return false;
            });
  analysis_counters().scenarios.add(triggers.size());
  analysis_counters().dedup_hits.add(triggers.size() -
                                     unique_scenarios.size());
  const std::size_t unique = unique_scenarios.size();
  result.scenario_solves = 2 + unique;

  // The Naive pass runs first and doubles as the warm-start base: every
  // scenario is the all-critical bounds vector plus a small delta (drop-set
  // zeroing, release cutoffs, tasks finishing before the trigger), so a
  // backend with warm-start support replays most of the Naive trajectory
  // instead of re-solving it.  solve_capture falls back to a plain solve
  // (null base) on backends without support — observationally identical.
  std::vector<model::Time> naive_part(n);
  std::unique_ptr<sched::PreparedAnalysis::WarmBase> warm_base;
  {
    obs::Span span("analysis.solve");
    analysis_counters().solves.add(1);
    std::vector<sched::ExecBounds> bounds(n);
    for (std::size_t i = 0; i < n; ++i) {
      bounds[i] = critical_bounds(task_of(i), system.info[i]);
      if (drop[apps.task_ref(i).graph]) bounds[i].bcet = 0;
    }
    const auto run = prepared->solve_capture(bounds, warm_base);
    for (std::size_t i = 0; i < n; ++i)
      naive_part[i] = run.windows[i].max_finish;
  }

  // Chunked scenario fan-out: the backend's preferred lane width, narrowed
  // so a thread pool still gets one chunk per worker.  Each chunk solves
  // against the shared immutable prepared problem on this worker's
  // thread-local arenas, so the fan-out allocates nothing per scenario in
  // the kernel.
  std::size_t width = std::max<std::size_t>(1, prepared->preferred_batch());
  const std::size_t workers =
      pool != nullptr ? std::max<std::size_t>(1, pool->thread_count()) : 1;
  if (workers > 1)
    width = std::min(width, (unique + workers - 1) / workers);
  const std::size_t chunks = (unique + width - 1) / width;
  std::vector<sched::AnalysisResult> scenario_results(unique);
  auto run_chunk = [&](std::size_t chunk) {
    obs::Span span("analysis.solve");
    const std::size_t begin = chunk * width;
    const std::size_t count = std::min(width, unique - begin);
    analysis_counters().solves.add(count);
    prepared->solve_many(
        std::span<const std::vector<sched::ExecBounds>>(unique_scenarios)
            .subspan(begin, count),
        warm_base.get(),
        std::span<sched::AnalysisResult>(scenario_results)
            .subspan(begin, count));
  };
  if (pool != nullptr && chunks > 1) {
    pool->parallel_for(chunks, run_chunk);
  } else {
    for (std::size_t chunk = 0; chunk < chunks; ++chunk) run_chunk(chunk);
  }

  {
    std::vector<model::Time> scenario_part(n, 0);
    for (const sched::AnalysisResult& run : scenario_results)
      for (std::size_t i = 0; i < n; ++i)
        scenario_part[i] =
            std::max(scenario_part[i], run.windows[i].max_finish);
    for (std::size_t i = 0; i < n; ++i)
      result.wcrt[i] = std::max(
          result.wcrt[i], std::min(scenario_part[i], naive_part[i]));
  }

  // Critical-state verdict from the combined bound: every non-dropped graph
  // must meet its deadline under the final WCRT.
  result.critical_schedulable = true;
  for (std::uint32_t g = 0; g < apps.graph_count(); ++g) {
    if (drop[g]) continue;
    const model::GraphId id{g};
    if (result.graph_wcrt(apps, id) > apps.graph(id).deadline())
      result.critical_schedulable = false;
  }
  return result;
}

}  // namespace ftmc::core
