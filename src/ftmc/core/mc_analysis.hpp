// Mixed-criticality-aware WCRT analysis — Algorithm 1 of the paper.
//
// The hardening techniques make a single-pass analysis either unsafe or very
// pessimistic: passive replicas and re-executed jobs may or may not run, and
// droppable applications are detached *only after* the system transitions to
// the critical state.  Algorithm 1 therefore analyzes the normal (fault-free)
// state once, and then one scenario per possible state-transition trigger v
// (every re-executable task and every passive standby), classifying each
// other task w by its position relative to the transition window
// [minStart_v, maxFinish_v] taken from the normal-state analysis:
//
//   maxFinish_w < minStart_v       -> w runs fully in the normal state
//   minStart_w > maxFinish_v, w droppable and selected to drop
//                                  -> w is certainly dropped: [0, 0]
//   otherwise, w droppable+dropped -> either runs or is dropped: [0, wcet]
//   otherwise (non-droppable)      -> critical bounds (Eq. (1) for
//                                     re-executables, [0, wcet] standbys)
//
// The per-task WCRT bound is the maximum finish time over the normal state
// and all transition scenarios.
//
// Two alternative estimators from the evaluation (Section 5.1) are exposed
// through Mode:
//   kNaive     single analysis, all droppable-and-dropped tasks at
//              [0, wcet], all hardened tasks at critical bounds — safe but
//              pessimistic (no chronological information).
//   kProposed  Algorithm 1.
// (The unsafe "Adhoc" trace estimator of Table 2 is a simulator artifact;
// see ftmc/sim/adhoc.hpp.)
#pragma once

#include <vector>

#include "ftmc/core/exec_model.hpp"
#include "ftmc/hardening/hardening.hpp"
#include "ftmc/sched/analysis.hpp"
#include "ftmc/sched/priority.hpp"

namespace ftmc::util {
class ThreadPool;
}  // namespace ftmc::util

namespace ftmc::core {

/// Which applications are dropped in the critical state (T_d): one flag per
/// graph of the *original* set; may only be set for droppable graphs.
using DropSet = std::vector<bool>;

/// Validates a drop set against an application set (size, droppability).
void validate_drop_set(const model::ApplicationSet& apps, const DropSet& drop);

struct McAnalysisResult {
  /// Safe WCRT bound per task of T' (flat order): max finish over the
  /// normal state and every transition scenario.
  std::vector<model::Time> wcrt;
  /// Normal-state windows (inputs to the scenario classification).
  sched::AnalysisResult normal;
  /// All graphs meet deadlines in the normal state.
  bool normal_schedulable = true;
  /// In every transition scenario, every non-dropped graph meets deadlines.
  bool critical_schedulable = true;
  /// Number of transition scenarios analyzed (trigger tasks).
  std::size_t scenario_count = 0;
  /// Backend fixed-point solves actually run: the normal state, the Naive
  /// intersection pass, and one per *unique* scenario after dedup.  A pure
  /// function of the inputs (unlike wall-clock throughput), so it is safe
  /// to surface through the deterministic DSE telemetry.
  std::size_t scenario_solves = 0;

  bool schedulable() const noexcept {
    return normal_schedulable && critical_schedulable;
  }

  /// WCRT bound of a graph: latest bound over its sink tasks.
  model::Time graph_wcrt(const model::ApplicationSet& apps,
                         model::GraphId graph) const;
};

class McAnalysis {
 public:
  enum class Mode { kProposed, kNaive };

  /// How per-scenario bounds vectors are built.  kArena (the default) keeps
  /// a per-thread scratch arena: every scenario is stored as a sparse edit
  /// list over the shared all-critical template and materialized once into
  /// a contiguous lane buffer — no per-scenario vector allocation, reused
  /// merge buffers, zero-copy solve_many() feeding.  kRebuild is the
  /// straightforward build-a-vector-per-scenario path; it exists as the
  /// differential reference (tests) and bench baseline.  Both paths are
  /// bitwise identical in output.
  enum class Construction { kArena, kRebuild };

  /// @param backend  the pluggable `sched` analysis; must outlive this.
  explicit McAnalysis(
      const sched::SchedulingAnalysis& backend,
      sched::PriorityPolicy policy =
          sched::PriorityPolicy::kRateMonotonic,
      Construction construction = Construction::kArena)
      : backend_(&backend), policy_(policy), construction_(construction) {}

  /// Runs the analysis on a hardened system with drop set `drop` (aligned
  /// with the graphs of `system.apps`, which the transform keeps aligned
  /// with the original set).
  ///
  /// The backend problem (flat graph, interferer lists, relation matrix) is
  /// prepared once per call and shared — immutably — by the normal state,
  /// the Naive pass, and every transition scenario, which differ only in
  /// their bounds vectors (SchedulingAnalysis::prepare / solve).
  ///
  /// When `pool` is non-null the independent transition scenarios (and the
  /// Naive intersection pass) of Algorithm 1 run concurrently on it; the
  /// result is bitwise identical to the sequential path — each scenario is
  /// self-contained and the merge is a pointwise max over integers, applied
  /// in a fixed order.  The pool may be shared with candidate-level DSE
  /// workers (ThreadPool::parallel_for is nesting-safe).
  McAnalysisResult analyze(const model::Architecture& arch,
                           const hardening::HardenedSystem& system,
                           const DropSet& drop, Mode mode = Mode::kProposed,
                           util::ThreadPool* pool = nullptr) const;

 private:
  const sched::SchedulingAnalysis* backend_;
  sched::PriorityPolicy policy_;
  Construction construction_ = Construction::kArena;
};

}  // namespace ftmc::core
