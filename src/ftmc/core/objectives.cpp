#include "ftmc/core/objectives.hpp"

#include <cmath>
#include <stdexcept>
#include <unordered_map>

namespace ftmc::core {

Allocation allocation_from_mapping(const model::Architecture& arch,
                                   const hardening::HardenedSystem& system) {
  Allocation allocation(arch.processor_count(), false);
  for (const model::ProcessorId pe : system.mapping.flat())
    allocation.at(pe.value) = true;
  return allocation;
}

double critical_state_probability(const model::Architecture& arch,
                                  const hardening::HardenedSystem& system) {
  const model::ApplicationSet& apps = system.apps;
  const double hyper = static_cast<double>(apps.hyperperiod());
  double no_transition = 1.0;
  for (std::size_t i = 0; i < apps.task_count(); ++i) {
    const hardening::HardenedTaskInfo& info = system.info[i];
    if (!info.triggers_critical_state) continue;
    const model::TaskRef ref = apps.task_ref(i);
    const model::Task& task = apps.task(ref);
    const model::Processor& pe =
        arch.processor(system.mapping.processor_of_flat(i));
    const double instances =
        hyper / static_cast<double>(apps.graph(ref.graph_id()).period());
    double per_instance = 0.0;
    if (info.role == hardening::TaskRole::kPassiveReplica) {
      // Activated when a primary fails; both primaries run task.wcet.
      const double pf =
          hardening::execution_failure_probability(pe, task.wcet);
      per_instance = hardening::standby_activation_probability(pf, pf);
    } else {
      per_instance = hardening::execution_failure_probability(
          pe, task.wcet + task.detection_overhead);
    }
    no_transition *= std::pow(1.0 - per_instance, instances);
  }
  return 1.0 - no_transition;
}

std::vector<double> expected_utilization(
    const model::Architecture& arch, const hardening::HardenedSystem& system,
    const std::vector<bool>* drop) {
  const model::ApplicationSet& apps = system.apps;
  std::vector<double> utilization(arch.processor_count(), 0.0);

  // Share of a dropped application's instances shed per hyperperiod: a
  // transition happens with probability p_crit, at a time uniform over the
  // hyperperiod, and detaches the remaining (on average half) instances.
  double drop_factor = 0.0;
  if (drop != nullptr) {
    if (drop->size() != apps.graph_count())
      throw std::invalid_argument("expected_utilization: drop size mismatch");
    drop_factor = 0.5 * critical_state_probability(arch, system);
  }

  // Passive standbys need their primaries' failure probabilities; index
  // replicas by origin task.
  std::unordered_map<model::TaskRef, std::vector<std::size_t>> actives;
  for (std::size_t i = 0; i < apps.task_count(); ++i)
    if (system.info[i].role == hardening::TaskRole::kActiveReplica)
      actives[system.info[i].origin].push_back(i);

  for (std::size_t i = 0; i < apps.task_count(); ++i) {
    const model::TaskRef ref = apps.task_ref(i);
    const model::Task& task = apps.task(ref);
    const hardening::HardenedTaskInfo& info = system.info[i];
    const model::ProcessorId pe = system.mapping.processor_of_flat(i);
    const model::Processor& processor = arch.processor(pe);
    const double period =
        static_cast<double>(apps.graph(ref.graph_id()).period());

    double expected_exec = 0.0;
    switch (info.role) {
      case hardening::TaskRole::kOriginal: {
        const model::Time attempt =
            task.wcet + (info.pays_detection ? task.detection_overhead : 0);
        const double scaled = static_cast<double>(
            hardening::scaled_time(processor, attempt));
        if (info.reexecutions > 0) {
          const double pf =
              hardening::execution_failure_probability(processor, attempt);
          expected_exec =
              scaled *
              hardening::expected_reexecution_count(pf, info.reexecutions);
        } else {
          expected_exec = scaled;
        }
        break;
      }
      case hardening::TaskRole::kActiveReplica:
      case hardening::TaskRole::kVoter:
        expected_exec = static_cast<double>(
            hardening::scaled_time(processor, task.wcet));
        break;
      case hardening::TaskRole::kPassiveReplica: {
        const auto it = actives.find(info.origin);
        if (it == actives.end() || it->second.size() < 2)
          throw std::logic_error(
              "expected_utilization: standby without two primaries");
        auto pf_of = [&](std::size_t flat) {
          const model::Processor& p =
              arch.processor(system.mapping.processor_of_flat(flat));
          return hardening::execution_failure_probability(
              p, apps.task(apps.task_ref(flat)).wcet);
        };
        const double activation = hardening::standby_activation_probability(
            pf_of(it->second[0]), pf_of(it->second[1]));
        expected_exec = activation * static_cast<double>(hardening::scaled_time(
                                         processor, task.wcet));
        break;
      }
    }
    if (drop != nullptr && (*drop)[ref.graph]) {
      expected_exec *= 1.0 - drop_factor;
    }
    utilization[pe.value] += expected_exec / period;
  }
  return utilization;
}

double expected_power(const model::Architecture& arch,
                      const hardening::HardenedSystem& system,
                      const Allocation& allocation,
                      const std::vector<bool>* drop) {
  if (allocation.size() != arch.processor_count())
    throw std::invalid_argument("expected_power: allocation size mismatch");
  for (const model::ProcessorId pe : system.mapping.flat())
    if (!allocation.at(pe.value))
      throw std::invalid_argument(
          "expected_power: task mapped to unallocated PE");

  const std::vector<double> utilization =
      expected_utilization(arch, system, drop);
  double power = 0.0;
  for (std::size_t p = 0; p < allocation.size(); ++p) {
    if (!allocation[p]) continue;
    const model::Processor& processor =
        arch.processor(model::ProcessorId{static_cast<std::uint32_t>(p)});
    power += processor.static_power +
             processor.dynamic_power * utilization[p];
  }
  return power;
}

double service_value(const model::ApplicationSet& apps,
                     const std::vector<bool>& drop) {
  if (drop.size() != apps.graph_count())
    throw std::invalid_argument("service_value: drop size mismatch");
  double service = 0.0;
  for (std::uint32_t g = 0; g < apps.graph_count(); ++g) {
    const model::TaskGraph& graph = apps.graph(model::GraphId{g});
    if (!graph.droppable() || drop[g]) continue;
    service += graph.service_value();
  }
  return service;
}

double max_service_value(const model::ApplicationSet& apps) {
  return service_value(apps, std::vector<bool>(apps.graph_count(), false));
}

}  // namespace ftmc::core
