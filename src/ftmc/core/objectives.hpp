// Optimization objectives (Section 2.3):
//
//   minimize  sum_p alloc_p * (stat_p + dyn_p * u_p)      (expected power)
//   maximize  sum_{t not in T_d} sv_t                      (quality of service)
//
// u_p is the *expected* average utilization of PE p over all fault
// scenarios: active replicas and voters are always charged; re-executable
// tasks are charged their expected number of attempts (1 + pf + ... + pf^k);
// passive standbys are charged their activation probability (both primaries
// agreeing means the standby never runs).
#pragma once

#include <vector>

#include "ftmc/hardening/hardening.hpp"
#include "ftmc/hardening/reliability.hpp"
#include "ftmc/model/architecture.hpp"

namespace ftmc::core {

/// One flag per PE: allocated (powered) or not.
using Allocation = std::vector<bool>;

/// Allocation that powers exactly the PEs used by `system`'s mapping.
Allocation allocation_from_mapping(const model::Architecture& arch,
                                   const hardening::HardenedSystem& system);

/// Probability that at least one critical-state transition (a re-execution
/// or a passive-standby activation) happens within one hyperperiod.
double critical_state_probability(const model::Architecture& arch,
                                  const hardening::HardenedSystem& system);

/// Expected utilization of every PE (indexed by processor id) under the
/// hardened system; entries are >= 0 and may exceed 1 for overloaded PEs.
///
/// With a drop set, "considering all possible cases" (Section 2.3) includes
/// the critical state: when a transition occurs (probability
/// critical_state_probability per hyperperiod, uniformly located in time),
/// the remaining instances of dropped applications are shed — on average
/// half of a hyperperiod's worth — which slightly lowers the expected
/// utilization of the PEs hosting them.
std::vector<double> expected_utilization(
    const model::Architecture& arch, const hardening::HardenedSystem& system,
    const std::vector<bool>* drop = nullptr);

/// Expected power over the allocated PEs.  Throws if a task is mapped to an
/// unallocated PE (callers gate on mapping validity first).
double expected_power(const model::Architecture& arch,
                      const hardening::HardenedSystem& system,
                      const Allocation& allocation,
                      const std::vector<bool>* drop = nullptr);

/// Quality of service after dropping: sum of the (finite) service values of
/// droppable applications that are *not* in T_d.  Non-droppable graphs carry
/// sv = infinity in the model as "never droppable" markers and are excluded
/// from the finite sum.
double service_value(const model::ApplicationSet& apps,
                     const std::vector<bool>& drop);

/// Service value when nothing is dropped (the achievable maximum).
double max_service_value(const model::ApplicationSet& apps);

}  // namespace ftmc::core
