#include "ftmc/core/serialize.hpp"

namespace ftmc::core {

// Field order and widths are frozen: ftmc.ckpt.v1 snapshots and evaluation
// store logs written by older builds decode against this exact layout.

void write_candidate(util::ByteWriter& out, const Candidate& candidate) {
  out.bits(candidate.allocation);
  out.bits(candidate.drop);
  out.size(candidate.plan.size());
  for (const hardening::TaskHardening& task : candidate.plan) {
    out.u8(static_cast<std::uint8_t>(task.technique));
    out.i64(task.reexecutions);
    out.size(task.replica_pes.size());
    for (model::ProcessorId pe : task.replica_pes) out.u32(pe.value);
    out.u32(task.voter_pe.value);
  }
  out.size(candidate.base_mapping.size());
  for (model::ProcessorId pe : candidate.base_mapping) out.u32(pe.value);
}

Candidate read_candidate(util::ByteReader& in) {
  Candidate candidate;
  candidate.allocation = in.bits();
  candidate.drop = in.bits();
  const std::size_t plan = in.length(1 + 8 + 8 + 4);
  candidate.plan.resize(plan);
  for (hardening::TaskHardening& task : candidate.plan) {
    task.technique = static_cast<hardening::Technique>(in.u8());
    task.reexecutions = static_cast<int>(in.i64());
    const std::size_t replicas = in.length(4);
    task.replica_pes.resize(replicas);
    for (model::ProcessorId& pe : task.replica_pes)
      pe = model::ProcessorId{in.u32()};
    task.voter_pe = model::ProcessorId{in.u32()};
  }
  const std::size_t mapping = in.length(4);
  candidate.base_mapping.resize(mapping);
  for (model::ProcessorId& pe : candidate.base_mapping)
    pe = model::ProcessorId{in.u32()};
  return candidate;
}

void write_evaluation(util::ByteWriter& out, const Evaluation& evaluation) {
  out.u8(evaluation.mapping_valid ? 1 : 0);
  out.u8(evaluation.reliability_ok ? 1 : 0);
  out.u8(evaluation.normal_schedulable ? 1 : 0);
  out.u8(evaluation.critical_schedulable ? 1 : 0);
  out.f64(evaluation.power);
  out.f64(evaluation.service);
  out.size(evaluation.scenario_count);
  out.size(evaluation.scenario_solves);
  out.size(evaluation.graph_wcrt.size());
  for (model::Time wcrt : evaluation.graph_wcrt) out.i64(wcrt);
}

Evaluation read_evaluation(util::ByteReader& in) {
  Evaluation evaluation;
  evaluation.mapping_valid = in.u8() != 0;
  evaluation.reliability_ok = in.u8() != 0;
  evaluation.normal_schedulable = in.u8() != 0;
  evaluation.critical_schedulable = in.u8() != 0;
  evaluation.power = in.f64();
  evaluation.service = in.f64();
  evaluation.scenario_count = static_cast<std::size_t>(in.u64());
  evaluation.scenario_solves = static_cast<std::size_t>(in.u64());
  const std::size_t wcrt = in.length(8);
  evaluation.graph_wcrt.resize(wcrt);
  for (model::Time& value : evaluation.graph_wcrt) value = in.i64();
  return evaluation;
}

}  // namespace ftmc::core
