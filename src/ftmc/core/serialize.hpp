// Byte codecs for the core value types that cross process boundaries.
//
// Candidate and Evaluation are persisted by two independent formats — the
// ftmc.ckpt.v1 campaign snapshot (ftmc/dse/checkpoint.cpp) and the persistent
// evaluation store (ftmc/core/eval_store.cpp) — which must stay bitwise
// compatible with each other and with their existing on-disk artifacts.
// Keeping the field layout in exactly one place makes that a structural
// property instead of a convention.  The encoding is the little-endian field
// stream of util/byte_stream.hpp; doubles round-trip as IEEE-754 bit
// patterns, so a decoded Evaluation is bit-identical to the encoded one.
#pragma once

#include "ftmc/core/evaluator.hpp"
#include "ftmc/util/byte_stream.hpp"

namespace ftmc::core {

void write_candidate(util::ByteWriter& out, const Candidate& candidate);
Candidate read_candidate(util::ByteReader& in);

void write_evaluation(util::ByteWriter& out, const Evaluation& evaluation);
Evaluation read_evaluation(util::ByteReader& in);

}  // namespace ftmc::core
