#include "ftmc/dist/remote_executor.hpp"

#include <chrono>
#include <cmath>

#include "ftmc/dse/chromosome.hpp"
#include "ftmc/obs/json.hpp"
#include "ftmc/serve/json_parse.hpp"
#include "ftmc/serve/protocol.hpp"

namespace ftmc::dist {
namespace {

std::string describe_error(const serve::JsonValue& response) {
  const serve::JsonValue* error = response.get("error");
  if (error == nullptr || !error->is_object()) return "malformed error";
  std::string text = error->str_or("code", "internal") + ": " +
                     error->str_or("message", "");
  const std::string detail = error->str_or("detail", "");
  if (!detail.empty()) text += " (" + detail + ")";
  return text;
}

}  // namespace

obs::Json chromosome_json(const dse::Chromosome& chromosome) {
  obs::Json allocation = obs::Json::array();
  for (const std::uint8_t bit : chromosome.allocation)
    allocation.push(obs::Json::uinteger(bit));
  obs::Json keep = obs::Json::array();
  for (const std::uint8_t bit : chromosome.keep)
    keep.push(obs::Json::uinteger(bit));
  obs::Json tasks = obs::Json::array();
  for (const dse::TaskGenes& task : chromosome.tasks) {
    obs::Json row = obs::Json::array();
    row.push(obs::Json::uinteger(static_cast<std::uint64_t>(task.technique)))
        .push(obs::Json::uinteger(task.reexec))
        .push(obs::Json::uinteger(task.active_n))
        .push(obs::Json::uinteger(task.base_pe));
    for (const std::uint16_t replica : task.replica_pe)
      row.push(obs::Json::uinteger(replica));
    row.push(obs::Json::uinteger(task.voter_pe));
    tasks.push(std::move(row));
  }
  return obs::Json::object()
      .set("allocation", std::move(allocation))
      .set("keep", std::move(keep))
      .set("tasks", std::move(tasks));
}

core::Evaluation evaluation_from_json(const serve::JsonValue& result) {
  core::Evaluation evaluation;
  evaluation.mapping_valid = result.bool_or("mapping_valid", false);
  evaluation.reliability_ok = result.bool_or("reliability_ok", false);
  evaluation.normal_schedulable = result.bool_or("normal_schedulable", false);
  evaluation.critical_schedulable =
      result.bool_or("critical_schedulable", false);
  evaluation.power = result.num_or("power", 0.0);
  evaluation.service = result.num_or("service", 0.0);
  evaluation.scenario_count =
      static_cast<std::size_t>(result.u64_or("scenario_count", 0));
  evaluation.scenario_solves =
      static_cast<std::size_t>(result.u64_or("scenario_solves", 0));
  if (const serve::JsonValue* wcrt = result.get("graph_wcrt");
      wcrt != nullptr && wcrt->kind == serve::JsonValue::Kind::kArray) {
    evaluation.graph_wcrt.reserve(wcrt->array.size());
    for (const serve::JsonValue& bound : wcrt->array)
      evaluation.graph_wcrt.push_back(
          static_cast<model::Time>(bound.number));
  }
  return evaluation;
}

RemoteExecutor::RemoteExecutor(WorkerFleet& fleet, std::size_t worker,
                               std::string system_path, std::uint64_t seed)
    : fleet_(&fleet),
      worker_(worker),
      system_path_(std::move(system_path)),
      seed_(seed) {}

void RemoteExecutor::evaluate(const std::vector<dse::EvalRequest>& requests,
                              std::vector<dse::EvalOutcome>& outcomes) {
  if (requests.empty()) return;
  obs::Json batch = obs::Json::array();
  for (std::size_t index = 0; index < requests.size(); ++index)
    batch.push(obs::Json::object()
                   .set("id", index)
                   .set("method", "evaluate")
                   .set("system", system_path_)
                   .set("params",
                        obs::Json::object()
                            .set("chromosome",
                                 chromosome_json(*requests[index].genotype))
                            .set("seed", seed_)));
  const obs::Json request =
      obs::Json::object()
          .set("v", serve::kRpcVersion)
          .set("id", "executor")
          .set("method", "batch")
          .set("params", obs::Json::object().set("requests", std::move(batch)));

  const auto begin = std::chrono::steady_clock::now();
  const std::string payload = fleet_->call(worker_, request.dump());
  const double total_us =
      std::chrono::duration<double, std::micro>(
          std::chrono::steady_clock::now() - begin)
          .count();

  serve::JsonValue response;
  try {
    response = serve::parse_json(payload);
  } catch (const serve::JsonParseError& error) {
    throw dse::ExecutorError(std::string("worker answered invalid JSON: ") +
                             error.what());
  }
  if (!response.bool_or("ok", false))
    throw dse::ExecutorError("worker refused the batch: " +
                             describe_error(response));
  const serve::JsonValue* result = response.get("result");
  const serve::JsonValue* results =
      result == nullptr ? nullptr : result->get("results");
  if (results == nullptr ||
      results->kind != serve::JsonValue::Kind::kArray ||
      results->array.size() != requests.size())
    throw dse::ExecutorError("worker answered a malformed batch result");

  outcomes.resize(requests.size());
  const double per_item_us =
      total_us / static_cast<double>(requests.size());
  for (std::size_t index = 0; index < requests.size(); ++index) {
    const serve::JsonValue& item = results->array[index];
    if (!item.bool_or("ok", false))
      throw dse::ExecutorError("worker failed evaluation " +
                               std::to_string(index) + ": " +
                               describe_error(item));
    const serve::JsonValue* item_result = item.get("result");
    if (item_result == nullptr)
      throw dse::ExecutorError("worker answered a malformed evaluation");
    dse::EvalOutcome& outcome = outcomes[index];
    outcome.evaluation = evaluation_from_json(*item_result);
    outcome.cache_hit = item_result->bool_or("cache_hit", false);
    outcome.latency_us = per_item_us;
  }
}

}  // namespace ftmc::dist
