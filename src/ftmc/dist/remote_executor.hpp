// RemoteExecutor: dse::Executor that evaluates on an `ftmc serve` worker.
//
// The GA decodes and memoizes locally; only memo misses reach the
// executor.  RemoteExecutor ships each batch as one ftmc.rpc.v1 `batch`
// request of `evaluate` sub-requests carrying the genotype in the
// params.chromosome wire format plus the campaign seed.  The worker
// re-runs the same content-seeded decode + repair (a pure function of
// genotype and seed), evaluates, and answers every Evaluation field at
// round-trip precision — so a remote campaign's trajectory is bitwise
// identical to an in-process one.
//
// Transport failures (worker died, hung up, answered a structured error)
// throw dse::ExecutorError; the campaign's retry machinery resumes the
// island from its latest snapshot on a freshly assigned worker.
#pragma once

#include <cstdint>
#include <string>

#include "ftmc/dist/worker.hpp"
#include "ftmc/dse/executor.hpp"

namespace ftmc::obs {
class Json;
}
namespace ftmc::serve {
struct JsonValue;
}

namespace ftmc::dist {

/// params.chromosome wire form of a genotype (see serve/server.cpp's
/// read_chromosome for the schema).
obs::Json chromosome_json(const dse::Chromosome& chromosome);

/// Bit-exact core::Evaluation from an `evaluate` result document (obs::Json
/// prints doubles at max_digits10, so the round trip is lossless).
core::Evaluation evaluation_from_json(const serve::JsonValue& result);

class RemoteExecutor final : public dse::Executor {
 public:
  /// `fleet` must outlive the executor.  `seed` is the island's campaign
  /// seed — the content-seeded decode on the worker must match the GA's.
  RemoteExecutor(WorkerFleet& fleet, std::size_t worker,
                 std::string system_path, std::uint64_t seed);

  const char* name() const noexcept override { return "remote"; }
  void evaluate(const std::vector<dse::EvalRequest>& requests,
                std::vector<dse::EvalOutcome>& outcomes) override;

 private:
  WorkerFleet* fleet_;
  std::size_t worker_;
  std::string system_path_;
  std::uint64_t seed_;
};

}  // namespace ftmc::dist
