#include "ftmc/dist/worker.hpp"

#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <thread>

#include "ftmc/dse/executor.hpp"
#include "ftmc/obs/metrics.hpp"
#include "ftmc/serve/protocol.hpp"

namespace ftmc::dist {
namespace {

struct WorkerCounters {
  obs::Counter spawns{"dse.worker.spawns"};
  obs::Counter lost{"dse.worker.lost"};
  obs::Counter respawns{"dse.worker.respawns"};
  obs::Counter calls{"dse.worker.calls"};
};

WorkerCounters& counters() {
  static WorkerCounters instance;
  return instance;
}

int connect_to(const std::string& host, std::uint16_t port) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* results = nullptr;
  const std::string service = std::to_string(port);
  if (::getaddrinfo(host.c_str(), service.c_str(), &hints, &results) != 0)
    throw std::runtime_error("cannot resolve worker host '" + host + "'");
  int fd = -1;
  for (addrinfo* entry = results; entry != nullptr; entry = entry->ai_next) {
    fd = ::socket(entry->ai_family, entry->ai_socktype, entry->ai_protocol);
    if (fd < 0) continue;
    if (::connect(fd, entry->ai_addr, entry->ai_addrlen) == 0) break;
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(results);
  if (fd < 0)
    throw std::runtime_error("cannot connect to worker " + host + ":" +
                             service);
  const int one = 1;
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

/// "host:port" → (host, port); throws std::invalid_argument on nonsense so
/// a typo in --worker-hosts fails the campaign instead of being retried.
std::pair<std::string, std::uint16_t> parse_endpoint(
    const std::string& endpoint) {
  const std::size_t colon = endpoint.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 == endpoint.size())
    throw std::invalid_argument("worker endpoint '" + endpoint +
                                "' is not host:port");
  const long port = std::atol(endpoint.c_str() + colon + 1);
  if (port <= 0 || port > 65535)
    throw std::invalid_argument("worker endpoint '" + endpoint +
                                "' has an invalid port");
  return {endpoint.substr(0, colon), static_cast<std::uint16_t>(port)};
}

std::string self_executable() {
  char buffer[4096];
  const ssize_t length =
      ::readlink("/proc/self/exe", buffer, sizeof(buffer) - 1);
  if (length <= 0)
    throw std::runtime_error(
        "cannot resolve /proc/self/exe; pass the ftmc binary explicitly");
  buffer[length] = '\0';
  return std::string(buffer);
}

}  // namespace

struct WorkerConnection::Impl {
  int fd = -1;
  std::unique_ptr<serve::FrameReader> reader;
};

WorkerConnection::WorkerConnection(const std::string& host,
                                   std::uint16_t port)
    : impl_(std::make_unique<Impl>()) {
  impl_->fd = connect_to(host, port);
  impl_->reader = std::make_unique<serve::FrameReader>(impl_->fd);
}

WorkerConnection::~WorkerConnection() {
  if (impl_ != nullptr && impl_->fd >= 0) ::close(impl_->fd);
}

std::string WorkerConnection::call(const std::string& request) {
  serve::write_frame(impl_->fd, request);
  std::string payload;
  if (!impl_->reader->read(payload))
    throw std::runtime_error("worker hung up mid-call");
  return payload;
}

struct WorkerFleet::Worker {
  std::mutex mutex;           ///< serializes calls on this worker
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  bool spawned = false;       ///< we own the process and may respawn it
  bool unusable = false;      ///< external worker that stayed unreachable
  pid_t pid = -1;
  std::string port_file;      ///< rendezvous path for spawned workers
  std::unique_ptr<WorkerConnection> connection;
};

WorkerFleet::WorkerFleet(WorkerFleetOptions options)
    : options_(std::move(options)) {
  if (options_.spawn > 0 && options_.system_path.empty())
    throw std::invalid_argument(
        "spawning workers needs the system file to serve");
  if (options_.spawn == 0 && options_.hosts.empty())
    throw std::invalid_argument("a worker fleet needs spawn > 0 or hosts");
  for (std::size_t i = 0; i < options_.spawn; ++i) {
    auto worker = std::make_unique<Worker>();
    worker->spawned = true;
    worker->port_file =
        "/tmp/ftmc_worker_" + std::to_string(::getpid()) + "_" +
        std::to_string(i) + ".port";
    spawn_worker(*worker);
    workers_.push_back(std::move(worker));
  }
  for (const std::string& endpoint : options_.hosts) {
    auto worker = std::make_unique<Worker>();
    const auto [host, port] = parse_endpoint(endpoint);
    worker->host = host;
    worker->port = port;
    workers_.push_back(std::move(worker));
  }
}

WorkerFleet::~WorkerFleet() {
  for (auto& worker : workers_) {
    // Best-effort drain; a worker that ignores it is killed below.
    try {
      ensure_connected(*worker);
      (void)worker->connection->call(
          R"({"v": "ftmc.rpc.v1", "id": "fleet", "method": "shutdown"})");
    } catch (const std::exception&) {
    }
    worker->connection.reset();
    if (!worker->spawned || worker->pid <= 0) continue;
    int status = 0;
    for (int tick = 0; tick < 100; ++tick) {
      if (::waitpid(worker->pid, &status, WNOHANG) == worker->pid) {
        worker->pid = -1;
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    if (worker->pid > 0) {
      ::kill(worker->pid, SIGKILL);
      (void)::waitpid(worker->pid, &status, 0);
    }
    std::remove(worker->port_file.c_str());
  }
}

void WorkerFleet::spawn_worker(Worker& worker) {
  std::remove(worker.port_file.c_str());
  const std::string binary = options_.ftmc_binary.empty()
                                 ? self_executable()
                                 : options_.ftmc_binary;
  std::vector<std::string> argv_strings = {
      binary,
      "serve",
      options_.system_path,
      "--port=0",
      "--port-file=" + worker.port_file,
      "--sample-interval=0",
  };
  if (options_.worker_threads > 0)
    argv_strings.push_back("--threads=" +
                           std::to_string(options_.worker_threads));
  if (!options_.cache_dir.empty())
    argv_strings.push_back("--cache-dir=" + options_.cache_dir);
  std::vector<char*> argv;
  argv.reserve(argv_strings.size() + 1);
  for (std::string& arg : argv_strings) argv.push_back(arg.data());
  argv.push_back(nullptr);

  const pid_t pid = ::fork();
  if (pid < 0) throw std::runtime_error("cannot fork a worker process");
  if (pid == 0) {
    ::execv(binary.c_str(), argv.data());
    ::_exit(127);
  }
  worker.pid = pid;
  counters().spawns.add(1);

  // Rendezvous: the worker writes its ephemeral port atomically.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (std::chrono::steady_clock::now() < deadline) {
    int status = 0;
    if (::waitpid(pid, &status, WNOHANG) == pid) {
      worker.pid = -1;
      throw std::runtime_error("worker exited during startup (status " +
                               std::to_string(status) + ")");
    }
    std::ifstream in(worker.port_file);
    long port = 0;
    if (in && (in >> port) && port > 0) {
      worker.port = static_cast<std::uint16_t>(port);
      return;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  ::kill(pid, SIGKILL);
  (void)::waitpid(pid, nullptr, 0);
  worker.pid = -1;
  throw std::runtime_error("worker never wrote " + worker.port_file);
}

void WorkerFleet::ensure_connected(Worker& worker) {
  if (worker.unusable)
    throw dse::ExecutorError("worker " + worker.host + ":" +
                             std::to_string(worker.port) +
                             " is marked unusable");
  if (worker.spawned && worker.pid > 0) {
    int status = 0;
    if (::waitpid(worker.pid, &status, WNOHANG) == worker.pid) {
      // The process died underneath us (crash or SIGKILL): respawn.
      counters().lost.add(1);
      counters().respawns.add(1);
      worker.pid = -1;
      worker.connection.reset();
      spawn_worker(worker);
    }
  }
  if (worker.connection == nullptr) {
    try {
      worker.connection =
          std::make_unique<WorkerConnection>(worker.host, worker.port);
    } catch (const std::exception& error) {
      if (!worker.spawned) {
        // External workers cannot be respawned; after a failed reconnect
        // the fleet re-shards their islands elsewhere.
        counters().lost.add(1);
        worker.unusable = true;
      }
      throw dse::ExecutorError(error.what());
    }
  }
}

std::size_t WorkerFleet::assign(std::size_t island) {
  const std::size_t preferred = island % workers_.size();
  for (std::size_t offset = 0; offset < workers_.size(); ++offset) {
    const std::size_t index = (preferred + offset) % workers_.size();
    if (!workers_[index]->unusable) return index;
  }
  throw dse::ExecutorError("no usable worker left in the fleet");
}

std::string WorkerFleet::call(std::size_t index, const std::string& request) {
  Worker& worker = *workers_.at(index);
  std::lock_guard<std::mutex> lock(worker.mutex);
  ensure_connected(worker);
  counters().calls.add(1);
  try {
    return worker.connection->call(request);
  } catch (const std::exception& error) {
    // Drop the connection: the next call reconnects (and respawns a dead
    // spawned worker).  The campaign's retry machinery re-runs the batch.
    worker.connection.reset();
    throw dse::ExecutorError(error.what());
  }
}

pid_t WorkerFleet::pid(std::size_t index) const {
  return workers_.at(index)->pid;
}

}  // namespace ftmc::dist
