// Worker fleet management for distributed campaigns.
//
// A WorkerFleet owns the `ftmc serve` workers a campaign evaluates on:
// locally spawned processes (fork/exec of the ftmc binary, ephemeral port
// rendezvous through a --port-file) and/or externally managed daemons
// reached by host:port.  The fleet hands out framed ftmc.rpc.v1 calls,
// detects dead workers, respawns local ones (counted in
// dse.worker.lost / dse.worker.respawns), and re-shards islands away from
// external workers that stay unreachable.
//
// Layering: this library sits above both ftmc_dse (the Executor interface)
// and ftmc_serve (the wire protocol); neither of those links the other.
#pragma once

#include <sys/types.h>

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace ftmc::dist {

/// One framed TCP connection to a worker.  Methods throw
/// dse::ExecutorError (via the fleet) on transport failure.
class WorkerConnection {
 public:
  /// Connects to 127.0.0.1-or-host:port; throws std::runtime_error when
  /// the worker is unreachable.
  WorkerConnection(const std::string& host, std::uint16_t port);
  ~WorkerConnection();

  WorkerConnection(const WorkerConnection&) = delete;
  WorkerConnection& operator=(const WorkerConnection&) = delete;

  /// One request/response round trip (payloads, not frames).  Throws
  /// std::runtime_error when the peer hangs up mid-call.
  std::string call(const std::string& request);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

struct WorkerFleetOptions {
  /// Path of the ftmc binary for spawned workers; empty = this very
  /// executable (/proc/self/exe).
  std::string ftmc_binary;
  /// System file every spawned worker serves.
  std::string system_path;
  /// Local workers to spawn (`ftmc serve <system> --port=0 ...`).
  std::size_t spawn = 0;
  /// Externally managed workers, each "host:port"; appended after the
  /// spawned ones in worker indexing.
  std::vector<std::string> hosts;
  /// --threads forwarded to each spawned worker (0 = worker default).
  std::size_t worker_threads = 0;
  /// --cache-dir forwarded to each spawned worker (shared eval store).
  std::string cache_dir;
};

/// Owns the worker processes/endpoints of one campaign.  Thread-safe: the
/// per-worker mutex serializes calls on one worker while different workers
/// serve concurrent islands.
class WorkerFleet {
 public:
  explicit WorkerFleet(WorkerFleetOptions options);
  /// Shuts down spawned workers (shutdown request, then SIGKILL) and
  /// closes external connections.
  ~WorkerFleet();

  WorkerFleet(const WorkerFleet&) = delete;
  WorkerFleet& operator=(const WorkerFleet&) = delete;

  std::size_t size() const noexcept { return workers_.size(); }

  /// The worker an island should evaluate on: `island % size()` when that
  /// worker is usable, otherwise the next usable one (elastic re-sharding
  /// after an external worker became unreachable).  Throws
  /// dse::ExecutorError when no worker is usable.
  std::size_t assign(std::size_t island);

  /// One request/response round trip on worker `index`, reconnecting and —
  /// for spawned workers — respawning dead processes first.  Throws
  /// dse::ExecutorError on transport failure (the connection is dropped so
  /// the next call reconnects).
  std::string call(std::size_t index, const std::string& request);

  /// Process id of a spawned worker (tests SIGKILL it), -1 for external.
  pid_t pid(std::size_t index) const;

 private:
  struct Worker;
  void spawn_worker(Worker& worker);
  void ensure_connected(Worker& worker);

  WorkerFleetOptions options_;
  std::vector<std::unique_ptr<Worker>> workers_;
};

}  // namespace ftmc::dist
