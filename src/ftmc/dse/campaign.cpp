#include "ftmc/dse/campaign.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <optional>
#include <thread>

#include "ftmc/dse/checkpoint.hpp"
#include "ftmc/dse/executor.hpp"
#include "ftmc/obs/metrics.hpp"
#include "ftmc/util/file_io.hpp"

namespace ftmc::dse {
namespace {

struct CampaignCounters {
  obs::Counter shards{"dse.campaign.shards"};
  obs::Counter retries{"dse.campaign.retries"};
  obs::Counter stragglers{"dse.campaign.stragglers"};
  obs::Counter migration_epochs{"dse.migration.epochs"};
  obs::Counter migrants{"dse.migration.migrants"};
};

CampaignCounters& counters() {
  static CampaignCounters instance;
  return instance;
}

/// An island's barrier donation: the best feasible non-dominated archive
/// members, one per objective vector, in lexicographic objective order so
/// the selection is independent of archive layout.
std::vector<Individual> select_migrants(const Checkpoint& snapshot,
                                        std::size_t count) {
  std::vector<const Individual*> feasible;
  std::vector<ObjectiveVector> points;
  for (const Individual& individual : snapshot.archive) {
    if (!individual.evaluation.feasible()) continue;
    feasible.push_back(&individual);
    points.push_back(individual.objectives);
  }
  std::vector<const Individual*> front;
  for (std::size_t index : pareto_front(points))
    front.push_back(feasible[index]);
  std::sort(front.begin(), front.end(),
            [](const Individual* a, const Individual* b) {
              return a->objectives < b->objectives;
            });
  std::vector<Individual> migrants;
  for (const Individual* individual : front) {
    if (migrants.size() >= count) break;
    if (!migrants.empty() &&
        migrants.back().objectives == individual->objectives)
      continue;
    migrants.push_back(*individual);
  }
  return migrants;
}

bool archive_has_objectives(const std::vector<Individual>& archive,
                            const ObjectiveVector& objectives) {
  return std::any_of(archive.begin(), archive.end(),
                     [&](const Individual& individual) {
                       return individual.objectives == objectives;
                     });
}

}  // namespace

std::string shard_checkpoint_path(const std::string& base, std::size_t shard,
                                  std::size_t shard_count) {
  if (base.empty() || shard_count <= 1) return base;
  return base + ".s" + std::to_string(shard);
}

std::vector<Individual> merge_fronts(const std::vector<ShardResult>& shards) {
  // Each shard front is already feasible and internally non-dominated;
  // the union is not, so take the Pareto front of the concatenation and
  // keep one representative per objective vector in shard order.
  std::vector<const Individual*> members;
  std::vector<ObjectiveVector> points;
  for (const ShardResult& shard : shards)
    for (const Individual& individual : shard.result.pareto) {
      members.push_back(&individual);
      points.push_back(individual.objectives);
    }
  std::vector<Individual> front;
  std::vector<ObjectiveVector> seen;
  for (std::size_t index : pareto_front(points)) {
    const Individual& individual = *members[index];
    if (std::find(seen.begin(), seen.end(), individual.objectives) !=
        seen.end())
      continue;
    seen.push_back(individual.objectives);
    front.push_back(individual);
  }
  return front;
}

Campaign::Campaign(const model::Architecture& arch,
                   const model::ApplicationSet& apps,
                   const sched::SchedulingAnalysis& backend)
    : arch_(&arch), apps_(&apps), backend_(&backend) {}

CampaignResult Campaign::run(const CampaignOptions& options) const {
  const std::vector<std::uint64_t> seeds =
      options.seeds.empty() ? std::vector<std::uint64_t>{options.ga.seed}
                            : options.seeds;
  if (options.migration_every > 0) return run_islands(options, seeds);
  return run_shards(options, seeds);
}

CampaignResult Campaign::run_shards(
    const CampaignOptions& options,
    const std::vector<std::uint64_t>& seeds) const {
  const GeneticOptimizer optimizer(*arch_, *apps_, *backend_);
  const auto campaign_start = std::chrono::steady_clock::now();

  CampaignResult campaign;
  bool stop_hit = false;
  bool budget_hit = false;
  std::size_t completed_evaluations = 0;  // finished shards only
  std::size_t shard_evaluations = 0;      // current attempt, via telemetry

  const auto elapsed_seconds = [&]() {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         campaign_start)
        .count();
  };
  // Polled by the GA at generation boundaries: the in-flight generation
  // always completes (and checkpoints) before the campaign winds down.
  const auto should_stop = [&]() {
    if (options.stop_requested && options.stop_requested()) {
      stop_hit = true;
      return true;
    }
    if (options.max_seconds > 0.0 &&
        elapsed_seconds() >= options.max_seconds) {
      budget_hit = true;
      return true;
    }
    if (options.max_evaluations > 0 &&
        completed_evaluations + shard_evaluations >=
            options.max_evaluations) {
      budget_hit = true;
      return true;
    }
    return false;
  };

  for (std::size_t shard = 0; shard < seeds.size(); ++shard) {
    if (should_stop()) break;
    counters().shards.add(1);

    const std::string checkpoint_path =
        shard_checkpoint_path(options.checkpoint_path, shard, seeds.size());
    ShardResult shard_result;
    shard_result.seed = seeds[shard];

    double backoff = options.retry_backoff_seconds;
    for (std::size_t attempt = 0;; ++attempt) {
      GaOptions ga = options.ga;
      ga.seed = seeds[shard];
      ga.checkpoint_path = checkpoint_path;
      ga.checkpoint_every = options.checkpoint_every;
      ga.checkpoint_keep = options.checkpoint_keep;
      ga.stop_requested = should_stop;
      shard_evaluations = 0;
      ga.on_generation = [&, shard](const GenerationStats& stats) {
        shard_evaluations += stats.evaluations;
        if (options.on_generation) options.on_generation(shard, stats);
      };

      // A fresh executor per attempt: a retry after a worker loss must not
      // reuse the connection that just died.
      std::unique_ptr<Executor> executor;
      if (options.executor_factory) {
        executor = options.executor_factory(shard);
        ga.executor = executor.get();
      }

      // First attempt resumes only on request; retries always pick up the
      // latest snapshot of the failed attempt (identical trajectory by the
      // resume guarantee), or restart when checkpointing is off.
      std::optional<Checkpoint> snapshot;
      const bool want_resume = attempt > 0 || options.resume;
      if (want_resume && !checkpoint_path.empty() &&
          util::file_exists(checkpoint_path)) {
        snapshot = load_checkpoint(checkpoint_path);
        ga.resume = &*snapshot;
        shard_result.resumed = shard_result.resumed || attempt == 0;
      }

      try {
        shard_result.result = optimizer.run(ga);
        break;
      } catch (const CheckpointError&) {
        throw;  // defective snapshot / options mismatch: never retried
      } catch (const std::invalid_argument&) {
        throw;  // configuration error: retrying cannot help
      } catch (const std::exception&) {
        if (attempt >= options.max_retries) throw;
        counters().retries.add(1);
        ++shard_result.retries;
        std::this_thread::sleep_for(std::chrono::duration<double>(
            std::min(backoff, options.max_backoff_seconds)));
        backoff *= 2.0;
      }
    }

    completed_evaluations += shard_result.result.evaluations;
    shard_evaluations = 0;
    const bool interrupted = shard_result.result.interrupted;
    campaign.shards.push_back(std::move(shard_result));
    if (interrupted) break;
  }

  campaign.interrupted = stop_hit;
  campaign.budget_exhausted = budget_hit;
  campaign.evaluations = completed_evaluations;
  campaign.front = merge_fronts(campaign.shards);
  return campaign;
}

CampaignResult Campaign::run_islands(
    const CampaignOptions& options,
    const std::vector<std::uint64_t>& seeds) const {
  const GeneticOptimizer optimizer(*arch_, *apps_, *backend_);
  const std::size_t islands = seeds.size();
  const std::size_t generations = options.ga.generations;
  const auto campaign_start = std::chrono::steady_clock::now();

  // Per-island state.  Snapshots carry the trajectory between epochs (and
  // receive migrants at barriers); the atomics are written from island
  // threads and read by the shared budget check.
  std::vector<ShardResult> results(islands);
  std::vector<std::shared_ptr<Checkpoint>> snaps(islands);
  std::vector<std::atomic<std::uint64_t>> last_reported(islands);
  std::vector<std::int64_t> last_forwarded(islands, -1);
  std::vector<std::atomic<std::size_t>> island_evaluations(islands);
  std::vector<char> started(islands, 0);
  std::vector<char> done(islands, 0);
  std::vector<double> epoch_ewma(islands, 0.0);
  for (std::size_t island = 0; island < islands; ++island)
    results[island].seed = seeds[island];

  // User-supplied callbacks are not required to be thread-safe; one mutex
  // serializes stop_requested and on_generation across island threads.
  std::mutex user_mutex;
  std::atomic<bool> stop_hit{false};
  std::atomic<bool> budget_hit{false};

  const auto global_should_stop = [&]() {
    if (options.stop_requested) {
      std::lock_guard<std::mutex> lock(user_mutex);
      if (options.stop_requested()) {
        stop_hit.store(true);
        return true;
      }
    }
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      campaign_start)
            .count();
    if (options.max_seconds > 0.0 && elapsed >= options.max_seconds) {
      budget_hit.store(true);
      return true;
    }
    if (options.max_evaluations > 0) {
      std::size_t total = 0;
      for (const auto& count : island_evaluations) total += count.load();
      if (total >= options.max_evaluations) {
        budget_hit.store(true);
        return true;
      }
    }
    return false;
  };

  CampaignResult campaign;
  std::size_t epoch = 0;
  while (!global_should_stop()) {
    ++epoch;
    const std::uint64_t target = std::min<std::uint64_t>(
        generations,
        static_cast<std::uint64_t>(epoch) * options.migration_every);
    std::vector<double> epoch_seconds(islands, 0.0);

    // One island, one epoch: run the GA until its reported generation
    // reaches the epoch target (the stop predicate fires at the boundary,
    // after the target generation's stats were delivered), capturing an
    // in-memory snapshot to continue from after the barrier.
    const auto run_island = [&](std::size_t island) {
      if (done[island]) return;
      if (!started[island]) {
        started[island] = 1;
        counters().shards.add(1);
      }
      const auto island_start = std::chrono::steady_clock::now();
      const std::string checkpoint_path =
          shard_checkpoint_path(options.checkpoint_path, island, islands);

      double backoff = options.retry_backoff_seconds;
      for (std::size_t attempt = 0;; ++attempt) {
        GaOptions ga = options.ga;
        ga.seed = seeds[island];
        ga.checkpoint_path = checkpoint_path;
        ga.checkpoint_every = options.checkpoint_every;
        ga.checkpoint_keep = options.checkpoint_keep;
        ga.capture_final_snapshot = true;
        ga.stop_requested = [&, island] {
          return last_reported[island].load() >= target ||
                 global_should_stop();
        };
        island_evaluations[island].store(0);
        ga.on_generation = [&, island](const GenerationStats& stats) {
          // A resumed run replays its whole history, so summing every
          // delivery yields the island's full-trajectory evaluation count;
          // the user only sees generations beyond the last forwarded one.
          island_evaluations[island] += stats.evaluations;
          last_reported[island].store(stats.generation);
          if (options.on_generation &&
              static_cast<std::int64_t>(stats.generation) >
                  last_forwarded[island]) {
            last_forwarded[island] =
                static_cast<std::int64_t>(stats.generation);
            std::lock_guard<std::mutex> lock(user_mutex);
            options.on_generation(island, stats);
          }
        };

        std::unique_ptr<Executor> executor;
        if (options.executor_factory) {
          executor = options.executor_factory(island);
          ga.executor = executor.get();
        }

        // Resume source.  A retry prefers the newest on-disk snapshot (the
        // failed attempt's own cadence writes, strictly past the barrier);
        // otherwise the island continues from its in-memory epoch snapshot,
        // which carries any migrants.  The first epoch honours
        // options.resume against whatever is on disk.
        std::optional<Checkpoint> disk;
        const bool want_disk =
            (attempt > 0 || (epoch == 1 && options.resume)) &&
            !checkpoint_path.empty() && util::file_exists(checkpoint_path);
        if (want_disk) {
          disk = load_checkpoint(checkpoint_path);
          if (epoch == 1 && attempt == 0) results[island].resumed = true;
        }
        if (disk && (snaps[island] == nullptr ||
                     disk->generation > snaps[island]->generation)) {
          ga.resume = &*disk;
        } else if (snaps[island] != nullptr) {
          ga.resume = snaps[island].get();
        }

        try {
          results[island].result = optimizer.run(ga);
          break;
        } catch (const CheckpointError&) {
          throw;  // defective snapshot / options mismatch: never retried
        } catch (const std::invalid_argument&) {
          throw;  // configuration error: retrying cannot help
        } catch (const std::exception&) {
          if (attempt >= options.max_retries) throw;
          counters().retries.add(1);
          ++results[island].retries;
          std::this_thread::sleep_for(std::chrono::duration<double>(
              std::min(backoff, options.max_backoff_seconds)));
          backoff *= 2.0;
        }
      }

      // The resume-of-finished fast path returns no snapshot; keep the one
      // we already have in that case.
      if (results[island].result.snapshot != nullptr)
        snaps[island] = results[island].result.snapshot;
      if (!results[island].result.interrupted ||
          results[island].result.last_generation >= generations)
        done[island] = 1;
      epoch_seconds[island] =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        island_start)
              .count();
    };

    if (options.parallel_islands) {
      std::vector<std::thread> threads;
      threads.reserve(islands);
      std::mutex failure_mutex;
      std::exception_ptr failure;
      for (std::size_t island = 0; island < islands; ++island)
        threads.emplace_back([&, island] {
          try {
            run_island(island);
          } catch (...) {
            std::lock_guard<std::mutex> lock(failure_mutex);
            if (!failure) failure = std::current_exception();
          }
        });
      for (std::thread& thread : threads) thread.join();
      if (failure) std::rethrow_exception(failure);
    } else {
      for (std::size_t island = 0; island < islands; ++island)
        run_island(island);
    }

    // Straggler diagnosis: EWMA of each island's epoch duration against
    // the fleet mean.  Counted, never acted on — the barrier still waits.
    constexpr double kEwmaAlpha = 0.3;
    double fleet_sum = 0.0;
    std::size_t fleet_count = 0;
    for (std::size_t island = 0; island < islands; ++island) {
      if (epoch_seconds[island] <= 0.0) continue;
      epoch_ewma[island] =
          epoch_ewma[island] == 0.0
              ? epoch_seconds[island]
              : kEwmaAlpha * epoch_seconds[island] +
                    (1.0 - kEwmaAlpha) * epoch_ewma[island];
      fleet_sum += epoch_ewma[island];
      ++fleet_count;
    }
    if (fleet_count >= 2) {
      const double fleet_mean = fleet_sum / static_cast<double>(fleet_count);
      for (std::size_t island = 0; island < islands; ++island)
        if (epoch_seconds[island] > 0.0 &&
            epoch_ewma[island] > options.straggler_factor * fleet_mean)
          counters().stragglers.add(1);
    }

    const bool all_done =
        std::all_of(done.begin(), done.end(),
                    [](char is_done) { return is_done != 0; });
    if (all_done || stop_hit.load() || budget_hit.load()) break;

    // Migration barrier: island i donates to island i+1 on the ring.
    // Every migrant list is computed against the pre-barrier snapshots
    // before any archive is touched, so the exchange is symmetric and
    // independent of island order.
    if (islands > 1 && options.migration_size > 0) {
      counters().migration_epochs.add(1);
      ++campaign.migration_epochs;
      std::vector<std::vector<Individual>> outgoing(islands);
      for (std::size_t island = 0; island < islands; ++island)
        if (snaps[island] != nullptr)
          outgoing[island] =
              select_migrants(*snaps[island], options.migration_size);
      for (std::size_t island = 0; island < islands; ++island) {
        const std::size_t recipient = (island + 1) % islands;
        if (snaps[recipient] == nullptr || done[recipient]) continue;
        for (const Individual& migrant : outgoing[island]) {
          if (archive_has_objectives(snaps[recipient]->archive,
                                     migrant.objectives))
            continue;
          snaps[recipient]->archive.push_back(migrant);
          counters().migrants.add(1);
          ++campaign.migrants;
        }
      }
    }
  }

  campaign.interrupted = stop_hit.load();
  campaign.budget_exhausted = budget_hit.load();
  for (std::size_t island = 0; island < islands; ++island) {
    if (!started[island]) continue;
    campaign.evaluations += results[island].result.evaluations;
    campaign.shards.push_back(std::move(results[island]));
  }
  campaign.front = merge_fronts(campaign.shards);
  return campaign;
}

}  // namespace ftmc::dse
