#include "ftmc/dse/campaign.hpp"

#include <algorithm>
#include <chrono>
#include <optional>
#include <thread>

#include "ftmc/dse/checkpoint.hpp"
#include "ftmc/obs/metrics.hpp"
#include "ftmc/util/file_io.hpp"

namespace ftmc::dse {
namespace {

struct CampaignCounters {
  obs::Counter shards{"dse.campaign.shards"};
  obs::Counter retries{"dse.campaign.retries"};
};

CampaignCounters& counters() {
  static CampaignCounters instance;
  return instance;
}

}  // namespace

std::string shard_checkpoint_path(const std::string& base, std::size_t shard,
                                  std::size_t shard_count) {
  if (base.empty() || shard_count <= 1) return base;
  return base + ".s" + std::to_string(shard);
}

std::vector<Individual> merge_fronts(const std::vector<ShardResult>& shards) {
  // Each shard front is already feasible and internally non-dominated;
  // the union is not, so take the Pareto front of the concatenation and
  // keep one representative per objective vector in shard order.
  std::vector<const Individual*> members;
  std::vector<ObjectiveVector> points;
  for (const ShardResult& shard : shards)
    for (const Individual& individual : shard.result.pareto) {
      members.push_back(&individual);
      points.push_back(individual.objectives);
    }
  std::vector<Individual> front;
  std::vector<ObjectiveVector> seen;
  for (std::size_t index : pareto_front(points)) {
    const Individual& individual = *members[index];
    if (std::find(seen.begin(), seen.end(), individual.objectives) !=
        seen.end())
      continue;
    seen.push_back(individual.objectives);
    front.push_back(individual);
  }
  return front;
}

Campaign::Campaign(const model::Architecture& arch,
                   const model::ApplicationSet& apps,
                   const sched::SchedulingAnalysis& backend)
    : arch_(&arch), apps_(&apps), backend_(&backend) {}

CampaignResult Campaign::run(const CampaignOptions& options) const {
  const std::vector<std::uint64_t> seeds =
      options.seeds.empty() ? std::vector<std::uint64_t>{options.ga.seed}
                            : options.seeds;
  const GeneticOptimizer optimizer(*arch_, *apps_, *backend_);
  const auto campaign_start = std::chrono::steady_clock::now();

  CampaignResult campaign;
  bool stop_hit = false;
  bool budget_hit = false;
  std::size_t completed_evaluations = 0;  // finished shards only
  std::size_t shard_evaluations = 0;      // current attempt, via telemetry

  const auto elapsed_seconds = [&]() {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         campaign_start)
        .count();
  };
  // Polled by the GA at generation boundaries: the in-flight generation
  // always completes (and checkpoints) before the campaign winds down.
  const auto should_stop = [&]() {
    if (options.stop_requested && options.stop_requested()) {
      stop_hit = true;
      return true;
    }
    if (options.max_seconds > 0.0 &&
        elapsed_seconds() >= options.max_seconds) {
      budget_hit = true;
      return true;
    }
    if (options.max_evaluations > 0 &&
        completed_evaluations + shard_evaluations >=
            options.max_evaluations) {
      budget_hit = true;
      return true;
    }
    return false;
  };

  for (std::size_t shard = 0; shard < seeds.size(); ++shard) {
    if (should_stop()) break;
    counters().shards.add(1);

    const std::string checkpoint_path =
        shard_checkpoint_path(options.checkpoint_path, shard, seeds.size());
    ShardResult shard_result;
    shard_result.seed = seeds[shard];

    double backoff = options.retry_backoff_seconds;
    for (std::size_t attempt = 0;; ++attempt) {
      GaOptions ga = options.ga;
      ga.seed = seeds[shard];
      ga.checkpoint_path = checkpoint_path;
      ga.checkpoint_every = options.checkpoint_every;
      ga.checkpoint_keep = options.checkpoint_keep;
      ga.stop_requested = should_stop;
      shard_evaluations = 0;
      ga.on_generation = [&, shard](const GenerationStats& stats) {
        shard_evaluations += stats.evaluations;
        if (options.on_generation) options.on_generation(shard, stats);
      };

      // First attempt resumes only on request; retries always pick up the
      // latest snapshot of the failed attempt (identical trajectory by the
      // resume guarantee), or restart when checkpointing is off.
      std::optional<Checkpoint> snapshot;
      const bool want_resume = attempt > 0 || options.resume;
      if (want_resume && !checkpoint_path.empty() &&
          util::file_exists(checkpoint_path)) {
        snapshot = load_checkpoint(checkpoint_path);
        ga.resume = &*snapshot;
        shard_result.resumed = shard_result.resumed || attempt == 0;
      }

      try {
        shard_result.result = optimizer.run(ga);
        break;
      } catch (const CheckpointError&) {
        throw;  // defective snapshot / options mismatch: never retried
      } catch (const std::invalid_argument&) {
        throw;  // configuration error: retrying cannot help
      } catch (const std::exception&) {
        if (attempt >= options.max_retries) throw;
        counters().retries.add(1);
        ++shard_result.retries;
        std::this_thread::sleep_for(std::chrono::duration<double>(
            std::min(backoff, options.max_backoff_seconds)));
        backoff *= 2.0;
      }
    }

    completed_evaluations += shard_result.result.evaluations;
    shard_evaluations = 0;
    const bool interrupted = shard_result.result.interrupted;
    campaign.shards.push_back(std::move(shard_result));
    if (interrupted) break;
  }

  campaign.interrupted = stop_hit;
  campaign.budget_exhausted = budget_hit;
  campaign.evaluations = completed_evaluations;
  campaign.front = merge_fronts(campaign.shards);
  return campaign;
}

}  // namespace ftmc::dse
