// Multi-seed DSE campaigns: the production driver around GeneticOptimizer.
//
// A campaign shards one exploration problem over several GA seeds, runs the
// shards sequentially (each shard already saturates the machine through the
// evaluator's thread pool), retries transient evaluator failures with
// bounded exponential backoff, enforces wall-clock and evaluation budgets,
// and merges the per-seed feasible fronts into one non-dominated set.
//
// With `migration_every > 0` the seeds become an island model instead:
// every seed is an island, islands run `migration_every` generations per
// epoch, meet at a barrier, and exchange their best feasible non-dominated
// candidates along a ring before resuming from in-memory snapshots.
// Islands may run their epochs concurrently (`parallel_islands`), and each
// island's evaluations can be delegated to a remote worker through
// `executor_factory` (see executor.hpp; the factory is re-invoked on retry
// so a lost worker is replaced by a fresh one).
//
// Determinism: every shard is an ordinary GA run, so a fixed seed list
// yields a bitwise-identical merged front; a retried shard reloads its
// latest checkpoint (or restarts from scratch when checkpointing is off),
// which by the resume guarantee of checkpoint.hpp reproduces the exact
// trajectory the failed attempt was on.  Island campaigns are equally
// deterministic — migration happens at fixed generation barriers on sorted
// candidate lists — so a fixed (seeds, migration_every, migration_size)
// triple pins the merged front regardless of which executor evaluated each
// batch or whether any worker died and was respawned mid-epoch.
// Configuration errors (std::invalid_argument) and checkpoint defects
// (CheckpointError) are never retried — they fail the campaign
// immediately.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "ftmc/dse/ga.hpp"

namespace ftmc::dse {

class Executor;

struct CampaignOptions {
  /// Per-shard GA configuration; `ga.seed` is overridden by each entry of
  /// `seeds` and `ga.checkpoint_path`/`ga.resume` by the campaign's own
  /// checkpoint management below.
  GaOptions ga;
  /// One shard per seed, run in order.  Empty = single shard with ga.seed.
  std::vector<std::uint64_t> seeds;

  /// Island-model migration cadence in generations (0 = plain sequential
  /// multi-seed shards, the historical behaviour).  With a cadence, every
  /// seed is an island: epochs of `migration_every` generations separated
  /// by ring-migration barriers.
  std::size_t migration_every = 0;
  /// Candidates each island donates to its ring successor per barrier
  /// (its best feasible non-dominated individuals, deduplicated against
  /// the recipient's archive by objective vector).
  std::size_t migration_size = 4;
  /// Run island epochs concurrently, one thread per island.  Off by
  /// default: in-process islands already saturate the machine through the
  /// evaluator pool, so threads only help when executors evaluate
  /// elsewhere (remote workers).
  bool parallel_islands = false;
  /// An island whose epoch-duration EWMA exceeds this factor times the
  /// fleet mean is counted in `dse.campaign.stragglers` (diagnostic only;
  /// the migration barrier still waits for it).
  double straggler_factor = 3.0;
  /// Evaluation executor per island (nullptr = in-process).  Called once
  /// per GA attempt, so a retry after a worker loss constructs a fresh
  /// executor — typically a respawned worker.  Also honoured in plain
  /// shard mode (one call per shard attempt).
  std::function<std::unique_ptr<Executor>(std::size_t)> executor_factory;

  /// Retries per shard on evaluator failure (any std::exception except
  /// configuration and checkpoint errors).
  std::size_t max_retries = 2;
  /// First retry delay; doubles per retry, capped at max_backoff_seconds.
  double retry_backoff_seconds = 0.1;
  double max_backoff_seconds = 5.0;

  /// Wall-clock budget over the whole campaign (0 = unlimited).  Checked at
  /// generation boundaries: the in-flight generation always completes and,
  /// with checkpointing on, a resumable snapshot is written.
  double max_seconds = 0.0;
  /// Evaluation budget over the whole campaign (0 = unlimited), same
  /// boundary semantics.
  std::size_t max_evaluations = 0;

  /// Base snapshot path (empty = no checkpointing).  A single-seed campaign
  /// uses it verbatim; shard i of a multi-seed campaign uses `<path>.s<i>`.
  std::string checkpoint_path;
  std::size_t checkpoint_every = 1;
  std::size_t checkpoint_keep = 3;
  /// Load existing shard snapshots and continue them; missing files start
  /// fresh, defective or mismatched ones fail loudly (CheckpointError).
  bool resume = false;

  /// Cooperative interrupt, polled at generation boundaries (compose with
  /// budgets; also stops the shard loop between shards).
  std::function<bool()> stop_requested;
  /// Telemetry fan-in: shard index + that shard's per-generation stats
  /// (replayed from generation 0 when a shard resumes).
  std::function<void(std::size_t, const GenerationStats&)> on_generation;
};

/// Per-shard checkpoint path under the campaign's base path.
std::string shard_checkpoint_path(const std::string& base, std::size_t shard,
                                  std::size_t shard_count);

struct ShardResult {
  std::uint64_t seed = 0;
  GaResult result;
  std::size_t retries = 0;  ///< evaluator failures recovered from
  bool resumed = false;     ///< started from an existing snapshot
};

struct CampaignResult {
  std::vector<ShardResult> shards;
  /// Non-dominated union of the shards' feasible fronts, one representative
  /// per objective vector (first shard in seed order wins ties).
  std::vector<Individual> front;
  std::size_t evaluations = 0;
  /// True when stop_requested fired; shards not yet started are absent
  /// from `shards` and the interrupted shard carries interrupted=true.
  bool interrupted = false;
  /// True when a wall-clock or evaluation budget ended the campaign early.
  bool budget_exhausted = false;
  /// Island-mode telemetry (both zero in plain shard mode).
  std::size_t migration_epochs = 0;
  std::size_t migrants = 0;
};

/// Merges per-shard fronts into one non-dominated, deduplicated front.
std::vector<Individual> merge_fronts(const std::vector<ShardResult>& shards);

class Campaign {
 public:
  /// References must outlive the campaign.
  Campaign(const model::Architecture& arch, const model::ApplicationSet& apps,
           const sched::SchedulingAnalysis& backend);

  CampaignResult run(const CampaignOptions& options) const;

 private:
  CampaignResult run_shards(const CampaignOptions& options,
                            const std::vector<std::uint64_t>& seeds) const;
  CampaignResult run_islands(const CampaignOptions& options,
                             const std::vector<std::uint64_t>& seeds) const;

  const model::Architecture* arch_;
  const model::ApplicationSet* apps_;
  const sched::SchedulingAnalysis* backend_;
};

}  // namespace ftmc::dse
