// Multi-seed DSE campaigns: the production driver around GeneticOptimizer.
//
// A campaign shards one exploration problem over several GA seeds, runs the
// shards sequentially (each shard already saturates the machine through the
// evaluator's thread pool), retries transient evaluator failures with
// bounded exponential backoff, enforces wall-clock and evaluation budgets,
// and merges the per-seed feasible fronts into one non-dominated set.
//
// Determinism: every shard is an ordinary GA run, so a fixed seed list
// yields a bitwise-identical merged front; a retried shard reloads its
// latest checkpoint (or restarts from scratch when checkpointing is off),
// which by the resume guarantee of checkpoint.hpp reproduces the exact
// trajectory the failed attempt was on.  Configuration errors
// (std::invalid_argument) and checkpoint defects (CheckpointError) are
// never retried — they fail the campaign immediately.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "ftmc/dse/ga.hpp"

namespace ftmc::dse {

struct CampaignOptions {
  /// Per-shard GA configuration; `ga.seed` is overridden by each entry of
  /// `seeds` and `ga.checkpoint_path`/`ga.resume` by the campaign's own
  /// checkpoint management below.
  GaOptions ga;
  /// One shard per seed, run in order.  Empty = single shard with ga.seed.
  std::vector<std::uint64_t> seeds;

  /// Retries per shard on evaluator failure (any std::exception except
  /// configuration and checkpoint errors).
  std::size_t max_retries = 2;
  /// First retry delay; doubles per retry, capped at max_backoff_seconds.
  double retry_backoff_seconds = 0.1;
  double max_backoff_seconds = 5.0;

  /// Wall-clock budget over the whole campaign (0 = unlimited).  Checked at
  /// generation boundaries: the in-flight generation always completes and,
  /// with checkpointing on, a resumable snapshot is written.
  double max_seconds = 0.0;
  /// Evaluation budget over the whole campaign (0 = unlimited), same
  /// boundary semantics.
  std::size_t max_evaluations = 0;

  /// Base snapshot path (empty = no checkpointing).  A single-seed campaign
  /// uses it verbatim; shard i of a multi-seed campaign uses `<path>.s<i>`.
  std::string checkpoint_path;
  std::size_t checkpoint_every = 1;
  std::size_t checkpoint_keep = 3;
  /// Load existing shard snapshots and continue them; missing files start
  /// fresh, defective or mismatched ones fail loudly (CheckpointError).
  bool resume = false;

  /// Cooperative interrupt, polled at generation boundaries (compose with
  /// budgets; also stops the shard loop between shards).
  std::function<bool()> stop_requested;
  /// Telemetry fan-in: shard index + that shard's per-generation stats
  /// (replayed from generation 0 when a shard resumes).
  std::function<void(std::size_t, const GenerationStats&)> on_generation;
};

/// Per-shard checkpoint path under the campaign's base path.
std::string shard_checkpoint_path(const std::string& base, std::size_t shard,
                                  std::size_t shard_count);

struct ShardResult {
  std::uint64_t seed = 0;
  GaResult result;
  std::size_t retries = 0;  ///< evaluator failures recovered from
  bool resumed = false;     ///< started from an existing snapshot
};

struct CampaignResult {
  std::vector<ShardResult> shards;
  /// Non-dominated union of the shards' feasible fronts, one representative
  /// per objective vector (first shard in seed order wins ties).
  std::vector<Individual> front;
  std::size_t evaluations = 0;
  /// True when stop_requested fired; shards not yet started are absent
  /// from `shards` and the interrupted shard carries interrupted=true.
  bool interrupted = false;
  /// True when a wall-clock or evaluation budget ended the campaign early.
  bool budget_exhausted = false;
};

/// Merges per-shard fronts into one non-dominated, deduplicated front.
std::vector<Individual> merge_fronts(const std::vector<ShardResult>& shards);

class Campaign {
 public:
  /// References must outlive the campaign.
  Campaign(const model::Architecture& arch, const model::ApplicationSet& apps,
           const sched::SchedulingAnalysis& backend);

  CampaignResult run(const CampaignOptions& options) const;

 private:
  const model::Architecture* arch_;
  const model::ApplicationSet* apps_;
  const sched::SchedulingAnalysis* backend_;
};

}  // namespace ftmc::dse
