#include "ftmc/dse/checkpoint.hpp"

#include <bit>
#include <cstring>

#include "ftmc/core/serialize.hpp"
#include "ftmc/obs/metrics.hpp"
#include "ftmc/util/byte_stream.hpp"
#include "ftmc/util/file_io.hpp"
#include "ftmc/util/hash.hpp"

namespace ftmc::dse {
namespace {

struct CheckpointCounters {
  obs::Counter writes{"dse.checkpoint.writes"};
  obs::Counter bytes{"dse.checkpoint.bytes"};
  obs::Counter loads{"dse.resume.loads"};
  obs::Counter rejected{"dse.resume.rejected"};
};

CheckpointCounters& counters() {
  static CheckpointCounters instance;
  return instance;
}

// The little-endian field stream itself lives in util/byte_stream.hpp and is
// shared with the persistent evaluation store; a ByteStreamError thrown while
// decoding is converted to CheckpointError at the decode_checkpoint boundary
// (with the error message preserved, including the "checkpoint payload"
// context prefix).

using Writer = util::ByteWriter;
using Reader = util::ByteReader;

Reader payload_reader(std::span<const std::uint8_t> payload) {
  return Reader(payload, "checkpoint payload");
}

// --- Per-type encode / decode -----------------------------------------------

void put(Writer& out, const TrajectoryOptions& options) {
  out.u64(options.population);
  out.u64(options.offspring);
  out.u64(options.generations);
  out.u64(options.seed);
  out.u8(options.optimize_service);
  out.f64(options.crossover_rate);
  out.f64(options.allocation_flip_rate);
  out.f64(options.keep_flip_rate);
  out.f64(options.task_mutation_rate);
  out.f64(options.graph_recluster_rate);
  out.u64(options.reliability_repair_attempts);
  out.u8(options.decoder_allow_dropping);
  out.u32(options.technique_restriction);
  out.u32(options.analysis_mode);
  out.u32(options.priority_policy);
  out.f64(options.infeasibility_penalty);
  out.u8(options.evaluator_allow_dropping);
}

TrajectoryOptions get_options(Reader& in) {
  TrajectoryOptions options;
  options.population = in.u64();
  options.offspring = in.u64();
  options.generations = in.u64();
  options.seed = in.u64();
  options.optimize_service = in.u8();
  options.crossover_rate = in.f64();
  options.allocation_flip_rate = in.f64();
  options.keep_flip_rate = in.f64();
  options.task_mutation_rate = in.f64();
  options.graph_recluster_rate = in.f64();
  options.reliability_repair_attempts = in.u64();
  options.decoder_allow_dropping = in.u8();
  options.technique_restriction = in.u32();
  options.analysis_mode = in.u32();
  options.priority_policy = in.u32();
  options.infeasibility_penalty = in.f64();
  options.evaluator_allow_dropping = in.u8();
  return options;
}

void put(Writer& out, const Chromosome& chromosome) {
  out.bytes8(chromosome.allocation);
  out.bytes8(chromosome.keep);
  out.size(chromosome.tasks.size());
  for (const TaskGenes& genes : chromosome.tasks) {
    out.u8(static_cast<std::uint8_t>(genes.technique));
    out.u8(genes.reexec);
    out.u8(genes.active_n);
    out.u32(genes.base_pe);
    for (std::uint16_t pe : genes.replica_pe) out.u32(pe);
    out.u32(genes.voter_pe);
  }
}

Chromosome get_chromosome(Reader& in) {
  Chromosome chromosome;
  chromosome.allocation = in.bytes8();
  chromosome.keep = in.bytes8();
  const std::size_t tasks = in.length(3 + 6 * 4);
  chromosome.tasks.resize(tasks);
  for (TaskGenes& genes : chromosome.tasks) {
    genes.technique = static_cast<TechniqueGene>(in.u8());
    genes.reexec = in.u8();
    genes.active_n = in.u8();
    genes.base_pe = static_cast<std::uint16_t>(in.u32());
    for (std::uint16_t& pe : genes.replica_pe)
      pe = static_cast<std::uint16_t>(in.u32());
    genes.voter_pe = static_cast<std::uint16_t>(in.u32());
  }
  return chromosome;
}

// Candidate and Evaluation codecs are shared with the persistent evaluation
// store (ftmc/core/serialize.{hpp,cpp}); the byte layout is unchanged.

void put(Writer& out, const Individual& individual) {
  put(out, individual.chromosome);
  core::write_candidate(out, individual.candidate);
  core::write_evaluation(out, individual.evaluation);
  out.size(individual.objectives.size());
  for (double value : individual.objectives) out.f64(value);
}

Individual get_individual(Reader& in) {
  Individual individual;
  individual.chromosome = get_chromosome(in);
  individual.candidate = core::read_candidate(in);
  individual.evaluation = core::read_evaluation(in);
  const std::size_t objectives = in.length(8);
  individual.objectives.resize(objectives);
  for (double& value : individual.objectives) value = in.f64();
  return individual;
}

void put(Writer& out, const GenerationStats& stats) {
  out.size(stats.generation);
  out.size(stats.feasible_in_archive);
  out.f64(stats.best_feasible_power);
  out.size(stats.evaluations);
  out.size(stats.cache_hits);
  out.size(stats.cache_misses);
  out.f64(stats.cache_hit_rate);
  out.size(stats.scenarios_analyzed);
  out.size(stats.scenario_solves);
  out.f64(stats.scenarios_per_second);
  out.f64(stats.evaluation_seconds);
  out.f64(stats.eval_p50_us);
  out.f64(stats.eval_p95_us);
  out.f64(stats.eval_max_us);
}

GenerationStats get_stats(Reader& in) {
  GenerationStats stats;
  stats.generation = static_cast<std::size_t>(in.u64());
  stats.feasible_in_archive = static_cast<std::size_t>(in.u64());
  stats.best_feasible_power = in.f64();
  stats.evaluations = static_cast<std::size_t>(in.u64());
  stats.cache_hits = static_cast<std::size_t>(in.u64());
  stats.cache_misses = static_cast<std::size_t>(in.u64());
  stats.cache_hit_rate = in.f64();
  stats.scenarios_analyzed = static_cast<std::size_t>(in.u64());
  stats.scenario_solves = static_cast<std::size_t>(in.u64());
  stats.scenarios_per_second = in.f64();
  stats.evaluation_seconds = in.f64();
  stats.eval_p50_us = in.f64();
  stats.eval_p95_us = in.f64();
  stats.eval_max_us = in.f64();
  return stats;
}

std::uint64_t payload_digest(std::span<const std::uint8_t> payload) {
  return util::fnv1a_bytes(payload);
}

}  // namespace

TrajectoryOptions TrajectoryOptions::of(const GaOptions& options) {
  TrajectoryOptions t;
  t.population = options.population;
  t.offspring = options.offspring;
  t.generations = options.generations;
  t.seed = options.seed;
  t.optimize_service = options.optimize_service ? 1 : 0;
  t.crossover_rate = options.variation.crossover_rate;
  t.allocation_flip_rate = options.variation.allocation_flip_rate;
  t.keep_flip_rate = options.variation.keep_flip_rate;
  t.task_mutation_rate = options.variation.task_mutation_rate;
  t.graph_recluster_rate = options.variation.graph_recluster_rate;
  t.reliability_repair_attempts = options.decoder.reliability_repair_attempts;
  t.decoder_allow_dropping = options.decoder.allow_dropping ? 1 : 0;
  t.technique_restriction =
      static_cast<std::uint32_t>(options.decoder.restriction);
  t.analysis_mode = static_cast<std::uint32_t>(options.evaluator.mode);
  t.priority_policy = static_cast<std::uint32_t>(options.evaluator.policy);
  t.infeasibility_penalty = options.evaluator.infeasibility_penalty;
  t.evaluator_allow_dropping = options.evaluator.allow_dropping ? 1 : 0;
  return t;
}

std::string TrajectoryOptions::mismatch(const TrajectoryOptions& other) const {
  const auto differs = [](auto a, auto b) { return !(a == b); };
  // Doubles compare by bit pattern so that NaN penalties and negative zero
  // rates cannot silently pass the gate.
  const auto f64_differs = [](double a, double b) {
    return std::bit_cast<std::uint64_t>(a) != std::bit_cast<std::uint64_t>(b);
  };
  if (differs(population, other.population)) return "population";
  if (differs(offspring, other.offspring)) return "offspring";
  if (differs(generations, other.generations)) return "generations";
  if (differs(seed, other.seed)) return "seed";
  if (differs(optimize_service, other.optimize_service))
    return "optimize_service";
  if (f64_differs(crossover_rate, other.crossover_rate))
    return "variation.crossover_rate";
  if (f64_differs(allocation_flip_rate, other.allocation_flip_rate))
    return "variation.allocation_flip_rate";
  if (f64_differs(keep_flip_rate, other.keep_flip_rate))
    return "variation.keep_flip_rate";
  if (f64_differs(task_mutation_rate, other.task_mutation_rate))
    return "variation.task_mutation_rate";
  if (f64_differs(graph_recluster_rate, other.graph_recluster_rate))
    return "variation.graph_recluster_rate";
  if (differs(reliability_repair_attempts, other.reliability_repair_attempts))
    return "decoder.reliability_repair_attempts";
  if (differs(decoder_allow_dropping, other.decoder_allow_dropping))
    return "decoder.allow_dropping";
  if (differs(technique_restriction, other.technique_restriction))
    return "decoder.restriction";
  if (differs(analysis_mode, other.analysis_mode)) return "evaluator.mode";
  if (differs(priority_policy, other.priority_policy))
    return "evaluator.policy";
  if (f64_differs(infeasibility_penalty, other.infeasibility_penalty))
    return "evaluator.infeasibility_penalty";
  if (differs(evaluator_allow_dropping, other.evaluator_allow_dropping))
    return "evaluator.allow_dropping";
  return {};
}

std::uint64_t TrajectoryOptions::digest() const {
  Writer out;
  put(out, *this);
  const std::vector<std::uint8_t> bytes = out.take();
  return payload_digest(bytes);
}

std::vector<std::uint8_t> encode_checkpoint(const Checkpoint& checkpoint) {
  Writer body;
  put(body, checkpoint.options);
  body.u64(checkpoint.generation);
  body.u8(checkpoint.finished);
  body.u64(checkpoint.evaluations);
  body.f64(checkpoint.best_feasible_power);
  body.u64(checkpoint.cache_fingerprint);
  for (std::uint64_t word : checkpoint.master.words) body.u64(word);
  body.u8(checkpoint.master.has_cached_normal ? 1 : 0);
  body.f64(checkpoint.master.cached_normal);
  body.size(checkpoint.archive.size());
  for (const Individual& individual : checkpoint.archive)
    put(body, individual);
  body.size(checkpoint.population.size());
  for (const Individual& individual : checkpoint.population)
    put(body, individual);
  body.size(checkpoint.history.size());
  for (const GenerationStats& stats : checkpoint.history) put(body, stats);
  const std::vector<std::uint8_t> payload = body.take();

  Writer header;
  for (char c : kCheckpointMagic)
    header.u8(static_cast<std::uint8_t>(c));
  header.u32(kCheckpointVersion);
  header.u32(0);  // reserved
  header.u64(payload.size());
  header.u64(payload_digest(payload));
  std::vector<std::uint8_t> bytes = header.take();
  bytes.insert(bytes.end(), payload.begin(), payload.end());
  return bytes;
}

Checkpoint decode_checkpoint(std::span<const std::uint8_t> bytes) {
  constexpr std::size_t kHeaderSize = 8 + 4 + 4 + 8 + 8;
  if (bytes.size() < kHeaderSize)
    throw CheckpointError("checkpoint is truncated: " +
                          std::to_string(bytes.size()) +
                          " bytes is shorter than the 32-byte header");
  if (std::memcmp(bytes.data(), kCheckpointMagic, sizeof kCheckpointMagic) !=
      0)
    throw CheckpointError(
        "not an ftmc checkpoint: magic bytes are not \"FTMCCKPT\"");
  Reader header(bytes.subspan(8, kHeaderSize - 8));
  const std::uint32_t version = header.u32();
  if (version != kCheckpointVersion)
    throw CheckpointError("unsupported checkpoint version " +
                          std::to_string(version) + " (this build reads v" +
                          std::to_string(kCheckpointVersion) + ")");
  header.u32();  // reserved
  const std::uint64_t payload_size = header.u64();
  const std::uint64_t expected_digest = header.u64();
  if (payload_size > bytes.size() - kHeaderSize)
    throw CheckpointError(
        "checkpoint is truncated: header declares a " +
        std::to_string(payload_size) + "-byte payload but only " +
        std::to_string(bytes.size() - kHeaderSize) + " bytes follow");
  // Trailing bytes beyond the declared payload are ignored (reserved for
  // extensions appended by future writers).
  const std::span<const std::uint8_t> payload =
      bytes.subspan(kHeaderSize, static_cast<std::size_t>(payload_size));
  if (payload_digest(payload) != expected_digest)
    throw CheckpointError(
        "checkpoint payload checksum mismatch: the file is corrupted");

  try {
    Reader in = payload_reader(payload);
    Checkpoint checkpoint;
    checkpoint.options = get_options(in);
    checkpoint.generation = in.u64();
    checkpoint.finished = in.u8();
    checkpoint.evaluations = in.u64();
    checkpoint.best_feasible_power = in.f64();
    checkpoint.cache_fingerprint = in.u64();
    for (std::uint64_t& word : checkpoint.master.words) word = in.u64();
    checkpoint.master.has_cached_normal = in.u8() != 0;
    checkpoint.master.cached_normal = in.f64();
    const std::size_t archive = in.length(1);
    checkpoint.archive.reserve(archive);
    for (std::size_t i = 0; i < archive; ++i)
      checkpoint.archive.push_back(get_individual(in));
    const std::size_t population = in.length(1);
    checkpoint.population.reserve(population);
    for (std::size_t i = 0; i < population; ++i)
      checkpoint.population.push_back(get_individual(in));
    const std::size_t history = in.length(13 * 8);
    checkpoint.history.reserve(history);
    for (std::size_t i = 0; i < history; ++i)
      checkpoint.history.push_back(get_stats(in));
    return checkpoint;
  } catch (const util::ByteStreamError& error) {
    throw CheckpointError(error.what());
  }
}

void save_checkpoint(const std::string& path, const Checkpoint& checkpoint,
                     std::size_t keep) {
  const std::vector<std::uint8_t> bytes = encode_checkpoint(checkpoint);
  util::rotate_files(path, keep);
  util::write_file_atomic(path, bytes);
  counters().writes.add(1);
  counters().bytes.add(bytes.size());
}

Checkpoint load_checkpoint(const std::string& path) {
  std::vector<std::uint8_t> bytes;
  try {
    bytes = util::read_file(path);
  } catch (const std::exception& error) {
    counters().rejected.add(1);
    throw CheckpointError(error.what());
  }
  try {
    Checkpoint checkpoint = decode_checkpoint(bytes);
    counters().loads.add(1);
    return checkpoint;
  } catch (const CheckpointError&) {
    counters().rejected.add(1);
    throw;
  }
}

void verify_resume_options(const TrajectoryOptions& current,
                           const TrajectoryOptions& snapshot) {
  const std::string field = current.mismatch(snapshot);
  if (field.empty()) return;
  counters().rejected.add(1);
  throw CheckpointError(
      "cannot resume: option '" + field +
      "' differs from the checkpointed run (the snapshot pins the "
      "trajectory; rerun with matching options or start a fresh run)");
}

}  // namespace ftmc::dse
