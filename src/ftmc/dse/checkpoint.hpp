// Crash-safe GA checkpointing: the `ftmc.ckpt.v1` snapshot format and its
// persistence layer.
//
// A checkpoint captures the complete search state at a generation boundary
// (after SPEA2 environmental selection, before mating): the archive, the
// master RNG stream, the generation counter, run totals, the per-generation
// telemetry history, and a field-by-field digest of every option that shapes
// the trajectory.  Because decode randomness is seeded from chromosome
// content and the evaluation caches are pure memoization (see ga.cpp), this
// boundary state is sufficient for the headline guarantee: kill at any
// generation boundary, resume, and the final archive and per-generation
// trajectory telemetry are bitwise identical to the uninterrupted run.
// Cache/thread knobs are deliberately excluded from the options digest —
// they are trajectory-neutral.  Cache *contents* are not checkpointed
// (resume restarts with a cold cache), so the timing/cache-hit telemetry
// fields of post-resume generations may differ; the trajectory fields
// (generation, feasibility, power, evaluations) never do.
//
// On-disk layout (all integers little-endian):
//
//   offset  size  field
//   0       8     magic "FTMCCKPT"
//   8       4     format version (1)
//   12      4     reserved (0)
//   16      8     payload size in bytes
//   24      8     FNV-1a-64 digest of the payload (util::Fnv1aHasher)
//   32      ...   payload (versioned field stream, see checkpoint.cpp)
//
// Forward compatibility: readers reject a version they do not know with a
// loud error, verify the digest over exactly `payload size` bytes, and
// ignore any trailing bytes after the payload (reserved for future
// extensions appended by newer writers).
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "ftmc/dse/ga.hpp"
#include "ftmc/util/rng.hpp"

namespace ftmc::dse {

inline constexpr char kCheckpointMagic[8] = {'F', 'T', 'M', 'C',
                                             'C', 'K', 'P', 'T'};
inline constexpr std::uint32_t kCheckpointVersion = 2;

/// Any checkpoint defect a caller must not retry around: bad magic,
/// unsupported version, truncation, checksum mismatch, or a trajectory
/// options mismatch on resume.  The message names the offending field or
/// byte range.
class CheckpointError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// The subset of GaOptions that determines the search trajectory, flattened
/// into named scalar fields so a resume mismatch can be reported by field
/// name.  Threads, checkpoint cadence, and the cache knobs are excluded:
/// they change wall-clock and cache-hit telemetry, never the trajectory.
struct TrajectoryOptions {
  std::uint64_t population = 0;
  std::uint64_t offspring = 0;
  std::uint64_t generations = 0;
  std::uint64_t seed = 0;
  std::uint8_t optimize_service = 0;
  double crossover_rate = 0.0;
  double allocation_flip_rate = 0.0;
  double keep_flip_rate = 0.0;
  double task_mutation_rate = 0.0;
  double graph_recluster_rate = 0.0;
  std::uint64_t reliability_repair_attempts = 0;
  std::uint8_t decoder_allow_dropping = 0;
  std::uint32_t technique_restriction = 0;
  std::uint32_t analysis_mode = 0;
  std::uint32_t priority_policy = 0;
  double infeasibility_penalty = 0.0;
  std::uint8_t evaluator_allow_dropping = 0;

  bool operator==(const TrajectoryOptions&) const = default;

  static TrajectoryOptions of(const GaOptions& options);

  /// Name of the first field whose value differs from `other` (empty string
  /// when the two are identical).
  std::string mismatch(const TrajectoryOptions& other) const;

  /// Stable content digest (doubles fed bit-exactly).
  std::uint64_t digest() const;
};

/// Complete `ftmc.ckpt.v1` snapshot.  `generation` is the boundary the
/// snapshot was taken at: its selection and telemetry are already inside
/// `archive`/`history`, and resume continues with that generation's mating
/// step.  `population` is empty at every boundary the GA writes (offspring
/// have been merged into the archive) but is part of the format.
struct Checkpoint {
  TrajectoryOptions options;
  std::uint64_t generation = 0;
  std::uint8_t finished = 0;  ///< run completed; resume just reconstructs
  std::uint64_t evaluations = 0;
  double best_feasible_power = 0.0;  ///< NaN until a feasible point exists
  /// Digest of the evaluator configuration the caches were keyed under
  /// (informational: caches are rebuilt cold on resume).
  std::uint64_t cache_fingerprint = 0;
  util::RngState master;
  std::vector<Individual> archive;
  std::vector<Individual> population;
  std::vector<GenerationStats> history;
};

/// Serializes a snapshot into the on-disk byte layout (header + payload).
std::vector<std::uint8_t> encode_checkpoint(const Checkpoint& checkpoint);

/// Parses and fully validates a snapshot.  Throws CheckpointError on bad
/// magic, unsupported version, truncated payload, or digest mismatch.
Checkpoint decode_checkpoint(std::span<const std::uint8_t> bytes);

/// Rotates existing snapshots (`path` -> `path.1` -> ...; see
/// util::rotate_files) and durably replaces `path` via write-to-temp +
/// fsync + atomic rename.  Bumps dse.checkpoint.writes / .bytes.
void save_checkpoint(const std::string& path, const Checkpoint& checkpoint,
                     std::size_t keep = 1);

/// Reads and decodes `path`.  Bumps dse.resume.loads on success and
/// dse.resume.rejected before rethrowing any validation failure.
Checkpoint load_checkpoint(const std::string& path);

/// Resume gate: verifies that the options of the run being started match
/// the options recorded in the snapshot, field by field.  Throws
/// CheckpointError naming the first mismatched field (and bumps
/// dse.resume.rejected); returns normally when the trajectory is safe to
/// continue.
void verify_resume_options(const TrajectoryOptions& current,
                           const TrajectoryOptions& snapshot);

}  // namespace ftmc::dse
