#include "ftmc/dse/chromosome.hpp"

#include <span>

#include "ftmc/util/hash.hpp"

namespace ftmc::dse {

std::uint8_t random_reexec_degree(util::Rng& rng) {
  const double roll = rng.uniform_real();
  if (roll < 0.60) return 1;
  if (roll < 0.90) return 2;
  return static_cast<std::uint8_t>(
      rng.uniform_int(3, kMaxReexecGene));
}

Chromosome random_chromosome(const ChromosomeShape& shape, util::Rng& rng) {
  Chromosome chromosome;
  chromosome.allocation.resize(shape.processors);
  for (auto& bit : chromosome.allocation) bit = rng.chance(0.7) ? 1 : 0;
  chromosome.keep.resize(shape.graphs);
  for (auto& bit : chromosome.keep) bit = rng.chance(0.5) ? 1 : 0;
  chromosome.tasks.resize(shape.tasks);
  for (std::size_t t = 0; t < shape.tasks; ++t) {
    TaskGenes& genes = chromosome.tasks[t];
    // Bias: most tasks start unhardened (the reliability repair hardens
    // where f_t demands, and light hardening keeps the critical state
    // schedulable); droppable applications rarely need any hardening.
    const bool droppable =
        shape.graph_of_task.size() == shape.tasks &&
        shape.graph_droppable.size() == shape.graphs &&
        shape.graph_droppable[shape.graph_of_task[t]] != 0;
    const double hardened_share = droppable ? 0.1 : 0.5;
    const double roll = rng.uniform_real();
    if (roll > hardened_share)
      genes.technique = TechniqueGene::kNone;
    else if (roll > hardened_share * 0.4)
      genes.technique = TechniqueGene::kReexecution;
    else if (roll > hardened_share * 0.2)
      genes.technique = TechniqueGene::kActive;
    else
      genes.technique = TechniqueGene::kPassive;
    genes.reexec = random_reexec_degree(rng);
    genes.active_n = static_cast<std::uint8_t>(rng.uniform_int(2, 3));
    genes.base_pe = static_cast<std::uint16_t>(rng.index(shape.processors));
    for (auto& pe : genes.replica_pe)
      pe = static_cast<std::uint16_t>(rng.index(shape.processors));
    genes.voter_pe = static_cast<std::uint16_t>(rng.index(shape.processors));
  }

  // Clustered seeding: map some graphs entirely onto one allocated PE.
  if (shape.graph_of_task.size() == shape.tasks) {
    std::vector<std::uint16_t> allocated;
    for (std::uint16_t p = 0; p < shape.processors; ++p)
      if (chromosome.allocation[p]) allocated.push_back(p);
    if (!allocated.empty()) {
      std::vector<std::int32_t> cluster_pe(shape.graphs, -1);
      for (std::size_t g = 0; g < shape.graphs; ++g)
        if (rng.chance(0.5))
          cluster_pe[g] = allocated[rng.index(allocated.size())];
      for (std::size_t t = 0; t < shape.tasks; ++t) {
        const std::int32_t pe = cluster_pe[shape.graph_of_task[t]];
        if (pe >= 0)
          chromosome.tasks[t].base_pe = static_cast<std::uint16_t>(pe);
      }
    }
  }
  return chromosome;
}

bool shape_ok(const Chromosome& chromosome, const ChromosomeShape& shape) {
  if (chromosome.allocation.size() != shape.processors) return false;
  if (chromosome.keep.size() != shape.graphs) return false;
  if (chromosome.tasks.size() != shape.tasks) return false;
  for (const std::uint8_t bit : chromosome.allocation)
    if (bit > 1) return false;
  for (const std::uint8_t bit : chromosome.keep)
    if (bit > 1) return false;
  for (const TaskGenes& genes : chromosome.tasks) {
    if (genes.technique > TechniqueGene::kPassive) return false;
    if (genes.reexec < 1 || genes.reexec > kMaxReexecGene) return false;
    if (genes.active_n < 2 || genes.active_n > kReplicaSlots) return false;
    if (genes.base_pe >= shape.processors) return false;
    for (const std::uint16_t pe : genes.replica_pe)
      if (pe >= shape.processors) return false;
    if (genes.voter_pe >= shape.processors) return false;
  }
  return true;
}

std::uint64_t chromosome_hash(const Chromosome& chromosome,
                              std::uint64_t seed) {
  util::Fnv1aHasher hasher(seed);
  hasher.feed_range(
      std::span<const std::uint8_t>(chromosome.allocation));
  hasher.feed_range(std::span<const std::uint8_t>(chromosome.keep));
  // TaskGenes carries alignment padding; feed the fields, not the bytes.
  hasher.feed(static_cast<std::uint64_t>(chromosome.tasks.size()));
  for (const TaskGenes& genes : chromosome.tasks) {
    hasher.feed(static_cast<std::uint8_t>(genes.technique));
    hasher.feed(genes.reexec);
    hasher.feed(genes.active_n);
    hasher.feed(genes.base_pe);
    for (const std::uint16_t pe : genes.replica_pe) hasher.feed(pe);
    hasher.feed(genes.voter_pe);
  }
  return hasher.digest();
}

}  // namespace ftmc::dse
