// GA genotype, mirroring Figure 4 of the paper.
//
// Three sections:
//   1. allocation   — one bit per processor (powered or not),
//   2. keep         — one bit per application: 1 = never dropped on mode
//                     change (the paper's "selection of non-droppable
//                     applications"); forced to 1 for graphs that are
//                     non-droppable by specification,
//   3. tasks        — per original task: the hardening technique, the
//                     re-execution degree, the base mapping, the mappings of
//                     up to three replicas, and the voter mapping.
//
// The genotype deliberately stores more genes than any single technique
// reads (e.g. replica PEs while technique == re-execution); crossover and
// mutation keep them as dormant genetic material, exactly like Opt4J's
// composite genotypes.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "ftmc/model/application_set.hpp"
#include "ftmc/model/architecture.hpp"
#include "ftmc/util/rng.hpp"

namespace ftmc::dse {

/// Upper bound on re-executions explored by the GA (matches the transform's
/// validation limit).
inline constexpr int kMaxReexecGene = 4;
/// Replica slots carried in the genotype (active uses 2..3, passive all 3).
inline constexpr std::size_t kReplicaSlots = 3;

enum class TechniqueGene : std::uint8_t {
  kNone = 0,
  kReexecution = 1,
  kActive = 2,
  kPassive = 3,
};

struct TaskGenes {
  TechniqueGene technique = TechniqueGene::kNone;
  std::uint8_t reexec = 1;       ///< k in [1, kMaxReexecGene]
  std::uint8_t active_n = 2;     ///< active replica count in [2, 3]
  std::uint16_t base_pe = 0;
  std::array<std::uint16_t, kReplicaSlots> replica_pe{};
  std::uint16_t voter_pe = 0;

  bool operator==(const TaskGenes&) const = default;
};

struct Chromosome {
  std::vector<std::uint8_t> allocation;  ///< per PE, 0/1
  std::vector<std::uint8_t> keep;        ///< per graph, 0/1
  std::vector<TaskGenes> tasks;          ///< per original task (flat)

  bool operator==(const Chromosome&) const = default;
};

/// Dimensions every chromosome of a problem instance must have.
struct ChromosomeShape {
  std::size_t processors = 0;
  std::size_t graphs = 0;
  std::size_t tasks = 0;
  /// Graph of each task in flat order; optional (used only to seed
  /// communication-friendly clustered mappings during initialization).
  std::vector<std::uint32_t> graph_of_task;
  /// Droppability per graph; optional (biases initial hardening away from
  /// droppable applications, which have no reliability constraint).
  std::vector<std::uint8_t> graph_droppable;

  static ChromosomeShape of(const model::Architecture& arch,
                            const model::ApplicationSet& apps) {
    ChromosomeShape shape{arch.processor_count(), apps.graph_count(),
                          apps.task_count(), {}, {}};
    shape.graph_of_task.reserve(apps.task_count());
    for (std::size_t i = 0; i < apps.task_count(); ++i)
      shape.graph_of_task.push_back(apps.task_ref(i).graph);
    shape.graph_droppable.reserve(apps.graph_count());
    for (std::uint32_t g = 0; g < apps.graph_count(); ++g)
      shape.graph_droppable.push_back(
          apps.graph(model::GraphId{g}).droppable() ? 1 : 0);
    return shape;
  }
};

/// Re-execution degree biased towards small k (heavy re-execution makes the
/// critical state unschedulable far more often than it buys reliability).
std::uint8_t random_reexec_degree(util::Rng& rng);

/// Uniformly random chromosome (hardening biased towards kNone so initial
/// populations are not drowned in replicas).  When the shape carries
/// graph-of-task information, half of the graphs are mapped as clusters
/// (whole graph on one random PE) — random per-task scatterings are almost
/// always communication-bound on bus platforms, and a population without
/// any clustered individual rarely reaches feasibility.
Chromosome random_chromosome(const ChromosomeShape& shape, util::Rng& rng);

/// Structural check (sizes and gene ranges).
bool shape_ok(const Chromosome& chromosome, const ChromosomeShape& shape);

/// Stable content hash of a chromosome (equal genotypes, equal digest).
/// The GA seeds each decode RNG from this hash rather than the population
/// slot, so identical chromosomes — however they recur across generations —
/// repair identically and hit the evaluation cache instead of decoding to
/// divergent candidates.
std::uint64_t chromosome_hash(const Chromosome& chromosome,
                              std::uint64_t seed = 0);

}  // namespace ftmc::dse
