#include "ftmc/dse/decoder.hpp"

#include <algorithm>

#include "ftmc/hardening/reliability.hpp"

namespace ftmc::dse {

Decoder::Decoder(const model::Architecture& arch,
                 const model::ApplicationSet& apps)
    : arch_(&arch),
      apps_(&apps),
      options_(),
      shape_(ChromosomeShape::of(arch, apps)) {}

Decoder::Decoder(const model::Architecture& arch,
                 const model::ApplicationSet& apps, Options options)
    : arch_(&arch),
      apps_(&apps),
      options_(options),
      shape_(ChromosomeShape::of(arch, apps)) {}

namespace {

std::vector<std::uint16_t> allocated_pes(const Chromosome& chromosome) {
  std::vector<std::uint16_t> result;
  for (std::uint16_t p = 0; p < chromosome.allocation.size(); ++p)
    if (chromosome.allocation[p]) result.push_back(p);
  return result;
}

std::uint16_t random_of(const std::vector<std::uint16_t>& pes,
                        util::Rng& rng) {
  return pes[rng.index(pes.size())];
}

}  // namespace

void Decoder::repair_allocation(Chromosome& chromosome,
                                util::Rng& rng) const {
  if (std::none_of(chromosome.allocation.begin(), chromosome.allocation.end(),
                   [](std::uint8_t bit) { return bit != 0; })) {
    chromosome.allocation[rng.index(chromosome.allocation.size())] = 1;
  }
}

void Decoder::repair_mapping(Chromosome& chromosome, util::Rng& rng) const {
  const std::vector<std::uint16_t> pes = allocated_pes(chromosome);
  auto legalize = [&](std::uint16_t& pe) {
    if (!chromosome.allocation[pe]) pe = random_of(pes, rng);
  };

  for (std::size_t flat = 0; flat < chromosome.tasks.size(); ++flat) {
    TaskGenes& genes = chromosome.tasks[flat];
    const model::Task& task = apps_->task(apps_->task_ref(flat));

    // Hardening-space restrictions (ablation runs).
    if (options_.restriction == TechniqueRestriction::kReexecutionOnly &&
        (genes.technique == TechniqueGene::kActive ||
         genes.technique == TechniqueGene::kPassive)) {
      genes.technique = TechniqueGene::kReexecution;
    } else if (options_.restriction ==
                   TechniqueRestriction::kReplicationOnly &&
               genes.technique == TechniqueGene::kReexecution) {
      genes.technique = task.voting_overhead > 0 ? TechniqueGene::kActive
                                                 : TechniqueGene::kNone;
      genes.active_n = 3;
    }

    // Replication requires a voter model; fall back to re-execution for
    // tasks without one.
    if ((genes.technique == TechniqueGene::kActive ||
         genes.technique == TechniqueGene::kPassive) &&
        task.voting_overhead <= 0) {
      genes.technique =
          options_.restriction == TechniqueRestriction::kReplicationOnly
              ? TechniqueGene::kNone
              : TechniqueGene::kReexecution;
    }

    legalize(genes.base_pe);
    for (auto& pe : genes.replica_pe) legalize(pe);
    legalize(genes.voter_pe);

    // Spread replicas over distinct allocated PEs where possible (fault
    // independence); duplicates remain when the allocation is too small.
    const std::size_t slots = genes.technique == TechniqueGene::kPassive
                                  ? kReplicaSlots
                                  : genes.active_n;
    for (std::size_t s = 1; s < slots; ++s) {
      const bool duplicate =
          std::any_of(genes.replica_pe.begin(), genes.replica_pe.begin() + s,
                      [&](std::uint16_t pe) {
                        return pe == genes.replica_pe[s];
                      });
      if (!duplicate) continue;
      std::vector<std::uint16_t> unused;
      for (std::uint16_t pe : pes) {
        if (std::find(genes.replica_pe.begin(), genes.replica_pe.begin() + s,
                      pe) == genes.replica_pe.begin() + s)
          unused.push_back(pe);
      }
      if (!unused.empty()) genes.replica_pe[s] = random_of(unused, rng);
    }
  }
}

core::Candidate Decoder::translate(const Chromosome& chromosome) const {
  core::Candidate candidate;
  candidate.allocation.assign(chromosome.allocation.begin(),
                              chromosome.allocation.end());
  candidate.drop.resize(shape_.graphs);
  for (std::uint32_t g = 0; g < shape_.graphs; ++g) {
    const bool droppable = apps_->graph(model::GraphId{g}).droppable();
    candidate.drop[g] = options_.allow_dropping && droppable &&
                        chromosome.keep[g] == 0;
  }
  candidate.plan.resize(shape_.tasks);
  candidate.base_mapping.resize(shape_.tasks);
  for (std::size_t flat = 0; flat < shape_.tasks; ++flat) {
    const TaskGenes& genes = chromosome.tasks[flat];
    hardening::TaskHardening& decision = candidate.plan[flat];
    candidate.base_mapping[flat] = model::ProcessorId{genes.base_pe};
    switch (genes.technique) {
      case TechniqueGene::kNone:
        decision = {};
        break;
      case TechniqueGene::kReexecution:
        decision = {};
        decision.technique = hardening::Technique::kReexecution;
        decision.reexecutions = genes.reexec;
        break;
      case TechniqueGene::kActive: {
        decision = {};
        decision.technique = hardening::Technique::kActiveReplication;
        decision.replica_pes.clear();
        for (std::size_t s = 0; s < genes.active_n; ++s)
          decision.replica_pes.push_back(
              model::ProcessorId{genes.replica_pe[s]});
        decision.voter_pe = model::ProcessorId{genes.voter_pe};
        break;
      }
      case TechniqueGene::kPassive: {
        decision = {};
        decision.technique = hardening::Technique::kPassiveReplication;
        decision.replica_pes.clear();
        for (std::size_t s = 0; s < kReplicaSlots; ++s)
          decision.replica_pes.push_back(
              model::ProcessorId{genes.replica_pe[s]});
        decision.voter_pe = model::ProcessorId{genes.voter_pe};
        break;
      }
    }
  }
  return candidate;
}

void Decoder::repair_reliability(Chromosome& chromosome,
                                 util::Rng& rng) const {
  const std::vector<std::uint16_t> pes = allocated_pes(chromosome);
  for (std::size_t attempt = 0;
       attempt < options_.reliability_repair_attempts; ++attempt) {
    const core::Candidate candidate = translate(chromosome);
    const hardening::ReliabilityReport report = hardening::check_reliability(
        *arch_, *apps_, candidate.plan, candidate.base_mapping);
    if (report.all_satisfied) return;

    // Minimal escalation towards the constraint, following the paper's
    // randomized heuristic but preferring the cheapest step first:
    //  1. harden the graph's still-unhardened tasks (random technique,
    //     biased to re-execution with k = 1 — replication triples the
    //     schedule load and its voter adds a failure floor);
    //  2. only once everything is hardened, bump one random task's
    //     re-execution degree.
    // Unbounded k escalation quickly makes the critical state
    // unschedulable, so the repair never raises k when unhardened tasks
    // remain.
    for (std::uint32_t g = 0; g < shape_.graphs; ++g) {
      if (report.satisfied[g]) continue;
      const model::TaskGraph& graph = apps_->graph(model::GraphId{g});

      std::vector<std::uint32_t> unhardened;
      for (std::uint32_t v = 0; v < graph.task_count(); ++v)
        if (chromosome.tasks[apps_->flat_index({g, v})].technique ==
            TechniqueGene::kNone)
          unhardened.push_back(v);

      const bool reexec_allowed =
          options_.restriction != TechniqueRestriction::kReplicationOnly;
      const bool replication_allowed =
          options_.restriction != TechniqueRestriction::kReexecutionOnly;

      if (!unhardened.empty()) {
        const std::uint32_t v = unhardened[rng.index(unhardened.size())];
        const std::size_t flat = apps_->flat_index({g, v});
        TaskGenes& genes = chromosome.tasks[flat];
        const bool can_replicate =
            replication_allowed &&
            apps_->task(apps_->task_ref(flat)).voting_overhead > 0;
        if (!can_replicate && !reexec_allowed) continue;  // unrepairable
        const double roll = rng.uniform_real();
        if (!can_replicate || (reexec_allowed && roll < 0.8)) {
          genes.technique = TechniqueGene::kReexecution;
          genes.reexec = 1;
        } else if (roll < 0.9) {
          genes.technique = TechniqueGene::kActive;
          genes.active_n = 3;
        } else {
          genes.technique = TechniqueGene::kPassive;
        }
        continue;
      }

      if (!reexec_allowed) continue;  // replication offers no escalation
      const std::uint32_t v =
          static_cast<std::uint32_t>(rng.index(graph.task_count()));
      TaskGenes& genes = chromosome.tasks[apps_->flat_index({g, v})];
      genes.technique = TechniqueGene::kReexecution;
      genes.reexec = static_cast<std::uint8_t>(
          std::min<int>(genes.reexec + 1, kMaxReexecGene));
    }
    // New replica constellations may need the mapping legalized again.
    repair_mapping(chromosome, rng);
  }
}

core::Candidate Decoder::decode(Chromosome& chromosome,
                                util::Rng& rng) const {
  if (!shape_ok(chromosome, shape_))
    throw std::invalid_argument("Decoder::decode: malformed chromosome");
  if (!options_.allow_dropping)
    std::fill(chromosome.keep.begin(), chromosome.keep.end(),
              std::uint8_t{1});
  repair_allocation(chromosome, rng);
  repair_mapping(chromosome, rng);
  repair_reliability(chromosome, rng);
  return translate(chromosome);
}

}  // namespace ftmc::dse
