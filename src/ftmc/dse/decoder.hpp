// Genotype -> phenotype translation with the paper's randomized repair
// heuristics (Section 4):
//
//  - no PE allocated           -> allocate a random one,
//  - task / replica / voter on an unallocated PE ("invalid mapping")
//                              -> reassign to a random allocated PE,
//  - active replicas sharing a PE -> spread over distinct allocated PEs
//                                    where enough exist,
//  - violated reliability constraint f_t -> apply random hardening
//    (re-execution degree bumps, active/passive replication) to random
//    tasks of the violating application until the constraint holds (bounded
//    number of attempts; unrepairable candidates stay infeasible and are
//    penalized by the evaluator).
//
// Repair is Lamarckian: the chromosome is rewritten in place, so repaired
// genes re-enter the gene pool.
#pragma once

#include "ftmc/core/evaluator.hpp"
#include "ftmc/dse/chromosome.hpp"
#include "ftmc/util/rng.hpp"

namespace ftmc::dse {

/// Restricts which hardening techniques the decoder may emit (used by the
/// hardening-space ablation bench).
enum class TechniqueRestriction {
  kNone,             ///< all techniques explored (paper setup)
  kReexecutionOnly,  ///< replication genes rewritten to re-execution
  kReplicationOnly,  ///< re-execution forbidden (tasks without a voter
                     ///< model stay unhardened)
};

class Decoder {
 public:
  struct Options {
    /// Maximum random-hardening attempts per violating application.
    std::size_t reliability_repair_attempts = 64;
    /// When false, keep bits are forced to 1 (the no-dropping ablation).
    bool allow_dropping = true;
    /// Hardening-space restriction (ablation).
    TechniqueRestriction restriction = TechniqueRestriction::kNone;
  };

  Decoder(const model::Architecture& arch, const model::ApplicationSet& apps);
  Decoder(const model::Architecture& arch, const model::ApplicationSet& apps,
          Options options);

  const ChromosomeShape& shape() const noexcept { return shape_; }

  /// Repairs `chromosome` in place and decodes it into a Candidate.
  core::Candidate decode(Chromosome& chromosome, util::Rng& rng) const;

 private:
  void repair_allocation(Chromosome& chromosome, util::Rng& rng) const;
  void repair_mapping(Chromosome& chromosome, util::Rng& rng) const;
  void repair_reliability(Chromosome& chromosome, util::Rng& rng) const;
  core::Candidate translate(const Chromosome& chromosome) const;

  const model::Architecture* arch_;
  const model::ApplicationSet* apps_;
  Options options_;
  ChromosomeShape shape_;
};

}  // namespace ftmc::dse
