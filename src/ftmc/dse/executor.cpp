#include "ftmc/dse/executor.hpp"

#include <chrono>

#include "ftmc/util/thread_pool.hpp"

namespace ftmc::dse {

void InProcessExecutor::evaluate(const std::vector<EvalRequest>& requests,
                                 std::vector<EvalOutcome>& outcomes) {
  outcomes.resize(requests.size());
  pool_->parallel_for(requests.size(), [&](std::size_t index) {
    const auto start = std::chrono::steady_clock::now();
    bool cache_hit = false;
    outcomes[index].evaluation =
        evaluator_->evaluate(*requests[index].candidate, &cache_hit);
    outcomes[index].cache_hit = cache_hit;
    outcomes[index].latency_us =
        std::chrono::duration<double, std::micro>(
            std::chrono::steady_clock::now() - start)
            .count();
  });
}

}  // namespace ftmc::dse
