// Evaluation backends for the GA's per-generation batches.
//
// The optimizer decodes + repairs chromosomes locally (the archive and the
// checkpoint format need the candidate and the repaired genotype), then
// hands the batch of evaluations to an Executor.  Decode randomness is
// seeded from the chromosome's content hash, so decode + repair +
// evaluation is a pure function of (genotype, campaign seed): any backend
// that re-runs that pipeline — in this process or in an `ftmc serve`
// worker on another machine — produces bit-identical Evaluations, which is
// what keeps the search trajectory independent of the executor choice.
//
// InProcessExecutor reproduces the pre-executor fused loop exactly;
// RemoteExecutor (src/ftmc/dist/) ships the pre-repair genotypes over the
// ftmc.rpc.v1 serve protocol as one `batch` request per generation.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "ftmc/core/evaluator.hpp"
#include "ftmc/dse/chromosome.hpp"

namespace ftmc::util {
class ThreadPool;
}

namespace ftmc::dse {

/// Transport-level executor failure (worker process died, protocol error,
/// malformed worker response).  Campaign retry machinery treats this as
/// retryable: the island resumes from its last snapshot on a fresh
/// executor.  Input-validation errors keep throwing std::invalid_argument
/// and are never retried.
class ExecutorError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// One evaluation the GA wants: the pre-repair genotype (the wire form a
/// remote worker re-decodes), the locally decoded + repaired candidate
/// (what an in-process backend evaluates directly), and the content key
/// `chromosome_hash(genotype, seed)` that seeds decode randomness.
struct EvalRequest {
  const Chromosome* genotype = nullptr;
  const core::Candidate* candidate = nullptr;
  std::uint64_t key = 0;
};

struct EvalOutcome {
  core::Evaluation evaluation;
  /// Served from a cache (in-process L1 or a worker's store) rather than
  /// analyzed fresh.  Telemetry only — the value is identical either way.
  bool cache_hit = false;
  /// Wall-clock spent on this item, microseconds.  Batch-granular backends
  /// may amortize one measurement across items.  Telemetry only.
  double latency_us = 0.0;
};

/// Batch-granularity evaluation backend.  evaluate() fills outcomes[i] for
/// requests[i]; items may run in any order and in parallel.  Throws
/// ExecutorError on transport failure.
class Executor {
 public:
  virtual ~Executor() = default;
  virtual const char* name() const noexcept = 0;
  virtual void evaluate(const std::vector<EvalRequest>& requests,
                        std::vector<EvalOutcome>& outcomes) = 0;
};

/// Evaluates on the calling process's Evaluator, fanning items out over
/// the provided pool — exactly what the GA did before executors existed,
/// so trajectories are preserved bit-for-bit.  Both references must
/// outlive the executor.
class InProcessExecutor final : public Executor {
 public:
  InProcessExecutor(const core::Evaluator& evaluator, util::ThreadPool& pool)
      : evaluator_(&evaluator), pool_(&pool) {}

  const char* name() const noexcept override { return "in-process"; }
  void evaluate(const std::vector<EvalRequest>& requests,
                std::vector<EvalOutcome>& outcomes) override;

 private:
  const core::Evaluator* evaluator_;
  util::ThreadPool* pool_;
};

}  // namespace ftmc::dse
