#include "ftmc/dse/ga.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <mutex>
#include <optional>
#include <unordered_map>

#include "ftmc/dse/checkpoint.hpp"
#include "ftmc/dse/executor.hpp"
#include "ftmc/obs/metrics.hpp"
#include "ftmc/obs/trace.hpp"
#include "ftmc/util/stats.hpp"
#include "ftmc/util/thread_pool.hpp"

namespace ftmc::dse {

void GaOptions::validate() const {
  if (population == 0)
    throw std::invalid_argument("GaOptions: population must be >= 1");
  if (offspring == 0)
    throw std::invalid_argument("GaOptions: offspring must be >= 1");
  if (!cache_evaluations && evaluator.cache != nullptr)
    throw std::invalid_argument(
        "GaOptions: cache_evaluations=false contradicts the caller-provided "
        "evaluator.cache — clear one of them (a provided cache is always "
        "used)");
  if (cache_evaluations && cache_capacity == 0)
    throw std::invalid_argument(
        "GaOptions: cache_capacity must be >= 1 while cache_evaluations is "
        "set (use cache_evaluations=false to disable memoization)");
  if (!parallel_scenarios && evaluator.scenario_pool != nullptr)
    throw std::invalid_argument(
        "GaOptions: parallel_scenarios=false contradicts the caller-provided "
        "evaluator.scenario_pool — clear one of them (a provided pool is "
        "always used)");
  if (!checkpoint_path.empty() && checkpoint_every == 0)
    throw std::invalid_argument(
        "GaOptions: checkpoint_every must be >= 1 when checkpoint_path is "
        "set");
  if (!checkpoint_path.empty() && checkpoint_keep == 0)
    throw std::invalid_argument(
        "GaOptions: checkpoint_keep must be >= 1 when checkpoint_path is "
        "set");
}

GeneticOptimizer::GeneticOptimizer(const model::Architecture& arch,
                                   const model::ApplicationSet& apps,
                                   const sched::SchedulingAnalysis& backend)
    : arch_(&arch), apps_(&apps), backend_(&backend) {}

namespace {

struct GaCounters {
  obs::Counter generations{"dse.generations"};
  obs::Counter evaluations{"dse.evaluations"};
  obs::Counter decode_memo_hits{"dse.decode_memo_hits"};
  obs::Counter resume_generations{"dse.resume.generations_restored"};
  obs::Histogram eval_us{"dse.eval_us"};
};

GaCounters& ga_counters() {
  static GaCounters counters;
  return counters;
}

ObjectiveVector objectives_of(const core::Evaluation& evaluation,
                              bool optimize_service) {
  if (!optimize_service) return {evaluation.power};
  return {evaluation.power, -evaluation.service};
}

/// Binary tournament on SPEA2 fitness (lower wins).
std::size_t tournament(const std::vector<double>& fitness, util::Rng& rng) {
  const std::size_t a = rng.index(fitness.size());
  const std::size_t b = rng.index(fitness.size());
  return fitness[a] <= fitness[b] ? a : b;
}

}  // namespace

GaResult GeneticOptimizer::run(const GaOptions& options) const {
  options.validate();

  const Decoder decoder(*arch_, *apps_, options.decoder);
  const ChromosomeShape shape = decoder.shape();

  util::Rng master(options.seed);
  util::ThreadPool pool(options.threads);
  std::mutex observer_mutex;

  // Run-local memoization + scenario parallelism: all workers share one
  // cache and, when enabled, fan each candidate's Algorithm-1 scenarios
  // out over the same (nesting-safe) pool.  Caller-provided cache/pool in
  // options.evaluator take precedence.
  std::optional<core::EvaluationCache> cache;
  core::Evaluator::Options evaluator_options = options.evaluator;
  if (options.cache_evaluations && evaluator_options.cache == nullptr) {
    cache.emplace(std::max<std::size_t>(options.cache_capacity, 1));
    evaluator_options.cache = &*cache;
  }
  if (options.parallel_scenarios &&
      evaluator_options.scenario_pool == nullptr)
    evaluator_options.scenario_pool = &pool;
  const core::Evaluator evaluator(*arch_, *apps_, *backend_,
                                  evaluator_options);

  // Evaluation backend: the caller's executor, or a run-local in-process
  // one over the evaluator and pool built above.
  std::optional<InProcessExecutor> local_executor;
  Executor* executor = options.executor;
  if (executor == nullptr) {
    local_executor.emplace(evaluator, pool);
    executor = &*local_executor;
  }

  GaResult result;
  result.best_feasible_power = std::numeric_limits<double>::quiet_NaN();

  // Genotype-level memo in front of the candidate cache.  Decode randomness
  // is seeded from the chromosome's content hash, so decode + repair +
  // evaluation is a pure function of the genotype (for a fixed options
  // seed): a recurring chromosome can skip the whole pipeline, including
  // the reliability-repair attempts that make decoding itself expensive.
  // Exact genotype equality guards against hash collisions, mirroring the
  // EvaluationCache contract (a collision degrades to a miss, never to a
  // wrong result).
  struct DecodeMemoEntry {
    Chromosome genotype;  ///< pre-repair content (the key's preimage)
    Chromosome repaired;  ///< post-Lamarckian-repair genotype
    core::Candidate candidate;
    core::Evaluation evaluation;
  };
  std::mutex memo_mutex;
  std::unordered_map<std::uint64_t, DecodeMemoEntry> decode_memo;

  // Per-batch counters, copied into the following generation's stats.
  struct BatchStats {
    std::size_t evaluations = 0;
    std::size_t cache_hits = 0;
    std::size_t scenarios_analyzed = 0;
    std::size_t scenario_solves = 0;
    double seconds = 0.0;
    /// Per-candidate wall-clock latencies, ascending (for percentiles).
    std::vector<double> eval_us;
  } last_batch;

  // Evaluates a batch of chromosomes; repair mutates the chromosomes in
  // place (Lamarckian), so the batch is taken by reference.  Three phases:
  // (1) parallel decode-memo lookup + decode/repair, (2) one executor call
  // covering every memo miss (so a remote backend sees the whole
  // generation as one batch), (3) sequential fold of the outcomes back
  // into individuals, memo, and telemetry.  The phases compute exactly
  // what the pre-executor fused loop did, in a batch-friendly order.
  auto evaluate_batch = [&](std::vector<Chromosome>& batch) {
    obs::Span batch_span("ga.evaluate_batch");
    std::vector<Individual> individuals(batch.size());
    std::vector<double> latencies(batch.size(), 0.0);
    std::vector<std::uint64_t> keys(batch.size(), 0);
    std::vector<Chromosome> genotypes(batch.size());
    std::vector<char> memoized(batch.size(), 0);
    const auto start = std::chrono::steady_clock::now();

    pool.parallel_for(batch.size(), [&](std::size_t index) {
      obs::Span candidate_span("ga.candidate");
      const auto candidate_start = std::chrono::steady_clock::now();
      Individual& individual = individuals[index];
      // Decode randomness (random repair) is seeded from the chromosome's
      // content, not the population slot: identical genotypes then repair
      // to identical candidates no matter where or when they recur.  That
      // determinism is what makes the genotype memo and the candidate
      // cache sound — and keeps the run reproducible for a fixed seed.
      const std::uint64_t key = chromosome_hash(batch[index], options.seed);
      keys[index] = key;

      bool memo_hit = false;
      if (options.cache_evaluations) {
        std::lock_guard lock(memo_mutex);
        const auto found = decode_memo.find(key);
        if (found != decode_memo.end() &&
            found->second.genotype == batch[index]) {
          batch[index] = found->second.repaired;  // Lamarckian write-back
          individual.chromosome = found->second.repaired;
          individual.candidate = found->second.candidate;
          individual.evaluation = found->second.evaluation;
          memo_hit = true;
          ga_counters().decode_memo_hits.add(1);
        }
      }

      if (!memo_hit) {
        genotypes[index] = batch[index];  // pre-repair wire form
        util::Rng rng(key);
        individual.candidate = decoder.decode(batch[index], rng);
        individual.chromosome = batch[index];
      }
      memoized[index] = memo_hit ? 1 : 0;
      latencies[index] = std::chrono::duration<double, std::micro>(
                             std::chrono::steady_clock::now() -
                             candidate_start)
                             .count();
    });

    std::vector<std::size_t> pending;
    pending.reserve(batch.size());
    for (std::size_t index = 0; index < batch.size(); ++index)
      if (memoized[index] == 0) pending.push_back(index);

    std::vector<EvalRequest> requests(pending.size());
    std::vector<EvalOutcome> outcomes;
    for (std::size_t slot = 0; slot < pending.size(); ++slot) {
      const std::size_t index = pending[slot];
      requests[slot].genotype = &genotypes[index];
      requests[slot].candidate = &individuals[index].candidate;
      requests[slot].key = keys[index];
    }
    executor->evaluate(requests, outcomes);

    std::size_t hits = batch.size() - pending.size();
    std::size_t scenarios = 0;
    std::size_t solves = 0;
    for (std::size_t slot = 0; slot < pending.size(); ++slot) {
      const std::size_t index = pending[slot];
      Individual& individual = individuals[index];
      individual.evaluation = outcomes[slot].evaluation;
      latencies[index] += outcomes[slot].latency_us;
      if (outcomes[slot].cache_hit) {
        ++hits;
      } else {
        scenarios += individual.evaluation.scenario_count;
        solves += individual.evaluation.scenario_solves;
      }
      if (options.cache_evaluations) {
        std::lock_guard lock(memo_mutex);
        if (decode_memo.size() < options.cache_capacity)
          decode_memo.emplace(
              keys[index],
              DecodeMemoEntry{std::move(genotypes[index]), batch[index],
                              individual.candidate, individual.evaluation});
      }
    }

    for (std::size_t index = 0; index < batch.size(); ++index) {
      Individual& individual = individuals[index];
      individual.objectives =
          objectives_of(individual.evaluation, options.optimize_service);
      if (observer_) {
        std::lock_guard lock(observer_mutex);
        observer_(individual.candidate, individual.evaluation);
      }
      ga_counters().eval_us.record(
          latencies[index] <= 0.0
              ? 0
              : static_cast<std::uint64_t>(latencies[index]));
    }
    ga_counters().evaluations.add(batch.size());
    std::sort(latencies.begin(), latencies.end());
    last_batch.eval_us = std::move(latencies);
    last_batch.evaluations = batch.size();
    last_batch.cache_hits = hits;
    last_batch.scenarios_analyzed = scenarios;
    last_batch.scenario_solves = solves;
    last_batch.seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    result.evaluations += batch.size();
    return individuals;
  };

  std::vector<Individual> population;
  std::vector<Individual> archive;

  // Binary tournament mating + variation over the current archive; all
  // randomness comes from the master stream, so the checkpoint boundary
  // (right before this runs) pins the offspring exactly.
  auto breed = [&]() {
    std::vector<ObjectiveVector> archive_points;
    archive_points.reserve(archive.size());
    for (const Individual& individual : archive)
      archive_points.push_back(individual.objectives);
    const std::vector<double> fitness = spea2_fitness(archive_points);

    std::vector<Chromosome> offspring;
    offspring.reserve(options.offspring);
    for (std::size_t i = 0; i < options.offspring; ++i) {
      const Chromosome& parent_a =
          archive[tournament(fitness, master)].chromosome;
      const Chromosome& parent_b =
          archive[tournament(fitness, master)].chromosome;
      Chromosome child = master.chance(options.variation.crossover_rate)
                             ? crossover(parent_a, parent_b, shape, master)
                             : parent_a;
      mutate(child, shape, options.variation, master);
      offspring.push_back(std::move(child));
    }
    return offspring;
  };

  auto make_snapshot = [&](std::size_t generation, bool finished) {
    Checkpoint snapshot;
    snapshot.options = TrajectoryOptions::of(options);
    snapshot.generation = generation;
    snapshot.finished = finished ? 1 : 0;
    snapshot.evaluations = result.evaluations;
    snapshot.best_feasible_power = result.best_feasible_power;
    snapshot.cache_fingerprint = snapshot.options.digest();
    snapshot.master = master.state();
    snapshot.archive = archive;
    snapshot.history = result.history;
    return snapshot;
  };

  auto write_snapshot = [&](std::size_t generation, bool finished) {
    if (options.checkpoint_path.empty()) return;
    save_checkpoint(options.checkpoint_path,
                    make_snapshot(generation, finished),
                    options.checkpoint_keep);
  };

  // Extracts the feasible Pareto front (one representative per objective
  // vector) and moves the archive into the result.
  auto finalize = [&]() {
    std::vector<std::size_t> feasible;
    std::vector<ObjectiveVector> feasible_points;
    for (std::size_t i = 0; i < archive.size(); ++i) {
      if (!archive[i].evaluation.feasible()) continue;
      feasible.push_back(i);
      feasible_points.push_back(archive[i].objectives);
    }
    std::vector<ObjectiveVector> seen;
    for (std::size_t index : pareto_front(feasible_points)) {
      const Individual& individual = archive[feasible[index]];
      if (std::find(seen.begin(), seen.end(), individual.objectives) !=
          seen.end())
        continue;
      seen.push_back(individual.objectives);
      result.pareto.push_back(individual);
    }
    result.archive = std::move(archive);
    if (evaluator.options().cache != nullptr)
      result.cache = evaluator.options().cache->stats();
  };

  std::size_t start_generation = 0;
  if (options.resume != nullptr) {
    // The snapshot pins the trajectory; any divergent option fails loudly
    // before a single chromosome is touched.
    verify_resume_options(TrajectoryOptions::of(options),
                          options.resume->options);
    master.restore(options.resume->master);
    archive = options.resume->archive;
    population = options.resume->population;
    result.history = options.resume->history;
    result.evaluations = options.resume->evaluations;
    result.best_feasible_power = options.resume->best_feasible_power;
    result.last_generation = options.resume->generation;
    ga_counters().resume_generations.add(result.history.size());
    // Replay the restored telemetry so downstream streams (CLI JSONL) see
    // the whole run, not just the post-resume suffix.
    if (options.on_generation)
      for (const GenerationStats& stats : result.history)
        options.on_generation(stats);
    if (options.resume->finished != 0 ||
        options.resume->generation >= options.generations) {
      finalize();
      return result;
    }
    // The snapshot was taken after the boundary's selection and before its
    // mating step: run the tail of that generation, then continue.
    std::vector<Chromosome> offspring = breed();
    population = evaluate_batch(offspring);
    start_generation = options.resume->generation + 1;
  } else {
    // --- Initial population -----------------------------------------------
    std::vector<Chromosome> seeds;
    seeds.reserve(options.population);
    for (std::size_t i = 0; i < options.population; ++i)
      seeds.push_back(random_chromosome(shape, master));
    population = evaluate_batch(seeds);
  }

  for (std::size_t generation = start_generation;
       generation <= options.generations; ++generation) {
    obs::Span generation_span("ga.generation");
    ga_counters().generations.add(1);
    // --- Environmental selection over archive + population ----------------
    std::vector<Individual> combined;
    combined.reserve(archive.size() + population.size());
    for (auto& individual : archive) combined.push_back(std::move(individual));
    for (auto& individual : population)
      combined.push_back(std::move(individual));
    archive.clear();
    population.clear();

    std::vector<ObjectiveVector> points;
    points.reserve(combined.size());
    for (const Individual& individual : combined)
      points.push_back(individual.objectives);
    const std::vector<std::size_t> keep =
        spea2_select(points, options.population);
    archive.reserve(keep.size());
    for (std::size_t index : keep)
      archive.push_back(std::move(combined[index]));

    // --- Statistics --------------------------------------------------------
    GenerationStats stats;
    stats.generation = generation;
    for (const Individual& individual : archive) {
      if (!individual.evaluation.feasible()) continue;
      ++stats.feasible_in_archive;
      if (std::isnan(result.best_feasible_power) ||
          individual.evaluation.power < result.best_feasible_power)
        result.best_feasible_power = individual.evaluation.power;
    }
    stats.best_feasible_power = result.best_feasible_power;
    stats.evaluations = last_batch.evaluations;
    stats.cache_hits = last_batch.cache_hits;
    stats.cache_misses = last_batch.evaluations - last_batch.cache_hits;
    stats.cache_hit_rate =
        last_batch.evaluations == 0
            ? 0.0
            : static_cast<double>(last_batch.cache_hits) /
                  static_cast<double>(last_batch.evaluations);
    stats.scenarios_analyzed = last_batch.scenarios_analyzed;
    stats.scenario_solves = last_batch.scenario_solves;
    stats.evaluation_seconds = last_batch.seconds;
    stats.scenarios_per_second =
        last_batch.seconds > 0.0
            ? static_cast<double>(last_batch.scenarios_analyzed) /
                  last_batch.seconds
            : 0.0;
    if (!last_batch.eval_us.empty()) {
      stats.eval_p50_us = util::percentile_sorted(last_batch.eval_us, 0.50);
      stats.eval_p95_us = util::percentile_sorted(last_batch.eval_us, 0.95);
      stats.eval_max_us = last_batch.eval_us.back();
    }
    result.history.push_back(stats);
    result.last_generation = generation;
    if (options.on_generation) options.on_generation(stats);

    // --- Checkpoint + graceful stop, both at the generation boundary -------
    const bool finished = generation == options.generations;
    const bool stop =
        !finished && options.stop_requested && options.stop_requested();
    const bool cadence = !options.checkpoint_path.empty() &&
                         generation % options.checkpoint_every == 0;
    if (finished || stop || cadence) write_snapshot(generation, finished);
    if (options.capture_final_snapshot && (finished || stop))
      result.snapshot =
          std::make_shared<Checkpoint>(make_snapshot(generation, finished));
    if (stop) {
      result.interrupted = true;
      break;
    }
    if (finished) break;

    // --- Mating selection + variation --------------------------------------
    std::vector<Chromosome> offspring = breed();
    population = evaluate_batch(offspring);
  }

  finalize();
  return result;
}

}  // namespace ftmc::dse
