#include "ftmc/dse/ga.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <mutex>

#include "ftmc/util/thread_pool.hpp"

namespace ftmc::dse {

GeneticOptimizer::GeneticOptimizer(const model::Architecture& arch,
                                   const model::ApplicationSet& apps,
                                   const sched::SchedulingAnalysis& backend)
    : arch_(&arch), apps_(&apps), backend_(&backend) {}

namespace {

ObjectiveVector objectives_of(const core::Evaluation& evaluation,
                              bool optimize_service) {
  if (!optimize_service) return {evaluation.power};
  return {evaluation.power, -evaluation.service};
}

/// Binary tournament on SPEA2 fitness (lower wins).
std::size_t tournament(const std::vector<double>& fitness, util::Rng& rng) {
  const std::size_t a = rng.index(fitness.size());
  const std::size_t b = rng.index(fitness.size());
  return fitness[a] <= fitness[b] ? a : b;
}

}  // namespace

GaResult GeneticOptimizer::run(const GaOptions& options) const {
  if (options.population == 0 || options.offspring == 0)
    throw std::invalid_argument("GeneticOptimizer: empty population");

  const Decoder decoder(*arch_, *apps_, options.decoder);
  const core::Evaluator evaluator(*arch_, *apps_, *backend_,
                                  options.evaluator);
  const ChromosomeShape shape = decoder.shape();

  util::Rng master(options.seed);
  util::ThreadPool pool(options.threads);
  std::mutex observer_mutex;

  GaResult result;
  result.best_feasible_power = std::numeric_limits<double>::quiet_NaN();

  // Evaluates a batch of chromosomes in parallel; repair mutates the
  // chromosomes in place (Lamarckian), so the batch is taken by reference.
  auto evaluate_batch = [&](std::vector<Chromosome>& batch,
                            std::uint64_t stream_salt) {
    std::vector<Individual> individuals(batch.size());
    pool.parallel_for(batch.size(), [&](std::size_t index) {
      util::Rng rng(options.seed ^ (stream_salt + 0x9e3779b97f4a7c15ULL *
                                                      (index + 1)));
      Individual& individual = individuals[index];
      individual.candidate = decoder.decode(batch[index], rng);
      individual.chromosome = batch[index];
      individual.evaluation = evaluator.evaluate(individual.candidate);
      individual.objectives =
          objectives_of(individual.evaluation, options.optimize_service);
      if (observer_) {
        std::lock_guard lock(observer_mutex);
        observer_(individual.candidate, individual.evaluation);
      }
    });
    result.evaluations += batch.size();
    return individuals;
  };

  // --- Initial population -------------------------------------------------
  std::vector<Chromosome> seeds;
  seeds.reserve(options.population);
  for (std::size_t i = 0; i < options.population; ++i)
    seeds.push_back(random_chromosome(shape, master));
  std::vector<Individual> population = evaluate_batch(seeds, 0);
  std::vector<Individual> archive;

  for (std::size_t generation = 0; generation <= options.generations;
       ++generation) {
    // --- Environmental selection over archive + population ----------------
    std::vector<Individual> combined;
    combined.reserve(archive.size() + population.size());
    for (auto& individual : archive) combined.push_back(std::move(individual));
    for (auto& individual : population)
      combined.push_back(std::move(individual));
    archive.clear();
    population.clear();

    std::vector<ObjectiveVector> points;
    points.reserve(combined.size());
    for (const Individual& individual : combined)
      points.push_back(individual.objectives);
    const std::vector<std::size_t> keep =
        spea2_select(points, options.population);
    archive.reserve(keep.size());
    for (std::size_t index : keep)
      archive.push_back(std::move(combined[index]));

    // --- Statistics --------------------------------------------------------
    GenerationStats stats;
    stats.generation = generation;
    for (const Individual& individual : archive) {
      if (!individual.evaluation.feasible()) continue;
      ++stats.feasible_in_archive;
      if (std::isnan(result.best_feasible_power) ||
          individual.evaluation.power < result.best_feasible_power)
        result.best_feasible_power = individual.evaluation.power;
    }
    stats.best_feasible_power = result.best_feasible_power;
    result.history.push_back(stats);
    if (options.on_generation) options.on_generation(stats);

    if (generation == options.generations) break;

    // --- Mating selection + variation --------------------------------------
    std::vector<ObjectiveVector> archive_points;
    archive_points.reserve(archive.size());
    for (const Individual& individual : archive)
      archive_points.push_back(individual.objectives);
    const std::vector<double> fitness = spea2_fitness(archive_points);

    std::vector<Chromosome> offspring;
    offspring.reserve(options.offspring);
    for (std::size_t i = 0; i < options.offspring; ++i) {
      const Chromosome& parent_a =
          archive[tournament(fitness, master)].chromosome;
      const Chromosome& parent_b =
          archive[tournament(fitness, master)].chromosome;
      Chromosome child = master.chance(options.variation.crossover_rate)
                             ? crossover(parent_a, parent_b, shape, master)
                             : parent_a;
      mutate(child, shape, options.variation, master);
      offspring.push_back(std::move(child));
    }
    population =
        evaluate_batch(offspring, (generation + 1) * 0x100000001ULL);
  }

  // --- Feasible Pareto front (one representative per objective vector) ----
  std::vector<std::size_t> feasible;
  std::vector<ObjectiveVector> feasible_points;
  for (std::size_t i = 0; i < archive.size(); ++i) {
    if (!archive[i].evaluation.feasible()) continue;
    feasible.push_back(i);
    feasible_points.push_back(archive[i].objectives);
  }
  std::vector<ObjectiveVector> seen;
  for (std::size_t index : pareto_front(feasible_points)) {
    const Individual& individual = archive[feasible[index]];
    if (std::find(seen.begin(), seen.end(), individual.objectives) !=
        seen.end())
      continue;
    seen.push_back(individual.objectives);
    result.pareto.push_back(individual);
  }
  result.archive = std::move(archive);
  return result;
}

}  // namespace ftmc::dse
