// The design-space-exploration engine (Section 4): a (mu + lambda)
// evolutionary algorithm with SPEA2 environmental selection, Lamarckian
// candidate repair, and multithreaded candidate evaluation — an in-repo
// stand-in for the paper's Opt4J + SPEA-II setup (population, parents, and
// offspring all 100; 5,000 generations in the paper's experiments).
//
// Objectives (all minimized internally):
//   [0] expected power (+ infeasibility penalty),
//   [1] negated quality of service (only when optimize_service is set).
#pragma once

#include <functional>
#include <optional>

#include "ftmc/core/evaluator.hpp"
#include "ftmc/dse/chromosome.hpp"
#include "ftmc/dse/decoder.hpp"
#include "ftmc/dse/spea2.hpp"
#include "ftmc/dse/variation.hpp"

namespace ftmc::dse {

/// One evaluated design point.
struct Individual {
  Chromosome chromosome;
  core::Candidate candidate;
  core::Evaluation evaluation;
  ObjectiveVector objectives;
};

struct GenerationStats {
  std::size_t generation = 0;
  std::size_t feasible_in_archive = 0;
  /// Best (lowest) feasible power seen so far; NaN until one exists.
  double best_feasible_power = 0.0;
};

struct GaOptions {
  std::size_t population = 100;  ///< archive size (= mu)
  std::size_t offspring = 100;   ///< lambda
  std::size_t generations = 100;
  std::uint64_t seed = 42;
  std::size_t threads = 0;  ///< 0 = hardware concurrency
  /// Bi-objective power/service exploration (Figure 5) vs. power only.
  bool optimize_service = true;
  VariationOptions variation;
  Decoder::Options decoder;
  core::Evaluator::Options evaluator;
  /// Called after each generation's selection (from the driving thread).
  std::function<void(const GenerationStats&)> on_generation;
};

struct GaResult {
  /// Final SPEA2 archive.
  std::vector<Individual> archive;
  /// Feasible, non-dominated members of the archive.
  std::vector<Individual> pareto;
  std::size_t evaluations = 0;
  /// Best feasible power (NaN if no feasible candidate was ever seen).
  double best_feasible_power = 0.0;
  std::vector<GenerationStats> history;
};

class GeneticOptimizer {
 public:
  /// Observes every evaluated candidate (called from worker threads under
  /// an internal mutex).  Used by the Section-5.2 experiment to classify
  /// candidates by dropping-enabled vs. dropping-disabled feasibility.
  using EvalObserver = std::function<void(const core::Candidate&,
                                          const core::Evaluation&)>;

  /// References must outlive the optimizer.
  GeneticOptimizer(const model::Architecture& arch,
                   const model::ApplicationSet& apps,
                   const sched::SchedulingAnalysis& backend);

  void set_observer(EvalObserver observer) { observer_ = std::move(observer); }

  GaResult run(const GaOptions& options) const;

 private:
  const model::Architecture* arch_;
  const model::ApplicationSet* apps_;
  const sched::SchedulingAnalysis* backend_;
  EvalObserver observer_;
};

}  // namespace ftmc::dse
