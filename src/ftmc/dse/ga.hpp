// The design-space-exploration engine (Section 4): a (mu + lambda)
// evolutionary algorithm with SPEA2 environmental selection, Lamarckian
// candidate repair, and multithreaded candidate evaluation — an in-repo
// stand-in for the paper's Opt4J + SPEA-II setup (population, parents, and
// offspring all 100; 5,000 generations in the paper's experiments).
//
// Objectives (all minimized internally):
//   [0] expected power (+ infeasibility penalty),
//   [1] negated quality of service (only when optimize_service is set).
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>

#include "ftmc/core/evaluation_cache.hpp"
#include "ftmc/core/evaluator.hpp"
#include "ftmc/dse/chromosome.hpp"
#include "ftmc/dse/decoder.hpp"
#include "ftmc/dse/spea2.hpp"
#include "ftmc/dse/variation.hpp"

namespace ftmc::dse {

struct Checkpoint;  // checkpoint.hpp
class Executor;     // executor.hpp

/// One evaluated design point.
struct Individual {
  Chromosome chromosome;
  core::Candidate candidate;
  core::Evaluation evaluation;
  ObjectiveVector objectives;
};

struct GenerationStats {
  std::size_t generation = 0;
  std::size_t feasible_in_archive = 0;
  /// Best (lowest) feasible power seen so far; NaN until one exists.
  double best_feasible_power = 0.0;
  /// Candidates evaluated for this generation (initial population for
  /// generation 0, the offspring batch otherwise).
  std::size_t evaluations = 0;
  /// Of those, how many were served from the shared EvaluationCache /
  /// recomputed (always 0 / evaluations when the cache is disabled).
  std::size_t cache_hits = 0;
  std::size_t cache_misses = 0;
  /// cache_hits / evaluations for this generation's batch.
  double cache_hit_rate = 0.0;
  /// Algorithm-1 transition scenarios actually analyzed for this
  /// generation (cache hits skip their scenarios entirely).
  std::size_t scenarios_analyzed = 0;
  /// Backend fixed-point solves run for those scenarios (normal + Naive +
  /// unique scenarios per evaluated candidate; cache hits contribute none).
  std::size_t scenario_solves = 0;
  /// Analysis throughput of this generation's evaluation batch.
  double scenarios_per_second = 0.0;
  /// Wall-clock seconds spent evaluating this generation's batch.
  double evaluation_seconds = 0.0;
  /// Per-candidate evaluation latency percentiles across the batch, in
  /// microseconds (0 when the batch was empty).  Telemetry only: timing
  /// never feeds back into the search, so runs stay bit-identical.
  double eval_p50_us = 0.0;
  double eval_p95_us = 0.0;
  double eval_max_us = 0.0;
};

struct GaOptions {
  std::size_t population = 100;  ///< archive size (= mu)
  std::size_t offspring = 100;   ///< lambda
  std::size_t generations = 100;
  std::uint64_t seed = 42;
  std::size_t threads = 0;  ///< 0 = hardware concurrency
  /// Bi-objective power/service exploration (Figure 5) vs. power only.
  bool optimize_service = true;
  /// Memoize evaluations in an EvaluationCache shared by all GA workers.
  /// The cached value is exactly what evaluation would have produced, so
  /// the search trajectory is identical either way (guarded by the cache
  /// differential tests).
  ///
  /// Precedence (enforced by validate()): a caller-provided
  /// `evaluator.cache` is used as-is and `cache_capacity` then only bounds
  /// the genotype memo; with no caller cache, the GA builds a run-local one
  /// of `cache_capacity` entries.  Setting cache_evaluations=false while
  /// also providing `evaluator.cache` is a contradiction and validate()
  /// rejects it — there are no silent "ignored when set" rules.
  bool cache_evaluations = true;
  /// Total entry bound of the run-local cache and the genotype memo.
  std::size_t cache_capacity = 1 << 16;
  /// Fan Algorithm 1's transition scenarios out over the same worker pool
  /// that evaluates candidates (nesting-safe; drains generation tails when
  /// there are fewer pending candidates than threads).
  ///
  /// Precedence (enforced by validate()): a caller-provided
  /// `evaluator.scenario_pool` is used as-is; with none, the GA fans out
  /// over its own pool.  parallel_scenarios=false plus a caller pool is a
  /// contradiction and validate() rejects it.
  bool parallel_scenarios = true;
  VariationOptions variation;
  Decoder::Options decoder;
  core::Evaluator::Options evaluator;
  /// Called after each generation's selection (from the driving thread).
  /// On resume it is also replayed for every restored generation, so a
  /// telemetry stream (e.g. the CLI's JSONL) covers the whole run.
  std::function<void(const GenerationStats&)> on_generation;

  // --- Checkpointing (see checkpoint.hpp for format and guarantees) -------
  /// When non-empty, write an `ftmc.ckpt.v1` snapshot here at every
  /// checkpoint_every-th generation boundary, on graceful stop, and at the
  /// end of the run.
  std::string checkpoint_path;
  /// Snapshot cadence in generations (>= 1).
  std::size_t checkpoint_every = 1;
  /// Keep-last-K rotation of the snapshot file (1 = overwrite in place).
  std::size_t checkpoint_keep = 3;
  /// Resume from this snapshot instead of a fresh start.  The snapshot's
  /// recorded options must match this struct's trajectory options field by
  /// field (CheckpointError names the first mismatch).  Must outlive run().
  const Checkpoint* resume = nullptr;
  /// Polled at each generation boundary (driving thread).  Returning true
  /// finishes the in-flight generation, writes a final checkpoint when
  /// checkpoint_path is set, and returns with GaResult::interrupted.
  std::function<bool()> stop_requested;

  /// Evaluation backend for memo-missing candidates (see executor.hpp).
  /// nullptr runs a run-local InProcessExecutor over the GA's own
  /// evaluator and pool — bit-for-bit the pre-executor behavior.  The
  /// executor choice never alters the trajectory (evaluations are pure
  /// functions of the genotype), so it is deliberately NOT part of
  /// TrajectoryOptions: snapshots resume under any backend.  Must outlive
  /// run().
  Executor* executor = nullptr;
  /// Also return the boundary snapshot in GaResult::snapshot when the run
  /// ends (finished or stopped), independent of checkpoint_path.  The
  /// island-model campaign uses this to chunk a run into migration epochs
  /// without a disk round-trip per epoch.
  bool capture_final_snapshot = false;

  /// Validates field ranges and resolves the overlapping cache/pool knobs
  /// with the precedence documented above.  Throws std::invalid_argument
  /// naming the offending field(s).  run() calls this first.
  void validate() const;
};

struct GaResult {
  /// Final SPEA2 archive.
  std::vector<Individual> archive;
  /// Feasible, non-dominated members of the archive.
  std::vector<Individual> pareto;
  std::size_t evaluations = 0;
  /// Best feasible power (NaN if no feasible candidate was ever seen).
  double best_feasible_power = 0.0;
  /// True when the run stopped early via GaOptions::stop_requested; the
  /// archive/pareto reflect the last completed generation and, when
  /// checkpointing was on, a resumable snapshot is on disk.
  bool interrupted = false;
  /// Index of the last completed generation boundary.
  std::size_t last_generation = 0;
  std::vector<GenerationStats> history;
  /// Final counters of the run-local EvaluationCache (all zero when
  /// caching was disabled).
  core::CacheStats cache;
  /// The run-ending boundary snapshot, when capture_final_snapshot was
  /// set (null otherwise, and on the resume-of-finished-run fast path).
  /// Resuming from it continues the trajectory exactly as a disk
  /// checkpoint would.
  std::shared_ptr<Checkpoint> snapshot;
};

class GeneticOptimizer {
 public:
  /// Observes every evaluated candidate (called from worker threads under
  /// an internal mutex).  Used by the Section-5.2 experiment to classify
  /// candidates by dropping-enabled vs. dropping-disabled feasibility.
  using EvalObserver = std::function<void(const core::Candidate&,
                                          const core::Evaluation&)>;

  /// References must outlive the optimizer.
  GeneticOptimizer(const model::Architecture& arch,
                   const model::ApplicationSet& apps,
                   const sched::SchedulingAnalysis& backend);

  void set_observer(EvalObserver observer) { observer_ = std::move(observer); }

  GaResult run(const GaOptions& options) const;

 private:
  const model::Architecture* arch_;
  const model::ApplicationSet* apps_;
  const sched::SchedulingAnalysis* backend_;
  EvalObserver observer_;
};

}  // namespace ftmc::dse
