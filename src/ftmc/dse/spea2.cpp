#include "ftmc/dse/spea2.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace ftmc::dse {

bool dominates(const ObjectiveVector& a, const ObjectiveVector& b) {
  if (a.size() != b.size())
    throw std::invalid_argument("dominates: dimensionality mismatch");
  bool strictly_better = false;
  for (std::size_t k = 0; k < a.size(); ++k) {
    if (a[k] > b[k]) return false;
    if (a[k] < b[k]) strictly_better = true;
  }
  return strictly_better;
}

namespace {

double distance2(const ObjectiveVector& a, const ObjectiveVector& b) {
  double sum = 0.0;
  for (std::size_t k = 0; k < a.size(); ++k) {
    const double d = a[k] - b[k];
    sum += d * d;
  }
  return sum;
}

/// Sorted squared distances from each point to every other point.
std::vector<std::vector<double>> distance_matrix(
    const std::vector<ObjectiveVector>& points) {
  const std::size_t n = points.size();
  std::vector<std::vector<double>> distances(n);
  for (std::size_t i = 0; i < n; ++i) {
    distances[i].reserve(n - 1);
    for (std::size_t j = 0; j < n; ++j)
      if (j != i) distances[i].push_back(distance2(points[i], points[j]));
    std::sort(distances[i].begin(), distances[i].end());
  }
  return distances;
}

}  // namespace

std::vector<double> spea2_fitness(const std::vector<ObjectiveVector>& points) {
  const std::size_t n = points.size();
  std::vector<double> fitness(n, 0.0);
  if (n == 0) return fitness;

  // Strength and raw fitness.
  std::vector<std::size_t> strength(n, 0);
  std::vector<std::vector<bool>> dom(n, std::vector<bool>(n, false));
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      if (i != j && dominates(points[i], points[j])) {
        dom[i][j] = true;
        ++strength[i];
      }
  for (std::size_t i = 0; i < n; ++i) {
    double raw = 0.0;
    for (std::size_t j = 0; j < n; ++j)
      if (dom[j][i]) raw += static_cast<double>(strength[j]);
    fitness[i] = raw;
  }

  // Density via k-th nearest neighbour.
  const auto k = static_cast<std::size_t>(std::sqrt(static_cast<double>(n)));
  const auto distances = distance_matrix(points);
  for (std::size_t i = 0; i < n; ++i) {
    double sigma = 0.0;
    if (!distances[i].empty()) {
      const std::size_t idx = std::min(k, distances[i].size()) - 1;
      sigma = std::sqrt(distances[i][std::max<std::size_t>(idx, 0)]);
    }
    fitness[i] += 1.0 / (sigma + 2.0);
  }
  return fitness;
}

std::vector<std::size_t> pareto_front(
    const std::vector<ObjectiveVector>& points) {
  std::vector<std::size_t> front;
  for (std::size_t i = 0; i < points.size(); ++i) {
    bool dominated = false;
    for (std::size_t j = 0; j < points.size() && !dominated; ++j)
      if (j != i && dominates(points[j], points[i])) dominated = true;
    if (!dominated) front.push_back(i);
  }
  return front;
}

std::vector<std::size_t> spea2_select(
    const std::vector<ObjectiveVector>& points, std::size_t capacity) {
  const std::size_t n = points.size();
  if (capacity == 0 || n == 0) return {};
  const std::vector<double> fitness = spea2_fitness(points);

  std::vector<std::size_t> selected;
  for (std::size_t i = 0; i < n; ++i)
    if (fitness[i] < 1.0) selected.push_back(i);

  if (selected.size() < capacity) {
    // Fill with the best dominated individuals.
    std::vector<std::size_t> rest;
    for (std::size_t i = 0; i < n; ++i)
      if (fitness[i] >= 1.0) rest.push_back(i);
    std::sort(rest.begin(), rest.end(), [&](std::size_t a, std::size_t b) {
      return fitness[a] < fitness[b];
    });
    for (std::size_t i = 0; i < rest.size() && selected.size() < capacity;
         ++i)
      selected.push_back(rest[i]);
    return selected;
  }

  // Truncation: repeatedly drop the individual with the lexicographically
  // smallest sorted neighbour-distance vector (within the selected set).
  std::vector<bool> alive(n, false);
  for (std::size_t i : selected) alive[i] = true;
  std::size_t alive_count = selected.size();
  while (alive_count > capacity) {
    std::size_t victim = SIZE_MAX;
    std::vector<double> victim_key;
    for (std::size_t i : selected) {
      if (!alive[i]) continue;
      std::vector<double> key;
      key.reserve(alive_count - 1);
      for (std::size_t j : selected)
        if (j != i && alive[j]) key.push_back(distance2(points[i], points[j]));
      std::sort(key.begin(), key.end());
      if (victim == SIZE_MAX ||
          std::lexicographical_compare(key.begin(), key.end(),
                                       victim_key.begin(),
                                       victim_key.end())) {
        victim = i;
        victim_key = std::move(key);
      }
    }
    alive[victim] = false;
    --alive_count;
  }

  std::vector<std::size_t> result;
  result.reserve(capacity);
  for (std::size_t i : selected)
    if (alive[i]) result.push_back(i);
  return result;
}

}  // namespace ftmc::dse
