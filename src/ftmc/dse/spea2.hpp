// SPEA2 (Zitzler, Laumanns, Thiele 2001) — the population selector the paper
// plugs into Opt4J [18][19].
//
// Fitness of individual i over a combined population+archive of size N:
//   strength  S(i) = |{j : i dominates j}|
//   raw       R(i) = sum of S(j) over all j that dominate i
//   density   D(i) = 1 / (sigma_i^k + 2),  k = floor(sqrt(N)),
//             sigma_i^k = distance to i's k-th nearest neighbour in
//             objective space
//   fitness   F(i) = R(i) + D(i)      (lower is better; F < 1 iff
//                                      non-dominated)
// Environmental selection keeps all non-dominated individuals; underfull
// archives are topped up with the best dominated ones, overfull archives are
// truncated by iteratively removing the individual with the smallest
// nearest-neighbour distance (ties broken on subsequent neighbours).
//
// All objectives are minimized; callers negate maximization objectives.
#pragma once

#include <cstddef>
#include <vector>

namespace ftmc::dse {

using ObjectiveVector = std::vector<double>;

/// Pareto dominance (minimization): a <= b in all objectives, < in one.
bool dominates(const ObjectiveVector& a, const ObjectiveVector& b);

/// SPEA2 fitness for every individual of the combined population.
std::vector<double> spea2_fitness(const std::vector<ObjectiveVector>& points);

/// Indices selected into the next archive of size `capacity`.
std::vector<std::size_t> spea2_select(
    const std::vector<ObjectiveVector>& points, std::size_t capacity);

/// Indices of the non-dominated points (the Pareto front).
std::vector<std::size_t> pareto_front(
    const std::vector<ObjectiveVector>& points);

}  // namespace ftmc::dse
