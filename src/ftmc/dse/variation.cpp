#include "ftmc/dse/variation.hpp"

#include <stdexcept>

namespace ftmc::dse {

Chromosome crossover(const Chromosome& a, const Chromosome& b,
                     const ChromosomeShape& shape, util::Rng& rng) {
  if (a.allocation.size() != b.allocation.size() ||
      a.keep.size() != b.keep.size() || a.tasks.size() != b.tasks.size())
    throw std::invalid_argument("crossover: incompatible chromosomes");
  Chromosome child = a;
  for (std::size_t p = 0; p < child.allocation.size(); ++p)
    if (rng.chance(0.5)) child.allocation[p] = b.allocation[p];
  for (std::size_t g = 0; g < child.keep.size(); ++g)
    if (rng.chance(0.5)) child.keep[g] = b.keep[g];
  for (std::size_t t = 0; t < child.tasks.size(); ++t)
    if (rng.chance(0.5)) child.tasks[t] = b.tasks[t];

  // Base mapping travels per application.
  if (shape.graph_of_task.size() == child.tasks.size()) {
    std::vector<bool> from_b(shape.graphs, false);
    for (std::size_t g = 0; g < shape.graphs; ++g) from_b[g] = rng.chance(0.5);
    for (std::size_t t = 0; t < child.tasks.size(); ++t) {
      const Chromosome& source =
          from_b[shape.graph_of_task[t]] ? b : a;
      child.tasks[t].base_pe = source.tasks[t].base_pe;
    }
  }
  return child;
}

void mutate(Chromosome& chromosome, const ChromosomeShape& shape,
            const VariationOptions& options, util::Rng& rng) {
  for (auto& bit : chromosome.allocation)
    if (rng.chance(options.allocation_flip_rate)) bit ^= 1;
  for (auto& bit : chromosome.keep)
    if (rng.chance(options.keep_flip_rate)) bit ^= 1;

  // Whole-graph re-clustering: occasionally migrate one application onto a
  // single PE (the communication-friendly move GAs rarely find gene by
  // gene).
  if (shape.graph_of_task.size() == shape.tasks) {
    for (std::uint32_t g = 0; g < shape.graphs; ++g) {
      if (!rng.chance(options.graph_recluster_rate)) continue;
      const auto pe = static_cast<std::uint16_t>(rng.index(shape.processors));
      for (std::size_t t = 0; t < shape.tasks; ++t)
        if (shape.graph_of_task[t] == g) chromosome.tasks[t].base_pe = pe;
    }
  }

  for (TaskGenes& genes : chromosome.tasks) {
    if (!rng.chance(options.task_mutation_rate)) continue;
    switch (rng.index(6)) {
      case 0:
        genes.technique =
            static_cast<TechniqueGene>(rng.uniform_int(0, 3));
        break;
      case 1:
        genes.reexec = random_reexec_degree(rng);
        break;
      case 2:
        genes.active_n = static_cast<std::uint8_t>(rng.uniform_int(2, 3));
        break;
      case 3:
        genes.base_pe =
            static_cast<std::uint16_t>(rng.index(shape.processors));
        break;
      case 4:
        genes.replica_pe[rng.index(kReplicaSlots)] =
            static_cast<std::uint16_t>(rng.index(shape.processors));
        break;
      case 5:
        genes.voter_pe =
            static_cast<std::uint16_t>(rng.index(shape.processors));
        break;
    }
  }
}

}  // namespace ftmc::dse
