// Genetic operators over the Figure-4 chromosome: section-wise uniform
// crossover and per-gene mutation.
#pragma once

#include "ftmc/dse/chromosome.hpp"
#include "ftmc/util/rng.hpp"

namespace ftmc::dse {

struct VariationOptions {
  double crossover_rate = 0.9;       ///< probability of crossing parents
  double allocation_flip_rate = 0.05;  ///< per allocation bit
  double keep_flip_rate = 0.1;       ///< per application keep bit
  double task_mutation_rate = 0.08;  ///< per task: re-randomize one field
  /// Per graph: migrate the whole application onto one random PE.
  double graph_recluster_rate = 0.05;
};

/// Uniform crossover: each allocation bit, keep bit, and per-task gene block
/// is inherited from either parent with probability 1/2 — except the base
/// mapping, which is inherited per *application* when the shape carries
/// graph information: mixing task-to-PE genes of one graph from two parents
/// shreds communication-friendly clustered mappings, and on bus platforms
/// those are the feasible ones.
Chromosome crossover(const Chromosome& a, const Chromosome& b,
                     const ChromosomeShape& shape, util::Rng& rng);

/// In-place mutation; gene ranges follow `shape`.
void mutate(Chromosome& chromosome, const ChromosomeShape& shape,
            const VariationOptions& options, util::Rng& rng);

}  // namespace ftmc::dse
