// Hardening decisions (Section 2.2) and their per-task bookkeeping after the
// graph transform.
//
// Three techniques are supported, mirroring the paper:
//  - Re-execution: on locally detected fault, roll back and re-run the same
//    instance up to k extra times.  Topology unchanged; the critical-state
//    WCET becomes (wcet + dt) * (k + 1)  (Eq. 1).
//  - Active replication: n >= 2 replicas always execute on (ideally
//    distinct) PEs and feed a majority voter (n >= 3 masks faults; n == 2
//    only detects).
//  - Passive replication: two primaries always execute; a standby replica is
//    instantiated only when the voter sees the primaries disagree
//    (Figure 2(b)).  Standby invocation switches the system to the critical
//    state.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ftmc/model/application_set.hpp"
#include "ftmc/model/ids.hpp"
#include "ftmc/model/mapping.hpp"

namespace ftmc::hardening {

enum class Technique : std::uint8_t {
  kNone,
  kReexecution,
  kActiveReplication,
  kPassiveReplication,
};

const char* to_string(Technique technique) noexcept;

/// Hardening decision for one task of the *original* application set.
struct TaskHardening {
  Technique technique = Technique::kNone;
  /// Re-execution only: maximum number k of re-executions (>= 1).
  int reexecutions = 0;
  /// Replication only: PEs of the replicas.  Active: all always run
  /// (size >= 2).  Passive: exactly 3 entries — two primaries followed by
  /// one standby.
  std::vector<model::ProcessorId> replica_pes;
  /// Replication only: PE running the voter.
  model::ProcessorId voter_pe{0};

  bool operator==(const TaskHardening&) const = default;
};

/// Hardening decisions for every task of an application set (flat order).
using HardeningPlan = std::vector<TaskHardening>;

/// Role of a task in the transformed application set T'.
enum class TaskRole : std::uint8_t {
  kOriginal,        ///< untouched or re-executable original task
  kActiveReplica,   ///< always-running replica (incl. passive primaries)
  kPassiveReplica,  ///< on-demand standby replica
  kVoter,           ///< majority voter
};

const char* to_string(TaskRole role) noexcept;

/// Per-task annotation of the transformed set, flat-aligned with T'.
struct HardenedTaskInfo {
  TaskRole role = TaskRole::kOriginal;
  /// The original task this one descends from (voters inherit the task they
  /// vote for).
  model::TaskRef origin{};
  /// k for re-executable originals; 0 otherwise.
  int reexecutions = 0;
  /// Detection overhead applies (re-executable tasks pay dt every run).
  bool pays_detection = false;
  /// True if a fault in this task switches the system to the critical state
  /// (re-executable originals and passive standbys, Section 3).
  bool triggers_critical_state = false;
};

/// Result of applying a HardeningPlan: the modified applications T', their
/// mapping, and per-task annotations consumed by analysis and simulation.
struct HardenedSystem {
  model::ApplicationSet apps;           ///< T'
  model::Mapping mapping;               ///< map : V(T') -> P
  std::vector<HardenedTaskInfo> info;   ///< flat-aligned with `apps`
  /// For each original graph, the graph id in T' (transform preserves graph
  /// order, so this is the identity; kept for interface clarity).
  std::vector<model::GraphId> graph_of_original;

  const HardenedTaskInfo& info_of(model::TaskRef task) const {
    return info.at(apps.flat_index(task));
  }
};

/// Validates a plan against its application set; throws std::invalid_argument
/// describing the first violation (wrong replica counts, k < 1 for
/// re-execution, out-of-range PEs, ...).
void validate_plan(const model::ApplicationSet& apps,
                   const HardeningPlan& plan,
                   std::size_t processor_count);

/// Applies the plan, producing T' and its mapping.
///
/// @param base_mapping  PE of every *original* task (flat order over `apps`);
///                      replicated tasks ignore it in favour of replica_pes.
HardenedSystem apply_hardening(const model::ApplicationSet& apps,
                               const HardeningPlan& plan,
                               const std::vector<model::ProcessorId>& base_mapping,
                               std::size_t processor_count);

}  // namespace ftmc::hardening
