#include "ftmc/hardening/reliability.hpp"

#include <cmath>
#include <stdexcept>

namespace ftmc::hardening {

model::Time scaled_time(const model::Processor& processor,
                        model::Time nominal) noexcept {
  if (nominal <= 0) return 0;
  return static_cast<model::Time>(
      std::ceil(static_cast<double>(nominal) * processor.speed_factor));
}

double execution_failure_probability(const model::Processor& processor,
                                     model::Time nominal) noexcept {
  const model::Time exec = scaled_time(processor, nominal);
  if (exec <= 0 || processor.fault_rate <= 0.0) return 0.0;
  return -std::expm1(-processor.fault_rate * static_cast<double>(exec));
}

double majority_failure_probability(std::span<const double> pf) {
  if (pf.empty())
    throw std::invalid_argument("majority_failure_probability: no replicas");
  // dist[c] = P[exactly c replicas correct]  (Poisson-binomial DP).
  std::vector<double> dist(pf.size() + 1, 0.0);
  dist[0] = 1.0;
  for (std::size_t i = 0; i < pf.size(); ++i) {
    const double ok = 1.0 - pf[i];
    for (std::size_t c = i + 1; c > 0; --c)
      dist[c] = dist[c] * pf[i] + dist[c - 1] * ok;
    dist[0] *= pf[i];
  }
  // Correct majority needs strictly more than half the replicas.
  const std::size_t needed = pf.size() / 2 + 1;
  double success = 0.0;
  for (std::size_t c = needed; c <= pf.size(); ++c) success += dist[c];
  return 1.0 - success;
}

double expected_reexecution_count(double pf, int k) noexcept {
  double expected = 1.0;
  double failure_chain = 1.0;
  for (int j = 1; j <= k; ++j) {
    failure_chain *= pf;
    expected += failure_chain;
  }
  return expected;
}

double standby_activation_probability(double pf_primary0,
                                      double pf_primary1) noexcept {
  return 1.0 - (1.0 - pf_primary0) * (1.0 - pf_primary1);
}

double task_failure_probability(const model::Architecture& arch,
                                const model::Task& task,
                                const TaskHardening& decision,
                                model::ProcessorId base_pe) {
  switch (decision.technique) {
    case Technique::kNone:
      return execution_failure_probability(arch.processor(base_pe),
                                           task.wcet);
    case Technique::kReexecution: {
      const double attempt = execution_failure_probability(
          arch.processor(base_pe), task.wcet + task.detection_overhead);
      return std::pow(attempt, decision.reexecutions + 1);
    }
    case Technique::kActiveReplication: {
      std::vector<double> pf;
      pf.reserve(decision.replica_pes.size());
      for (model::ProcessorId pe : decision.replica_pes)
        pf.push_back(
            execution_failure_probability(arch.processor(pe), task.wcet));
      const double replica_failure = majority_failure_probability(pf);
      const double voter_failure = execution_failure_probability(
          arch.processor(decision.voter_pe), task.voting_overhead);
      return 1.0 - (1.0 - replica_failure) * (1.0 - voter_failure);
    }
    case Technique::kPassiveReplication: {
      const double f0 = execution_failure_probability(
          arch.processor(decision.replica_pes[0]), task.wcet);
      const double f1 = execution_failure_probability(
          arch.processor(decision.replica_pes[1]), task.wcet);
      const double fs = execution_failure_probability(
          arch.processor(decision.replica_pes[2]), task.wcet);
      // Success: both primaries correct, or exactly one primary faulty and
      // the tie-breaking standby correct.
      const double success = (1.0 - f0) * (1.0 - f1) +
                             f0 * (1.0 - f1) * (1.0 - fs) +
                             f1 * (1.0 - f0) * (1.0 - fs);
      const double voter_failure = execution_failure_probability(
          arch.processor(decision.voter_pe), task.voting_overhead);
      return 1.0 - success * (1.0 - voter_failure);
    }
  }
  throw std::logic_error("task_failure_probability: bad technique");
}

ReliabilityReport check_reliability(
    const model::Architecture& arch, const model::ApplicationSet& apps,
    const HardeningPlan& plan,
    const std::vector<model::ProcessorId>& base_mapping) {
  if (plan.size() != apps.task_count() ||
      base_mapping.size() != apps.task_count())
    throw std::invalid_argument(
        "check_reliability: plan/mapping size mismatch");

  ReliabilityReport report;
  report.failure_rate.reserve(apps.graph_count());
  report.satisfied.reserve(apps.graph_count());
  for (std::uint32_t g = 0; g < apps.graph_count(); ++g) {
    const model::TaskGraph& graph = apps.graph(model::GraphId{g});
    double success = 1.0;
    for (std::uint32_t v = 0; v < graph.task_count(); ++v) {
      const std::size_t flat = apps.flat_index(model::TaskRef{g, v});
      success *= 1.0 - task_failure_probability(arch, graph.task(v),
                                                plan[flat],
                                                base_mapping[flat]);
    }
    const double per_period_failure = 1.0 - success;
    const double rate =
        per_period_failure / static_cast<double>(graph.period());
    report.failure_rate.push_back(rate);
    const bool ok =
        graph.droppable() || rate <= graph.reliability_constraint();
    report.satisfied.push_back(ok);
    report.all_satisfied = report.all_satisfied && ok;
  }
  return report;
}

}  // namespace ftmc::hardening
