// Reliability analysis against the per-application constraint f_t.
//
// Transient faults arrive on each PE as a Poisson process with constant rate
// lambda_p per microsecond (Section 2.1, after [11][12]); an execution of
// length e on PE p therefore fails with probability 1 - exp(-lambda_p * e).
// Hardening changes the per-task failure probability:
//   re-execution(k):  all k+1 attempts must fail,
//   active n-replication: no correct majority among the replicas (and the
//     voter itself must not fail),
//   passive replication (2 primaries + 1 standby): both primaries fail, or
//     one primary and the standby fail.
// Failures of distinct executions are independent, and faulty results are
// assumed pairwise distinguishable (standard fail-signal/diverse-value
// assumption), so two faulty replicas never form a bogus majority but can
// destroy a real one.
//
// Per application: one instance per period fails if any of its tasks fails;
// the failure *rate* (failures per microsecond) is the per-period failure
// probability divided by the period, and must not exceed f_t.
#pragma once

#include <span>
#include <vector>

#include "ftmc/hardening/hardening.hpp"
#include "ftmc/model/architecture.hpp"

namespace ftmc::hardening {

/// Execution time of a nominal duration on a concrete PE.
model::Time scaled_time(const model::Processor& processor,
                        model::Time nominal) noexcept;

/// P[single execution of `nominal` time units on `processor` is hit by at
/// least one transient fault].
double execution_failure_probability(const model::Processor& processor,
                                     model::Time nominal) noexcept;

/// P[no correct majority] for replicas with individual failure
/// probabilities `pf` (Poisson-binomial over <= ~8 replicas).  A majority
/// requires strictly more than half of the replicas to be correct.
double majority_failure_probability(std::span<const double> pf);

/// Expected number of executions of a task re-executable k times whose
/// single attempt fails with probability pf: 1 + pf + pf^2 + ... + pf^k.
double expected_reexecution_count(double pf, int k) noexcept;

/// P[the passive standby is activated] = P[primaries disagree].
double standby_activation_probability(double pf_primary0,
                                      double pf_primary1) noexcept;

/// Per-period failure probability of one (possibly hardened) task.
double task_failure_probability(const model::Architecture& arch,
                                const model::Task& task,
                                const TaskHardening& decision,
                                model::ProcessorId base_pe);

/// Reliability verdict for a full hardening/mapping decision.
struct ReliabilityReport {
  /// Failures per microsecond, per graph (0 for fault-free).
  std::vector<double> failure_rate;
  /// Constraint verdict per graph (droppable graphs are always satisfied).
  std::vector<bool> satisfied;
  bool all_satisfied = true;
};

/// Evaluates every graph of `apps` under `plan` and `base_mapping` (both in
/// flat order over the *original* application set).
ReliabilityReport check_reliability(
    const model::Architecture& arch, const model::ApplicationSet& apps,
    const HardeningPlan& plan,
    const std::vector<model::ProcessorId>& base_mapping);

}  // namespace ftmc::hardening
