// Graph transform T -> T' for the hardening techniques of Section 2.2.
//
// Replication rewires the topology exactly as in Figure 2: every replica
// receives copies of the original inputs, all replicas feed a majority
// voter, and the voter takes over the original task's outgoing channels.
// Passive standbys additionally receive zero-size control edges from both
// primaries — a DAG encoding of "the voter requests the standby after both
// primaries have produced (disagreeing) results".
#include <algorithm>
#include <stdexcept>

#include "ftmc/hardening/hardening.hpp"

namespace ftmc::hardening {

namespace {

constexpr int kMaxReexecutions = 8;
constexpr std::uint64_t kSinkVotePayload = 8;  // result digest for sinks

std::uint64_t vote_payload(const model::TaskGraph& graph, std::uint32_t task) {
  std::uint64_t payload = 0;
  for (std::uint32_t c : graph.out_channels(task))
    payload = std::max(payload, graph.channels()[c].size_bytes);
  return payload == 0 ? kSinkVotePayload : payload;
}

void validate_one(const model::Task& task, const TaskHardening& decision,
                  std::size_t processor_count, const std::string& where) {
  switch (decision.technique) {
    case Technique::kNone:
      return;
    case Technique::kReexecution:
      if (decision.reexecutions < 1 || decision.reexecutions > kMaxReexecutions)
        throw std::invalid_argument(where + ": re-execution count must be in [1," +
                                    std::to_string(kMaxReexecutions) + "]");
      return;
    case Technique::kActiveReplication:
      if (decision.replica_pes.size() < 2)
        throw std::invalid_argument(where +
                                    ": active replication needs >= 2 replicas");
      break;
    case Technique::kPassiveReplication:
      if (decision.replica_pes.size() != 3)
        throw std::invalid_argument(
            where + ": passive replication needs exactly 3 replicas "
                    "(2 primaries + 1 standby)");
      break;
  }
  for (model::ProcessorId pe : decision.replica_pes)
    if (pe.value >= processor_count)
      throw std::invalid_argument(where + ": replica PE out of range");
  if (decision.voter_pe.value >= processor_count)
    throw std::invalid_argument(where + ": voter PE out of range");
  if (task.voting_overhead <= 0)
    throw std::invalid_argument(where +
                                ": replicated task needs voting_overhead > 0");
}

}  // namespace

const char* to_string(Technique technique) noexcept {
  switch (technique) {
    case Technique::kNone: return "none";
    case Technique::kReexecution: return "re-execution";
    case Technique::kActiveReplication: return "active-replication";
    case Technique::kPassiveReplication: return "passive-replication";
  }
  return "?";
}

const char* to_string(TaskRole role) noexcept {
  switch (role) {
    case TaskRole::kOriginal: return "original";
    case TaskRole::kActiveReplica: return "active-replica";
    case TaskRole::kPassiveReplica: return "passive-replica";
    case TaskRole::kVoter: return "voter";
  }
  return "?";
}

void validate_plan(const model::ApplicationSet& apps, const HardeningPlan& plan,
                   std::size_t processor_count) {
  if (plan.size() != apps.task_count())
    throw std::invalid_argument(
        "validate_plan: plan size does not match task count");
  for (std::size_t i = 0; i < plan.size(); ++i) {
    const model::TaskRef ref = apps.task_ref(i);
    const model::Task& task = apps.task(ref);
    validate_one(task, plan[i], processor_count,
                 "task '" + task.name + "'");
  }
}

HardenedSystem apply_hardening(
    const model::ApplicationSet& apps, const HardeningPlan& plan,
    const std::vector<model::ProcessorId>& base_mapping,
    std::size_t processor_count) {
  validate_plan(apps, plan, processor_count);
  if (base_mapping.size() != apps.task_count())
    throw std::invalid_argument(
        "apply_hardening: base mapping size does not match task count");
  for (model::ProcessorId pe : base_mapping)
    if (pe.value >= processor_count)
      throw std::invalid_argument("apply_hardening: mapped PE out of range");

  std::vector<model::TaskGraph> new_graphs;
  std::vector<HardenedTaskInfo> info;
  std::vector<model::ProcessorId> new_mapping_flat;
  std::vector<model::GraphId> graph_of_original;
  new_graphs.reserve(apps.graph_count());

  for (std::uint32_t g = 0; g < apps.graph_count(); ++g) {
    const model::TaskGraph& graph = apps.graph(model::GraphId{g});
    graph_of_original.push_back(model::GraphId{g});

    std::vector<model::Task> tasks;
    std::vector<model::Channel> channels;
    std::vector<HardenedTaskInfo> graph_info;
    std::vector<model::ProcessorId> graph_mapping;

    // For each original task: the node(s) receiving its former inputs and
    // the single node producing its former outputs.
    std::vector<std::vector<std::uint32_t>> input_nodes(graph.task_count());
    std::vector<std::uint32_t> output_node(graph.task_count());

    auto emit = [&](model::Task task, HardenedTaskInfo node_info,
                    model::ProcessorId pe) {
      tasks.push_back(std::move(task));
      graph_info.push_back(node_info);
      graph_mapping.push_back(pe);
      return static_cast<std::uint32_t>(tasks.size() - 1);
    };

    for (std::uint32_t v = 0; v < graph.task_count(); ++v) {
      const model::TaskRef ref{g, v};
      const std::size_t flat = apps.flat_index(ref);
      const model::Task& task = graph.task(v);
      const TaskHardening& decision = plan[flat];

      switch (decision.technique) {
        case Technique::kNone:
        case Technique::kReexecution: {
          HardenedTaskInfo node;
          node.role = TaskRole::kOriginal;
          node.origin = ref;
          if (decision.technique == Technique::kReexecution) {
            node.reexecutions = decision.reexecutions;
            node.pays_detection = true;
            node.triggers_critical_state = true;
          }
          const std::uint32_t id = emit(task, node, base_mapping[flat]);
          input_nodes[v] = {id};
          output_node[v] = id;
          break;
        }
        case Technique::kActiveReplication:
        case Technique::kPassiveReplication: {
          const bool passive =
              decision.technique == Technique::kPassiveReplication;
          const std::size_t replica_count = decision.replica_pes.size();
          const std::size_t active_count = passive ? 2 : replica_count;

          std::vector<std::uint32_t> replicas;
          replicas.reserve(replica_count);
          for (std::size_t r = 0; r < replica_count; ++r) {
            model::Task replica = task;
            replica.name = task.name + "#r" + std::to_string(r);
            replica.voting_overhead = 0;
            replica.detection_overhead = 0;
            HardenedTaskInfo node;
            node.role = r < active_count ? TaskRole::kActiveReplica
                                         : TaskRole::kPassiveReplica;
            node.origin = ref;
            node.triggers_critical_state = r >= active_count;
            replicas.push_back(emit(std::move(replica), node,
                                    decision.replica_pes[r]));
          }

          model::Task voter;
          voter.name = task.name + "#vote";
          voter.bcet = task.voting_overhead;
          voter.wcet = task.voting_overhead;
          HardenedTaskInfo voter_info;
          voter_info.role = TaskRole::kVoter;
          voter_info.origin = ref;
          const std::uint32_t voter_id =
              emit(std::move(voter), voter_info, decision.voter_pe);

          const std::uint64_t payload = vote_payload(graph, v);
          for (std::size_t r = 0; r < replica_count; ++r)
            channels.push_back({replicas[r], voter_id, payload});
          if (passive) {
            // Control edges: the standby runs only after both primaries
            // have produced results the voter can compare.
            channels.push_back({replicas[0], replicas[2], 0});
            channels.push_back({replicas[1], replicas[2], 0});
          }

          // Only always-running nodes consume the original inputs eagerly;
          // the standby also needs the input data to be able to run.
          input_nodes[v] = replicas;
          output_node[v] = voter_id;
          break;
        }
      }
    }

    // Re-create the original channels over the transformed nodes.
    for (const model::Channel& channel : graph.channels()) {
      for (std::uint32_t consumer : input_nodes[channel.dst]) {
        channels.push_back(
            {output_node[channel.src], consumer, channel.size_bytes});
      }
    }

    new_graphs.emplace_back(graph.name(), std::move(tasks),
                            std::move(channels), graph.period(),
                            graph.reliability_constraint(),
                            graph.service_value());
    info.insert(info.end(), graph_info.begin(), graph_info.end());
    new_mapping_flat.insert(new_mapping_flat.end(), graph_mapping.begin(),
                            graph_mapping.end());
  }

  model::ApplicationSet new_apps(std::move(new_graphs));
  model::Mapping mapping(new_apps);
  for (std::size_t i = 0; i < new_mapping_flat.size(); ++i)
    mapping.assign_flat(i, new_mapping_flat[i]);

  return HardenedSystem{std::move(new_apps), std::move(mapping),
                        std::move(info), std::move(graph_of_original)};
}

}  // namespace ftmc::hardening
