#include "ftmc/io/dot_export.hpp"

#include <ostream>
#include <sstream>

#include "ftmc/io/text_format.hpp"

namespace ftmc::io {

namespace {

/// Node identifier unique across graphs ("g0_t3").
std::string node_id(std::uint32_t graph, std::uint32_t task) {
  return "g" + std::to_string(graph) + "_t" + std::to_string(task);
}

void open_cluster(std::ostream& out, std::uint32_t index,
                  const model::TaskGraph& graph) {
  out << "  subgraph cluster_" << index << " {\n"
      << "    label=\"" << graph.name() << "\\nperiod "
      << format_time(graph.period());
  if (graph.droppable())
    out << "\\ndroppable, sv " << graph.service_value();
  else
    out << "\\nf_t " << graph.reliability_constraint();
  out << "\";\n";
  if (graph.droppable()) out << "    style=dashed;\n";
}

}  // namespace

void write_dot(std::ostream& out, const model::ApplicationSet& apps) {
  out << "digraph applications {\n  rankdir=LR;\n  node [shape=box];\n";
  for (std::uint32_t g = 0; g < apps.graph_count(); ++g) {
    const model::TaskGraph& graph = apps.graph(model::GraphId{g});
    open_cluster(out, g, graph);
    for (std::uint32_t v = 0; v < graph.task_count(); ++v) {
      const model::Task& task = graph.task(v);
      out << "    " << node_id(g, v) << " [label=\"" << task.name << "\\n["
          << format_time(task.bcet) << ", " << format_time(task.wcet)
          << "]\"];\n";
    }
    for (const model::Channel& channel : graph.channels()) {
      out << "    " << node_id(g, channel.src) << " -> "
          << node_id(g, channel.dst);
      if (channel.size_bytes != 0)
        out << " [label=\"" << channel.size_bytes << "B\"]";
      out << ";\n";
    }
    out << "  }\n";
  }
  out << "}\n";
}

void write_dot(std::ostream& out, const model::Architecture& arch,
               const hardening::HardenedSystem& system) {
  const model::ApplicationSet& apps = system.apps;
  out << "digraph hardened {\n  rankdir=LR;\n  node [shape=box];\n";
  for (std::uint32_t g = 0; g < apps.graph_count(); ++g) {
    const model::TaskGraph& graph = apps.graph(model::GraphId{g});
    open_cluster(out, g, graph);
    for (std::uint32_t v = 0; v < graph.task_count(); ++v) {
      const std::size_t flat = apps.flat_index({g, v});
      const hardening::HardenedTaskInfo& info = system.info[flat];
      const model::Task& task = graph.task(v);
      out << "    " << node_id(g, v) << " [label=\"" << task.name << "\\n@"
          << arch.processor(system.mapping.processor_of_flat(flat)).name;
      if (info.reexecutions > 0) out << "\\nreexec k=" << info.reexecutions;
      out << '"';
      switch (info.role) {
        case hardening::TaskRole::kOriginal:
          break;
        case hardening::TaskRole::kActiveReplica:
          out << ", style=filled, fillcolor=lightblue";
          break;
        case hardening::TaskRole::kPassiveReplica:
          out << ", style=\"filled,dashed\", fillcolor=lightyellow";
          break;
        case hardening::TaskRole::kVoter:
          out << ", shape=diamond, style=filled, fillcolor=lightgrey";
          break;
      }
      out << "];\n";
    }
    for (const model::Channel& channel : graph.channels()) {
      // Zero-size edges between replicas of one origin are the standby
      // control edges the transform adds; draw them dashed.
      const auto& src_info = system.info[apps.flat_index({g, channel.src})];
      const auto& dst_info = system.info[apps.flat_index({g, channel.dst})];
      const bool control_edge =
          channel.size_bytes == 0 &&
          dst_info.role == hardening::TaskRole::kPassiveReplica &&
          src_info.origin == dst_info.origin;
      out << "    " << node_id(g, channel.src) << " -> "
          << node_id(g, channel.dst);
      if (control_edge) out << " [style=dashed]";
      out << ";\n";
    }
    out << "  }\n";
  }
  out << "}\n";
}

std::string to_dot(const model::ApplicationSet& apps) {
  std::ostringstream out;
  write_dot(out, apps);
  return out.str();
}

std::string to_dot(const model::Architecture& arch,
                   const hardening::HardenedSystem& system) {
  std::ostringstream out;
  write_dot(out, arch, system);
  return out.str();
}

}  // namespace ftmc::io
