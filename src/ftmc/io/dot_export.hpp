// Graphviz (DOT) export of application sets and hardened systems, for
// inspecting benchmark structure and the replica/voter topologies the
// hardening transform produces (`ftmc dot system.ftmc | dot -Tsvg ...`).
#pragma once

#include <iosfwd>
#include <string>

#include "ftmc/hardening/hardening.hpp"
#include "ftmc/model/application_set.hpp"

namespace ftmc::io {

/// One cluster per application; droppable applications are dashed and
/// annotated with their service value, critical ones with f_t.
void write_dot(std::ostream& out, const model::ApplicationSet& apps);

/// Hardened view: nodes carry their role (replica/voter/standby) and PE;
/// standby activation (control) edges are dashed.
void write_dot(std::ostream& out, const model::Architecture& arch,
               const hardening::HardenedSystem& system);

std::string to_dot(const model::ApplicationSet& apps);
std::string to_dot(const model::Architecture& arch,
                   const hardening::HardenedSystem& system);

}  // namespace ftmc::io
