#include "ftmc/io/text_format.hpp"

#include <cctype>
#include <cstring>
#include <cmath>
#include <fstream>
#include <map>
#include <sstream>
#include <vector>

#include "ftmc/hardening/hardening.hpp"

namespace ftmc::io {

namespace {

struct Token {
  std::string text;
  int line;
};

/// Splits the input into words and punctuation ({, }, ->), dropping
/// #-comments, with 1-based line numbers.
std::vector<Token> tokenize(std::istream& in) {
  std::vector<Token> tokens;
  std::string line;
  int line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    const std::size_t comment = line.find('#');
    if (comment != std::string::npos) line.resize(comment);
    std::size_t i = 0;
    while (i < line.size()) {
      if (std::isspace(static_cast<unsigned char>(line[i]))) {
        ++i;
        continue;
      }
      if (line[i] == '{' || line[i] == '}') {
        tokens.push_back({std::string(1, line[i]), line_number});
        ++i;
        continue;
      }
      if (line[i] == '-' && i + 1 < line.size() && line[i + 1] == '>') {
        tokens.push_back({"->", line_number});
        i += 2;
        continue;
      }
      std::size_t j = i;
      while (j < line.size() &&
             !std::isspace(static_cast<unsigned char>(line[j])) &&
             line[j] != '{' && line[j] != '}' &&
             !(line[j] == '-' && j + 1 < line.size() && line[j + 1] == '>'))
        ++j;
      tokens.push_back({line.substr(i, j - i), line_number});
      i = j;
    }
  }
  return tokens;
}

class Cursor {
 public:
  explicit Cursor(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  bool done() const noexcept { return index_ >= tokens_.size(); }
  int line() const noexcept {
    if (done())
      return tokens_.empty() ? 1 : tokens_.back().line;
    return tokens_[index_].line;
  }
  const std::string& peek() const {
    if (done()) throw ParseError(line(), "unexpected end of input");
    return tokens_[index_].text;
  }
  std::string next() {
    if (done()) throw ParseError(line(), "unexpected end of input");
    return tokens_[index_++].text;
  }
  void expect(const std::string& text) {
    const int at = line();
    const std::string got = next();
    if (got != text)
      throw ParseError(at, "expected '" + text + "', got '" + got + "'");
  }
  bool accept(const std::string& text) {
    if (!done() && peek() == text) {
      ++index_;
      return true;
    }
    return false;
  }

 private:
  std::vector<Token> tokens_;
  std::size_t index_ = 0;
};

double parse_double(Cursor& cursor, const char* what) {
  const int at = cursor.line();
  const std::string text = cursor.next();
  try {
    std::size_t consumed = 0;
    const double value = std::stod(text, &consumed);
    if (consumed != text.size()) throw std::invalid_argument(text);
    return value;
  } catch (const std::exception&) {
    throw ParseError(at, std::string("expected a number for ") + what +
                             ", got '" + text + "'");
  }
}

long parse_int(Cursor& cursor, const char* what) {
  const int at = cursor.line();
  const std::string text = cursor.next();
  try {
    std::size_t consumed = 0;
    const long value = std::stol(text, &consumed);
    if (consumed != text.size()) throw std::invalid_argument(text);
    return value;
  } catch (const std::exception&) {
    throw ParseError(at, std::string("expected an integer for ") + what +
                             ", got '" + text + "'");
  }
}

/// Parses "250", "250us", "10ms", "1.5s" into microseconds.
model::Time parse_time(Cursor& cursor, const char* what) {
  const int at = cursor.line();
  const std::string text = cursor.next();
  double scale = 1.0;
  std::string digits = text;
  auto ends_with = [&](const char* suffix) {
    const std::size_t n = std::strlen(suffix);
    return digits.size() > n &&
           digits.compare(digits.size() - n, n, suffix) == 0;
  };
  if (ends_with("us")) {
    digits.resize(digits.size() - 2);
  } else if (ends_with("ms")) {
    scale = 1000.0;
    digits.resize(digits.size() - 2);
  } else if (ends_with("s")) {
    scale = 1'000'000.0;
    digits.resize(digits.size() - 1);
  }
  try {
    std::size_t consumed = 0;
    const double value = std::stod(digits, &consumed);
    if (consumed != digits.size()) throw std::invalid_argument(digits);
    return static_cast<model::Time>(std::llround(value * scale));
  } catch (const std::exception&) {
    throw ParseError(at, std::string("expected a time for ") + what +
                             " (e.g. 250us, 10ms, 1s), got '" + text + "'");
  }
}

model::Processor parse_processor(Cursor& cursor) {
  model::Processor pe;
  pe.name = cursor.next();
  cursor.expect("{");
  while (!cursor.accept("}")) {
    const int at = cursor.line();
    const std::string key = cursor.next();
    if (key == "type")
      pe.type = static_cast<std::uint32_t>(parse_int(cursor, "type"));
    else if (key == "static")
      pe.static_power = parse_double(cursor, "static");
    else if (key == "dynamic")
      pe.dynamic_power = parse_double(cursor, "dynamic");
    else if (key == "fault_rate")
      pe.fault_rate = parse_double(cursor, "fault_rate");
    else if (key == "speed")
      pe.speed_factor = parse_double(cursor, "speed");
    else
      throw ParseError(at, "unknown processor field '" + key + "'");
  }
  return pe;
}

model::Architecture parse_platform(Cursor& cursor) {
  cursor.expect("{");
  std::vector<model::Processor> processors;
  double bandwidth = 1.0;
  while (!cursor.accept("}")) {
    const int at = cursor.line();
    const std::string key = cursor.next();
    if (key == "bandwidth")
      bandwidth = parse_double(cursor, "bandwidth");
    else if (key == "processor")
      processors.push_back(parse_processor(cursor));
    else
      throw ParseError(at, "unknown platform entry '" + key + "'");
  }
  return model::Architecture(std::move(processors), bandwidth);
}

model::TaskGraph parse_application(Cursor& cursor) {
  const int name_line = cursor.line();
  const std::string name = cursor.next();
  cursor.expect("{");
  model::TaskGraphBuilder builder(name);
  std::map<std::string, std::uint32_t> task_ids;
  bool have_period = false, have_criticality = false;
  while (!cursor.accept("}")) {
    const int at = cursor.line();
    const std::string key = cursor.next();
    if (key == "period") {
      builder.period(parse_time(cursor, "period"));
      have_period = true;
    } else if (key == "reliability") {
      builder.reliability(parse_double(cursor, "reliability"));
      have_criticality = true;
    } else if (key == "droppable") {
      builder.droppable(parse_double(cursor, "service value"));
      have_criticality = true;
    } else if (key == "task") {
      const std::string task_name = cursor.next();
      if (task_ids.contains(task_name))
        throw ParseError(at, "duplicate task '" + task_name + "'");
      cursor.expect("{");
      model::Time bcet = 0, wcet = 0, ve = 0, dt = 0;
      while (!cursor.accept("}")) {
        const int field_at = cursor.line();
        const std::string field = cursor.next();
        if (field == "bcet")
          bcet = parse_time(cursor, "bcet");
        else if (field == "wcet")
          wcet = parse_time(cursor, "wcet");
        else if (field == "ve")
          ve = parse_time(cursor, "ve");
        else if (field == "dt")
          dt = parse_time(cursor, "dt");
        else
          throw ParseError(field_at, "unknown task field '" + field + "'");
      }
      task_ids[task_name] = builder.add_task(task_name, bcet, wcet, ve, dt);
    } else if (key == "channel") {
      const std::string src = cursor.next();
      cursor.expect("->");
      const std::string dst = cursor.next();
      std::uint64_t bytes = 0;
      if (cursor.accept("bytes"))
        bytes = static_cast<std::uint64_t>(parse_int(cursor, "bytes"));
      if (!task_ids.contains(src))
        throw ParseError(at, "channel source '" + src + "' not declared");
      if (!task_ids.contains(dst))
        throw ParseError(at, "channel target '" + dst + "' not declared");
      builder.connect(task_ids[src], task_ids[dst], bytes);
    } else {
      throw ParseError(at, "unknown application entry '" + key + "'");
    }
  }
  if (!have_period)
    throw ParseError(name_line, "application '" + name + "' needs a period");
  if (!have_criticality)
    throw ParseError(name_line, "application '" + name +
                                    "' needs 'reliability' or 'droppable'");
  return builder.build();
}

struct Resolver {
  const model::Architecture& arch;
  const model::ApplicationSet& apps;

  model::ProcessorId processor(const std::string& name, int line) const {
    for (std::uint32_t p = 0; p < arch.processor_count(); ++p)
      if (arch.processor(model::ProcessorId{p}).name == name)
        return model::ProcessorId{p};
    throw ParseError(line, "unknown processor '" + name + "'");
  }

  model::GraphId graph(const std::string& name, int line) const {
    try {
      return apps.find_graph(name);
    } catch (const std::out_of_range&) {
      throw ParseError(line, "unknown application '" + name + "'");
    }
  }

  /// "app.task" -> flat index.
  std::size_t task(const std::string& dotted, int line) const {
    const std::size_t dot = dotted.find('.');
    if (dot == std::string::npos)
      throw ParseError(line, "expected app.task, got '" + dotted + "'");
    const model::GraphId g = graph(dotted.substr(0, dot), line);
    const std::string task_name = dotted.substr(dot + 1);
    const model::TaskGraph& tg = apps.graph(g);
    for (std::uint32_t v = 0; v < tg.task_count(); ++v)
      if (tg.task(v).name == task_name)
        return apps.flat_index({g.value, v});
    throw ParseError(line, "unknown task '" + dotted + "'");
  }
};

core::Candidate parse_candidate(Cursor& cursor, const Resolver& resolver) {
  cursor.expect("{");
  core::Candidate candidate;
  candidate.allocation.assign(resolver.arch.processor_count(), false);
  candidate.drop.assign(resolver.apps.graph_count(), false);
  candidate.plan.resize(resolver.apps.task_count());
  candidate.base_mapping.assign(resolver.apps.task_count(),
                                model::ProcessorId{0});
  bool any_allocation = false;

  auto is_keyword = [](const std::string& word) {
    return word == "allocate" || word == "drop" || word == "map" ||
           word == "harden" || word == "}" || word == "voter";
  };

  while (!cursor.accept("}")) {
    const int at = cursor.line();
    const std::string key = cursor.next();
    if (key == "allocate") {
      any_allocation = true;
      while (!cursor.done() && !is_keyword(cursor.peek()))
        candidate.allocation[resolver.processor(cursor.next(), at).value] =
            true;
    } else if (key == "drop") {
      while (!cursor.done() && !is_keyword(cursor.peek()))
        candidate.drop[resolver.graph(cursor.next(), at).value] = true;
    } else if (key == "map") {
      const std::size_t flat = resolver.task(cursor.next(), at);
      candidate.base_mapping[flat] =
          resolver.processor(cursor.next(), at);
    } else if (key == "harden") {
      const std::size_t flat = resolver.task(cursor.next(), at);
      hardening::TaskHardening& decision = candidate.plan[flat];
      const std::string technique = cursor.next();
      if (technique == "reexec") {
        decision.technique = hardening::Technique::kReexecution;
        decision.reexecutions =
            static_cast<int>(parse_int(cursor, "re-execution count"));
      } else if (technique == "active" || technique == "passive") {
        decision.technique =
            technique == "active"
                ? hardening::Technique::kActiveReplication
                : hardening::Technique::kPassiveReplication;
        decision.replica_pes.clear();
        while (!cursor.done() && cursor.peek() != "voter")
          decision.replica_pes.push_back(
              resolver.processor(cursor.next(), at));
        cursor.expect("voter");
        decision.voter_pe = resolver.processor(cursor.next(), at);
      } else {
        throw ParseError(
            at, "unknown hardening '" + technique +
                    "' (expected reexec, active, or passive)");
      }
    } else {
      throw ParseError(at, "unknown candidate entry '" + key + "'");
    }
  }
  if (!any_allocation)
    candidate.allocation.assign(resolver.arch.processor_count(), true);
  return candidate;
}

}  // namespace

SystemSpec parse_system(std::istream& in) {
  Cursor cursor(tokenize(in));
  std::optional<model::Architecture> arch;
  std::vector<model::TaskGraph> graphs;
  bool candidate_pending = false;
  int candidate_line = 0;

  while (!cursor.done()) {
    const int at = cursor.line();
    const std::string key = cursor.next();
    if (key == "platform") {
      if (arch.has_value())
        throw ParseError(at, "duplicate platform block");
      arch = parse_platform(cursor);
    } else if (key == "application") {
      graphs.push_back(parse_application(cursor));
    } else if (key == "candidate") {
      // Needs the full system for name resolution; parse it last.
      candidate_pending = true;
      candidate_line = at;
      break;
    } else {
      throw ParseError(at, "unknown top-level entry '" + key + "'");
    }
  }
  if (!arch.has_value())
    throw ParseError(cursor.line(), "missing platform block");
  if (graphs.empty())
    throw ParseError(cursor.line(), "no application blocks");

  model::ApplicationSet apps(std::move(graphs));
  std::optional<core::Candidate> candidate;
  if (candidate_pending) {
    const Resolver resolver{*arch, apps};
    candidate = parse_candidate(cursor, resolver);
    if (!cursor.done())
      throw ParseError(cursor.line(),
                       "the candidate block must come last (got '" +
                           cursor.peek() + "' after it)");
    (void)candidate_line;
  }
  return SystemSpec{std::move(*arch), std::move(apps), std::move(candidate)};
}

SystemSpec parse_system_string(const std::string& text) {
  std::istringstream in(text);
  return parse_system(in);
}

SystemSpec parse_system_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open '" + path + "'");
  return parse_system(in);
}

std::string format_time(model::Time value) {
  if (value != 0 && value % 1'000'000 == 0)
    return std::to_string(value / 1'000'000) + "s";
  if (value != 0 && value % 1'000 == 0)
    return std::to_string(value / 1'000) + "ms";
  return std::to_string(value) + "us";
}

namespace {

std::string format_double(double value) {
  std::ostringstream out;
  out << value;
  return out.str();
}

}  // namespace

void write_system(std::ostream& out, const model::Architecture& arch,
                  const model::ApplicationSet& apps,
                  const core::Candidate* candidate) {
  out << "platform {\n  bandwidth " << format_double(arch.bandwidth())
      << "\n";
  for (const auto& pe : arch.processors()) {
    out << "  processor " << pe.name << " { type " << pe.type << " static "
        << format_double(pe.static_power) << " dynamic "
        << format_double(pe.dynamic_power) << " fault_rate "
        << format_double(pe.fault_rate) << " speed "
        << format_double(pe.speed_factor) << " }\n";
  }
  out << "}\n";

  for (std::uint32_t g = 0; g < apps.graph_count(); ++g) {
    const model::TaskGraph& graph = apps.graph(model::GraphId{g});
    out << "application " << graph.name() << " {\n  period "
        << format_time(graph.period()) << "\n";
    if (graph.droppable())
      out << "  droppable " << format_double(graph.service_value()) << "\n";
    else
      out << "  reliability " << format_double(graph.reliability_constraint())
          << "\n";
    for (std::uint32_t v = 0; v < graph.task_count(); ++v) {
      const model::Task& task = graph.task(v);
      out << "  task " << task.name << " { bcet " << format_time(task.bcet)
          << " wcet " << format_time(task.wcet);
      if (task.voting_overhead != 0)
        out << " ve " << format_time(task.voting_overhead);
      if (task.detection_overhead != 0)
        out << " dt " << format_time(task.detection_overhead);
      out << " }\n";
    }
    for (const model::Channel& channel : graph.channels()) {
      out << "  channel " << graph.task(channel.src).name << " -> "
          << graph.task(channel.dst).name;
      if (channel.size_bytes != 0) out << " bytes " << channel.size_bytes;
      out << "\n";
    }
    out << "}\n";
  }

  if (candidate == nullptr) return;
  out << "candidate {\n  allocate";
  for (std::uint32_t p = 0; p < arch.processor_count(); ++p)
    if (candidate->allocation[p])
      out << ' ' << arch.processor(model::ProcessorId{p}).name;
  out << "\n";
  bool any_drop = false;
  for (std::uint32_t g = 0; g < apps.graph_count(); ++g)
    any_drop |= candidate->drop[g];
  if (any_drop) {
    out << "  drop";
    for (std::uint32_t g = 0; g < apps.graph_count(); ++g)
      if (candidate->drop[g])
        out << ' ' << apps.graph(model::GraphId{g}).name();
    out << "\n";
  }
  auto pe_name = [&](model::ProcessorId pe) {
    return arch.processor(pe).name;
  };
  for (std::size_t i = 0; i < apps.task_count(); ++i) {
    const model::TaskRef ref = apps.task_ref(i);
    const std::string dotted =
        apps.graph(ref.graph_id()).name() + "." + apps.task(ref).name;
    out << "  map " << dotted << ' '
        << pe_name(candidate->base_mapping[i]) << "\n";
    const hardening::TaskHardening& decision = candidate->plan[i];
    switch (decision.technique) {
      case hardening::Technique::kNone:
        break;
      case hardening::Technique::kReexecution:
        out << "  harden " << dotted << " reexec "
            << decision.reexecutions << "\n";
        break;
      case hardening::Technique::kActiveReplication:
      case hardening::Technique::kPassiveReplication: {
        out << "  harden " << dotted << ' '
            << (decision.technique ==
                        hardening::Technique::kActiveReplication
                    ? "active"
                    : "passive");
        for (const model::ProcessorId pe : decision.replica_pes)
          out << ' ' << pe_name(pe);
        out << " voter " << pe_name(decision.voter_pe) << "\n";
        break;
      }
    }
  }
  out << "}\n";
}

std::string to_text(const model::Architecture& arch,
                    const model::ApplicationSet& apps,
                    const core::Candidate* candidate) {
  std::ostringstream out;
  write_system(out, arch, apps, candidate);
  return out.str();
}

}  // namespace ftmc::io
