// Human-writable text format for platforms, application sets, and design
// candidates — the interchange format of the `ftmc` CLI tool.
//
//   # comment
//   platform {
//     bandwidth 2.0                    # bytes per microsecond
//     processor pe0 { type 0 static 50 dynamic 150 fault_rate 1e-8 speed 1.0 }
//     processor pe1 { static 50 dynamic 150 }
//   }
//   application control {
//     period 200ms                     # 250us / 10ms / 1s suffixes
//     reliability 1e-12                # or: droppable 2.0
//     task sense { bcet 10ms wcet 20ms ve 3ms dt 2ms }
//     task act   { bcet 15ms wcet 30ms }
//     channel sense -> act bytes 512
//   }
//   candidate {
//     allocate pe0 pe1
//     drop logger
//     map control.sense pe0
//     harden control.sense reexec 2
//     harden control.act active pe0 pe1 voter pe0
//     harden video.encode passive pe0 pe1 pe2 voter pe1
//   }
//
// Defaults: every processor field is optional (type 0, powers 0, fault rate
// 0, speed 1); task `ve`/`dt` default to 0; unmapped tasks go to the first
// processor; a missing candidate block yields no candidate.
//
// Naming restriction: processor and application names must not collide with
// the candidate-block keywords (allocate, drop, map, harden, voter) — the
// list-valued entries end at the next keyword.
#pragma once

#include <iosfwd>
#include <optional>
#include <stdexcept>
#include <string>

#include "ftmc/core/evaluator.hpp"
#include "ftmc/model/application_set.hpp"
#include "ftmc/model/architecture.hpp"

namespace ftmc::io {

/// Parse failure with 1-based line information.
class ParseError : public std::runtime_error {
 public:
  ParseError(int line, const std::string& message)
      : std::runtime_error("line " + std::to_string(line) + ": " + message),
        line_(line) {}
  int line() const noexcept { return line_; }

 private:
  int line_;
};

/// A parsed system description.
struct SystemSpec {
  model::Architecture arch;
  model::ApplicationSet apps;
  std::optional<core::Candidate> candidate;
};

/// Parses the text format; throws ParseError on malformed input and
/// std::invalid_argument when the described system violates model
/// invariants (cyclic graphs, bcet > wcet, ...).
SystemSpec parse_system(std::istream& in);
SystemSpec parse_system_string(const std::string& text);
SystemSpec parse_system_file(const std::string& path);

/// Emits a system (and optional candidate) in the same format; the output
/// re-parses to an equivalent system.
void write_system(std::ostream& out, const model::Architecture& arch,
                  const model::ApplicationSet& apps,
                  const core::Candidate* candidate = nullptr);
std::string to_text(const model::Architecture& arch,
                    const model::ApplicationSet& apps,
                    const core::Candidate* candidate = nullptr);

/// Formats a time value using the shortest exact unit (us/ms/s).
std::string format_time(model::Time value);

}  // namespace ftmc::io
