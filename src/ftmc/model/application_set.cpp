#include "ftmc/model/application_set.hpp"

#include <stdexcept>
#include <unordered_set>

namespace ftmc::model {

ApplicationSet::ApplicationSet(std::vector<TaskGraph> graphs)
    : graphs_(std::move(graphs)) {
  if (graphs_.empty())
    throw std::invalid_argument("ApplicationSet: no task graphs");
  std::unordered_set<std::string> names;
  std::vector<Time> periods;
  periods.reserve(graphs_.size());
  graph_offset_.reserve(graphs_.size());
  for (std::uint32_t g = 0; g < graphs_.size(); ++g) {
    const TaskGraph& graph = graphs_[g];
    if (!names.insert(graph.name()).second)
      throw std::invalid_argument("ApplicationSet: duplicate graph name '" +
                                  graph.name() + "'");
    graph_offset_.push_back(flat_.size());
    for (std::uint32_t v = 0; v < graph.task_count(); ++v)
      flat_.push_back(TaskRef{g, v});
    periods.push_back(graph.period());
    if (graph.droppable())
      droppable_.push_back(GraphId{g});
    else
      critical_.push_back(GraphId{g});
  }
  hyperperiod_ = model::hyperperiod(periods);
}

std::size_t ApplicationSet::flat_index(TaskRef ref) const {
  if (ref.graph >= graphs_.size())
    throw std::out_of_range("ApplicationSet::flat_index: bad graph");
  if (ref.task >= graphs_[ref.graph].task_count())
    throw std::out_of_range("ApplicationSet::flat_index: bad task");
  return graph_offset_[ref.graph] + ref.task;
}

GraphId ApplicationSet::find_graph(const std::string& name) const {
  for (std::uint32_t g = 0; g < graphs_.size(); ++g)
    if (graphs_[g].name() == name) return GraphId{g};
  throw std::out_of_range("ApplicationSet::find_graph: no graph named '" +
                          name + "'");
}

}  // namespace ftmc::model
