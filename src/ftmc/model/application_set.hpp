// The application set T: all task graphs sharing the platform, with global
// task indexing used by mappings, analyses, and the simulator.
#pragma once

#include <string>
#include <vector>

#include "ftmc/model/ids.hpp"
#include "ftmc/model/task_graph.hpp"
#include "ftmc/model/time.hpp"

namespace ftmc::model {

/// Immutable collection of task graphs with flat task enumeration.
class ApplicationSet {
 public:
  explicit ApplicationSet(std::vector<TaskGraph> graphs);

  std::size_t graph_count() const noexcept { return graphs_.size(); }
  const TaskGraph& graph(GraphId id) const { return graphs_.at(id.value); }
  const std::vector<TaskGraph>& graphs() const noexcept { return graphs_; }

  /// Total task count across all graphs.
  std::size_t task_count() const noexcept { return flat_.size(); }

  /// Flat index <-> (graph, task) translation.  Flat order is graph-major,
  /// task-minor, and stable across runs.
  TaskRef task_ref(std::size_t flat_index) const { return flat_.at(flat_index); }
  std::size_t flat_index(TaskRef ref) const;
  const std::vector<TaskRef>& all_tasks() const noexcept { return flat_; }

  const Task& task(TaskRef ref) const {
    return graph(ref.graph_id()).task(ref.task);
  }

  /// LCM of all graph periods.
  Time hyperperiod() const noexcept { return hyperperiod_; }

  /// Graph ids of droppable / non-droppable applications.
  const std::vector<GraphId>& droppable_graphs() const noexcept {
    return droppable_;
  }
  const std::vector<GraphId>& critical_graphs() const noexcept {
    return critical_;
  }

  /// Looks a graph up by name; throws if absent.
  GraphId find_graph(const std::string& name) const;

 private:
  std::vector<TaskGraph> graphs_;
  std::vector<TaskRef> flat_;
  std::vector<std::size_t> graph_offset_;  // flat index of each graph's task 0
  Time hyperperiod_ = 1;
  std::vector<GraphId> droppable_;
  std::vector<GraphId> critical_;
};

}  // namespace ftmc::model
