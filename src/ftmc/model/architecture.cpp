#include "ftmc/model/architecture.hpp"

#include <cmath>
#include <unordered_set>

namespace ftmc::model {

Architecture::Architecture(std::vector<Processor> processors,
                           double bandwidth_bytes_per_us)
    : processors_(std::move(processors)), bandwidth_(bandwidth_bytes_per_us) {
  if (processors_.empty())
    throw std::invalid_argument("Architecture: no processors");
  if (!(bandwidth_ > 0.0))
    throw std::invalid_argument("Architecture: bandwidth must be positive");
  std::unordered_set<std::string> names;
  for (const auto& processor : processors_) {
    if (processor.name.empty())
      throw std::invalid_argument("Architecture: processor without a name");
    if (!names.insert(processor.name).second)
      throw std::invalid_argument("Architecture: duplicate processor name '" +
                                  processor.name + "'");
    if (processor.static_power < 0.0 || processor.dynamic_power < 0.0)
      throw std::invalid_argument("Architecture: negative power for '" +
                                  processor.name + "'");
    if (processor.fault_rate < 0.0)
      throw std::invalid_argument("Architecture: negative fault rate for '" +
                                  processor.name + "'");
    if (!(processor.speed_factor > 0.0))
      throw std::invalid_argument(
          "Architecture: non-positive speed factor for '" + processor.name +
          "'");
  }
}

Time Architecture::transfer_time(std::uint64_t bytes) const noexcept {
  if (bytes == 0) return 0;
  return static_cast<Time>(
      std::ceil(static_cast<double>(bytes) / bandwidth_));
}

ArchitectureBuilder& ArchitectureBuilder::add_processor(Processor processor) {
  processors_.push_back(std::move(processor));
  return *this;
}

ArchitectureBuilder& ArchitectureBuilder::add_processors(
    const Processor& prototype, std::size_t count) {
  for (std::size_t i = 0; i < count; ++i) {
    Processor copy = prototype;
    copy.name.append("_").append(std::to_string(i));
    processors_.push_back(std::move(copy));
  }
  return *this;
}

ArchitectureBuilder& ArchitectureBuilder::bandwidth(double bytes_per_us) {
  bandwidth_ = bytes_per_us;
  return *this;
}

Architecture ArchitectureBuilder::build() const {
  return Architecture(processors_, bandwidth_);
}

}  // namespace ftmc::model
