// MPSoC architecture model: A := (P, nw).
//
// A set of (heterogeneous) processors connected by an on-chip fabric.  Fabric
// faults are assumed transparent (protected at link level, Section 2.1), so
// the fabric is characterized only by its bandwidth.  Each processor carries
// leakage/dynamic power and a constant transient-fault rate per time unit.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "ftmc/model/ids.hpp"
#include "ftmc/model/time.hpp"

namespace ftmc::model {

/// One processing element of the MPSoC.
struct Processor {
  std::string name;
  /// Processor type tag (heterogeneity: tasks may run at different speeds on
  /// different types; a speed factor scales task execution times).
  std::uint32_t type = 0;
  /// Leakage power drawn whenever the processor is allocated [mW].
  double static_power = 0.0;
  /// Dynamic power at 100% utilization [mW]; scaled by average utilization.
  double dynamic_power = 0.0;
  /// Constant transient-fault rate per microsecond (lambda_p).
  double fault_rate = 0.0;
  /// Execution-time multiplier for this PE relative to nominal WCET/BCET
  /// annotations (1.0 = nominal; heterogeneous PEs deviate).
  double speed_factor = 1.0;
};

/// The platform: processors plus a shared communication fabric.
class Architecture {
 public:
  /// @param processors  at least one PE; names must be unique and non-empty.
  /// @param bandwidth_bytes_per_us  fabric bandwidth (bw_nw); > 0.
  Architecture(std::vector<Processor> processors,
               double bandwidth_bytes_per_us);

  std::size_t processor_count() const noexcept { return processors_.size(); }
  const Processor& processor(ProcessorId id) const {
    if (id.value >= processors_.size())
      throw std::out_of_range("Architecture::processor: bad id");
    return processors_[id.value];
  }
  const std::vector<Processor>& processors() const noexcept {
    return processors_;
  }

  double bandwidth() const noexcept { return bandwidth_; }

  /// Fabric latency for transferring `bytes` between two distinct PEs;
  /// zero for intra-PE communication (handled by callers).
  Time transfer_time(std::uint64_t bytes) const noexcept;

 private:
  std::vector<Processor> processors_;
  double bandwidth_;
};

/// Builder for fluent platform construction in examples and benchmarks.
class ArchitectureBuilder {
 public:
  ArchitectureBuilder& add_processor(Processor processor);
  /// Adds `count` identical PEs suffixed _0.._{count-1}.
  ArchitectureBuilder& add_processors(const Processor& prototype,
                                      std::size_t count);
  ArchitectureBuilder& bandwidth(double bytes_per_us);
  Architecture build() const;

 private:
  std::vector<Processor> processors_;
  double bandwidth_ = 1000.0;  // 1 GB/s default
};

}  // namespace ftmc::model
