// Strongly-typed indices into the system model.
//
// A task is globally identified by (graph index, task index within graph);
// processors by their index in the Architecture.  Keeping these as distinct
// types prevents the classic index-mixup bugs in mapping/scheduling code.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>

namespace ftmc::model {

/// Index of a processor within an Architecture.
struct ProcessorId {
  std::uint32_t value = 0;
  auto operator<=>(const ProcessorId&) const = default;
};

/// Index of a task graph within an ApplicationSet.
struct GraphId {
  std::uint32_t value = 0;
  auto operator<=>(const GraphId&) const = default;
};

/// Global task reference: graph index + task index within that graph.
struct TaskRef {
  std::uint32_t graph = 0;
  std::uint32_t task = 0;
  auto operator<=>(const TaskRef&) const = default;
  GraphId graph_id() const noexcept { return GraphId{graph}; }
};

}  // namespace ftmc::model

template <>
struct std::hash<ftmc::model::ProcessorId> {
  std::size_t operator()(const ftmc::model::ProcessorId& id) const noexcept {
    return std::hash<std::uint32_t>{}(id.value);
  }
};

template <>
struct std::hash<ftmc::model::TaskRef> {
  std::size_t operator()(const ftmc::model::TaskRef& ref) const noexcept {
    return (static_cast<std::size_t>(ref.graph) << 32) ^ ref.task;
  }
};
