#include "ftmc/model/mapping.hpp"

namespace ftmc::model {

std::vector<TaskRef> Mapping::tasks_on(const ApplicationSet& apps,
                                       ProcessorId processor) const {
  std::vector<TaskRef> result;
  for (std::size_t i = 0; i < assignment_.size(); ++i)
    if (assignment_[i] == processor) result.push_back(apps.task_ref(i));
  return result;
}

bool Mapping::within(std::size_t processor_count) const noexcept {
  for (ProcessorId id : assignment_)
    if (id.value >= processor_count) return false;
  return true;
}

}  // namespace ftmc::model
