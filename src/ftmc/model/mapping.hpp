// Task-to-processor mapping (map : V -> P, Section 2.3).
//
// A Mapping is a plain value shaped after a specific ApplicationSet (one PE
// id per task, in the set's flat order).  Hardening transforms produce a
// *new* application set T', so mappings are always paired with the set they
// were built for; translation between TaskRef and flat index is done through
// that set, never cached inside the mapping.
#pragma once

#include <vector>

#include "ftmc/model/application_set.hpp"
#include "ftmc/model/architecture.hpp"
#include "ftmc/model/ids.hpp"

namespace ftmc::model {

/// Dense task -> processor assignment.
class Mapping {
 public:
  /// All tasks of `apps` initially mapped to processor 0.
  explicit Mapping(const ApplicationSet& apps)
      : assignment_(apps.task_count(), ProcessorId{0}) {}

  void assign(const ApplicationSet& apps, TaskRef task, ProcessorId processor) {
    assignment_.at(apps.flat_index(task)) = processor;
  }
  void assign_flat(std::size_t flat_index, ProcessorId processor) {
    assignment_.at(flat_index) = processor;
  }

  ProcessorId processor_of(const ApplicationSet& apps, TaskRef task) const {
    return assignment_.at(apps.flat_index(task));
  }
  ProcessorId processor_of_flat(std::size_t flat_index) const {
    return assignment_.at(flat_index);
  }

  std::size_t task_count() const noexcept { return assignment_.size(); }

  /// Flat-order view (aligned with ApplicationSet::all_tasks()).
  const std::vector<ProcessorId>& flat() const noexcept { return assignment_; }

  /// Tasks mapped to a given processor, in flat order.
  std::vector<TaskRef> tasks_on(const ApplicationSet& apps,
                                ProcessorId processor) const;

  /// True if every assignment is below `processor_count`.
  bool within(std::size_t processor_count) const noexcept;

  bool operator==(const Mapping&) const = default;

 private:
  std::vector<ProcessorId> assignment_;
};

}  // namespace ftmc::model
