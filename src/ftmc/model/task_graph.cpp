#include "ftmc/model/task_graph.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>
#include <unordered_set>

namespace ftmc::model {

TaskGraph::TaskGraph(std::string name, std::vector<Task> tasks,
                     std::vector<Channel> channels, Time period,
                     double reliability_constraint, double service_value)
    : name_(std::move(name)),
      tasks_(std::move(tasks)),
      channels_(std::move(channels)),
      period_(period),
      reliability_(reliability_constraint),
      service_(service_value) {
  if (name_.empty()) throw std::invalid_argument("TaskGraph: empty name");
  if (tasks_.empty())
    throw std::invalid_argument("TaskGraph '" + name_ + "': no tasks");
  if (period_ <= 0)
    throw std::invalid_argument("TaskGraph '" + name_ +
                                "': period must be positive");
  std::unordered_set<std::string> task_names;
  for (const auto& task : tasks_) {
    if (task.name.empty())
      throw std::invalid_argument("TaskGraph '" + name_ +
                                  "': task without a name");
    if (!task_names.insert(task.name).second)
      throw std::invalid_argument("TaskGraph '" + name_ +
                                  "': duplicate task name '" + task.name +
                                  "'");
    if (task.bcet < 0 || task.wcet < task.bcet)
      throw std::invalid_argument("TaskGraph '" + name_ + "': task '" +
                                  task.name +
                                  "' violates 0 <= bcet <= wcet");
    if (task.voting_overhead < 0 || task.detection_overhead < 0)
      throw std::invalid_argument("TaskGraph '" + name_ + "': task '" +
                                  task.name + "' has negative overhead");
  }
  for (const auto& channel : channels_) {
    if (channel.src >= tasks_.size() || channel.dst >= tasks_.size())
      throw std::invalid_argument("TaskGraph '" + name_ +
                                  "': channel endpoint out of range");
    if (channel.src == channel.dst)
      throw std::invalid_argument("TaskGraph '" + name_ +
                                  "': self-loop channel");
  }
  const bool droppable_marker = reliability_ == kDroppableReliability;
  if (droppable_marker) {
    if (!(service_ >= 0.0) || service_ == kNonDroppableService)
      throw std::invalid_argument(
          "TaskGraph '" + name_ +
          "': droppable graph needs a finite, non-negative service value");
  } else {
    if (!(reliability_ > 0.0 && reliability_ <= 1.0))
      throw std::invalid_argument(
          "TaskGraph '" + name_ +
          "': reliability constraint must be in (0,1] or -1 (droppable)");
    if (service_ != kNonDroppableService)
      throw std::invalid_argument("TaskGraph '" + name_ +
                                  "': non-droppable graph must have sv = inf");
  }
  build_adjacency();
  check_acyclic_and_order();
}

void TaskGraph::build_adjacency() {
  in_channels_.assign(tasks_.size(), {});
  out_channels_.assign(tasks_.size(), {});
  for (std::uint32_t c = 0; c < channels_.size(); ++c) {
    out_channels_[channels_[c].src].push_back(c);
    in_channels_[channels_[c].dst].push_back(c);
  }
  sources_.clear();
  sinks_.clear();
  for (std::uint32_t v = 0; v < tasks_.size(); ++v) {
    if (in_channels_[v].empty()) sources_.push_back(v);
    if (out_channels_[v].empty()) sinks_.push_back(v);
  }
}

void TaskGraph::check_acyclic_and_order() {
  // Kahn's algorithm with a deterministic (index-ordered) ready queue.
  std::vector<std::uint32_t> indegree(tasks_.size(), 0);
  for (const auto& channel : channels_) ++indegree[channel.dst];
  std::priority_queue<std::uint32_t, std::vector<std::uint32_t>,
                      std::greater<>> ready;
  for (std::uint32_t v = 0; v < tasks_.size(); ++v)
    if (indegree[v] == 0) ready.push(v);
  topo_order_.clear();
  topo_order_.reserve(tasks_.size());
  while (!ready.empty()) {
    const std::uint32_t v = ready.top();
    ready.pop();
    topo_order_.push_back(v);
    for (std::uint32_t c : out_channels_[v]) {
      const std::uint32_t w = channels_[c].dst;
      if (--indegree[w] == 0) ready.push(w);
    }
  }
  if (topo_order_.size() != tasks_.size())
    throw std::invalid_argument("TaskGraph '" + name_ + "': graph is cyclic");
}

std::vector<std::uint32_t> TaskGraph::predecessors(std::uint32_t task) const {
  std::vector<std::uint32_t> result;
  for (std::uint32_t c : in_channels(task)) result.push_back(channels_[c].src);
  std::sort(result.begin(), result.end());
  result.erase(std::unique(result.begin(), result.end()), result.end());
  return result;
}

std::vector<std::uint32_t> TaskGraph::successors(std::uint32_t task) const {
  std::vector<std::uint32_t> result;
  for (std::uint32_t c : out_channels(task))
    result.push_back(channels_[c].dst);
  std::sort(result.begin(), result.end());
  result.erase(std::unique(result.begin(), result.end()), result.end());
  return result;
}

Time TaskGraph::total_wcet() const noexcept {
  Time sum = 0;
  for (const auto& task : tasks_) sum += task.wcet;
  return sum;
}

std::uint32_t TaskGraphBuilder::add_task(Task task) {
  tasks_.push_back(std::move(task));
  return static_cast<std::uint32_t>(tasks_.size() - 1);
}

std::uint32_t TaskGraphBuilder::add_task(std::string name, Time bcet,
                                         Time wcet, Time voting_overhead,
                                         Time detection_overhead) {
  return add_task(Task{std::move(name), bcet, wcet, voting_overhead,
                       detection_overhead});
}

TaskGraphBuilder& TaskGraphBuilder::connect(std::uint32_t src,
                                            std::uint32_t dst,
                                            std::uint64_t size_bytes) {
  channels_.push_back(Channel{src, dst, size_bytes});
  return *this;
}

TaskGraphBuilder& TaskGraphBuilder::period(Time period) {
  period_ = period;
  return *this;
}

TaskGraphBuilder& TaskGraphBuilder::reliability(double f) {
  reliability_ = f;
  service_ = kNonDroppableService;
  criticality_set_ = true;
  return *this;
}

TaskGraphBuilder& TaskGraphBuilder::droppable(double service_value) {
  reliability_ = kDroppableReliability;
  service_ = service_value;
  criticality_set_ = true;
  return *this;
}

TaskGraph TaskGraphBuilder::build() const {
  if (!criticality_set_)
    throw std::logic_error("TaskGraphBuilder '" + name_ +
                           "': call reliability() or droppable() first");
  return TaskGraph(name_, tasks_, channels_, period_, reliability_, service_);
}

}  // namespace ftmc::model
