// Application model: periodic task graphs with mixed criticality.
//
// Each application t = (V_t, E_t, pr_t, f_t, sv_t) is a DAG of tasks released
// every pr_t microseconds.  Non-droppable applications carry a reliability
// constraint f_t in (0,1] (maximum allowed failures per time unit); droppable
// applications have f_t = -1 and instead carry a finite service value sv_t
// that the QoS objective sums over non-dropped applications (Section 2.1).
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "ftmc/model/ids.hpp"
#include "ftmc/model/time.hpp"

namespace ftmc::model {

/// A task v = (bcet, wcet, ve, dt).  Times are nominal (type-1.0 PE) and
/// scaled by Processor::speed_factor at analysis/simulation time.
struct Task {
  std::string name;
  Time bcet = 0;  ///< best-case execution time
  Time wcet = 0;  ///< worst-case execution time
  Time voting_overhead = 0;    ///< ve: cost of the majority voter
  Time detection_overhead = 0; ///< dt: detect + checkpoint + rollback cost
};

/// A channel e = (src, dst) with payload size s_e in bytes.
struct Channel {
  std::uint32_t src = 0;
  std::uint32_t dst = 0;
  std::uint64_t size_bytes = 0;
};

/// Sentinel service value of non-droppable applications (sv = infinity).
inline constexpr double kNonDroppableService =
    std::numeric_limits<double>::infinity();

/// Sentinel reliability constraint of droppable applications (f_t = -1).
inline constexpr double kDroppableReliability = -1.0;

/// Immutable-after-build periodic task DAG.
class TaskGraph {
 public:
  /// Validates: non-empty, acyclic, channel endpoints in range, bcet <= wcet,
  /// non-negative overheads, positive period, and criticality consistency
  /// (droppable <=> f_t == -1 <=> finite sv).
  TaskGraph(std::string name, std::vector<Task> tasks,
            std::vector<Channel> channels, Time period,
            double reliability_constraint, double service_value);

  const std::string& name() const noexcept { return name_; }
  Time period() const noexcept { return period_; }
  /// Implicit deadline: one period.
  Time deadline() const noexcept { return period_; }

  /// f_t: maximum allowed failures per microsecond; -1 for droppable graphs.
  double reliability_constraint() const noexcept { return reliability_; }
  /// sv_t: finite for droppable graphs, +infinity otherwise.
  double service_value() const noexcept { return service_; }
  bool droppable() const noexcept {
    return reliability_ == kDroppableReliability;
  }

  std::size_t task_count() const noexcept { return tasks_.size(); }
  const Task& task(std::uint32_t index) const { return tasks_.at(index); }
  const std::vector<Task>& tasks() const noexcept { return tasks_; }
  const std::vector<Channel>& channels() const noexcept { return channels_; }

  /// Indices of channels entering / leaving a task.
  const std::vector<std::uint32_t>& in_channels(std::uint32_t task) const {
    return in_channels_.at(task);
  }
  const std::vector<std::uint32_t>& out_channels(std::uint32_t task) const {
    return out_channels_.at(task);
  }

  /// Predecessor / successor task indices.
  std::vector<std::uint32_t> predecessors(std::uint32_t task) const;
  std::vector<std::uint32_t> successors(std::uint32_t task) const;

  /// Tasks with no incoming / outgoing channels.
  const std::vector<std::uint32_t>& sources() const noexcept {
    return sources_;
  }
  const std::vector<std::uint32_t>& sinks() const noexcept { return sinks_; }

  /// A topological ordering of task indices (deterministic).
  const std::vector<std::uint32_t>& topological_order() const noexcept {
    return topo_order_;
  }

  /// Sum of task WCETs (a crude lower bound on sequential makespan).
  Time total_wcet() const noexcept;

 private:
  void build_adjacency();
  void check_acyclic_and_order();

  std::string name_;
  std::vector<Task> tasks_;
  std::vector<Channel> channels_;
  Time period_;
  double reliability_;
  double service_;

  std::vector<std::vector<std::uint32_t>> in_channels_;
  std::vector<std::vector<std::uint32_t>> out_channels_;
  std::vector<std::uint32_t> sources_;
  std::vector<std::uint32_t> sinks_;
  std::vector<std::uint32_t> topo_order_;
};

/// Fluent builder for examples / benchmark generators.
class TaskGraphBuilder {
 public:
  explicit TaskGraphBuilder(std::string name) : name_(std::move(name)) {}

  /// Adds a task and returns its index.
  std::uint32_t add_task(Task task);
  std::uint32_t add_task(std::string name, Time bcet, Time wcet,
                         Time voting_overhead = 0,
                         Time detection_overhead = 0);
  TaskGraphBuilder& connect(std::uint32_t src, std::uint32_t dst,
                            std::uint64_t size_bytes = 0);
  TaskGraphBuilder& period(Time period);
  /// Marks the graph non-droppable with failure bound f per microsecond.
  TaskGraphBuilder& reliability(double f);
  /// Marks the graph droppable with the given service value.
  TaskGraphBuilder& droppable(double service_value);

  TaskGraph build() const;

 private:
  std::string name_;
  std::vector<Task> tasks_;
  std::vector<Channel> channels_;
  Time period_ = 0;
  double reliability_ = kDroppableReliability;
  double service_ = kNonDroppableService;
  bool criticality_set_ = false;
};

}  // namespace ftmc::model
