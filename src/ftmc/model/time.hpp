// Time base of the whole library.
//
// All analyses, simulations, and models operate on integer microseconds so
// that fixed-point response-time iteration terminates exactly and simulator
// event ordering is deterministic.  The paper reports milliseconds; benches
// convert on output.
#pragma once

#include <cstdint>
#include <numeric>
#include <span>
#include <stdexcept>

namespace ftmc::model {

/// Integer time in microseconds.
using Time = std::int64_t;

inline constexpr Time kMicrosecond = 1;
inline constexpr Time kMillisecond = 1000 * kMicrosecond;
inline constexpr Time kSecond = 1000 * kMillisecond;

/// Converts an analysis/simulation time to milliseconds for reporting.
constexpr double to_milliseconds(Time t) noexcept {
  return static_cast<double>(t) / static_cast<double>(kMillisecond);
}

/// Least common multiple of a set of periods (the hyperperiod).
/// Throws on empty input or non-positive periods.
inline Time hyperperiod(std::span<const Time> periods) {
  if (periods.empty())
    throw std::invalid_argument("hyperperiod: no periods");
  Time result = 1;
  for (Time period : periods) {
    if (period <= 0)
      throw std::invalid_argument("hyperperiod: non-positive period");
    result = std::lcm(result, period);
  }
  return result;
}

}  // namespace ftmc::model
