#include "ftmc/obs/export.hpp"

#include <fstream>
#include <stdexcept>

#include "ftmc/obs/trace.hpp"

namespace ftmc::obs {

Json metrics_to_json(const MetricsSnapshot& snapshot) {
  Json counters = Json::object();
  Json gauges = Json::object();
  Json histograms = Json::object();
  for (const MetricValue& metric : snapshot.metrics) {
    switch (metric.kind) {
      case MetricKind::kCounter:
        counters.set(metric.name, Json::uinteger(metric.value));
        break;
      case MetricKind::kGauge:
        gauges.set(metric.name, Json::uinteger(metric.value));
        break;
      case MetricKind::kHistogram: {
        std::size_t used = metric.buckets.size();
        while (used > 0 && metric.buckets[used - 1] == 0) --used;
        Json buckets = Json::array();
        for (std::size_t b = 0; b < used; ++b)
          buckets.push(Json::uinteger(metric.buckets[b]));
        histograms.set(metric.name,
                       Json::object()
                           .set("count", Json::uinteger(metric.value))
                           .set("sum", Json::uinteger(metric.sum))
                           .set("buckets", std::move(buckets)));
        break;
      }
    }
  }
  return Json::object()
      .set("schema", "ftmc.metrics.v1")
      .set("counters", std::move(counters))
      .set("gauges", std::move(gauges))
      .set("histograms", std::move(histograms));
}

void write_metrics_json(std::ostream& out) {
  metrics_to_json(snapshot()).write(out);
  out << '\n';
}

void export_metrics_file(const std::string& path) {
  if (path.empty()) return;
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write metrics to '" + path + "'");
  write_metrics_json(out);
}

void export_chrome_trace_file(const std::string& path) {
  if (path.empty()) return;
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write trace to '" + path + "'");
  write_chrome_trace(out);
}

}  // namespace ftmc::obs
