#include "ftmc/obs/export.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "ftmc/obs/trace.hpp"

namespace ftmc::obs {

Json metrics_to_json(const MetricsSnapshot& snapshot) {
  Json counters = Json::object();
  Json gauges = Json::object();
  Json histograms = Json::object();
  for (const MetricValue& metric : snapshot.metrics) {
    switch (metric.kind) {
      case MetricKind::kCounter:
        counters.set(metric.name, Json::uinteger(metric.value));
        break;
      case MetricKind::kGauge:
        gauges.set(metric.name, Json::uinteger(metric.value));
        break;
      case MetricKind::kHistogram: {
        std::size_t used = metric.buckets.size();
        while (used > 0 && metric.buckets[used - 1] == 0) --used;
        Json buckets = Json::array();
        for (std::size_t b = 0; b < used; ++b)
          buckets.push(Json::uinteger(metric.buckets[b]));
        histograms.set(metric.name,
                       Json::object()
                           .set("count", Json::uinteger(metric.value))
                           .set("sum", Json::uinteger(metric.sum))
                           .set("buckets", std::move(buckets)));
        break;
      }
    }
  }
  return Json::object()
      .set("schema", "ftmc.metrics.v1")
      .set("counters", std::move(counters))
      .set("gauges", std::move(gauges))
      .set("histograms", std::move(histograms));
}

namespace {

std::string prometheus_name(const std::string& name) {
  std::string out = "ftmc_";
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  return out;
}

}  // namespace

void write_prometheus(std::ostream& out, const MetricsSnapshot& snapshot) {
  for (const MetricValue& metric : snapshot.metrics) {
    const std::string name = prometheus_name(metric.name);
    switch (metric.kind) {
      case MetricKind::kCounter:
        out << "# TYPE " << name << " counter\n"
            << name << ' ' << metric.value << '\n';
        break;
      case MetricKind::kGauge:
        out << "# TYPE " << name << " gauge\n"
            << name << ' ' << metric.value << '\n';
        break;
      case MetricKind::kHistogram: {
        out << "# TYPE " << name << " histogram\n";
        std::size_t used = metric.buckets.size();
        while (used > 0 && metric.buckets[used - 1] == 0) --used;
        std::uint64_t cumulative = 0;
        for (std::size_t b = 0; b < used; ++b) {
          cumulative += metric.buckets[b];
          // Bucket b holds integer samples in [2^(b-1), 2^b), so its
          // inclusive upper edge is 2^b - 1 (bucket 0 holds exactly 0).
          const std::uint64_t le =
              b == 0 ? 0 : (std::uint64_t{1} << b) - 1;
          out << name << "_bucket{le=\"" << le << "\"} " << cumulative
              << '\n';
        }
        out << name << "_bucket{le=\"+Inf\"} " << metric.value << '\n'
            << name << "_sum " << metric.sum << '\n'
            << name << "_count " << metric.value << '\n';
        break;
      }
    }
  }
}

std::string prometheus_text(const MetricsSnapshot& snapshot) {
  std::ostringstream out;
  write_prometheus(out, snapshot);
  return out.str();
}

void write_metrics_json(std::ostream& out) {
  metrics_to_json(snapshot()).write(out);
  out << '\n';
}

void export_metrics_file(const std::string& path) {
  if (path.empty()) return;
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write metrics to '" + path + "'");
  write_metrics_json(out);
}

void export_chrome_trace_file(const std::string& path) {
  if (path.empty()) return;
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write trace to '" + path + "'");
  write_chrome_trace(out);
}

}  // namespace ftmc::obs
