// Serialization of MetricsSnapshot to the stable `ftmc.metrics.v1` JSON
// schema consumed by tools/check_metrics.py and the CI artifact pipeline:
//
//   {"schema": "ftmc.metrics.v1",
//    "counters":   {"sim.events": 123, ...},
//    "gauges":     {"dse.archive_size": 40, ...},
//    "histograms": {"dse.eval_us": {"count": n, "sum": s,
//                                   "buckets": [...]} , ...}}
//
// Histogram buckets are log2: buckets[b] counts samples whose bit width is
// b (sample 0 lands in bucket 0; otherwise value in [2^(b-1), 2^b)).
// Trailing all-zero buckets are trimmed.
#pragma once

#include <ostream>
#include <string>

#include "ftmc/obs/json.hpp"
#include "ftmc/obs/metrics.hpp"

namespace ftmc::obs {

Json metrics_to_json(const MetricsSnapshot& snapshot);

/// Prometheus text exposition (version 0.0.4) of a snapshot: counters and
/// gauges as single samples, histograms as cumulative `_bucket{le="..."}`
/// series derived from the log2 buckets (le is each bucket's inclusive
/// integer upper edge 2^b - 1, bucket 0 is le="0", plus the mandatory
/// `+Inf`), with `_sum`/`_count`.  Metric names are prefixed `ftmc_` and
/// sanitized (every character outside [a-zA-Z0-9_:] becomes '_').
void write_prometheus(std::ostream& out, const MetricsSnapshot& snapshot);
std::string prometheus_text(const MetricsSnapshot& snapshot);

/// snapshot() -> JSON -> `out`, one line.
void write_metrics_json(std::ostream& out);

/// Writes the current registry snapshot to `path` (throws on I/O failure);
/// no-op when `path` is empty.
void export_metrics_file(const std::string& path);

/// Writes the recorded Chrome trace to `path` (throws on I/O failure);
/// no-op when `path` is empty.
void export_chrome_trace_file(const std::string& path);

}  // namespace ftmc::obs
