#include "ftmc/obs/json.hpp"

#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>

namespace ftmc::obs {

Json Json::object() {
  Json value;
  value.kind_ = Kind::kObject;
  return value;
}

Json Json::array() {
  Json value;
  value.kind_ = Kind::kArray;
  return value;
}

Json Json::str(std::string value) {
  Json result;
  result.kind_ = Kind::kString;
  result.string_ = std::move(value);
  return result;
}

Json Json::boolean(bool value) {
  Json result;
  result.kind_ = Kind::kBool;
  result.bool_ = value;
  return result;
}

Json Json::integer(std::int64_t value) {
  Json result;
  result.kind_ = Kind::kInt;
  result.int_ = value;
  return result;
}

Json Json::uinteger(std::uint64_t value) {
  Json result;
  result.kind_ = Kind::kUint;
  result.uint_ = value;
  return result;
}

Json Json::number(double value, int decimals) {
  Json result;
  result.kind_ = Kind::kDouble;
  result.double_ = value;
  result.decimals_ = decimals;
  return result;
}

Json& Json::set(std::string key, Json value) {
  kind_ = Kind::kObject;  // first set() on a default value makes it an object
  for (auto& [name, member] : members_)
    if (name == key) {
      member = std::move(value);
      return *this;
    }
  members_.emplace_back(std::move(key), std::move(value));
  return *this;
}

Json& Json::set(std::string key, const char* value) {
  return set(std::move(key), str(std::string(value)));
}

Json& Json::set(std::string key, std::string_view value) {
  return set(std::move(key), str(std::string(value)));
}

Json& Json::set(std::string key, bool value) {
  return set(std::move(key), boolean(value));
}

Json& Json::set(std::string key, double value) {
  return set(std::move(key), number(value));
}

Json& Json::push(Json value) {
  kind_ = Kind::kArray;
  elements_.push_back(std::move(value));
  return *this;
}

std::string Json::escape(std::string_view raw) {
  std::string out;
  out.reserve(raw.size() + 2);
  for (const char c : raw) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void Json::write(std::ostream& out) const {
  switch (kind_) {
    case Kind::kNull:
      out << "null";
      break;
    case Kind::kBool:
      out << (bool_ ? "true" : "false");
      break;
    case Kind::kInt:
      out << int_;
      break;
    case Kind::kUint:
      out << uint_;
      break;
    case Kind::kDouble: {
      if (!std::isfinite(double_)) {
        out << "null";  // JSON has no NaN/Inf
        break;
      }
      char buffer[64];
      if (decimals_ >= 0)
        std::snprintf(buffer, sizeof buffer, "%.*f", decimals_, double_);
      else
        std::snprintf(buffer, sizeof buffer, "%.*g",
                      std::numeric_limits<double>::max_digits10, double_);
      out << buffer;
      break;
    }
    case Kind::kString:
      out << '"' << escape(string_) << '"';
      break;
    case Kind::kObject: {
      out << '{';
      bool first = true;
      for (const auto& [key, value] : members_) {
        if (!first) out << ',';
        first = false;
        out << '"' << escape(key) << "\":";
        value.write(out);
      }
      out << '}';
      break;
    }
    case Kind::kArray: {
      out << '[';
      bool first = true;
      for (const Json& value : elements_) {
        if (!first) out << ',';
        first = false;
        value.write(out);
      }
      out << ']';
      break;
    }
  }
}

std::string Json::dump() const {
  std::ostringstream out;
  write(out);
  return out.str();
}

}  // namespace ftmc::obs
