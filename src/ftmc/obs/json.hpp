// Minimal one-line JSON serializer shared by every telemetry surface: the
// bench summary lines (`JSON: {...}`), `--metrics-json` registry snapshots,
// the per-generation JSONL stream of `ftmc optimize`, and the Chrome-trace
// exporter.  One writer means one escaping/number-formatting policy, so the
// emitted schemas stay parseable by the same scripts (tools/check_metrics.py
// validates them in CI).
//
// A Json value is an immutable-ish tree built fluently:
//
//   obs::Json line = obs::Json::object()
//       .set("bench", "sim_kernel")
//       .set("events", events)
//       .set("speedup", obs::Json::number(speedup, 2));
//   std::cout << "JSON: " << line.dump() << '\n';
//
// Numbers: integers print exactly; doubles print either with a fixed decimal
// count (matching the former util::Table::cell formatting of the bench
// lines) or via max_digits10 round-trip formatting.  Non-finite doubles
// serialize as null (JSON has no NaN/Inf).
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace ftmc::obs {

class Json {
 public:
  /// Default-constructed value is JSON null.
  Json() = default;

  static Json object();
  static Json array();
  static Json str(std::string value);
  static Json boolean(bool value);
  static Json integer(std::int64_t value);
  static Json uinteger(std::uint64_t value);
  /// `decimals < 0` -> round-trip (max_digits10) formatting.
  static Json number(double value, int decimals = -1);

  /// Object member (insertion order preserved; duplicate keys overwrite).
  Json& set(std::string key, Json value);
  Json& set(std::string key, const char* value);
  Json& set(std::string key, std::string_view value);
  Json& set(std::string key, bool value);
  Json& set(std::string key, double value);
  template <typename T>
    requires std::is_integral_v<T>
  Json& set(std::string key, T value) {
    if constexpr (std::is_signed_v<T>)
      return set(std::move(key), integer(static_cast<std::int64_t>(value)));
    else
      return set(std::move(key), uinteger(static_cast<std::uint64_t>(value)));
  }

  /// Array element.
  Json& push(Json value);

  bool is_object() const noexcept { return kind_ == Kind::kObject; }
  bool is_array() const noexcept { return kind_ == Kind::kArray; }

  void write(std::ostream& out) const;
  std::string dump() const;

  /// RFC 8259 string escaping (quotes, backslash, control characters).
  static std::string escape(std::string_view raw);

 private:
  enum class Kind {
    kNull,
    kBool,
    kInt,
    kUint,
    kDouble,
    kString,
    kObject,
    kArray
  };

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  std::int64_t int_ = 0;
  std::uint64_t uint_ = 0;
  double double_ = 0.0;
  int decimals_ = -1;
  std::string string_;
  std::vector<std::pair<std::string, Json>> members_;  ///< object
  std::vector<Json> elements_;                         ///< array
};

inline std::ostream& operator<<(std::ostream& out, const Json& value) {
  value.write(out);
  return out;
}

}  // namespace ftmc::obs
