#include "ftmc/obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <unordered_map>

namespace ftmc::obs {

std::uint64_t MetricsSnapshot::value_of(std::string_view name) const noexcept {
  const MetricValue* metric = find(name);
  return metric == nullptr ? 0 : metric->value;
}

const MetricValue* MetricsSnapshot::find(
    std::string_view name) const noexcept {
  for (const MetricValue& metric : metrics)
    if (metric.name == name) return &metric;
  return nullptr;
}

double MetricsSnapshot::quantile(std::string_view name,
                                 double q) const noexcept {
  const MetricValue* metric = find(name);
  if (metric == nullptr || metric->kind != MetricKind::kHistogram ||
      metric->value == 0)
    return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Same rank convention as util::percentile_sorted: rank q*(n-1) over the
  // sorted samples, so quantile(..., 0) is the minimum bucket and
  // quantile(..., 1) the maximum.
  const double rank = q * static_cast<double>(metric->value - 1);
  double below = 0.0;
  for (std::size_t b = 0; b < metric->buckets.size(); ++b) {
    const double count = static_cast<double>(metric->buckets[b]);
    if (count == 0.0) continue;
    if (rank < below + count || b + 1 == metric->buckets.size()) {
      if (b == 0) return 0.0;  // bucket 0 holds exactly the value 0
      // Interpolate log-linearly across the bucket's [2^(b-1), 2^b) range:
      // position 0 within the bucket maps to the lower edge, position 1 to
      // the upper, with equal rank-mass per octave fraction.
      double position = (rank - below) / count;
      if (position < 0.0) position = 0.0;
      if (position > 1.0) position = 1.0;
      return std::exp2(static_cast<double>(b - 1) + position);
    }
    below += count;
  }
  return 0.0;
}

#if !defined(FTMC_OBS_DISABLED)

namespace {

/// Append-only chunked cell store: chunk pointers are installed exactly
/// once (release store) by the owning/registering thread and never freed
/// while the shard lives, so a snapshot reader can acquire-load a chunk
/// pointer and index into it without ever racing a reallocation.
struct Shard {
  static constexpr std::size_t kChunkShift = 8;
  static constexpr std::size_t kChunkSize = 1u << kChunkShift;  // 256 cells
  static constexpr std::size_t kMaxChunks = 256;  // 65536 cells total

  std::atomic<std::atomic<std::uint64_t>*> chunks[kMaxChunks] = {};

  ~Shard() {
    for (auto& slot : chunks) delete[] slot.load(std::memory_order_relaxed);
  }

  /// Owner-thread access; allocates the covering chunk on first touch.
  std::atomic<std::uint64_t>& cell(std::size_t index) {
    const std::size_t chunk = index >> kChunkShift;
    std::atomic<std::uint64_t>* data =
        chunks[chunk].load(std::memory_order_relaxed);
    if (data == nullptr) {
      data = new std::atomic<std::uint64_t>[kChunkSize];
      for (std::size_t i = 0; i < kChunkSize; ++i)
        data[i].store(0, std::memory_order_relaxed);
      chunks[chunk].store(data, std::memory_order_release);
    }
    return data[index & (kChunkSize - 1)];
  }

  /// Reader access: 0 when the chunk was never touched by the owner.
  std::uint64_t read(std::size_t index) const noexcept {
    const std::atomic<std::uint64_t>* data =
        chunks[index >> kChunkShift].load(std::memory_order_acquire);
    return data == nullptr
               ? 0
               : data[index & (kChunkSize - 1)].load(
                     std::memory_order_relaxed);
  }

  void zero(std::size_t cell_count) noexcept {
    for (std::size_t c = 0; c * kChunkSize < cell_count; ++c) {
      std::atomic<std::uint64_t>* data =
          chunks[c].load(std::memory_order_acquire);
      if (data == nullptr) continue;
      for (std::size_t i = 0; i < kChunkSize; ++i)
        data[i].store(0, std::memory_order_relaxed);
    }
  }
};

struct MetricInfo {
  std::string name;
  MetricKind kind;
  std::size_t cell_base = 0;   ///< counters/histograms: first shard cell
  std::size_t gauge_index = 0; ///< gauges: index into Registry::gauges
};

std::size_t cells_of(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter: return 1;
    case MetricKind::kGauge: return 0;
    case MetricKind::kHistogram: return 2 + kHistogramBuckets;
  }
  return 0;
}

class Registry {
 public:
  std::size_t register_metric(std::string_view name, MetricKind kind) {
    std::lock_guard lock(mutex_);
    const auto found = ids_.find(std::string(name));
    if (found != ids_.end()) {
      const MetricInfo& info = metrics_[found->second];
      if (info.kind != kind)
        throw std::logic_error("obs: metric '" + std::string(name) +
                               "' re-registered with a different kind");
      return kind == MetricKind::kGauge ? info.gauge_index : info.cell_base;
    }
    MetricInfo info;
    info.name = std::string(name);
    info.kind = kind;
    if (kind == MetricKind::kGauge) {
      info.gauge_index = gauges_.size();
      gauges_.push_back(std::make_unique<std::atomic<std::uint64_t>>(0));
    } else {
      info.cell_base = next_cell_;
      next_cell_ += cells_of(kind);
      if (next_cell_ > Shard::kChunkSize * Shard::kMaxChunks)
        throw std::logic_error("obs: metric cell space exhausted");
    }
    ids_.emplace(info.name, metrics_.size());
    metrics_.push_back(info);
    return kind == MetricKind::kGauge ? info.gauge_index : info.cell_base;
  }

  void adopt(Shard* shard) {
    std::lock_guard lock(mutex_);
    shards_.push_back(shard);
  }

  /// Thread exit: fold the shard's cells into the retired accumulator so
  /// its counts outlive the thread, then drop the shard.
  void retire(Shard* shard) {
    std::lock_guard lock(mutex_);
    if (retired_.size() < next_cell_) retired_.resize(next_cell_, 0);
    for (std::size_t i = 0; i < next_cell_; ++i) retired_[i] += shard->read(i);
    shards_.erase(std::remove(shards_.begin(), shards_.end(), shard),
                  shards_.end());
    delete shard;
  }

  void gauge_store(std::size_t index, std::uint64_t value) noexcept {
    std::lock_guard lock(mutex_);
    gauges_[index]->store(value, std::memory_order_relaxed);
  }

  void gauge_add(std::size_t index, std::int64_t delta) noexcept {
    std::lock_guard lock(mutex_);
    gauges_[index]->fetch_add(static_cast<std::uint64_t>(delta),
                              std::memory_order_relaxed);
  }

  MetricsSnapshot snapshot() const {
    std::lock_guard lock(mutex_);
    auto cell_total = [&](std::size_t cell) {
      std::uint64_t total = cell < retired_.size() ? retired_[cell] : 0;
      for (const Shard* shard : shards_) total += shard->read(cell);
      return total;
    };
    MetricsSnapshot result;
    result.metrics.reserve(metrics_.size());
    for (const MetricInfo& info : metrics_) {
      MetricValue value;
      value.name = info.name;
      value.kind = info.kind;
      switch (info.kind) {
        case MetricKind::kCounter:
          value.value = cell_total(info.cell_base);
          break;
        case MetricKind::kGauge:
          value.value =
              gauges_[info.gauge_index]->load(std::memory_order_relaxed);
          break;
        case MetricKind::kHistogram:
          value.value = cell_total(info.cell_base);
          value.sum = cell_total(info.cell_base + 1);
          value.buckets.resize(kHistogramBuckets);
          for (std::size_t b = 0; b < kHistogramBuckets; ++b)
            value.buckets[b] = cell_total(info.cell_base + 2 + b);
          break;
      }
      result.metrics.push_back(std::move(value));
    }
    return result;
  }

  void reset() {
    std::lock_guard lock(mutex_);
    std::fill(retired_.begin(), retired_.end(), 0);
    for (Shard* shard : shards_) shard->zero(next_cell_);
    for (const auto& gauge : gauges_)
      gauge->store(0, std::memory_order_relaxed);
  }

 private:
  mutable std::mutex mutex_;
  std::vector<MetricInfo> metrics_;
  std::unordered_map<std::string, std::size_t> ids_;
  std::size_t next_cell_ = 0;
  std::vector<Shard*> shards_;            ///< live thread shards
  std::vector<std::uint64_t> retired_;    ///< drained exited-thread cells
  std::vector<std::unique_ptr<std::atomic<std::uint64_t>>> gauges_;
};

/// Leaked on purpose: thread shards retire through it at thread exit, which
/// can happen after static destruction would have torn a plain static down.
Registry& registry() {
  static Registry* instance = new Registry;
  return *instance;
}

/// Registers the shard lazily on first use and retires it at thread exit.
struct ShardOwner {
  Shard* shard = nullptr;
  ~ShardOwner() {
    if (shard != nullptr) registry().retire(shard);
  }
};

Shard& my_shard() {
  thread_local ShardOwner owner;
  if (owner.shard == nullptr) {
    owner.shard = new Shard;
    registry().adopt(owner.shard);
  }
  return *owner.shard;
}

}  // namespace

namespace detail {

std::size_t register_metric(std::string_view name, MetricKind kind) {
  return registry().register_metric(name, kind);
}

void shard_add(std::size_t cell, std::uint64_t delta) noexcept {
  std::atomic<std::uint64_t>& slot = my_shard().cell(cell);
  // Owner-exclusive write: plain load-add-store, no RMW needed.
  slot.store(slot.load(std::memory_order_relaxed) + delta,
             std::memory_order_relaxed);
}

void gauge_store(std::size_t id, std::uint64_t value) noexcept {
  registry().gauge_store(id, value);
}

void gauge_add(std::size_t id, std::int64_t delta) noexcept {
  registry().gauge_add(id, delta);
}

}  // namespace detail

MetricsSnapshot snapshot() { return registry().snapshot(); }

void reset() { registry().reset(); }

#endif  // !FTMC_OBS_DISABLED

}  // namespace ftmc::obs
