// Process-wide metrics registry: named counters, gauges, and histograms
// with thread-local shards, designed so the hot paths (analysis worklist,
// simulation event loop, DSE evaluation fan-out) can stay instrumented
// permanently.
//
// Design (cheap always-on counters, rich traces on demand — the DT/RT split
// of Weichslgartner et al. applied to telemetry):
//
//  * A metric is registered once by name and identified by a small integer
//    id.  Handle objects (Counter/Gauge/Histogram) capture the id at
//    construction — typically in a function-local static — so the hot path
//    never touches the name table.
//
//  * Counter::add and Histogram::record write to a *thread-local* shard
//    cell.  Only the owning thread ever writes a cell, so the increment is
//    a relaxed load + add + relaxed store (no lock prefix, no contention);
//    readers (snapshot) do relaxed loads of the atomics, which is exactly
//    the published-but-unordered visibility a monitoring snapshot needs.
//    Shard storage is chunked and append-only (chunk pointers installed
//    with release stores into a fixed table), so cells never move and
//    snapshot never races a reallocation.
//
//  * When a thread exits, its shard drains into a retired accumulator
//    under the registry mutex — counts survive the thread pool that
//    produced them.
//
//  * Gauges are single global atomics (set/add are rare, last-writer-wins
//    semantics are the point of a gauge).
//
//  * Histograms are power-of-two-bucketed (bucket b counts samples with
//    bit_width(value) == b, i.e. value in [2^(b-1), 2^b)), plus exact count
//    and sum — enough for rate/mean/rough-percentile dashboards without
//    per-sample storage.  Exact percentiles stay the job of
//    util::percentile_sorted over explicit sample vectors.
//
// Compile-out: defining FTMC_OBS_DISABLED (CMake option of the same name)
// turns every handle operation into an empty inline and snapshot() into an
// empty result, so shipping builds can drop the layer entirely.  The
// default build keeps it on; the instrumented hot paths accumulate into
// plain locals and flush once per solve/run, so the steady-state overhead
// is a handful of relaxed stores per kernel invocation (<2% on the kernel
// benches — see DESIGN.md "Observability" for the budget).
//
// Instrumentation must never change results: handles carry no state that
// feeds back into the computation, and the differential suites in
// tests/test_obs.cpp pin analyze/simulate/optimize bitwise-identical with
// telemetry on and off.
#pragma once

#include <atomic>
#include <bit>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace ftmc::obs {

inline constexpr std::size_t kHistogramBuckets = 64;

enum class MetricKind : std::uint8_t { kCounter, kGauge, kHistogram };

/// One metric's merged value at snapshot time.
struct MetricValue {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  std::uint64_t value = 0;  ///< counter total / gauge value / histogram count
  std::uint64_t sum = 0;    ///< histogram only: sum of samples
  std::vector<std::uint64_t> buckets;  ///< histogram only: log2 buckets
};

/// Consistent-enough view of every registered metric: each cell is read
/// once with a relaxed load; cross-metric skew is possible (and fine for
/// monitoring), per-cell values are never torn.
struct MetricsSnapshot {
  std::vector<MetricValue> metrics;

  /// Value of a named counter/gauge (0 when absent) — test/export helper.
  std::uint64_t value_of(std::string_view name) const noexcept;
  const MetricValue* find(std::string_view name) const noexcept;

  /// Estimated q-quantile (q in [0,1]) of a named histogram from its
  /// power-of-two buckets: the target rank is located bucket by bucket and
  /// interpolated log-linearly inside the covering bucket, so the estimate
  /// is always within the bucket's [2^(b-1), 2^b) value range.  Returns 0
  /// when the histogram is absent or empty.  This is the percentile path
  /// for metrics whose raw samples are not retained (e.g. serve request
  /// latencies); exact percentiles over explicit sample vectors remain
  /// util::percentile_sorted's job.
  double quantile(std::string_view name, double q) const noexcept;
};

#if !defined(FTMC_OBS_DISABLED)

namespace detail {

/// Registers `name` (idempotent; the kind must match across call sites) and
/// returns its slot id.  Counters occupy 1 cell, gauges 0 (they live in the
/// registry), histograms 2 + kHistogramBuckets cells (count, sum, buckets).
std::size_t register_metric(std::string_view name, MetricKind kind);

/// Owning-thread cell bump: relaxed load + add + relaxed store (never an
/// atomic RMW — the owner is the only writer).
void shard_add(std::size_t cell, std::uint64_t delta) noexcept;

void gauge_store(std::size_t id, std::uint64_t value) noexcept;
void gauge_add(std::size_t id, std::int64_t delta) noexcept;

}  // namespace detail

class Counter {
 public:
  explicit Counter(std::string_view name)
      : cell_(detail::register_metric(name, MetricKind::kCounter)) {}

  void add(std::uint64_t delta = 1) noexcept {
    if (delta != 0) detail::shard_add(cell_, delta);
  }

 private:
  std::size_t cell_;
};

class Gauge {
 public:
  explicit Gauge(std::string_view name)
      : id_(detail::register_metric(name, MetricKind::kGauge)) {}

  void set(std::uint64_t value) noexcept { detail::gauge_store(id_, value); }
  void add(std::int64_t delta) noexcept { detail::gauge_add(id_, delta); }

 private:
  std::size_t id_;
};

class Histogram {
 public:
  explicit Histogram(std::string_view name)
      : base_(detail::register_metric(name, MetricKind::kHistogram)) {}

  void record(std::uint64_t sample) noexcept {
    detail::shard_add(base_, 1);            // count
    detail::shard_add(base_ + 1, sample);   // sum
    detail::shard_add(base_ + 2 + bucket_of(sample), 1);
  }

  static std::size_t bucket_of(std::uint64_t sample) noexcept {
    return static_cast<std::size_t>(std::bit_width(sample));
  }

 private:
  std::size_t base_;
};

/// Merged view over the retired accumulator and every live thread shard.
MetricsSnapshot snapshot();

/// Zeroes every counter/gauge/histogram cell (live shards and the retired
/// accumulator).  Registrations survive.  Meant for tests and for delta
/// reporting around a run; concurrent writers may re-add concurrently.
void reset();

#else  // FTMC_OBS_DISABLED: the whole layer compiles to nothing.

class Counter {
 public:
  explicit Counter(std::string_view) {}
  void add(std::uint64_t = 1) noexcept {}
};

class Gauge {
 public:
  explicit Gauge(std::string_view) {}
  void set(std::uint64_t) noexcept {}
  void add(std::int64_t) noexcept {}
};

class Histogram {
 public:
  explicit Histogram(std::string_view) {}
  void record(std::uint64_t) noexcept {}
  static std::size_t bucket_of(std::uint64_t sample) noexcept {
    return static_cast<std::size_t>(std::bit_width(sample));
  }
};

inline MetricsSnapshot snapshot() { return {}; }
inline void reset() {}

#endif  // FTMC_OBS_DISABLED

}  // namespace ftmc::obs
