#include "ftmc/obs/sampler.hpp"

#include <utility>

namespace ftmc::obs {

namespace {

/// cur - prev per metric.  Registration is append-only, so prev's metrics
/// are normally a prefix of cur's in the same order; the name check guards
/// the fast index path and falls back to a lookup otherwise.  Counter and
/// histogram cells subtract saturating at 0 (reset() between samples would
/// otherwise underflow); gauges keep the current absolute value.
MetricsSnapshot subtract(const MetricsSnapshot& cur,
                         const MetricsSnapshot& prev) {
  auto minus = [](std::uint64_t a, std::uint64_t b) {
    return a > b ? a - b : 0;
  };
  MetricsSnapshot out;
  out.metrics.reserve(cur.metrics.size());
  for (std::size_t i = 0; i < cur.metrics.size(); ++i) {
    MetricValue value = cur.metrics[i];
    const MetricValue* base =
        i < prev.metrics.size() && prev.metrics[i].name == value.name
            ? &prev.metrics[i]
            : prev.find(value.name);
    if (base != nullptr && value.kind != MetricKind::kGauge) {
      value.value = minus(value.value, base->value);
      value.sum = minus(value.sum, base->sum);
      for (std::size_t b = 0;
           b < value.buckets.size() && b < base->buckets.size(); ++b)
        value.buckets[b] = minus(value.buckets[b], base->buckets[b]);
    }
    out.metrics.push_back(std::move(value));
  }
  return out;
}

/// other folded into total: counters/histograms add, gauges keep total's
/// value when present (total aggregates newest-first, so the first delta
/// seen already carries the newest gauge reading).
void accumulate(MetricsSnapshot& total, const MetricsSnapshot& other) {
  for (const MetricValue& value : other.metrics) {
    MetricValue* slot = const_cast<MetricValue*>(total.find(value.name));
    if (slot == nullptr) {
      total.metrics.push_back(value);
      continue;
    }
    if (value.kind == MetricKind::kGauge) continue;
    slot->value += value.value;
    slot->sum += value.sum;
    if (slot->buckets.size() < value.buckets.size())
      slot->buckets.resize(value.buckets.size(), 0);
    for (std::size_t b = 0; b < value.buckets.size(); ++b)
      slot->buckets[b] += value.buckets[b];
  }
}

}  // namespace

double TimeSeriesSampler::Window::rate(
    std::string_view counter) const noexcept {
  if (seconds <= 0.0) return 0.0;
  return static_cast<double>(delta.value_of(counter)) / seconds;
}

double TimeSeriesSampler::Window::hit_rate(
    std::string_view hits, std::string_view misses) const noexcept {
  const double h = static_cast<double>(delta.value_of(hits));
  const double m = static_cast<double>(delta.value_of(misses));
  return h + m > 0.0 ? h / (h + m) : 0.0;
}

TimeSeriesSampler::TimeSeriesSampler(Options options)
    : options_(std::move(options)),
      last_(obs::snapshot()),
      last_at_(std::chrono::steady_clock::now()) {
  if (options_.capacity == 0) options_.capacity = 1;
}

TimeSeriesSampler::~TimeSeriesSampler() { stop(); }

void TimeSeriesSampler::start() {
  if (thread_.joinable() || options_.interval_ms == 0) return;
  {
    std::lock_guard lock(mutex_);
    stop_requested_ = false;
  }
  thread_ = std::thread([this] { run(); });
}

void TimeSeriesSampler::stop() {
  if (!thread_.joinable()) return;
  {
    std::lock_guard lock(mutex_);
    stop_requested_ = true;
  }
  cv_.notify_all();
  thread_.join();
  thread_ = std::thread();
}

bool TimeSeriesSampler::running() const noexcept {
  return thread_.joinable();
}

void TimeSeriesSampler::run() {
  std::unique_lock lock(mutex_);
  while (!stop_requested_) {
    if (cv_.wait_for(lock, std::chrono::milliseconds(options_.interval_ms),
                     [this] { return stop_requested_; }))
      break;
    lock.unlock();
    sample_now();
    lock.lock();
  }
}

void TimeSeriesSampler::sample_now() {
  MetricsSnapshot snap = obs::snapshot();
  const auto now = std::chrono::steady_clock::now();
  {
    std::lock_guard lock(mutex_);
    Sample sample;
    sample.seconds = std::chrono::duration<double>(now - last_at_).count();
    sample.delta = subtract(snap, last_);
    ring_.push_back(std::move(sample));
    while (ring_.size() > options_.capacity) ring_.pop_front();
    last_ = snap;
    last_at_ = now;
    ++total_samples_;
  }
  if (options_.on_sample) options_.on_sample(snap);
}

TimeSeriesSampler::Window TimeSeriesSampler::window(
    double max_seconds) const {
  Window out;
  std::lock_guard lock(mutex_);
  for (auto it = ring_.rbegin(); it != ring_.rend(); ++it) {
    if (max_seconds > 0.0 && out.samples > 0 &&
        out.seconds + it->seconds > max_seconds)
      break;
    accumulate(out.delta, it->delta);
    out.seconds += it->seconds;
    ++out.samples;
  }
  return out;
}

std::uint64_t TimeSeriesSampler::sample_count() const noexcept {
  std::lock_guard lock(mutex_);
  return total_samples_;
}

}  // namespace ftmc::obs
