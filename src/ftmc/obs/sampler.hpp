// Windowed time-series view of the metrics registry.
//
// A TimeSeriesSampler snapshots the registry on a fixed interval from a
// background thread and keeps a bounded ring of *deltas* (per-counter and
// per-histogram-bucket increase since the previous sample; gauges keep
// their latest absolute value).  Aggregating the most recent deltas yields
// windowed rates (requests/s, scenarios/s, cache hit rate) and windowed
// histogram quantiles via MetricsSnapshot::quantile — the live view a
// long-running `ftmc serve` daemon exposes through its `metrics` method,
// which lifetime counters alone cannot provide.
//
// Memory model: the ring holds `capacity` MetricsSnapshot deltas (a delta
// is one MetricValue per registered metric), so memory is bounded by
// capacity x registry size regardless of uptime.  The baseline for the
// first delta is a snapshot taken at construction.
//
// Concurrency contract: sample_now() and window() are safe from any thread
// (one mutex guards the ring and the baseline; the registry snapshot has
// its own synchronization).  start(), stop(), and the destructor must be
// called from one owning thread — the server starts the sampler at
// startup and stops it (joining the thread) on graceful drain.  The
// on_sample callback runs on whichever thread sampled, outside the ring
// lock.
//
// The class is compiled identically with FTMC_OBS_DISABLED: snapshot()
// then returns empty snapshots, so every window is empty and every rate 0
// — callers need no build-mode branches.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <string_view>
#include <thread>

#include "ftmc/obs/metrics.hpp"

namespace ftmc::obs {

class TimeSeriesSampler {
 public:
  struct Options {
    /// Background sampling cadence; 0 disables the thread (sample_now()
    /// still works, for tests and manual driving).
    std::size_t interval_ms = 1000;
    /// Deltas retained; older samples fall off the ring.
    std::size_t capacity = 120;
    /// Called after each sample with the absolute registry snapshot (e.g.
    /// to export a Prometheus textfile); runs outside the ring lock.
    std::function<void(const MetricsSnapshot&)> on_sample;
  };

  /// Aggregate of the most recent deltas: counters/histograms hold the
  /// increase over the window, gauges the newest sampled value.
  struct Window {
    double seconds = 0.0;     ///< wall time the aggregated deltas cover
    std::size_t samples = 0;  ///< deltas aggregated
    MetricsSnapshot delta;

    /// Windowed per-second rate of a counter (0 when the window is empty).
    double rate(std::string_view counter) const noexcept;
    /// hits / (hits + misses) over the window; 0 when neither moved.
    double hit_rate(std::string_view hits,
                    std::string_view misses) const noexcept;
  };

  explicit TimeSeriesSampler(Options options);
  ~TimeSeriesSampler();  ///< stops and joins the background thread

  TimeSeriesSampler(const TimeSeriesSampler&) = delete;
  TimeSeriesSampler& operator=(const TimeSeriesSampler&) = delete;

  /// Launches the background thread (no-op when already running or when
  /// interval_ms is 0).
  void start();
  /// Stops and joins the background thread; idempotent.
  void stop();
  bool running() const noexcept;

  /// Takes one sample synchronously: registry snapshot, delta against the
  /// previous sample, push onto the ring (evicting the oldest past
  /// capacity).  The background thread calls exactly this.
  void sample_now();

  /// Aggregates the newest deltas covering up to `max_seconds` of wall
  /// time (everything retained when 0).
  Window window(double max_seconds = 0.0) const;

  /// Total samples taken since construction (not capped by the ring).
  std::uint64_t sample_count() const noexcept;

 private:
  struct Sample {
    double seconds = 0.0;  ///< wall time since the previous sample
    MetricsSnapshot delta;
  };

  void run();

  Options options_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::thread thread_;
  bool stop_requested_ = false;
  std::deque<Sample> ring_;
  MetricsSnapshot last_;
  std::chrono::steady_clock::time_point last_at_;
  std::uint64_t total_samples_ = 0;
};

}  // namespace ftmc::obs
