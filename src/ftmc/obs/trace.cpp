#include "ftmc/obs/trace.hpp"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "ftmc/obs/json.hpp"

namespace ftmc::obs {

#if !defined(FTMC_OBS_DISABLED)

namespace {

struct TraceEvent {
  const char* name = nullptr;
  std::uint64_t ts_ns = 0;
  char phase = 'B';  ///< 'B' begin, 'E' end, 'i' instant (carries `arg`)
  std::string arg;   ///< instant events only: the args.id payload
};

/// Fixed-capacity per-thread ring.  The owning thread writes the cell and
/// then publishes the new head with a release store; readers acquire the
/// head and only touch cells below it.  On wrap the oldest cells are
/// overwritten — the exporter reconstructs the valid window from the head.
struct Ring {
  explicit Ring(std::size_t capacity, std::uint32_t tid)
      : storage(capacity), tid(tid) {}

  void push(TraceEvent event) {
    const std::uint64_t h = head.load(std::memory_order_relaxed);
    storage[h % storage.size()] = std::move(event);
    head.store(h + 1, std::memory_order_release);
  }

  /// Oldest-to-newest copy of the currently valid window.
  std::vector<TraceEvent> events() const {
    const std::uint64_t h = head.load(std::memory_order_acquire);
    const std::uint64_t n = storage.size();
    std::vector<TraceEvent> out;
    const std::uint64_t count = h < n ? h : n;
    out.reserve(count);
    for (std::uint64_t i = h - count; i < h; ++i)
      out.push_back(storage[i % n]);
    return out;
  }

  std::vector<TraceEvent> storage;
  std::atomic<std::uint64_t> head{0};
  std::uint32_t tid;
};

struct RetiredRing {
  std::vector<TraceEvent> events;
  std::uint32_t tid;
};

struct TraceState {
  std::atomic<bool> enabled{false};
  std::mutex mutex;
  std::size_t ring_capacity = 1u << 15;
  std::uint32_t next_tid = 1;
  std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  std::vector<Ring*> live;
  std::vector<RetiredRing> retired;
};

/// Leaked so rings can retire at thread exit even after static teardown.
TraceState& state() {
  static TraceState* instance = new TraceState;
  return *instance;
}

struct RingOwner {
  Ring* ring = nullptr;
  ~RingOwner() {
    if (ring == nullptr) return;
    TraceState& s = state();
    std::lock_guard lock(s.mutex);
    s.retired.push_back(RetiredRing{ring->events(), ring->tid});
    std::erase(s.live, ring);
    delete ring;
  }
};

Ring& my_ring() {
  thread_local RingOwner owner;
  if (owner.ring == nullptr) {
    TraceState& s = state();
    std::lock_guard lock(s.mutex);
    owner.ring = new Ring(s.ring_capacity, s.next_tid++);
    s.live.push_back(owner.ring);
  }
  return *owner.ring;
}

std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - state().epoch)
          .count());
}

/// Chrome "ts" is microseconds; keep nanosecond resolution as decimals.
Json ts_us(std::uint64_t ts_ns) {
  return Json::number(static_cast<double>(ts_ns) / 1000.0, 3);
}

void append_thread_events(Json& trace_events, std::uint32_t tid,
                          const std::vector<TraceEvent>& events) {
  // Re-match begin/end pairs: ring wraparound can leave end events whose
  // begins were overwritten (head of the window) and begins whose ends
  // never happened or were lost; both are dropped so the export is always
  // balanced and properly nested per thread.
  std::vector<std::uint8_t> keep(events.size(), 0);
  std::vector<std::size_t> stack;
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (events[i].phase == 'i') {
      keep[i] = 1;  // instants stand alone; the wrap cannot orphan them
    } else if (events[i].phase == 'B') {
      stack.push_back(i);
    } else if (!stack.empty() && events[stack.back()].name == events[i].name) {
      keep[stack.back()] = 1;
      keep[i] = 1;
      stack.pop_back();
    }
    // An end with no matching open begin is an orphan: skip it.
  }
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (!keep[i]) continue;
    Json event = Json::object()
                     .set("name", events[i].name)
                     .set("cat", "ftmc")
                     .set("ph", std::string(1, events[i].phase))
                     .set("ts", ts_us(events[i].ts_ns))
                     .set("pid", 1)
                     .set("tid", tid);
    if (events[i].phase == 'i')
      event.set("s", "t").set("args",
                              Json::object().set("id", events[i].arg));
    trace_events.push(std::move(event));
  }
}

}  // namespace

bool tracing_enabled() noexcept {
  return state().enabled.load(std::memory_order_relaxed);
}

void enable_tracing(std::size_t ring_capacity) {
  TraceState& s = state();
  {
    std::lock_guard lock(s.mutex);
    if (ring_capacity > 0) s.ring_capacity = ring_capacity;
  }
  s.enabled.store(true, std::memory_order_relaxed);
}

void disable_tracing() {
  state().enabled.store(false, std::memory_order_relaxed);
}

void clear_trace() {
  TraceState& s = state();
  std::lock_guard lock(s.mutex);
  s.retired.clear();
  for (Ring* ring : s.live) ring->head.store(0, std::memory_order_release);
  s.epoch = std::chrono::steady_clock::now();
}

void Span::begin(const char* name) noexcept {
  name_ = name;
  my_ring().push(TraceEvent{name, now_ns(), 'B', {}});
}

void Span::end() noexcept {
  my_ring().push(TraceEvent{name_, now_ns(), 'E', {}});
}

void trace_instant(const char* name, std::string_view value) {
  if (!tracing_enabled()) return;
  my_ring().push(TraceEvent{name, now_ns(), 'i', std::string(value)});
}

void write_chrome_trace(std::ostream& out) {
  TraceState& s = state();
  std::lock_guard lock(s.mutex);
  Json trace_events = Json::array();
  auto thread_name = [](std::uint32_t tid) {
    return Json::object()
        .set("name", "thread_name")
        .set("ph", "M")
        .set("pid", 1)
        .set("tid", tid)
        .set("args", Json::object().set(
                         "name", "ftmc-" + std::to_string(tid)));
  };
  for (const RetiredRing& ring : s.retired) {
    trace_events.push(thread_name(ring.tid));
    append_thread_events(trace_events, ring.tid, ring.events);
  }
  for (const Ring* ring : s.live) {
    trace_events.push(thread_name(ring->tid));
    append_thread_events(trace_events, ring->tid, ring->events());
  }
  Json::object()
      .set("traceEvents", std::move(trace_events))
      .set("displayTimeUnit", "ms")
      .write(out);
  out << '\n';
}

#else  // FTMC_OBS_DISABLED

void write_chrome_trace(std::ostream& out) {
  out << "{\"traceEvents\":[],\"displayTimeUnit\":\"ms\"}\n";
}

#endif  // FTMC_OBS_DISABLED

}  // namespace ftmc::obs
