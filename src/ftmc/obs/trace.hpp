// Scoped-span tracing with Chrome trace-event JSON export.
//
// A Span records a begin event at construction and an end event at
// destruction into a per-thread ring buffer — when tracing is enabled.
// When it is not (the default), constructing a Span costs one relaxed
// atomic load and a predictable branch, so the instrumentation points in
// the DSE/analysis/simulation paths can stay in place permanently.
//
// Rings are fixed-capacity and wrap: a long run keeps the most recent
// events per thread instead of growing without bound.  The exporter
// re-matches begin/end pairs per thread (a wrap can orphan begins whose
// ends were overwritten and vice versa; orphans are dropped), so the
// emitted JSON always contains balanced, properly nested B/E pairs —
// tests/test_obs.cpp validates exactly that, and the file loads directly
// in Perfetto / chrome://tracing.
//
// Span names must be string literals (or otherwise outlive the trace
// session): the ring stores the pointer, not a copy.
//
// Concurrency contract: enable/disable/record are safe from any thread;
// clear_trace() and write_chrome_trace() expect span activity to be
// quiescent (call them after joining/downing the worker pools, as the CLI
// and benches do).
#pragma once

#include <cstddef>
#include <ostream>
#include <string_view>

namespace ftmc::obs {

#if !defined(FTMC_OBS_DISABLED)

bool tracing_enabled() noexcept;

/// Starts (or restarts) a trace session.  `ring_capacity` is per thread,
/// in events (one span = two events); it applies to rings created from now
/// on.  Events recorded before the call are kept.
void enable_tracing(std::size_t ring_capacity = 1u << 15);

/// Stops recording; the events stay exportable.
void disable_tracing();

/// Drops every recorded event (live rings and exited threads').
void clear_trace();

/// Writes the Chrome trace-event JSON (an object with "traceEvents") for
/// everything recorded so far.
void write_chrome_trace(std::ostream& out);

/// Records an instant event carrying a small string payload (exported as
/// ph:"i" with args {"id": value}) on the current thread — the serve layer
/// stamps each request's id into the trace this way, so Chrome/Perfetto
/// views correlate spans with access-log records.  `name` must be a string
/// literal, like Span names; no-op when tracing is disabled.
void trace_instant(const char* name, std::string_view value);

class Span {
 public:
  explicit Span(const char* name) noexcept : name_(nullptr) {
    if (tracing_enabled()) begin(name);
  }
  ~Span() {
    if (name_ != nullptr) end();
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  void begin(const char* name) noexcept;
  void end() noexcept;

  const char* name_;
};

#else  // FTMC_OBS_DISABLED

inline bool tracing_enabled() noexcept { return false; }
inline void enable_tracing(std::size_t = 0) {}
inline void disable_tracing() {}
inline void clear_trace() {}
void write_chrome_trace(std::ostream& out);  // writes an empty trace
inline void trace_instant(const char*, std::string_view) {}

class Span {
 public:
  explicit Span(const char*) noexcept {}
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
};

#endif  // FTMC_OBS_DISABLED

}  // namespace ftmc::obs
