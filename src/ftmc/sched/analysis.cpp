#include "ftmc/sched/analysis.hpp"

#include <algorithm>

namespace ftmc::sched {

model::Time AnalysisResult::graph_wcrt(const model::ApplicationSet& apps,
                                       model::GraphId graph) const {
  const model::TaskGraph& g = apps.graph(graph);
  model::Time wcrt = 0;
  for (std::uint32_t sink : g.sinks()) {
    wcrt = std::max(wcrt,
                    windows.at(apps.flat_index({graph.value, sink})).max_finish);
  }
  return wcrt;
}

bool AnalysisResult::meets_deadlines(const model::ApplicationSet& apps) const {
  for (std::uint32_t g = 0; g < apps.graph_count(); ++g) {
    const model::GraphId id{g};
    if (graph_wcrt(apps, id) > apps.graph(id).deadline()) return false;
  }
  return true;
}

}  // namespace ftmc::sched
