#include "ftmc/sched/analysis.hpp"

#include <algorithm>
#include <stdexcept>

namespace ftmc::sched {

AnalysisResult PreparedAnalysis::solve_capture(
    std::span<const ExecBounds> bounds,
    std::unique_ptr<WarmBase>& base) const {
  base.reset();
  return solve(bounds);
}

void PreparedAnalysis::solve_many(
    std::span<const std::span<const ExecBounds>> scenarios,
    const WarmBase* /*base*/, std::span<AnalysisResult> results) const {
  if (scenarios.size() != results.size())
    throw std::invalid_argument("solve_many: scenario/result size mismatch");
  for (std::size_t k = 0; k < scenarios.size(); ++k)
    results[k] = solve(scenarios[k]);
}

void PreparedAnalysis::solve_many(
    std::span<const std::vector<ExecBounds>> scenarios, const WarmBase* base,
    std::span<AnalysisResult> results) const {
  std::vector<std::span<const ExecBounds>> views(scenarios.begin(),
                                                 scenarios.end());
  solve_many(std::span<const std::span<const ExecBounds>>(views), base,
             results);
}

model::Time AnalysisResult::graph_wcrt(const model::ApplicationSet& apps,
                                       model::GraphId graph) const {
  const model::TaskGraph& g = apps.graph(graph);
  model::Time wcrt = 0;
  for (std::uint32_t sink : g.sinks()) {
    wcrt = std::max(wcrt,
                    windows.at(apps.flat_index({graph.value, sink})).max_finish);
  }
  return wcrt;
}

bool AnalysisResult::meets_deadlines(const model::ApplicationSet& apps) const {
  for (std::uint32_t g = 0; g < apps.graph_count(); ++g) {
    const model::GraphId id{g};
    if (graph_wcrt(apps, id) > apps.graph(id).deadline()) return false;
  }
  return true;
}

namespace {

/// Fallback PreparedAnalysis: no shared state, every solve() rebuilds the
/// whole problem through the plain analyze() entry.  Thread safety follows
/// from analyze() being const and stateless.
///
/// Differential-test-only reference (like sim::reference::run): no in-tree
/// production caller goes through this path — they all use prepare() on a
/// backend with a real prepared problem.  It stays as the adapter that lets
/// any third-party SchedulingAnalysis participate unchanged, and as the
/// baseline tests/test_prepared_problem.cpp compares the prepared kernel
/// against.
class RebuildPerSolve final : public PreparedAnalysis {
 public:
  RebuildPerSolve(const SchedulingAnalysis& backend,
                  const model::Architecture& arch,
                  const model::ApplicationSet& apps,
                  const model::Mapping& mapping,
                  std::span<const std::uint32_t> priorities)
      : backend_(&backend),
        arch_(&arch),
        apps_(&apps),
        mapping_(&mapping),
        priorities_(priorities) {}

  AnalysisResult solve(std::span<const ExecBounds> bounds) const override {
    return backend_->analyze(*arch_, *apps_, *mapping_, bounds, priorities_);
  }

 private:
  const SchedulingAnalysis* backend_;
  const model::Architecture* arch_;
  const model::ApplicationSet* apps_;
  const model::Mapping* mapping_;
  std::span<const std::uint32_t> priorities_;
};

}  // namespace

std::unique_ptr<PreparedAnalysis> SchedulingAnalysis::prepare(
    const model::Architecture& arch, const model::ApplicationSet& apps,
    const model::Mapping& mapping,
    std::span<const std::uint32_t> priorities) const {
  return std::make_unique<RebuildPerSolve>(*this, arch, apps, mapping,
                                           priorities);
}

}  // namespace ftmc::sched
