// Backend interface of Algorithm 1's `sched` function.
//
// Given the platform, a (possibly hardened) application set, a mapping, and
// per-task execution-time bounds, a SchedulingAnalysis derives for every
// task a safe window [min_start, max_finish]: no job of the task can become
// ready before min_start or complete after max_finish (relative to its
// graph's release).  The paper plugs in Kim et al. DAC'13 [9]; this library
// ships a holistic fixed-point analysis (holistic.hpp) and explicitly keeps
// the interface open — "any other schedulability analysis can alternatively
// be used as a backend" (Section 3).
#pragma once

#include <limits>
#include <memory>
#include <span>
#include <vector>

#include "ftmc/model/application_set.hpp"
#include "ftmc/model/architecture.hpp"
#include "ftmc/model/mapping.hpp"
#include "ftmc/model/time.hpp"

namespace ftmc::sched {

/// No-release-cutoff sentinel (see ExecBounds::release_cutoff).
inline constexpr model::Time kNoCutoff =
    std::numeric_limits<model::Time>::max() / 2;

/// Execution-time interval [bcet, wcet] fed into the backend.  Algorithm 1
/// manipulates these to encode hardening and dropping scenarios (e.g. [0,0]
/// for dropped tasks, [0, wcet] for maybe-dropped, Eq. (1) for
/// re-execution).
struct ExecBounds {
  model::Time bcet = 0;
  model::Time wcet = 0;
  /// Instances whose earliest possible start lies strictly after this
  /// absolute time do not release at all.  Algorithm 1 uses it to model
  /// dropped applications: once the critical-state transition completes (at
  /// the trigger's maxFinish), no further job of a dropped task appears
  /// until the hyperperiod resets the system.
  model::Time release_cutoff = kNoCutoff;

  /// Equal inputs yield equal analysis output (the backend is a pure
  /// function); Algorithm 1 uses this to dedupe identical scenarios.
  bool operator==(const ExecBounds&) const = default;
};

/// Sentinel finish time of tasks whose response-time iteration diverged.
inline constexpr model::Time kUnschedulable =
    std::numeric_limits<model::Time>::max() / 4;

/// Safe activity window of one task, relative to its graph's release.
struct TaskWindow {
  model::Time min_start = 0;   ///< earliest ready time
  model::Time min_finish = 0;  ///< earliest completion
  model::Time max_start = 0;   ///< latest ready time
  model::Time max_finish = 0;  ///< latest completion (kUnschedulable if none)
  bool schedulable = true;
};

/// Whole-system analysis verdict.
struct AnalysisResult {
  std::vector<TaskWindow> windows;  ///< flat-aligned with the application set
  bool schedulable = true;          ///< all windows converged

  const TaskWindow& window(const model::ApplicationSet& apps,
                           model::TaskRef task) const {
    return windows.at(apps.flat_index(task));
  }

  /// WCRT of a graph: latest completion over its sink tasks.
  model::Time graph_wcrt(const model::ApplicationSet& apps,
                         model::GraphId graph) const;

  /// True if every graph meets its implicit deadline (= period).
  bool meets_deadlines(const model::ApplicationSet& apps) const;
};

/// A backend instantiated for one (arch, apps, mapping, priorities) tuple.
///
/// Algorithm 1 analyzes many transition scenarios of the *same* candidate —
/// the scenarios differ only in their exec-bounds vector — so a backend can
/// amortize everything bounds-independent (flat graph structure, interferer
/// lists, precedence relations) across them.  `prepare` captures that shared
/// state once; `solve` then runs one analysis per bounds vector.
///
/// Contract: `solve(bounds)` returns exactly what
/// `analyze(arch, apps, mapping, bounds, priorities)` would (the prepared
/// path is an amortization, never an approximation), and is safe to call
/// concurrently from multiple threads on one instance.  The prepared object
/// borrows every constructor argument; the caller keeps them alive.
class PreparedAnalysis {
 public:
  virtual ~PreparedAnalysis() = default;

  /// Opaque warm-start token produced by solve_capture(): the base solution
  /// plus whatever the backend needs to replay its trajectory for delta
  /// scenarios (see PreparedProblem::BaseRecord).  Only meaningful when
  /// handed back to the instance that produced it.
  class WarmBase {
   public:
    virtual ~WarmBase() = default;
  };

  virtual AnalysisResult solve(std::span<const ExecBounds> bounds) const = 0;

  /// Like solve(), additionally capturing a warm-start base for later
  /// solve_many() calls.  `base` is reset to null when the backend has no
  /// warm-start support (the default) or capture is disabled; the returned
  /// result is identical to solve(bounds) either way.
  virtual AnalysisResult solve_capture(std::span<const ExecBounds> bounds,
                                       std::unique_ptr<WarmBase>& base) const;

  /// Preferred number of scenarios per solve_many() call — the lane width
  /// at which the backend's batched path (if any) performs best.  Callers
  /// chunk their scenario fan-out by this; 1 means "no batching, feed me
  /// one scenario at a time".
  virtual std::size_t preferred_batch() const { return 1; }

  /// Solves scenarios[k] into results[k] (the spans must have equal size),
  /// warm-started from `base` when non-null (must come from this object's
  /// solve_capture; null = cold).  Contract: bitwise identical to calling
  /// solve() once per scenario — warm-starting and batching are
  /// amortizations, never approximations.  Thread-safe like solve();
  /// concurrent callers may share one `base`.
  ///
  /// Scenarios are views, not owned vectors: callers that build their
  /// bounds in a contiguous arena (McAnalysis) feed the kernel without an
  /// intermediate copy per scenario.
  virtual void solve_many(
      std::span<const std::span<const ExecBounds>> scenarios,
      const WarmBase* base, std::span<AnalysisResult> results) const;

  /// Convenience adapter for vector-of-vectors callers (tests, benches):
  /// wraps each vector in a view and forwards to the virtual overload.
  void solve_many(std::span<const std::vector<ExecBounds>> scenarios,
                  const WarmBase* base,
                  std::span<AnalysisResult> results) const;
};

/// Abstract backend.  `priorities` ranks tasks globally (flat-aligned,
/// 0 = highest); `bounds` is flat-aligned with `apps`.
class SchedulingAnalysis {
 public:
  virtual ~SchedulingAnalysis() = default;

  virtual AnalysisResult analyze(
      const model::Architecture& arch, const model::ApplicationSet& apps,
      const model::Mapping& mapping, std::span<const ExecBounds> bounds,
      std::span<const std::uint32_t> priorities) const = 0;

  /// Binds the backend to one candidate for repeated multi-scenario solving.
  /// The default adapter simply re-runs analyze() per solve() call, so any
  /// third-party backend participates unchanged; backends with a genuinely
  /// amortizable problem build (see HolisticAnalysis / PreparedProblem)
  /// override this.  All arguments are borrowed for the lifetime of the
  /// returned object; this backend must outlive it too.
  virtual std::unique_ptr<PreparedAnalysis> prepare(
      const model::Architecture& arch, const model::ApplicationSet& apps,
      const model::Mapping& mapping,
      std::span<const std::uint32_t> priorities) const;
};

}  // namespace ftmc::sched
