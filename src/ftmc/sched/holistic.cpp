#include "ftmc/sched/holistic.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>

#include "ftmc/hardening/reliability.hpp"  // scaled_time

namespace ftmc::sched {

namespace {

/// Incoming dependency of a task: producing task (flat index) + latency.
struct InEdge {
  std::size_t src;
  model::Time delay;
};

/// ceil(a / b) for non-negative a, positive b.
constexpr model::Time ceil_div(model::Time a, model::Time b) noexcept {
  return (a + b - 1) / b;
}

/// Flattened, immutable view of one analysis problem.
struct Problem {
  std::size_t n = 0;
  std::vector<model::Time> c_min, c_max, period, release_cutoff;
  std::vector<std::vector<InEdge>> in_edges;
  /// interferers[i]: higher-priority tasks on the same PE.
  std::vector<std::vector<std::size_t>> interferers;
  /// related[i][u]: u is a transitive same-graph predecessor or successor.
  std::vector<std::vector<bool>> related;
  std::vector<std::uint32_t> graph_of;
  model::Time horizon = 0;
};

/// Transitive reachability over the precedence edges (u ~ i iff u reaches i
/// or i reaches u).  Edges only exist within a graph, so this is the
/// same-graph relation the interference refinement needs; it also covers
/// message nodes when bus contention is modeled.
std::vector<std::vector<bool>> compute_relations(
    std::size_t n, const std::vector<std::vector<InEdge>>& in_edges) {
  std::vector<std::vector<std::size_t>> succs(n);
  for (std::size_t i = 0; i < n; ++i)
    for (const InEdge& edge : in_edges[i]) succs[edge.src].push_back(i);

  std::vector<std::vector<bool>> related(n, std::vector<bool>(n, false));
  std::vector<std::size_t> stack;
  std::vector<bool> seen(n, false);
  for (std::size_t s = 0; s < n; ++s) {
    std::fill(seen.begin(), seen.end(), false);
    stack.assign(1, s);
    seen[s] = true;
    while (!stack.empty()) {
      const std::size_t v = stack.back();
      stack.pop_back();
      for (const std::size_t w : succs[v]) {
        if (seen[w]) continue;
        seen[w] = true;
        related[s][w] = related[w][s] = true;
        stack.push_back(w);
      }
    }
  }
  return related;
}

struct FixedPointResult {
  std::vector<model::Time> min_start, min_finish, max_arrival, max_finish;
  bool diverged = false;
};

/// One full best-case + worst-case fixed-point run.
///
/// Worst case, offset-aware formulation: all graphs are released in phase
/// (synchronous periodic model), so every job of every task lives in an
/// absolute window [k*T_u + minStart_u, k*T_u + maxFinish_u] relative to the
/// common release.  The busy window of the analyzed job of task i starts at
/// its (hypothetical) arrival S in [minStart_i, maxArrival_i]; a job (u, k)
/// can steal CPU inside [S, S + w) only if it may be unfinished at S
/// (k*T_u + maxFinish_u > S) and may arrive before the window closes
/// (k*T_u + minStart_u < S + w).  Same-graph precedence excludes the k = 0
/// job of transitive predecessors (they finished before i became ready) and
/// successors (they cannot start before i completes).  The response is the
/// max of S + w(S) over the candidate window starts (S right below each
/// exclusion boundary, and S = maxArrival_i).  All operators are monotone in
/// the iterated quantities, so iterating from the best-case solution yields
/// a safe least fixed point.
///
/// If the single-instance response exceeds the task's own period, own jobs
/// can pile up and the offset argument for self-interference breaks; the
/// task then falls back to the classical jitter-based busy-window bound
/// (`jitter_fallback`), which is unconditionally safe.
FixedPointResult run_fixed_point(const Problem& problem,
                                 const HolisticAnalysis::Options& options,
                                 bool offset_aware) {
  const std::size_t n = problem.n;
  FixedPointResult result;

  // --- Best case: interference-free longest path ------------------------
  result.min_start.assign(n, 0);
  result.min_finish.assign(n, 0);
  for (std::size_t i = 0; i < n; ++i)
    result.min_finish[i] = problem.c_min[i];
  bool stable = false;
  while (!stable) {
    stable = true;
    for (std::size_t i = 0; i < n; ++i) {
      model::Time ready = 0;
      for (const InEdge& edge : problem.in_edges[i])
        ready = std::max(ready, result.min_finish[edge.src] + edge.delay);
      if (ready != result.min_start[i]) {
        result.min_start[i] = ready;
        result.min_finish[i] = ready + problem.c_min[i];
        stable = false;
      }
    }
  }

  result.max_arrival = result.min_start;
  result.max_finish = result.min_finish;

  // Release jitter of a task: the width of its ready-time band.
  auto jitter = [&](std::size_t u) {
    return result.max_arrival[u] - result.min_start[u];
  };

  // --- Classical jitter-based bound (fallback / offset_aware == false) ---
  auto jitter_interference = [&](std::size_t i, model::Time w) {
    model::Time total = 0;
    for (std::size_t u : problem.interferers[i]) {
      if (problem.c_max[u] == 0) continue;
      total += ceil_div(w + jitter(u), problem.period[u]) * problem.c_max[u];
    }
    return total;
  };

  auto solve_jitter_window = [&](std::size_t i, model::Time base) {
    model::Time w = base;
    for (std::size_t iter = 0; iter < options.max_inner_iterations; ++iter) {
      const model::Time next = base + jitter_interference(i, w);
      if (next == w) return w;
      w = next;
      if (w > problem.horizon) return problem.horizon + 1;
    }
    return problem.horizon + 1;
  };

  auto jitter_fallback = [&](std::size_t i, model::Time arrival) {
    const model::Time busy = solve_jitter_window(i, problem.c_max[i]);
    const model::Time own_jobs =
        busy > problem.horizon
            ? 1
            : ceil_div(busy + (arrival - result.min_start[i]),
                       problem.period[i]);
    model::Time best = 0;
    for (model::Time q = 0; q < own_jobs; ++q) {
      const model::Time w =
          solve_jitter_window(i, (q + 1) * problem.c_max[i]);
      if (w > problem.horizon) return problem.horizon + 1;
      best = std::max(best, w + arrival - q * problem.period[i]);
    }
    return best;
  };

  // --- Offset-aware bound -------------------------------------------------
  // Interference on i inside [start, start + w).
  auto offset_interference = [&](std::size_t i, model::Time start,
                                 model::Time w) {
    model::Time total = 0;
    for (std::size_t u : problem.interferers[i]) {
      if (problem.c_max[u] == 0) continue;
      const bool same_graph_related =
          problem.graph_of[u] == problem.graph_of[i] &&
          problem.related[i][u];
      const model::Time t_u = problem.period[u];
      // Jobs whose activity window can overlap [start, start + w).
      const model::Time k_end = (start + w - result.min_start[u] + t_u - 1) / t_u;
      for (model::Time k = 0; k < k_end; ++k) {
        if (same_graph_related && k == 0) continue;
        // Dropped applications release no further instances once the
        // critical-state transition is complete.
        if (k * t_u + result.min_start[u] > problem.release_cutoff[u])
          continue;
        if (k * t_u + result.max_finish[u] <= start) continue;
        if (k * t_u + result.min_start[u] >= start + w) break;
        total += problem.c_max[u];
      }
    }
    return total;
  };

  auto solve_offset_window = [&](std::size_t i, model::Time start) {
    model::Time w = problem.c_max[i];
    for (std::size_t iter = 0; iter < options.max_inner_iterations; ++iter) {
      const model::Time next =
          problem.c_max[i] + offset_interference(i, start, w);
      if (next == w) return w;
      w = next;
      if (w > problem.horizon) return problem.horizon + 1;
    }
    return problem.horizon + 1;
  };

  auto offset_finish = [&](std::size_t i, model::Time arrival) {
    // For preemptive fixed priorities the completion of a job is monotone
    // in its arrival (a later arrival can only see less available CPU), so
    // the latest ready time is the worst-case window start.
    const model::Time w = solve_offset_window(i, arrival);
    if (w > problem.horizon) return problem.horizon + 1;
    return arrival + w;
  };

  // --- Global fixed point --------------------------------------------------
  stable = false;
  for (std::size_t outer = 0;
       outer < options.max_outer_iterations && !stable; ++outer) {
    stable = true;
    for (std::size_t i = 0; i < n; ++i) {
      model::Time arrival = 0;
      for (const InEdge& edge : problem.in_edges[i])
        arrival = std::max(arrival, result.max_finish[edge.src] + edge.delay);
      if (arrival > problem.horizon) {
        result.diverged = true;
        arrival = problem.horizon + 1;
      }

      model::Time finish;
      if (problem.c_max[i] == 0) {
        // Zero-length (dropped / inactive) tasks complete upon readiness.
        finish = arrival;
      } else if (arrival > problem.horizon) {
        finish = problem.horizon + 1;
      } else {
        finish = offset_aware ? offset_finish(i, arrival)
                              : jitter_fallback(i, arrival);
        // Self re-arrival: beyond one period the offset argument for the
        // analyzed job no longer holds; use the jitter-based bound.
        if (offset_aware && finish > problem.period[i])
          finish = std::max(finish, jitter_fallback(i, arrival));
        if (finish > problem.horizon) {
          result.diverged = true;
          finish = problem.horizon + 1;
        }
      }

      if (arrival != result.max_arrival[i] ||
          finish != result.max_finish[i]) {
        // Monotone non-decreasing updates only; guard for safety.
        result.max_arrival[i] = std::max(result.max_arrival[i], arrival);
        result.max_finish[i] = std::max(result.max_finish[i], finish);
        stable = false;
      }
    }
    // Keep iterating even after a divergence: values clamp at horizon + 1,
    // so the sweep still stabilizes, and tasks not involved in the overload
    // (e.g. high-priority critical graphs above diverging dropped ones)
    // retain trustworthy fixed-point bounds.
  }
  if (!stable) {
    // Could not certify a fixed point: no value is trustworthy.
    result.diverged = true;
    std::fill(result.max_finish.begin(), result.max_finish.end(),
              problem.horizon + 1);
  }
  return result;
}

}  // namespace

AnalysisResult HolisticAnalysis::analyze(
    const model::Architecture& arch, const model::ApplicationSet& apps,
    const model::Mapping& mapping, std::span<const ExecBounds> bounds,
    std::span<const std::uint32_t> priorities) const {
  const std::size_t n = apps.task_count();
  if (bounds.size() != n)
    throw std::invalid_argument("HolisticAnalysis: bounds size mismatch");
  if (priorities.size() != n)
    throw std::invalid_argument("HolisticAnalysis: priorities size mismatch");
  if (!mapping.within(arch.processor_count()))
    throw std::invalid_argument("HolisticAnalysis: mapping out of range");

  // Remote channels: plain added latency by default, or explicit message
  // nodes scheduled on a shared-bus pseudo-PE when contention is modeled.
  struct Message {
    std::size_t src, dst;
    model::Time transfer;
  };
  std::vector<Message> messages;
  std::vector<std::vector<InEdge>> in_edges(n);
  for (std::uint32_t g = 0; g < apps.graph_count(); ++g) {
    const model::TaskGraph& graph = apps.graph(model::GraphId{g});
    for (const model::Channel& channel : graph.channels()) {
      const std::size_t src = apps.flat_index({g, channel.src});
      const std::size_t dst = apps.flat_index({g, channel.dst});
      const bool remote =
          mapping.processor_of_flat(src) != mapping.processor_of_flat(dst);
      if (remote && options_.bus_contention &&
          arch.transfer_time(channel.size_bytes) > 0) {
        messages.push_back(
            {src, dst, arch.transfer_time(channel.size_bytes)});
      } else {
        const model::Time delay =
            remote ? arch.transfer_time(channel.size_bytes) : 0;
        in_edges[dst].push_back(InEdge{src, delay});
      }
    }
  }

  const std::size_t total = n + messages.size();
  const std::uint32_t bus_pe =
      static_cast<std::uint32_t>(arch.processor_count());

  Problem problem;
  problem.n = total;
  problem.c_min.resize(total);
  problem.c_max.resize(total);
  problem.period.resize(total);
  problem.release_cutoff.resize(total);
  problem.interferers.resize(total);
  problem.graph_of.resize(total);
  in_edges.resize(total);
  std::vector<std::uint32_t> pe_of(total);
  std::vector<std::uint64_t> rank(total);

  for (std::size_t i = 0; i < n; ++i) {
    const model::TaskRef ref = apps.task_ref(i);
    const model::Processor& pe = arch.processor(mapping.processor_of_flat(i));
    if (bounds[i].bcet < 0 || bounds[i].wcet < bounds[i].bcet)
      throw std::invalid_argument("HolisticAnalysis: invalid ExecBounds");
    problem.c_min[i] = hardening::scaled_time(pe, bounds[i].bcet);
    problem.c_max[i] = hardening::scaled_time(pe, bounds[i].wcet);
    problem.period[i] = apps.graph(ref.graph_id()).period();
    problem.release_cutoff[i] = bounds[i].release_cutoff;
    problem.graph_of[i] = ref.graph;
    pe_of[i] = mapping.processor_of_flat(i).value;
    rank[i] = priorities[i];
  }
  for (std::size_t q = 0; q < messages.size(); ++q) {
    const std::size_t node = n + q;
    const Message& message = messages[q];
    // A message exists exactly when its producer runs; zero-size producer
    // bounds (dropped / inactive tasks) silence the message too.
    problem.c_min[node] =
        problem.c_min[message.src] == 0 ? 0 : message.transfer;
    problem.c_max[node] =
        problem.c_max[message.src] == 0 ? 0 : message.transfer;
    problem.period[node] = problem.period[message.src];
    problem.release_cutoff[node] = problem.release_cutoff[message.src];
    problem.graph_of[node] = problem.graph_of[message.src];
    pe_of[node] = bus_pe;
    // Messages inherit the producer's priority; the edge index keeps bus
    // ranks unique (only bus nodes are ever compared with each other).
    rank[node] = (static_cast<std::uint64_t>(priorities[message.src]) << 16) |
                 q;
    in_edges[node].push_back(InEdge{message.src, 0});
    in_edges[message.dst].push_back(InEdge{node, 0});
  }
  problem.in_edges = std::move(in_edges);

  for (std::size_t i = 0; i < total; ++i)
    for (std::size_t u = 0; u < total; ++u)
      if (u != i && pe_of[u] == pe_of[i] && rank[u] < rank[i])
        problem.interferers[i].push_back(u);
  problem.related = compute_relations(total, problem.in_edges);
  problem.horizon = options_.horizon_hyperperiods * apps.hyperperiod();

  const FixedPointResult fixed_point =
      run_fixed_point(problem, options_, options_.precedence_aware);

  AnalysisResult result;
  result.windows.assign(n, TaskWindow{});
  for (std::size_t i = 0; i < n; ++i) {
    TaskWindow& window = result.windows[i];
    window.min_start = fixed_point.min_start[i];
    window.min_finish = fixed_point.min_finish[i];
    window.max_start = fixed_point.max_arrival[i];
    window.max_finish = fixed_point.max_finish[i];
    window.schedulable = fixed_point.max_finish[i] <= problem.horizon;
    if (!window.schedulable) window.max_finish = kUnschedulable;
  }
  result.schedulable = !fixed_point.diverged;
  return result;
}

}  // namespace ftmc::sched
