#include "ftmc/sched/holistic.hpp"

#include <stdexcept>

#include "ftmc/sched/prepared_problem.hpp"

namespace ftmc::sched {

AnalysisResult HolisticAnalysis::analyze(
    const model::Architecture& arch, const model::ApplicationSet& apps,
    const model::Mapping& mapping, std::span<const ExecBounds> bounds,
    std::span<const std::uint32_t> priorities) const {
  if (bounds.size() != apps.task_count())
    throw std::invalid_argument("HolisticAnalysis: bounds size mismatch");
  // One-shot entry: prepare and solve in place.  Multi-scenario callers use
  // prepare() once and amortize the problem build (see prepared_problem.hpp).
  const PreparedProblem prepared(arch, apps, mapping, priorities, options_);
  PreparedProblem::Scratch& scratch = PreparedProblem::thread_scratch();
  prepared.solve(bounds, scratch);
  return prepared.materialize(scratch);
}

std::unique_ptr<PreparedAnalysis> HolisticAnalysis::prepare(
    const model::Architecture& arch, const model::ApplicationSet& apps,
    const model::Mapping& mapping,
    std::span<const std::uint32_t> priorities) const {
  if (!options_.prepared_kernel)
    return SchedulingAnalysis::prepare(arch, apps, mapping, priorities);
  return std::make_unique<PreparedProblem>(arch, apps, mapping, priorities,
                                           options_);
}

}  // namespace ftmc::sched
