// Holistic best/worst-case scheduling analysis (the shipped `sched` backend).
//
// Worst case: per-PE fixed-priority preemptive response-time analysis with
// release jitter (Tindell/Clark-style holistic analysis extended with
// level-i busy windows for multi-job interference), iterated to a global
// fixed point over the precedence graph: a task's latest ready time is the
// latest finish of its predecessors plus communication delay, and interferer
// jitters are their latest ready times.  Iteration starts from the best-case
// solution, and all operators are monotone, so the least fixed point is
// reached; it is a safe upper bound on any concrete schedule in which every
// task's execution time lies within its ExecBounds.
//
// Best case: interference-free longest-path lower bound on ready/finish
// times (earliest possible start/completion).
//
// Divergence (utilization overload or bound growth past the horizon) marks
// the affected tasks with kUnschedulable and the result as unschedulable.
#pragma once

#include "ftmc/sched/analysis.hpp"

namespace ftmc::sched {

class HolisticAnalysis final : public SchedulingAnalysis {
 public:
  struct Options {
    /// Global fixed-point sweep limit.
    std::size_t max_outer_iterations = 512;
    /// Busy-window / response-time inner fixed-point limit.
    std::size_t max_inner_iterations = 65536;
    /// Divergence horizon as a multiple of the hyperperiod.
    model::Time horizon_hyperperiods = 4;
    /// Offset-aware interference (default): exploits the synchronous
    /// in-phase releases of all graphs to place interferer jobs in absolute
    /// windows [k*T + minStart, k*T + maxFinish] and to exclude same-graph
    /// precedence-related first jobs.  Unconditionally safe (tasks whose
    /// response exceeds their own period fall back to the classical bound
    /// automatically).  Set to false to force the classical
    /// independent-periodic-with-jitter formulation everywhere — much more
    /// pessimistic; exposed for the ablation bench.
    bool precedence_aware = true;
    /// Model the communication fabric as a single shared (preemptable) bus:
    /// every remote channel becomes an explicit message "job" scheduled on
    /// a bus pseudo-resource at its producer's priority, so transfers
    /// contend with each other instead of each enjoying the full bandwidth.
    /// Off by default (the paper's model grants bw_nw to every transfer).
    bool bus_contention = false;
    /// prepare() returns the amortized PreparedProblem kernel (build the
    /// problem once per candidate, solve per scenario).  Set to false to
    /// fall back to the generic rebuild-per-solve adapter — observationally
    /// identical, only slower; exposed for the differential tests and the
    /// prepare-vs-rebuild arm of bench_sched_kernel.
    bool prepared_kernel = true;
    /// Worst-case global fixed point: change-driven worklist in topological
    /// order (default) vs. the original full sweep over all nodes until
    /// stable.  Bit-identical results either way (the operator is monotone,
    /// so the least fixed point is iteration-order independent); exposed
    /// for the differential tests and the worklist-vs-sweep bench.
    bool worklist_fixed_point = true;
    /// Warm-start scenario solves: solve_capture() records the base solve's
    /// Gauss-Seidel trajectory and solve_many() replays it for every node
    /// outside the delta's dependency closure, evaluating only the nodes a
    /// changed bound can actually reach.  Bit-identical to cold solving by
    /// construction (trajectory replay, not fixed-point reuse — see
    /// prepared_problem.hpp).  Requires worklist_fixed_point; exposed for
    /// the differential tests and the warm-start bench arm.
    bool warm_start = true;
    /// Lane count for batched scenario solving: solve_many() solves up to
    /// this many scenarios simultaneously in a structure-of-arrays layout,
    /// streaming the shared problem structure (interferer lists, relation
    /// rows, periods) once per node across all lanes.  1 disables batching.
    /// Lanes are fully independent, so any width is bit-identical.
    std::size_t scenario_batch = 8;
  };

  HolisticAnalysis() : options_() {}
  explicit HolisticAnalysis(Options options) : options_(options) {}

  AnalysisResult analyze(const model::Architecture& arch,
                         const model::ApplicationSet& apps,
                         const model::Mapping& mapping,
                         std::span<const ExecBounds> bounds,
                         std::span<const std::uint32_t> priorities)
      const override;

  /// The amortized kernel: one PreparedProblem shared by every solve()
  /// (see prepared_problem.hpp).  Honors Options::prepared_kernel.
  std::unique_ptr<PreparedAnalysis> prepare(
      const model::Architecture& arch, const model::ApplicationSet& apps,
      const model::Mapping& mapping,
      std::span<const std::uint32_t> priorities) const override;

  const Options& options() const noexcept { return options_; }

 private:
  Options options_;
};

}  // namespace ftmc::sched
