#include "ftmc/sched/prepared_problem.hpp"

#include <algorithm>
#include <limits>
#include <memory>
#include <stdexcept>

#include "ftmc/hardening/reliability.hpp"  // scaled_time
#include "ftmc/obs/metrics.hpp"
#include "ftmc/util/hash.hpp"

namespace ftmc::sched {

namespace {

/// ceil(a / b) for non-negative a, positive b.
constexpr model::Time ceil_div(model::Time a, model::Time b) noexcept {
  return (a + b - 1) / b;
}

/// Folds a release cutoff onto the last release time at or below it.  The
/// operator probes the cutoff only through "k*period + min_start > cutoff",
/// and no release lies strictly between the fold result and the raw value,
/// so every probe answers identically — the fold is behavior-preserving.
/// It maps all cutoffs within one inter-release gap onto one value, which
/// is what lets the batch driver's sharing tests recognize scenarios with
/// different trigger windows as equivalent inputs.  Cutoffs before the
/// first release (nothing ever runs) all fold to -1.
constexpr model::Time canonical_cutoff(model::Time cutoff,
                                       model::Time min_start,
                                       model::Time period,
                                       model::Time horizon) noexcept {
  if (cutoff < min_start) return model::Time{-1};
  const model::Time folded =
      min_start + (cutoff - min_start) / period * period;
  // Every probe "k*period + min_start" the operator makes stays within a
  // small multiple of the horizon (window magnitudes are capped by the
  // horizon ratchet), so whenever the horizon sits far below the sentinel
  // range, every cutoff up there answers all probes false — one behavior
  // class.  Collapse it onto kUnschedulable so scenarios that differ only
  // in unreachable cutoffs also compare bitwise equal.
  if (horizon < kUnschedulable / 16 && folded >= kUnschedulable / 2)
    return kUnschedulable;
  return folded;
}

/// Kernel counters, tallied in plain locals during a solve and flushed once
/// at the end — the fixed point itself never reads them, so instrumented
/// and uninstrumented runs are bitwise identical.
struct KernelCounters {
  obs::Counter solves{"sched.solves"};
  obs::Counter diverged{"sched.solve_divergences"};
  obs::Counter worklist_evals{"sched.worklist.node_evals"};
  obs::Counter worklist_skips{"sched.worklist.skipped_evals"};
  obs::Counter sticky_hits{"sched.worklist.sticky_hits"};
  obs::Counter sweep_evals{"sched.sweep.node_evals"};
  // Warm-start: recorded bases, records dropped for size, warm lanes
  // solved, byte-identical-to-base shortcuts, initially-differing nodes
  // across warm lanes, and evaluations answered by memo copy instead of a
  // recompute.
  obs::Counter warm_bases{"sched.warmstart.bases"};
  obs::Counter warm_overflows{"sched.warmstart.record_overflows"};
  obs::Counter warm_solves{"sched.warmstart.solves"};
  obs::Counter warm_identical{"sched.warmstart.identical_hits"};
  obs::Counter warm_affected{"sched.warmstart.affected_nodes"};
  obs::Counter warm_replayed{"sched.warmstart.replayed_nodes"};
  // Batched driver: invocations, total lanes, node evaluations run through
  // the SoA scan (also included in sched.worklist.node_evals), and lanes
  // retired by the post-fold dedup (solved by copying a sibling lane).
  obs::Counter batch_solves{"sched.batch.solves"};
  obs::Counter batch_lanes{"sched.batch.lanes"};
  obs::Counter batch_evals{"sched.batch.node_evals"};
  obs::Counter batch_dups{"sched.batch.dup_lanes"};
};

KernelCounters& kernel_counters() {
  static KernelCounters counters;
  return counters;
}

/// State views plugged into update_node_t: the scalar Scratch path and one
/// lane of the batched SoA path share the exact operator code.
struct ScalarState {
  PreparedProblem::Scratch& s;
  model::Time c_max(std::size_t u) const { return s.c_max[u]; }
  model::Time release_cutoff(std::size_t u) const {
    return s.release_cutoff[u];
  }
  model::Time min_start(std::size_t u) const { return s.min_start[u]; }
  model::Time max_arrival(std::size_t u) const { return s.max_arrival[u]; }
  model::Time max_finish(std::size_t u) const { return s.max_finish[u]; }
  void store(std::size_t u, model::Time arrival, model::Time finish) {
    s.max_arrival[u] = arrival;
    s.max_finish[u] = finish;
  }
};

struct LaneState {
  PreparedProblem::BatchScratch& b;
  std::size_t off;  // lane * total — each lane's cells are contiguous
  std::size_t at(std::size_t u) const { return off + u; }
  model::Time c_max(std::size_t u) const { return b.c_max[at(u)]; }
  model::Time release_cutoff(std::size_t u) const {
    return b.release_cutoff[at(u)];
  }
  model::Time min_start(std::size_t u) const { return b.min_start[at(u)]; }
  model::Time max_arrival(std::size_t u) const {
    return b.max_arrival[at(u)];
  }
  model::Time max_finish(std::size_t u) const { return b.max_finish[at(u)]; }
  void store(std::size_t u, model::Time arrival, model::Time finish) {
    b.max_arrival[at(u)] = arrival;
    b.max_finish[at(u)] = finish;
  }
};

}  // namespace

PreparedProblem::PreparedProblem(const model::Architecture& arch,
                                 const model::ApplicationSet& apps,
                                 const model::Mapping& mapping,
                                 std::span<const std::uint32_t> priorities,
                                 const HolisticAnalysis::Options& options)
    : options_(options) {
  n_ = apps.task_count();
  if (priorities.size() != n_)
    throw std::invalid_argument("HolisticAnalysis: priorities size mismatch");
  if (!mapping.within(arch.processor_count()))
    throw std::invalid_argument("HolisticAnalysis: mapping out of range");

  // Remote channels: plain added latency by default, or explicit message
  // nodes scheduled on a shared-bus pseudo-PE when contention is modeled.
  struct Message {
    std::size_t src, dst;
    model::Time transfer;
  };
  std::vector<Message> messages;
  std::vector<std::vector<InEdge>> in_edges(n_);
  for (std::uint32_t g = 0; g < apps.graph_count(); ++g) {
    const model::TaskGraph& graph = apps.graph(model::GraphId{g});
    for (const model::Channel& channel : graph.channels()) {
      const std::size_t src = apps.flat_index({g, channel.src});
      const std::size_t dst = apps.flat_index({g, channel.dst});
      const bool remote =
          mapping.processor_of_flat(src) != mapping.processor_of_flat(dst);
      if (remote && options_.bus_contention &&
          arch.transfer_time(channel.size_bytes) > 0) {
        messages.push_back(
            {src, dst, arch.transfer_time(channel.size_bytes)});
      } else {
        const model::Time delay =
            remote ? arch.transfer_time(channel.size_bytes) : 0;
        in_edges[dst].push_back(InEdge{src, delay});
      }
    }
  }

  total_ = n_ + messages.size();
  const std::uint32_t bus_pe =
      static_cast<std::uint32_t>(arch.processor_count());

  pe_ref_.resize(n_);
  period_.resize(total_);
  graph_of_.resize(total_);
  in_edges.resize(total_);
  std::vector<std::uint32_t> pe_of(total_);
  std::vector<std::uint64_t> rank(total_);

  for (std::size_t i = 0; i < n_; ++i) {
    const model::TaskRef ref = apps.task_ref(i);
    pe_ref_[i] = &arch.processor(mapping.processor_of_flat(i));
    period_[i] = apps.graph(ref.graph_id()).period();
    graph_of_[i] = ref.graph;
    pe_of[i] = mapping.processor_of_flat(i).value;
    rank[i] = priorities[i];
  }
  message_src_.resize(messages.size());
  message_transfer_.resize(messages.size());
  for (std::size_t q = 0; q < messages.size(); ++q) {
    const std::size_t node = n_ + q;
    const Message& message = messages[q];
    message_src_[q] = message.src;
    message_transfer_[q] = message.transfer;
    period_[node] = period_[message.src];
    graph_of_[node] = graph_of_[message.src];
    pe_of[node] = bus_pe;
    // Messages inherit the producer's priority; the edge index keeps bus
    // ranks unique (only bus nodes are ever compared with each other).
    rank[node] = (static_cast<std::uint64_t>(priorities[message.src]) << 16) |
                 q;
    in_edges[node].push_back(InEdge{message.src, 0});
    in_edges[message.dst].push_back(InEdge{node, 0});
  }
  in_edges_ = std::move(in_edges);

  interferers_.resize(total_);
  for (std::size_t i = 0; i < total_; ++i)
    for (std::size_t u = 0; u < total_; ++u)
      if (u != i && pe_of[u] == pe_of[i] && rank[u] < rank[i])
        interferers_[i].push_back(u);

  // Successor lists drive the relation DFS, the topological sort, and the
  // worklist dependency edges.
  std::vector<std::vector<std::size_t>> succs(total_);
  for (std::size_t i = 0; i < total_; ++i)
    for (const InEdge& edge : in_edges_[i]) succs[edge.src].push_back(i);

  // Transitive reachability over the precedence edges (u ~ i iff u reaches
  // i or i reaches u), packed as one bitset row per node.  Edges only exist
  // within a graph, so this is the same-graph relation the interference
  // refinement needs; it also covers message nodes under bus contention.
  words_ = (total_ + 63) / 64;
  related_bits_.assign(total_ * words_, 0);
  auto set_related = [&](std::size_t a, std::size_t b) {
    related_bits_[a * words_ + (b >> 6)] |= std::uint64_t{1} << (b & 63);
  };
  std::vector<std::size_t> stack;
  std::vector<std::uint8_t> seen(total_, 0);
  for (std::size_t s = 0; s < total_; ++s) {
    std::fill(seen.begin(), seen.end(), 0);
    stack.assign(1, s);
    seen[s] = 1;
    while (!stack.empty()) {
      const std::size_t v = stack.back();
      stack.pop_back();
      for (const std::size_t w : succs[v]) {
        if (seen[w]) continue;
        seen[w] = 1;
        set_related(s, w);
        set_related(w, s);
        stack.push_back(w);
      }
    }
  }

  // Kahn topological order over the precedence DAG (task graphs are
  // validated acyclic at construction; message nodes split existing edges,
  // so the flattened graph stays a DAG — the throw is a safety net).
  std::vector<std::size_t> indegree(total_, 0);
  for (std::size_t i = 0; i < total_; ++i) indegree[i] = in_edges_[i].size();
  topo_order_.reserve(total_);
  for (std::size_t i = 0; i < total_; ++i)
    if (indegree[i] == 0) topo_order_.push_back(i);
  for (std::size_t head = 0; head < topo_order_.size(); ++head) {
    const std::size_t v = topo_order_[head];
    for (const std::size_t w : succs[v])
      if (--indegree[w] == 0) topo_order_.push_back(w);
  }
  if (topo_order_.size() != total_)
    throw std::invalid_argument("HolisticAnalysis: precedence cycle");

  // Input set of each node's worst-case equation (itself, precedence
  // predecessors, interferers), packed one bitset row per node for the
  // batch driver's memo-copy test.
  input_bits_.assign(total_ * words_, 0);
  auto set_input = [&](std::size_t i, std::size_t u) {
    input_bits_[i * words_ + (u >> 6)] |= std::uint64_t{1} << (u & 63);
  };
  for (std::size_t i = 0; i < total_; ++i) {
    set_input(i, i);
    for (const InEdge& edge : in_edges_[i]) set_input(i, edge.src);
    for (const std::size_t u : interferers_[i]) set_input(i, u);
  }
  // Same sets as explicit lists (self excluded, duplicates deduped) for the
  // direct value comparison of the cross-lane sharing test.
  input_offsets_.assign(total_ + 1, 0);
  input_nodes_.clear();
  for (std::size_t i = 0; i < total_; ++i) {
    const std::size_t begin = input_nodes_.size();
    for (const InEdge& edge : in_edges_[i])
      input_nodes_.push_back(static_cast<std::uint32_t>(edge.src));
    for (const std::size_t u : interferers_[i])
      input_nodes_.push_back(static_cast<std::uint32_t>(u));
    std::sort(input_nodes_.begin() + begin, input_nodes_.end());
    input_nodes_.erase(
        std::unique(input_nodes_.begin() + begin, input_nodes_.end()),
        input_nodes_.end());
    input_offsets_[i + 1] = static_cast<std::uint32_t>(input_nodes_.size());
  }

  // Worklist dependency edges: node i's worst-case equation reads the
  // windows of its precedence predecessors (arrival) and of every
  // higher-priority same-PE node (interference) — so a change to node u
  // must re-queue u's successors and the nodes u interferes with.
  dependents_.resize(total_);
  for (std::size_t i = 0; i < total_; ++i)
    for (const InEdge& edge : in_edges_[i]) dependents_[edge.src].push_back(i);
  for (std::size_t i = 0; i < total_; ++i)
    for (const std::size_t u : interferers_[i]) dependents_[u].push_back(i);
  for (std::vector<std::size_t>& deps : dependents_) {
    std::sort(deps.begin(), deps.end());
    deps.erase(std::unique(deps.begin(), deps.end()), deps.end());
  }

  horizon_ = options_.horizon_hyperperiods * apps.hyperperiod();
}

void PreparedProblem::load_bounds(std::span<const ExecBounds> bounds,
                                  Scratch& s) const {
  if (bounds.size() != n_)
    throw std::invalid_argument("HolisticAnalysis: bounds size mismatch");
  s.c_min.resize(total_);
  s.c_max.resize(total_);
  s.release_cutoff.resize(total_);
  for (std::size_t i = 0; i < n_; ++i) {
    if (bounds[i].bcet < 0 || bounds[i].wcet < bounds[i].bcet)
      throw std::invalid_argument("HolisticAnalysis: invalid ExecBounds");
    s.c_min[i] = hardening::scaled_time(*pe_ref_[i], bounds[i].bcet);
    s.c_max[i] = hardening::scaled_time(*pe_ref_[i], bounds[i].wcet);
    // Cutoffs at or beyond kUnschedulable are indistinguishable from "no
    // cutoff": release times the operator can actually probe are bounded by
    // start + window + period, far below the sentinel band.  Folding them
    // onto one value here (every backend loads through this derivation or
    // its batched copy) keeps results bitwise identical while letting the
    // warm-start delta test recognize kNoCutoff and a diverged trigger
    // window (kUnschedulable) as the same parameter.
    s.release_cutoff[i] = std::min(bounds[i].release_cutoff, kUnschedulable);
  }
  for (std::size_t q = 0; q < message_src_.size(); ++q) {
    const std::size_t node = n_ + q;
    const std::size_t src = message_src_[q];
    // A message exists exactly when its producer runs; zero-size producer
    // bounds (dropped / inactive tasks) silence the message too.
    s.c_min[node] = s.c_min[src] == 0 ? 0 : message_transfer_[q];
    s.c_max[node] = s.c_max[src] == 0 ? 0 : message_transfer_[q];
    s.release_cutoff[node] = s.release_cutoff[src];
  }
}

void PreparedProblem::best_case(Scratch& s) const {
  // Interference-free longest path: exact in one topological pass (the
  // original swept to stability, but the DAG fixed point is unique and a
  // topo pass reaches it directly).
  s.min_start.resize(total_);
  s.min_finish.resize(total_);
  for (const std::size_t i : topo_order_) {
    model::Time ready = 0;
    for (const InEdge& edge : in_edges_[i])
      ready = std::max(ready, s.min_finish[edge.src] + edge.delay);
    s.min_start[i] = ready;
    s.min_finish[i] = ready + s.c_min[i];
  }
}

// One worst-case re-evaluation of node i — the exact operator of the
// original monolithic kernel (see holistic.hpp for the formulation):
//
// Offset-aware: all graphs release in phase, so every job of every task
// lives in an absolute window [k*T_u + minStart_u, k*T_u + maxFinish_u]
// relative to the common release.  A job (u, k) can steal CPU inside
// [S, S + w) only if it may be unfinished at S and may arrive before the
// window closes; same-graph precedence excludes the k = 0 job of transitive
// predecessors and successors.  If the single-instance response exceeds the
// task's own period, the offset argument for self-interference breaks and
// the task falls back to the classical jitter-based busy window, which is
// unconditionally safe.  Note the operator is NOT monotone in the node's
// arrival (a later window start can exclude whole interfering jobs), so the
// global fixed point depends on evaluation order; both drivers below
// preserve the reference sweep's flat evaluation order exactly.
template <class State>
PreparedProblem::UpdateOutcome PreparedProblem::update_node_t(
    std::size_t i, State& s) const {
  const bool offset_aware = options_.precedence_aware;
  const model::Time horizon = horizon_;
  UpdateOutcome outcome;

  // Release jitter of a task: the width of its ready-time band.
  const auto jitter = [&](std::size_t u) {
    return s.max_arrival(u) - s.min_start(u);
  };

  // --- Classical jitter-based bound (fallback / offset_aware == false) ---
  const auto jitter_interference = [&](model::Time w) {
    model::Time total = 0;
    for (const std::size_t u : interferers_[i]) {
      if (s.c_max(u) == 0) continue;
      total += ceil_div(w + jitter(u), period_[u]) * s.c_max(u);
    }
    return total;
  };

  const auto solve_jitter_window = [&](model::Time base) {
    model::Time w = base;
    for (std::size_t iter = 0; iter < options_.max_inner_iterations; ++iter) {
      const model::Time next = base + jitter_interference(w);
      if (next == w) return w;
      w = next;
      if (w > horizon) return horizon + 1;
    }
    return horizon + 1;
  };

  const auto jitter_fallback = [&](model::Time arrival) {
    const model::Time busy = solve_jitter_window(s.c_max(i));
    const model::Time own_jobs =
        busy > horizon
            ? 1
            : ceil_div(busy + (arrival - s.min_start(i)), period_[i]);
    model::Time best = 0;
    for (model::Time q = 0; q < own_jobs; ++q) {
      const model::Time w = solve_jitter_window((q + 1) * s.c_max(i));
      if (w > horizon) return horizon + 1;
      best = std::max(best, w + arrival - q * period_[i]);
    }
    return best;
  };

  // --- Offset-aware bound: interference on i inside [start, start + w). ---
  const auto offset_interference = [&](model::Time start, model::Time w) {
    model::Time total = 0;
    for (const std::size_t u : interferers_[i]) {
      if (s.c_max(u) == 0) continue;
      const bool same_graph_related =
          graph_of_[u] == graph_of_[i] && related(i, u);
      const model::Time t_u = period_[u];
      // Jobs whose activity window can overlap [start, start + w).
      const model::Time k_end =
          (start + w - s.min_start(u) + t_u - 1) / t_u;
      for (model::Time k = 0; k < k_end; ++k) {
        if (same_graph_related && k == 0) continue;
        // Dropped applications release no further instances once the
        // critical-state transition is complete.
        if (k * t_u + s.min_start(u) > s.release_cutoff(u)) continue;
        if (k * t_u + s.max_finish(u) <= start) continue;
        if (k * t_u + s.min_start(u) >= start + w) break;
        total += s.c_max(u);
      }
    }
    return total;
  };

  const auto solve_offset_window = [&](model::Time start) {
    model::Time w = s.c_max(i);
    for (std::size_t iter = 0; iter < options_.max_inner_iterations; ++iter) {
      const model::Time next = s.c_max(i) + offset_interference(start, w);
      if (next == w) return w;
      w = next;
      if (w > horizon) return horizon + 1;
    }
    return horizon + 1;
  };

  const auto offset_finish = [&](model::Time arrival) {
    // For preemptive fixed priorities the completion of a job is monotone
    // in its arrival (a later arrival can only see less available CPU), so
    // the latest ready time is the worst-case window start.
    const model::Time w = solve_offset_window(arrival);
    if (w > horizon) return horizon + 1;
    return arrival + w;
  };

  model::Time arrival = 0;
  for (const InEdge& edge : in_edges_[i])
    arrival = std::max(arrival, s.max_finish(edge.src) + edge.delay);
  if (arrival > horizon) {
    outcome.diverged = true;
    arrival = horizon + 1;
  }

  model::Time finish;
  if (s.c_max(i) == 0) {
    // Zero-length (dropped / inactive) tasks complete upon readiness.
    finish = arrival;
  } else if (arrival > horizon) {
    finish = horizon + 1;
  } else {
    finish = offset_aware ? offset_finish(arrival) : jitter_fallback(arrival);
    // Self re-arrival: beyond one period the offset argument for the
    // analyzed job no longer holds; use the jitter-based bound.
    if (offset_aware && finish > period_[i])
      finish = std::max(finish, jitter_fallback(arrival));
    if (finish > horizon) {
      outcome.diverged = true;
      finish = horizon + 1;
    }
  }

  outcome.raw_changed =
      arrival != s.max_arrival(i) || finish != s.max_finish(i);
  if (outcome.raw_changed) {
    // Non-decreasing updates only (guarded max), as in the reference sweep.
    const model::Time new_arrival = std::max(s.max_arrival(i), arrival);
    const model::Time new_finish = std::max(s.max_finish(i), finish);
    outcome.stored_changed = new_arrival != s.max_arrival(i) ||
                             new_finish != s.max_finish(i);
    s.store(i, new_arrival, new_finish);
    // Computed window still below the ratcheted state: with unchanged
    // inputs this node will report raw_changed on every future visit.
    outcome.sticky = arrival != new_arrival || finish != new_finish;
  }
  return outcome;
}

PreparedProblem::UpdateOutcome PreparedProblem::update_node(std::size_t i,
                                                            Scratch& s) const {
  ScalarState state{s};
  const UpdateOutcome outcome = update_node_t(i, state);
  if (outcome.diverged) s.diverged = true;
  return outcome;
}

void PreparedProblem::worst_case_worklist(Scratch& s,
                                          BaseRecord* record) const {
  // Change-driven rounds in the reference sweep's flat order: a round
  // re-evaluates only the nodes whose inputs (the stored windows of their
  // precedence predecessors and interferers) changed since their last
  // visit.  Skipped evaluations are exactly the ones that are no-ops in the
  // reference sweep — unchanged inputs reproduce the previous computed
  // window, which the guarded max already absorbed — so the stored-state
  // trajectory, round for round, is identical to sweeping every node.
  // Within a round the ascending scan preserves the sweep's Gauss-Seidel
  // visibility: when node u's stored window changes, readers with a higher
  // flat index are picked up later in the same round, lower ones next
  // round, exactly as the full sweep would see them.
  //
  // "Sticky" nodes (computed window below the ratcheted stored state) are
  // the one case where the reference sweep re-reports instability without
  // changing any value; once only sticky nodes remain the sweep burns its
  // remaining round budget and lands on the diverged path, which we can
  // take immediately.
  // Trajectory recording (solve_capture): every evaluation with its
  // position, resulting stored window, and outcome flags, so warm-started
  // scenario solves can memo-copy coincident evaluations (see the header
  // notes).  The fixed point never reads the record — recorded and
  // unrecorded solves are bitwise identical.  Past the cap the base is too
  // turbulent for memoization to pay off; drop the record and let
  // scenarios solve cold.
  constexpr std::size_t kRecordCap = std::size_t{1} << 22;
  if (record != nullptr) {
    record->valid = true;
    record->evals.clear();
  }
  s.dirty.assign(total_, 1);
  s.sticky.assign(total_, 0);
  std::size_t dirty_count = total_;
  std::size_t sticky_count = 0;
  std::uint64_t evals = 0, skips = 0, sticky_hits = 0;
  bool stable = false;
  for (std::size_t outer = 0;
       outer < options_.max_outer_iterations && !stable; ++outer) {
    const std::uint32_t round = static_cast<std::uint32_t>(outer);
    stable = true;
    for (std::size_t i = 0; i < total_; ++i) {
      if (!s.dirty[i]) {
        ++skips;
        if (s.sticky[i]) {
          ++sticky_hits;
          stable = false;
        }
        continue;
      }
      s.dirty[i] = 0;
      --dirty_count;
      ++evals;
      const UpdateOutcome outcome = update_node(i, s);
      if (outcome.raw_changed) stable = false;
      if (record != nullptr && record->valid) {
        record->evals.push_back(
            {round, static_cast<std::uint32_t>(i), s.max_arrival[i],
             s.max_finish[i],
             static_cast<std::uint8_t>(
                 (outcome.raw_changed ? BaseRecord::kRaw : 0) |
                 (outcome.stored_changed ? BaseRecord::kStored : 0) |
                 (outcome.sticky ? BaseRecord::kSticky : 0) |
                 (outcome.diverged ? BaseRecord::kDiverged : 0))});
        if (record->evals.size() > kRecordCap) {
          record->valid = false;
          record->evals.clear();
          record->evals.shrink_to_fit();
        }
      }
      if (outcome.sticky != static_cast<bool>(s.sticky[i])) {
        s.sticky[i] = outcome.sticky ? 1 : 0;
        outcome.sticky ? ++sticky_count : --sticky_count;
      }
      if (outcome.stored_changed) {
        for (const std::size_t dep : dependents_[i]) {
          if (!s.dirty[dep]) {
            s.dirty[dep] = 1;
            ++dirty_count;
          }
        }
      }
    }
    // Keep iterating even after a divergence: values clamp at horizon + 1,
    // so the rounds still stabilize, and tasks not involved in the overload
    // (e.g. high-priority critical graphs above diverging dropped ones)
    // retain trustworthy fixed-point bounds.
    //
    // Only sticky nodes left: no stored value can ever change again, so
    // every remaining reference round is a no-op with stable == false — the
    // reference sweep burns its whole round budget and diverges.  (With no
    // sticky nodes the next round is the cheap stability confirmation.)
    if (!stable && dirty_count == 0 && sticky_count > 0) break;
  }
  if (!stable) {
    // Could not certify a fixed point: no value is trustworthy.
    s.diverged = true;
    std::fill(s.max_finish.begin(), s.max_finish.end(), horizon_ + 1);
  }
  KernelCounters& counters = kernel_counters();
  counters.worklist_evals.add(evals);
  counters.worklist_skips.add(skips);
  counters.sticky_hits.add(sticky_hits);
}

void PreparedProblem::worst_case_sweep(Scratch& s) const {
  // Reference mode: the original full sweep over all nodes in flat order
  // until a sweep changes nothing (or the budget runs out).
  std::uint64_t evals = 0;
  bool stable = false;
  for (std::size_t outer = 0;
       outer < options_.max_outer_iterations && !stable; ++outer) {
    stable = true;
    for (std::size_t i = 0; i < total_; ++i) {
      ++evals;
      if (update_node(i, s).raw_changed) stable = false;
    }
  }
  if (!stable) {
    s.diverged = true;
    std::fill(s.max_finish.begin(), s.max_finish.end(), horizon_ + 1);
  }
  kernel_counters().sweep_evals.add(evals);
}

void PreparedProblem::solve_impl(std::span<const ExecBounds> bounds,
                                 Scratch& s, BaseRecord* record) const {
  load_bounds(bounds, s);
  s.diverged = false;
  best_case(s);
  // Release grids are fixed once the best-case pass has pinned min_start,
  // so cutoffs can be folded onto their canonical (last-release) values —
  // behavior-preserving, see canonical_cutoff.
  for (std::size_t i = 0; i < total_; ++i)
    s.release_cutoff[i] = canonical_cutoff(
        s.release_cutoff[i], s.min_start[i], period_[i], horizon_);
  // Worst-case iteration starts from the best-case solution, exactly like
  // the reference sweep (both drivers replay its evaluation order, so the
  // whole trajectory — including the divergence verdict — is identical).
  s.max_arrival.assign(s.min_start.begin(), s.min_start.end());
  s.max_finish.assign(s.min_finish.begin(), s.min_finish.end());
  if (options_.worklist_fixed_point)
    worst_case_worklist(s, record);
  else
    worst_case_sweep(s);
  KernelCounters& counters = kernel_counters();
  counters.solves.add(1);
  if (s.diverged) counters.diverged.add(1);
}

void PreparedProblem::solve(std::span<const ExecBounds> bounds,
                            Scratch& s) const {
  solve_impl(bounds, s, nullptr);
}

AnalysisResult PreparedProblem::materialize(const Scratch& s) const {
  AnalysisResult result;
  result.windows.assign(n_, TaskWindow{});
  for (std::size_t i = 0; i < n_; ++i) {
    TaskWindow& window = result.windows[i];
    window.min_start = s.min_start[i];
    window.min_finish = s.min_finish[i];
    window.max_start = s.max_arrival[i];
    window.max_finish = s.max_finish[i];
    window.schedulable = s.max_finish[i] <= horizon_;
    if (!window.schedulable) window.max_finish = kUnschedulable;
  }
  result.schedulable = !s.diverged;
  return result;
}

AnalysisResult PreparedProblem::solve(
    std::span<const ExecBounds> bounds) const {
  Scratch& scratch = thread_scratch();
  solve(bounds, scratch);
  return materialize(scratch);
}

AnalysisResult PreparedProblem::solve_capture(
    std::span<const ExecBounds> bounds,
    std::unique_ptr<WarmBase>& base) const {
  base.reset();
  // Replay is defined against the worklist driver's rounds; in sweep mode
  // (or with warm-starting off) scenarios simply solve cold.
  if (!options_.warm_start || !options_.worklist_fixed_point)
    return solve(bounds);
  auto record = std::make_unique<BaseRecord>();
  Scratch& s = thread_scratch();
  solve_impl(bounds, s, record.get());
  KernelCounters& counters = kernel_counters();
  if (!record->valid) {
    counters.warm_overflows.add(1);
    return materialize(s);
  }
  counters.warm_bases.add(1);
  record->c_min = s.c_min;
  record->c_max = s.c_max;
  record->release_cutoff = s.release_cutoff;
  record->min_start = s.min_start;
  record->min_finish = s.min_finish;
  record->max_arrival = s.max_arrival;
  record->max_finish = s.max_finish;
  record->diverged = s.diverged;
  base = std::move(record);
  return materialize(s);
}

std::size_t PreparedProblem::preferred_batch() const {
  if (!options_.worklist_fixed_point) return 1;
  return std::max<std::size_t>(std::size_t{1}, options_.scenario_batch);
}

void PreparedProblem::solve_many(
    std::span<const std::span<const ExecBounds>> scenarios,
    const WarmBase* base, std::span<AnalysisResult> results) const {
  if (scenarios.size() != results.size())
    throw std::invalid_argument("solve_many: scenario/result size mismatch");
  if (scenarios.empty()) return;
  const BaseRecord* record = dynamic_cast<const BaseRecord*>(base);
  if (record != nullptr &&
      (!record->valid || record->c_min.size() != total_))
    record = nullptr;
  // Sweep mode has no batched driver, and a single cold scenario gains
  // nothing from the lane machinery.
  if (!options_.worklist_fixed_point ||
      (record == nullptr && scenarios.size() == 1)) {
    for (std::size_t k = 0; k < scenarios.size(); ++k)
      results[k] = solve(scenarios[k]);
    return;
  }
  solve_batch(scenarios, record, thread_batch_scratch(), results);
}

void PreparedProblem::solve_batch(
    std::span<const std::span<const ExecBounds>> scenarios,
    const BaseRecord* base, BatchScratch& b,
    std::span<AnalysisResult> results) const {
  if (scenarios.size() != results.size())
    throw std::invalid_argument("solve_batch: scenario/result size mismatch");
  const std::size_t lanes = scenarios.size();
  if (lanes == 0) return;
  if (!options_.worklist_fixed_point)
    throw std::logic_error("solve_batch: requires worklist mode");
  if (base != nullptr && (!base->valid || base->c_min.size() != total_))
    base = nullptr;

  std::uint64_t evals = 0, skips = 0, sticky_hits = 0, copies = 0;
  std::uint64_t warm_lanes = 0, identical_lanes = 0, delta_total = 0;

  // ---- SoA state, [lane * total + node] ----------------------------------
  // Lane-major: each lane's cells are contiguous, so one lane's evaluation
  // walks memory exactly like the scalar solver (the dominant access
  // pattern).  Cross-lane compares touch two contiguous regions instead.
  b.lanes = lanes;
  const std::size_t cells = total_ * lanes;
  b.c_min.resize(cells);
  b.c_max.resize(cells);
  b.release_cutoff.resize(cells);
  b.min_start.resize(cells);
  b.min_finish.resize(cells);
  b.max_arrival.resize(cells);
  b.max_finish.resize(cells);
  // Every lane starts all-dirty, exactly like the scalar worklist driver:
  // warm-starting changes how an evaluation is produced (memo copy vs
  // recompute), never which evaluations happen.
  b.dirty.assign(cells, 1);
  b.sticky.assign(cells, 0);
  b.lane_active.assign(lanes, 1);
  b.lane_round_stable.assign(lanes, 1);
  b.lane_stable.assign(lanes, 0);
  b.lane_diverged.assign(lanes, 0);
  b.lane_exhausted.assign(lanes, 0);
  b.dirty_count.assign(lanes, total_);
  b.sticky_count.assign(lanes, 0);
  b.node_dirty.assign(total_, static_cast<std::uint32_t>(lanes));
  b.node_sticky.assign(total_, 0);

  // Load + validate every lane's bounds (same derivation as load_bounds).
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    const std::span<const ExecBounds> bounds = scenarios[lane];
    if (bounds.size() != n_)
      throw std::invalid_argument("HolisticAnalysis: bounds size mismatch");
    for (std::size_t i = 0; i < n_; ++i) {
      if (bounds[i].bcet < 0 || bounds[i].wcet < bounds[i].bcet)
        throw std::invalid_argument("HolisticAnalysis: invalid ExecBounds");
      const std::size_t x = lane * total_ + i;
      b.c_min[x] = hardening::scaled_time(*pe_ref_[i], bounds[i].bcet);
      b.c_max[x] = hardening::scaled_time(*pe_ref_[i], bounds[i].wcet);
      // Same cutoff fold as load_bounds — keep the two derivations in sync.
      b.release_cutoff[x] =
          std::min(bounds[i].release_cutoff, kUnschedulable);
    }
    for (std::size_t q = 0; q < message_src_.size(); ++q) {
      const std::size_t x = lane * total_ + n_ + q;
      const std::size_t src = lane * total_ + message_src_[q];
      b.c_min[x] = b.c_min[src] == 0 ? 0 : message_transfer_[q];
      b.c_max[x] = b.c_max[src] == 0 ? 0 : message_transfer_[q];
      b.release_cutoff[x] = b.release_cutoff[src];
    }
  }

  // ---- Identical-scenario shortcut ---------------------------------------
  // Comparing the loaded parameters covers message nodes too — their bounds
  // are derived from the producer's.
  std::size_t active_count = lanes;
  if (base != nullptr) {
    warm_lanes = lanes;
    for (std::size_t lane = 0; lane < lanes; ++lane) {
      bool identical = true;
      for (std::size_t i = 0; i < total_ && identical; ++i) {
        const std::size_t x = lane * total_ + i;
        identical = b.c_min[x] == base->c_min[i] &&
                    b.c_max[x] == base->c_max[i] &&
                    b.release_cutoff[x] == base->release_cutoff[i];
      }
      if (!identical) continue;
      // Byte-identical scenario: the base solution (including a divergence
      // fill, which the snapshot already carries) is the answer.
      ++identical_lanes;
      for (std::size_t i = 0; i < total_; ++i) {
        const std::size_t x = lane * total_ + i;
        b.min_start[x] = base->min_start[i];
        b.min_finish[x] = base->min_finish[i];
        b.max_arrival[x] = base->max_arrival[i];
        b.max_finish[x] = base->max_finish[i];
      }
      b.lane_diverged[lane] = base->diverged ? 1 : 0;
      b.lane_stable[lane] = 1;
      b.lane_active[lane] = 0;
      b.dirty_count[lane] = 0;
      --active_count;
    }
    // Retired lanes' never-visited dirty bits must not be counted, or the
    // per-node totals would never reach the all-clear fast path.
    if (identical_lanes > 0)
      b.node_dirty.assign(total_, static_cast<std::uint32_t>(active_count));
  }

  // ---- Best-case topo pass + worst-case seed, per lane -------------------
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    if (!b.lane_active[lane]) continue;
    const std::size_t off = lane * total_;
    for (const std::size_t i : topo_order_) {
      model::Time ready = 0;
      for (const InEdge& edge : in_edges_[i])
        ready = std::max(ready, b.min_finish[off + edge.src] + edge.delay);
      b.min_start[off + i] = ready;
      b.min_finish[off + i] = ready + b.c_min[off + i];
    }
    for (std::size_t i = 0; i < total_; ++i) {
      b.max_arrival[off + i] = b.min_start[off + i];
      b.max_finish[off + i] = b.min_finish[off + i];
      // Same cutoff fold as solve_impl, against this lane's release grid.
      b.release_cutoff[off + i] = canonical_cutoff(
          b.release_cutoff[off + i], b.min_start[off + i], period_[i],
          horizon_);
    }
  }

  // ---- Post-fold lane dedup ----------------------------------------------
  // The canonical fold collapses scenarios that differed only in
  // behavior-equivalent cutoffs onto bitwise-equal parameter sets, and the
  // solve is a pure function of (c_min, c_max, release_cutoff): equal
  // parameters mean an identical solution.  Solve the first lane of each
  // class and copy its finished solution into the others at finalization.
  // Signatures gate the quadratic scan so distinct lanes cost one hash.
  constexpr std::uint32_t kNoDup = std::numeric_limits<std::uint32_t>::max();
  b.dup_of.assign(lanes, kNoDup);
  std::uint64_t dup_lanes = 0;
  if (active_count > 1) {
    b.lane_sig.assign(lanes, 0);
    for (std::size_t lane = 0; lane < lanes; ++lane) {
      if (!b.lane_active[lane]) continue;
      const std::size_t off = lane * total_;
      b.lane_sig[lane] = util::fnv1a_stream(
          total_, [&](util::Fnv1aHasher& hasher, std::size_t i) {
            hasher.feed(b.c_min[off + i]);
            hasher.feed(b.c_max[off + i]);
            hasher.feed(b.release_cutoff[off + i]);
          });
    }
    for (std::size_t lane = 1; lane < lanes; ++lane) {
      if (!b.lane_active[lane]) continue;
      const std::size_t off = lane * total_;
      for (std::size_t prev = 0; prev < lane; ++prev) {
        if (!b.lane_active[prev] || b.lane_sig[prev] != b.lane_sig[lane])
          continue;
        const std::size_t poff = prev * total_;
        bool same = true;
        for (std::size_t i = 0; i < total_ && same; ++i)
          same = b.c_min[off + i] == b.c_min[poff + i] &&
                 b.c_max[off + i] == b.c_max[poff + i] &&
                 b.release_cutoff[off + i] == b.release_cutoff[poff + i];
        if (!same) continue;
        b.dup_of[lane] = static_cast<std::uint32_t>(prev);
        b.lane_active[lane] = 0;
        b.dirty_count[lane] = 0;
        --active_count;
        ++dup_lanes;
        break;
      }
    }
    if (dup_lanes > 0)
      b.node_dirty.assign(total_, static_cast<std::uint32_t>(active_count));
  }

  // ---- Memoization state (see the header notes) --------------------------
  // The shadow starts at the base's worst-case seed (its best-case windows)
  // and is advanced through the eval log in lockstep with the joint scan,
  // so it always holds the base's stored windows at the current trajectory
  // position.  A lane's delta bit for node u is clear iff every operator
  // input sourced at u is bitwise-equal to the base's right now.
  const bool warm = base != nullptr && active_count > 0;
  if (warm) {
    b.shadow_arrival.assign(base->min_start.begin(), base->min_start.end());
    b.shadow_finish.assign(base->min_finish.begin(), base->min_finish.end());
    b.static_delta.assign(lanes * words_, 0);
    b.delta.assign(lanes * words_, 0);
    for (std::size_t lane = 0; lane < lanes; ++lane) {
      if (!b.lane_active[lane]) continue;
      std::uint64_t* stat = b.static_delta.data() + lane * words_;
      std::uint64_t* delt = b.delta.data() + lane * words_;
      for (std::size_t i = 0; i < total_; ++i) {
        const std::size_t x = lane * total_ + i;
        const bool static_diff =
            b.c_max[x] != base->c_max[i] ||
            b.release_cutoff[x] != base->release_cutoff[i] ||
            b.min_start[x] != base->min_start[i];
        if (static_diff) stat[i >> 6] |= std::uint64_t{1} << (i & 63);
        // Seed windows are the best-case solution on both sides, so the
        // initial value deltas are exactly the best-case differences
        // (which is also how a c_min change enters the worst-case pass).
        if (static_diff || b.max_arrival[x] != b.shadow_arrival[i] ||
            b.max_finish[x] != b.shadow_finish[i]) {
          delt[i >> 6] |= std::uint64_t{1} << (i & 63);
          ++delta_total;
        }
      }
    }
  }
  // ---- Joint round loop ---------------------------------------------------
  // All lanes advance through the same round index; a lane whose round
  // certifies stability retires.  Each lane runs the scalar worklist body
  // verbatim; the only shortcut is HOW a dirty evaluation is produced: when
  // the base evaluated this same (round, node) and the lane's delta bits
  // are clear across the node's whole input set, the recorded outcome is
  // copied instead of recomputed (the operator is a pure function of those
  // inputs, so the copy is bitwise what the evaluation would return).
  const BaseRecord::Eval* log = warm ? base->evals.data() : nullptr;
  const std::size_t log_size = warm ? base->evals.size() : 0;
  std::size_t log_cursor = 0;
  for (std::size_t outer = 0;
       outer < options_.max_outer_iterations && active_count > 0; ++outer) {
    const std::uint32_t round = static_cast<std::uint32_t>(outer);
    for (std::size_t lane = 0; lane < lanes; ++lane)
      if (b.lane_active[lane]) b.lane_round_stable[lane] = 1;
    for (std::size_t i = 0; i < total_; ++i) {
      // The log is in trajectory order, and this scan visits the same
      // (round, node) sequence, so a single shared cursor suffices.
      const BaseRecord::Eval* entry =
          log_cursor < log_size && log[log_cursor].round == round &&
                  log[log_cursor].node == i
              ? &log[log_cursor]
              : nullptr;
      bool any_stored = false;
      // Cross-lane sharing: the last lane that produced an outcome at this
      // (round, node).  During one position only node i's own cells mutate,
      // so a later lane whose input values all equal the reference lane's
      // (pre-evaluation values for i itself) would compute the exact same
      // thing — copy the outcome instead.
      constexpr std::size_t kNoRef = std::numeric_limits<std::size_t>::max();
      std::size_t ref_lane = kNoRef;
      model::Time ref_pre_arrival = 0, ref_pre_finish = 0;
      UpdateOutcome ref_outcome;
      // All-clear fast path: when no lane has a dirty or sticky bit here,
      // every active lane would take the skip branch with no side effect
      // beyond the `skips` tally — take it for all of them in one test.
      const bool position_live =
          b.node_dirty[i] != 0 || b.node_sticky[i] != 0;
      if (!position_live) skips += active_count;
      for (std::size_t lane = 0; position_live && lane < lanes; ++lane) {
        if (!b.lane_active[lane]) continue;
        const std::size_t x = lane * total_ + i;
        if (!b.dirty[x]) {
          ++skips;
          if (b.sticky[x]) {
            ++sticky_hits;
            b.lane_round_stable[lane] = 0;
          }
          continue;
        }
        b.dirty[x] = 0;
        --b.dirty_count[lane];
        --b.node_dirty[i];
        const model::Time pre_arrival = b.max_arrival[x];
        const model::Time pre_finish = b.max_finish[x];
        UpdateOutcome outcome;
        bool copied = false;
        if (entry != nullptr) {
          const std::uint64_t* delt = b.delta.data() + lane * words_;
          const std::uint64_t* in = input_bits_.data() + i * words_;
          std::uint64_t hit = 0;
          for (std::size_t w = 0; w < words_; ++w) hit |= delt[w] & in[w];
          if (hit == 0) {
            outcome.raw_changed = (entry->flags & BaseRecord::kRaw) != 0;
            outcome.stored_changed =
                (entry->flags & BaseRecord::kStored) != 0;
            outcome.sticky = (entry->flags & BaseRecord::kSticky) != 0;
            outcome.diverged = (entry->flags & BaseRecord::kDiverged) != 0;
            if (outcome.stored_changed) {
              b.max_arrival[x] = entry->arrival;
              b.max_finish[x] = entry->finish;
            }
            copied = true;
            ++copies;
          }
        }
        if (!copied && ref_lane != kNoRef) {
          const std::size_t r = ref_lane * total_ + i;
          bool same = b.c_max[x] == b.c_max[r] &&
                      b.release_cutoff[x] == b.release_cutoff[r] &&
                      b.min_start[x] == b.min_start[r] &&
                      pre_arrival == ref_pre_arrival &&
                      pre_finish == ref_pre_finish;
          for (std::uint32_t e = input_offsets_[i];
               same && e < input_offsets_[i + 1]; ++e) {
            const std::size_t u = input_nodes_[e];
            const std::size_t ux = lane * total_ + u;
            const std::size_t ur = ref_lane * total_ + u;
            // Stored windows first: they diverge between lanes far more
            // often than the load-time parameters, so mismatches exit here.
            same = b.max_finish[ux] == b.max_finish[ur] &&
                   b.max_arrival[ux] == b.max_arrival[ur] &&
                   b.c_max[ux] == b.c_max[ur] &&
                   b.release_cutoff[ux] == b.release_cutoff[ur] &&
                   b.min_start[ux] == b.min_start[ur];
          }
          if (same) {
            outcome = ref_outcome;
            if (outcome.stored_changed) {
              b.max_arrival[x] = b.max_arrival[r];
              b.max_finish[x] = b.max_finish[r];
            }
            copied = true;
            ++copies;
          }
        }
        if (!copied) {
          ++evals;
          LaneState state{b, lane * total_};
          outcome = update_node_t(i, state);
        }
        ref_lane = lane;
        ref_pre_arrival = pre_arrival;
        ref_pre_finish = pre_finish;
        ref_outcome = outcome;
        if (outcome.diverged) b.lane_diverged[lane] = 1;
        if (outcome.raw_changed) b.lane_round_stable[lane] = 0;
        if (outcome.sticky != (b.sticky[x] != 0)) {
          b.sticky[x] = outcome.sticky ? 1 : 0;
          outcome.sticky ? ++b.sticky_count[lane] : --b.sticky_count[lane];
          outcome.sticky ? ++b.node_sticky[i] : --b.node_sticky[i];
        }
        if (outcome.stored_changed) {
          any_stored = true;
          for (const std::size_t dep : dependents_[i]) {
            const std::size_t y = lane * total_ + dep;
            if (!b.dirty[y]) {
              b.dirty[y] = 1;
              ++b.dirty_count[lane];
              ++b.node_dirty[dep];
            }
          }
        }
      }
      if (warm) {
        // Advance the shadow past this position, then refresh the delta bit
        // wherever either side's stored window could have moved.  (A copied
        // kStored entry lands exactly on the new shadow value, so its bit
        // refreshes to the static part — no special case needed.)
        bool entry_stored = false;
        if (entry != nullptr) {
          entry_stored = (entry->flags & BaseRecord::kStored) != 0;
          if (entry_stored) {
            b.shadow_arrival[i] = entry->arrival;
            b.shadow_finish[i] = entry->finish;
          }
          ++log_cursor;
        }
        if (entry_stored || any_stored) {
          const std::size_t word = i >> 6;
          const std::uint64_t bit = std::uint64_t{1} << (i & 63);
          for (std::size_t lane = 0; lane < lanes; ++lane) {
            if (!b.lane_active[lane]) continue;
            const std::size_t x = lane * total_ + i;
            const bool diff =
                (b.static_delta[lane * words_ + word] & bit) != 0 ||
                b.max_arrival[x] != b.shadow_arrival[i] ||
                b.max_finish[x] != b.shadow_finish[i];
            std::uint64_t& delta_word = b.delta[lane * words_ + word];
            delta_word = diff ? delta_word | bit : delta_word & ~bit;
          }
        }
      }
    }
    // Round verdicts — the scalar driver's exit tests, per lane.  A retired
    // lane's leftover dirty/sticky bits are released from the per-node
    // totals (they would never be visited again) so the all-clear fast
    // path keeps firing for the lanes still running.
    auto release_lane_bits = [&](std::size_t lane) {
      const std::size_t off = lane * total_;
      for (std::size_t i = 0; i < total_; ++i) {
        if (b.dirty[off + i]) {
          b.dirty[off + i] = 0;
          --b.node_dirty[i];
        }
        if (b.sticky[off + i]) {
          b.sticky[off + i] = 0;
          --b.node_sticky[i];
        }
      }
    };
    for (std::size_t lane = 0; lane < lanes; ++lane) {
      if (!b.lane_active[lane]) continue;
      if (b.lane_round_stable[lane] != 0) {
        b.lane_active[lane] = 0;
        b.lane_stable[lane] = 1;
        --active_count;
        release_lane_bits(lane);
        continue;
      }
      if (b.dirty_count[lane] != 0) continue;
      // No dirty work left: with sticky nodes the scalar loop would burn
      // its remaining rounds re-reporting them and diverge (its early
      // break); without, the next round is the cheap all-skip confirmation
      // — certifying iff it still fits the budget.
      b.lane_active[lane] = 0;
      --active_count;
      release_lane_bits(lane);
      if (b.sticky_count[lane] == 0 &&
          outer + 1 < options_.max_outer_iterations)
        b.lane_stable[lane] = 1;
      else
        b.lane_exhausted[lane] = 1;
    }
  }

  // ---- Per-lane finalization ---------------------------------------------
  std::uint64_t diverged_lanes = 0;
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    if (b.dup_of[lane] != kNoDup) {
      // The class primary has a lower index, so its state (including any
      // divergence fill) is already final — copy it wholesale.
      const std::size_t p = b.dup_of[lane];
      const std::size_t off = lane * total_, poff = p * total_;
      for (std::size_t i = 0; i < total_; ++i) {
        b.max_arrival[off + i] = b.max_arrival[poff + i];
        b.max_finish[off + i] = b.max_finish[poff + i];
      }
      b.lane_diverged[lane] = b.lane_diverged[p];
      b.lane_active[lane] = 0;
      b.lane_exhausted[lane] = 0;
    }
    bool diverged = b.lane_diverged[lane] != 0;
    if (b.lane_active[lane] || b.lane_exhausted[lane]) {
      // Round budget exhausted (or provably would be) without certifying a
      // fixed point.
      diverged = true;
      for (std::size_t i = 0; i < total_; ++i)
        b.max_finish[lane * total_ + i] = horizon_ + 1;
    }
    b.lane_diverged[lane] = diverged ? 1 : 0;
    if (diverged) ++diverged_lanes;

    AnalysisResult& result = results[lane];
    result.windows.assign(n_, TaskWindow{});
    for (std::size_t i = 0; i < n_; ++i) {
      const std::size_t x = lane * total_ + i;
      TaskWindow& window = result.windows[i];
      window.min_start = b.min_start[x];
      window.min_finish = b.min_finish[x];
      window.max_start = b.max_arrival[x];
      window.max_finish = b.max_finish[x];
      window.schedulable = b.max_finish[x] <= horizon_;
      if (!window.schedulable) window.max_finish = kUnschedulable;
    }
    result.schedulable = !diverged;
  }

  KernelCounters& counters = kernel_counters();
  counters.solves.add(lanes);
  counters.diverged.add(diverged_lanes);
  counters.worklist_evals.add(evals);
  counters.worklist_skips.add(skips);
  counters.sticky_hits.add(sticky_hits);
  counters.batch_solves.add(1);
  counters.batch_lanes.add(lanes);
  counters.batch_evals.add(evals);
  counters.batch_dups.add(dup_lanes);
  // Cross-lane sharing also fires on cold batches, so the memo-copy tally
  // is flushed regardless of a base being present.
  counters.warm_replayed.add(copies);
  if (warm_lanes > 0) {
    counters.warm_solves.add(warm_lanes);
    counters.warm_identical.add(identical_lanes);
    counters.warm_affected.add(delta_total);
  }
}

PreparedProblem::Scratch& PreparedProblem::thread_scratch() {
  thread_local Scratch scratch;
  return scratch;
}

PreparedProblem::BatchScratch& PreparedProblem::thread_batch_scratch() {
  thread_local BatchScratch scratch;
  return scratch;
}

}  // namespace ftmc::sched
