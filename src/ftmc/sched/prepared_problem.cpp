#include "ftmc/sched/prepared_problem.hpp"

#include <algorithm>
#include <stdexcept>

#include "ftmc/hardening/reliability.hpp"  // scaled_time
#include "ftmc/obs/metrics.hpp"

namespace ftmc::sched {

namespace {

/// ceil(a / b) for non-negative a, positive b.
constexpr model::Time ceil_div(model::Time a, model::Time b) noexcept {
  return (a + b - 1) / b;
}

/// Kernel counters, tallied in plain locals during a solve and flushed once
/// at the end — the fixed point itself never reads them, so instrumented
/// and uninstrumented runs are bitwise identical.
struct KernelCounters {
  obs::Counter solves{"sched.solves"};
  obs::Counter diverged{"sched.solve_divergences"};
  obs::Counter worklist_evals{"sched.worklist.node_evals"};
  obs::Counter worklist_skips{"sched.worklist.skipped_evals"};
  obs::Counter sticky_hits{"sched.worklist.sticky_hits"};
  obs::Counter sweep_evals{"sched.sweep.node_evals"};
};

KernelCounters& kernel_counters() {
  static KernelCounters counters;
  return counters;
}

}  // namespace

PreparedProblem::PreparedProblem(const model::Architecture& arch,
                                 const model::ApplicationSet& apps,
                                 const model::Mapping& mapping,
                                 std::span<const std::uint32_t> priorities,
                                 const HolisticAnalysis::Options& options)
    : options_(options) {
  n_ = apps.task_count();
  if (priorities.size() != n_)
    throw std::invalid_argument("HolisticAnalysis: priorities size mismatch");
  if (!mapping.within(arch.processor_count()))
    throw std::invalid_argument("HolisticAnalysis: mapping out of range");

  // Remote channels: plain added latency by default, or explicit message
  // nodes scheduled on a shared-bus pseudo-PE when contention is modeled.
  struct Message {
    std::size_t src, dst;
    model::Time transfer;
  };
  std::vector<Message> messages;
  std::vector<std::vector<InEdge>> in_edges(n_);
  for (std::uint32_t g = 0; g < apps.graph_count(); ++g) {
    const model::TaskGraph& graph = apps.graph(model::GraphId{g});
    for (const model::Channel& channel : graph.channels()) {
      const std::size_t src = apps.flat_index({g, channel.src});
      const std::size_t dst = apps.flat_index({g, channel.dst});
      const bool remote =
          mapping.processor_of_flat(src) != mapping.processor_of_flat(dst);
      if (remote && options_.bus_contention &&
          arch.transfer_time(channel.size_bytes) > 0) {
        messages.push_back(
            {src, dst, arch.transfer_time(channel.size_bytes)});
      } else {
        const model::Time delay =
            remote ? arch.transfer_time(channel.size_bytes) : 0;
        in_edges[dst].push_back(InEdge{src, delay});
      }
    }
  }

  total_ = n_ + messages.size();
  const std::uint32_t bus_pe =
      static_cast<std::uint32_t>(arch.processor_count());

  pe_ref_.resize(n_);
  period_.resize(total_);
  graph_of_.resize(total_);
  in_edges.resize(total_);
  std::vector<std::uint32_t> pe_of(total_);
  std::vector<std::uint64_t> rank(total_);

  for (std::size_t i = 0; i < n_; ++i) {
    const model::TaskRef ref = apps.task_ref(i);
    pe_ref_[i] = &arch.processor(mapping.processor_of_flat(i));
    period_[i] = apps.graph(ref.graph_id()).period();
    graph_of_[i] = ref.graph;
    pe_of[i] = mapping.processor_of_flat(i).value;
    rank[i] = priorities[i];
  }
  message_src_.resize(messages.size());
  message_transfer_.resize(messages.size());
  for (std::size_t q = 0; q < messages.size(); ++q) {
    const std::size_t node = n_ + q;
    const Message& message = messages[q];
    message_src_[q] = message.src;
    message_transfer_[q] = message.transfer;
    period_[node] = period_[message.src];
    graph_of_[node] = graph_of_[message.src];
    pe_of[node] = bus_pe;
    // Messages inherit the producer's priority; the edge index keeps bus
    // ranks unique (only bus nodes are ever compared with each other).
    rank[node] = (static_cast<std::uint64_t>(priorities[message.src]) << 16) |
                 q;
    in_edges[node].push_back(InEdge{message.src, 0});
    in_edges[message.dst].push_back(InEdge{node, 0});
  }
  in_edges_ = std::move(in_edges);

  interferers_.resize(total_);
  for (std::size_t i = 0; i < total_; ++i)
    for (std::size_t u = 0; u < total_; ++u)
      if (u != i && pe_of[u] == pe_of[i] && rank[u] < rank[i])
        interferers_[i].push_back(u);

  // Successor lists drive the relation DFS, the topological sort, and the
  // worklist dependency edges.
  std::vector<std::vector<std::size_t>> succs(total_);
  for (std::size_t i = 0; i < total_; ++i)
    for (const InEdge& edge : in_edges_[i]) succs[edge.src].push_back(i);

  // Transitive reachability over the precedence edges (u ~ i iff u reaches
  // i or i reaches u), packed as one bitset row per node.  Edges only exist
  // within a graph, so this is the same-graph relation the interference
  // refinement needs; it also covers message nodes under bus contention.
  words_ = (total_ + 63) / 64;
  related_bits_.assign(total_ * words_, 0);
  auto set_related = [&](std::size_t a, std::size_t b) {
    related_bits_[a * words_ + (b >> 6)] |= std::uint64_t{1} << (b & 63);
  };
  std::vector<std::size_t> stack;
  std::vector<std::uint8_t> seen(total_, 0);
  for (std::size_t s = 0; s < total_; ++s) {
    std::fill(seen.begin(), seen.end(), 0);
    stack.assign(1, s);
    seen[s] = 1;
    while (!stack.empty()) {
      const std::size_t v = stack.back();
      stack.pop_back();
      for (const std::size_t w : succs[v]) {
        if (seen[w]) continue;
        seen[w] = 1;
        set_related(s, w);
        set_related(w, s);
        stack.push_back(w);
      }
    }
  }

  // Kahn topological order over the precedence DAG (task graphs are
  // validated acyclic at construction; message nodes split existing edges,
  // so the flattened graph stays a DAG — the throw is a safety net).
  std::vector<std::size_t> indegree(total_, 0);
  for (std::size_t i = 0; i < total_; ++i) indegree[i] = in_edges_[i].size();
  topo_order_.reserve(total_);
  for (std::size_t i = 0; i < total_; ++i)
    if (indegree[i] == 0) topo_order_.push_back(i);
  for (std::size_t head = 0; head < topo_order_.size(); ++head) {
    const std::size_t v = topo_order_[head];
    for (const std::size_t w : succs[v])
      if (--indegree[w] == 0) topo_order_.push_back(w);
  }
  if (topo_order_.size() != total_)
    throw std::invalid_argument("HolisticAnalysis: precedence cycle");

  // Worklist dependency edges: node i's worst-case equation reads the
  // windows of its precedence predecessors (arrival) and of every
  // higher-priority same-PE node (interference) — so a change to node u
  // must re-queue u's successors and the nodes u interferes with.
  dependents_.resize(total_);
  for (std::size_t i = 0; i < total_; ++i)
    for (const InEdge& edge : in_edges_[i]) dependents_[edge.src].push_back(i);
  for (std::size_t i = 0; i < total_; ++i)
    for (const std::size_t u : interferers_[i]) dependents_[u].push_back(i);
  for (std::vector<std::size_t>& deps : dependents_) {
    std::sort(deps.begin(), deps.end());
    deps.erase(std::unique(deps.begin(), deps.end()), deps.end());
  }

  horizon_ = options_.horizon_hyperperiods * apps.hyperperiod();
}

void PreparedProblem::load_bounds(std::span<const ExecBounds> bounds,
                                  Scratch& s) const {
  if (bounds.size() != n_)
    throw std::invalid_argument("HolisticAnalysis: bounds size mismatch");
  s.c_min.resize(total_);
  s.c_max.resize(total_);
  s.release_cutoff.resize(total_);
  for (std::size_t i = 0; i < n_; ++i) {
    if (bounds[i].bcet < 0 || bounds[i].wcet < bounds[i].bcet)
      throw std::invalid_argument("HolisticAnalysis: invalid ExecBounds");
    s.c_min[i] = hardening::scaled_time(*pe_ref_[i], bounds[i].bcet);
    s.c_max[i] = hardening::scaled_time(*pe_ref_[i], bounds[i].wcet);
    s.release_cutoff[i] = bounds[i].release_cutoff;
  }
  for (std::size_t q = 0; q < message_src_.size(); ++q) {
    const std::size_t node = n_ + q;
    const std::size_t src = message_src_[q];
    // A message exists exactly when its producer runs; zero-size producer
    // bounds (dropped / inactive tasks) silence the message too.
    s.c_min[node] = s.c_min[src] == 0 ? 0 : message_transfer_[q];
    s.c_max[node] = s.c_max[src] == 0 ? 0 : message_transfer_[q];
    s.release_cutoff[node] = s.release_cutoff[src];
  }
}

void PreparedProblem::best_case(Scratch& s) const {
  // Interference-free longest path: exact in one topological pass (the
  // original swept to stability, but the DAG fixed point is unique and a
  // topo pass reaches it directly).
  s.min_start.resize(total_);
  s.min_finish.resize(total_);
  for (const std::size_t i : topo_order_) {
    model::Time ready = 0;
    for (const InEdge& edge : in_edges_[i])
      ready = std::max(ready, s.min_finish[edge.src] + edge.delay);
    s.min_start[i] = ready;
    s.min_finish[i] = ready + s.c_min[i];
  }
}

// One worst-case re-evaluation of node i — the exact operator of the
// original monolithic kernel (see holistic.hpp for the formulation):
//
// Offset-aware: all graphs release in phase, so every job of every task
// lives in an absolute window [k*T_u + minStart_u, k*T_u + maxFinish_u]
// relative to the common release.  A job (u, k) can steal CPU inside
// [S, S + w) only if it may be unfinished at S and may arrive before the
// window closes; same-graph precedence excludes the k = 0 job of transitive
// predecessors and successors.  If the single-instance response exceeds the
// task's own period, the offset argument for self-interference breaks and
// the task falls back to the classical jitter-based busy window, which is
// unconditionally safe.  Note the operator is NOT monotone in the node's
// arrival (a later window start can exclude whole interfering jobs), so the
// global fixed point depends on evaluation order; both drivers below
// preserve the reference sweep's flat evaluation order exactly.
PreparedProblem::UpdateOutcome PreparedProblem::update_node(
    std::size_t i, Scratch& s) const {
  const bool offset_aware = options_.precedence_aware;
  const model::Time horizon = horizon_;

  // Release jitter of a task: the width of its ready-time band.
  const auto jitter = [&](std::size_t u) {
    return s.max_arrival[u] - s.min_start[u];
  };

  // --- Classical jitter-based bound (fallback / offset_aware == false) ---
  const auto jitter_interference = [&](model::Time w) {
    model::Time total = 0;
    for (const std::size_t u : interferers_[i]) {
      if (s.c_max[u] == 0) continue;
      total += ceil_div(w + jitter(u), period_[u]) * s.c_max[u];
    }
    return total;
  };

  const auto solve_jitter_window = [&](model::Time base) {
    model::Time w = base;
    for (std::size_t iter = 0; iter < options_.max_inner_iterations; ++iter) {
      const model::Time next = base + jitter_interference(w);
      if (next == w) return w;
      w = next;
      if (w > horizon) return horizon + 1;
    }
    return horizon + 1;
  };

  const auto jitter_fallback = [&](model::Time arrival) {
    const model::Time busy = solve_jitter_window(s.c_max[i]);
    const model::Time own_jobs =
        busy > horizon
            ? 1
            : ceil_div(busy + (arrival - s.min_start[i]), period_[i]);
    model::Time best = 0;
    for (model::Time q = 0; q < own_jobs; ++q) {
      const model::Time w = solve_jitter_window((q + 1) * s.c_max[i]);
      if (w > horizon) return horizon + 1;
      best = std::max(best, w + arrival - q * period_[i]);
    }
    return best;
  };

  // --- Offset-aware bound: interference on i inside [start, start + w). ---
  const auto offset_interference = [&](model::Time start, model::Time w) {
    model::Time total = 0;
    for (const std::size_t u : interferers_[i]) {
      if (s.c_max[u] == 0) continue;
      const bool same_graph_related =
          graph_of_[u] == graph_of_[i] && related(i, u);
      const model::Time t_u = period_[u];
      // Jobs whose activity window can overlap [start, start + w).
      const model::Time k_end =
          (start + w - s.min_start[u] + t_u - 1) / t_u;
      for (model::Time k = 0; k < k_end; ++k) {
        if (same_graph_related && k == 0) continue;
        // Dropped applications release no further instances once the
        // critical-state transition is complete.
        if (k * t_u + s.min_start[u] > s.release_cutoff[u]) continue;
        if (k * t_u + s.max_finish[u] <= start) continue;
        if (k * t_u + s.min_start[u] >= start + w) break;
        total += s.c_max[u];
      }
    }
    return total;
  };

  const auto solve_offset_window = [&](model::Time start) {
    model::Time w = s.c_max[i];
    for (std::size_t iter = 0; iter < options_.max_inner_iterations; ++iter) {
      const model::Time next = s.c_max[i] + offset_interference(start, w);
      if (next == w) return w;
      w = next;
      if (w > horizon) return horizon + 1;
    }
    return horizon + 1;
  };

  const auto offset_finish = [&](model::Time arrival) {
    // For preemptive fixed priorities the completion of a job is monotone
    // in its arrival (a later arrival can only see less available CPU), so
    // the latest ready time is the worst-case window start.
    const model::Time w = solve_offset_window(arrival);
    if (w > horizon) return horizon + 1;
    return arrival + w;
  };

  model::Time arrival = 0;
  for (const InEdge& edge : in_edges_[i])
    arrival = std::max(arrival, s.max_finish[edge.src] + edge.delay);
  if (arrival > horizon) {
    s.diverged = true;
    arrival = horizon + 1;
  }

  model::Time finish;
  if (s.c_max[i] == 0) {
    // Zero-length (dropped / inactive) tasks complete upon readiness.
    finish = arrival;
  } else if (arrival > horizon) {
    finish = horizon + 1;
  } else {
    finish = offset_aware ? offset_finish(arrival) : jitter_fallback(arrival);
    // Self re-arrival: beyond one period the offset argument for the
    // analyzed job no longer holds; use the jitter-based bound.
    if (offset_aware && finish > period_[i])
      finish = std::max(finish, jitter_fallback(arrival));
    if (finish > horizon) {
      s.diverged = true;
      finish = horizon + 1;
    }
  }

  UpdateOutcome outcome;
  outcome.raw_changed =
      arrival != s.max_arrival[i] || finish != s.max_finish[i];
  if (outcome.raw_changed) {
    // Non-decreasing updates only (guarded max), as in the reference sweep.
    const model::Time new_arrival = std::max(s.max_arrival[i], arrival);
    const model::Time new_finish = std::max(s.max_finish[i], finish);
    outcome.stored_changed = new_arrival != s.max_arrival[i] ||
                             new_finish != s.max_finish[i];
    s.max_arrival[i] = new_arrival;
    s.max_finish[i] = new_finish;
    // Computed window still below the ratcheted state: with unchanged
    // inputs this node will report raw_changed on every future visit.
    outcome.sticky =
        arrival != s.max_arrival[i] || finish != s.max_finish[i];
  }
  return outcome;
}

void PreparedProblem::worst_case_worklist(Scratch& s) const {
  // Change-driven rounds in the reference sweep's flat order: a round
  // re-evaluates only the nodes whose inputs (the stored windows of their
  // precedence predecessors and interferers) changed since their last
  // visit.  Skipped evaluations are exactly the ones that are no-ops in the
  // reference sweep — unchanged inputs reproduce the previous computed
  // window, which the guarded max already absorbed — so the stored-state
  // trajectory, round for round, is identical to sweeping every node.
  // Within a round the ascending scan preserves the sweep's Gauss-Seidel
  // visibility: when node u's stored window changes, readers with a higher
  // flat index are picked up later in the same round, lower ones next
  // round, exactly as the full sweep would see them.
  //
  // "Sticky" nodes (computed window below the ratcheted stored state) are
  // the one case where the reference sweep re-reports instability without
  // changing any value; once only sticky nodes remain the sweep burns its
  // remaining round budget and lands on the diverged path, which we can
  // take immediately.
  s.dirty.assign(total_, 1);
  s.sticky.assign(total_, 0);
  std::size_t dirty_count = total_;
  std::size_t sticky_count = 0;
  std::uint64_t evals = 0, skips = 0, sticky_hits = 0;
  bool stable = false;
  for (std::size_t outer = 0;
       outer < options_.max_outer_iterations && !stable; ++outer) {
    stable = true;
    for (std::size_t i = 0; i < total_; ++i) {
      if (!s.dirty[i]) {
        ++skips;
        if (s.sticky[i]) {
          ++sticky_hits;
          stable = false;
        }
        continue;
      }
      s.dirty[i] = 0;
      --dirty_count;
      ++evals;
      const UpdateOutcome outcome = update_node(i, s);
      if (outcome.raw_changed) stable = false;
      if (outcome.sticky != static_cast<bool>(s.sticky[i])) {
        s.sticky[i] = outcome.sticky ? 1 : 0;
        outcome.sticky ? ++sticky_count : --sticky_count;
      }
      if (outcome.stored_changed) {
        for (const std::size_t dep : dependents_[i]) {
          if (!s.dirty[dep]) {
            s.dirty[dep] = 1;
            ++dirty_count;
          }
        }
      }
    }
    // Keep iterating even after a divergence: values clamp at horizon + 1,
    // so the rounds still stabilize, and tasks not involved in the overload
    // (e.g. high-priority critical graphs above diverging dropped ones)
    // retain trustworthy fixed-point bounds.
    //
    // Only sticky nodes left: no stored value can ever change again, so
    // every remaining reference round is a no-op with stable == false — the
    // reference sweep burns its whole round budget and diverges.  (With no
    // sticky nodes the next round is the cheap stability confirmation.)
    if (!stable && dirty_count == 0 && sticky_count > 0) break;
  }
  if (!stable) {
    // Could not certify a fixed point: no value is trustworthy.
    s.diverged = true;
    std::fill(s.max_finish.begin(), s.max_finish.end(), horizon_ + 1);
  }
  KernelCounters& counters = kernel_counters();
  counters.worklist_evals.add(evals);
  counters.worklist_skips.add(skips);
  counters.sticky_hits.add(sticky_hits);
}

void PreparedProblem::worst_case_sweep(Scratch& s) const {
  // Reference mode: the original full sweep over all nodes in flat order
  // until a sweep changes nothing (or the budget runs out).
  std::uint64_t evals = 0;
  bool stable = false;
  for (std::size_t outer = 0;
       outer < options_.max_outer_iterations && !stable; ++outer) {
    stable = true;
    for (std::size_t i = 0; i < total_; ++i) {
      ++evals;
      if (update_node(i, s).raw_changed) stable = false;
    }
  }
  if (!stable) {
    s.diverged = true;
    std::fill(s.max_finish.begin(), s.max_finish.end(), horizon_ + 1);
  }
  kernel_counters().sweep_evals.add(evals);
}

void PreparedProblem::solve(std::span<const ExecBounds> bounds,
                            Scratch& s) const {
  load_bounds(bounds, s);
  s.diverged = false;
  best_case(s);
  // Worst-case iteration starts from the best-case solution, exactly like
  // the reference sweep (both drivers replay its evaluation order, so the
  // whole trajectory — including the divergence verdict — is identical).
  s.max_arrival.assign(s.min_start.begin(), s.min_start.end());
  s.max_finish.assign(s.min_finish.begin(), s.min_finish.end());
  if (options_.worklist_fixed_point)
    worst_case_worklist(s);
  else
    worst_case_sweep(s);
  KernelCounters& counters = kernel_counters();
  counters.solves.add(1);
  if (s.diverged) counters.diverged.add(1);
}

AnalysisResult PreparedProblem::materialize(const Scratch& s) const {
  AnalysisResult result;
  result.windows.assign(n_, TaskWindow{});
  for (std::size_t i = 0; i < n_; ++i) {
    TaskWindow& window = result.windows[i];
    window.min_start = s.min_start[i];
    window.min_finish = s.min_finish[i];
    window.max_start = s.max_arrival[i];
    window.max_finish = s.max_finish[i];
    window.schedulable = s.max_finish[i] <= horizon_;
    if (!window.schedulable) window.max_finish = kUnschedulable;
  }
  result.schedulable = !s.diverged;
  return result;
}

AnalysisResult PreparedProblem::solve(
    std::span<const ExecBounds> bounds) const {
  Scratch& scratch = thread_scratch();
  solve(bounds, scratch);
  return materialize(scratch);
}

PreparedProblem::Scratch& PreparedProblem::thread_scratch() {
  thread_local Scratch scratch;
  return scratch;
}

}  // namespace ftmc::sched
