// Prepared holistic analysis kernel: build the problem once, solve N times.
//
// Algorithm 1 analyzes one candidate (mapping + priorities) against many
// exec-bounds vectors — one per transition scenario.  Everything except the
// bounds is scenario-invariant: the flattened node set (tasks + bus message
// nodes), the precedence edges, the per-PE interferer lists, the transitive
// same-graph relation matrix, and the analysis horizon.  PreparedProblem
// captures all of that once; solve(bounds, scratch) then runs the best-case
// and worst-case fixed points against caller-owned scratch buffers with no
// per-scenario allocation (scratch grows on first use and is reused across
// scenarios and candidates).
//
// Beyond amortizing construction, the kernel is faster than the original
// monolithic HolisticAnalysis::analyze in three ways:
//   - the relation matrix is a packed 64-bit bitset row matrix instead of
//     vector<vector<bool>> (one load + mask per membership test, rows hot in
//     cache during the interference inner loop);
//   - the best-case bound is a single topological pass (it is an exact DAG
//     longest path, so sweeping to stability is redundant);
//   - the worst-case global fixed point, after the first round, only
//     re-evaluates nodes whose inputs changed (change-driven worklist)
//     instead of every node every sweep.  A reference full-sweep mode
//     (Options::worklist_fixed_point = false) keeps the original iteration
//     scheme for differential tests and the worklist-vs-sweep bench.
//
// Two further amortizations sit on top (both optional, both bit-identical):
//
//   - Warm-started scenario solving (Options::warm_start): solve_capture()
//     records the base solve's whole Gauss-Seidel trajectory — every node
//     evaluation with its (round, node) position, resulting stored window,
//     and outcome flags — as a BaseRecord.  A scenario solve then runs the
//     cold worklist algorithm verbatim, but treats the record as a
//     memoization table: the worst-case operator is a pure function of the
//     node's stored window, its parameters, and the windows of its inputs
//     (precedence predecessors and interferers), so whenever a lane's whole
//     input set is bitwise-identical to the base's at the same trajectory
//     position, the recorded outcome is copied instead of recomputed.
//     Coincidence is tracked with a per-lane value-delta bitset against a
//     shared "shadow" replay of the base's stored state; scenarios are
//     small deltas of the base, so almost every evaluation collapses into
//     an O(words) bitmask test plus a copy.  Memoization, not fixed-point
//     reuse: seeding a scenario from the base *fixed point* would not be
//     bit-identical, because the operator is non-monotone and the stored
//     state only ratchets upward (see the trajectory note below).
//   - Batched scenario solving (Options::scenario_batch): solve_many() lays
//     N scenarios out as structure-of-arrays lanes (state indexed
//     [lane * total + node], so each lane's evaluation walks memory exactly
//     like the scalar solver) and runs them through one joint round loop.
//     Visiting the same (round, node) across all lanes back to back is what
//     lets one lane's evaluation stand in for the next one's (the
//     cross-lane copy below).  Lanes are fully independent, so the
//     interleaving is trivially bit-identical to solving them one by one.
//
// Every mode returns bit-identical results to every other and to the
// original monolithic path (tests/test_prepared_problem.cpp and the fuzz
// harness tests/test_kernel_fuzz.cpp).  That identity
// is by trajectory, not by fixed-point theory: the offset-aware worst-case
// operator is NOT monotone in a node's arrival (shifting a busy window right
// can drop whole interfering jobs), so different evaluation orders can
// ratchet the guarded-max state to different fixed points.  The worklist
// therefore visits dirty nodes in the reference sweep's flat order and skips
// exactly the evaluations that are provably no-ops there — same inputs as
// the previous visit implies the same computed window, which the guarded max
// already absorbed.  Nodes whose computed window stays below the ratcheted
// state ("sticky") keep the reference sweep unstable until its round budget
// exhausts; the worklist tracks them and reproduces that divergence verdict
// without burning the rounds.
#pragma once

#include <cstdint>
#include <vector>

#include "ftmc/sched/holistic.hpp"

namespace ftmc::sched {

class PreparedProblem final : public PreparedAnalysis {
 public:
  /// Caller-owned solve state.  All vectors are resized on demand and keep
  /// their capacity, so reusing one Scratch across solve() calls (and across
  /// PreparedProblems) makes the per-scenario allocation count zero.
  struct Scratch {
    // Per-solve problem inputs (bounds-dependent node parameters).
    std::vector<model::Time> c_min, c_max, release_cutoff;
    // Fixed-point state: best-case ready/finish, worst-case ready/finish.
    std::vector<model::Time> min_start, min_finish, max_arrival, max_finish;
    // Worklist mode: nodes whose inputs changed since their last visit, and
    // nodes whose last computed window differs from the ratcheted state
    // (these keep the reference sweep unstable; see worst_case_worklist).
    std::vector<std::uint8_t> dirty;
    std::vector<std::uint8_t> sticky;
    bool diverged = false;
  };

  /// Recorded base solve for warm-started scenario replay (see the header
  /// notes).  Produced by solve_capture(); opaque to callers, consumed by
  /// solve_many() on the same PreparedProblem.
  struct BaseRecord final : WarmBase {
    /// Recording completed within the size cap; when false the record is
    /// unusable and scenario solves fall back to cold.
    bool valid = false;

    // Loaded per-node parameters (post speed scaling / message derivation)
    // of the base bounds — scenario deltas are computed against these.
    std::vector<model::Time> c_min, c_max, release_cutoff;
    // Best-case windows (the worst-case seed / shadow start) and the final
    // solution, for the identical-scenario shortcut.
    std::vector<model::Time> min_start, min_finish, max_arrival, max_finish;
    bool diverged = false;

    /// One recorded evaluation: its (round, node) position, the stored
    /// window after the visit, and the UpdateOutcome flags.  The operator
    /// is a pure function of its inputs, so a scenario evaluation whose
    /// whole input set is bitwise-identical to the base's at the same
    /// trajectory position reproduces exactly this entry.
    struct Eval {
      std::uint32_t round, node;
      model::Time arrival, finish;
      std::uint8_t flags;
    };
    static constexpr std::uint8_t kRaw = 1;      ///< raw_changed
    static constexpr std::uint8_t kStored = 2;   ///< stored_changed
    static constexpr std::uint8_t kSticky = 4;   ///< sticky
    static constexpr std::uint8_t kDiverged = 8; ///< diverged
    /// Every base evaluation in trajectory order (round asc, node asc
    /// within a round — the worklist's visit order).
    std::vector<Eval> evals;
  };

  /// Caller-owned state of one batched solve: structure-of-arrays over
  /// `lanes` scenarios, state indexed [lane * total + node].  Same reuse
  /// contract as Scratch (grows on demand, keeps capacity).
  struct BatchScratch {
    std::size_t lanes = 0;
    // Per (node, lane) fixed-point state.
    std::vector<model::Time> c_min, c_max, release_cutoff;
    std::vector<model::Time> min_start, min_finish, max_arrival, max_finish;
    std::vector<std::uint8_t> dirty, sticky;
    // Per-lane driver state.
    std::vector<std::uint8_t> lane_active, lane_round_stable;
    std::vector<std::uint8_t> lane_stable, lane_diverged;
    /// Lane proven to never certify a round within the budget (all-sticky
    /// with no dirty work left — the scalar driver's early break): retired
    /// onto the same diverged fill the exhausted-budget path produces.
    std::vector<std::uint8_t> lane_exhausted;
    std::vector<std::size_t> dirty_count, sticky_count;
    /// Per-node counts of set dirty/sticky bits across lanes (retired
    /// lanes' leftover bits included — conservative): a joint-scan position
    /// with both counts zero is skipped for all lanes in one test.
    std::vector<std::uint32_t> node_dirty, node_sticky;
    /// Post-fold lane dedup: earlier lane with a bitwise-equal parameter
    /// set (solved once, its solution copied at finalization), and each
    /// lane's parameter-set signature gating the full compare.
    std::vector<std::uint32_t> dup_of;
    std::vector<std::uint64_t> lane_sig;
    /// Shared replay of the base solve's stored state, advanced through the
    /// eval log in (round, node) lockstep with the joint scan.
    std::vector<model::Time> shadow_arrival, shadow_finish;
    /// Per-lane bitsets over nodes (words per lane as in related_bits_,
    /// concatenated lane by lane).  `static_delta`: the node's operator
    /// parameters (c_max, release_cutoff, best-case start) differ from the
    /// base's — fixed per solve.  `delta`: static_delta OR the node's
    /// stored window currently differs from the shadow.  An evaluation may
    /// copy the base's recorded outcome iff the delta bits of its whole
    /// input set are clear.
    std::vector<std::uint64_t> static_delta, delta;
  };

  /// Builds the bounds-independent problem structure.  All references are
  /// borrowed: arch and apps (and the backing mapping) must outlive this
  /// object; `priorities` is copied.  Throws std::invalid_argument on a
  /// mapping/priorities shape mismatch, exactly like the monolithic entry.
  PreparedProblem(const model::Architecture& arch,
                  const model::ApplicationSet& apps,
                  const model::Mapping& mapping,
                  std::span<const std::uint32_t> priorities,
                  const HolisticAnalysis::Options& options);

  /// Application tasks (result windows cover exactly these).
  std::size_t task_count() const noexcept { return n_; }
  /// Tasks plus bus message nodes (internal fixed-point width).
  std::size_t node_count() const noexcept { return total_; }

  /// Runs both fixed points for one bounds vector, leaving the solution in
  /// `scratch` (read it back via materialize).  Zero allocation once the
  /// scratch has reached this problem's size.  Thread-safe: `this` is
  /// immutable after construction; concurrent callers need distinct scratch.
  void solve(std::span<const ExecBounds> bounds, Scratch& scratch) const;

  /// Packages a solved scratch into the public result form.
  AnalysisResult materialize(const Scratch& scratch) const;

  /// PreparedAnalysis entry: solve on this worker's arena scratch.
  AnalysisResult solve(std::span<const ExecBounds> bounds) const override;

  /// Solve + record the trajectory as a warm-start base (null when
  /// Options::warm_start is off, the solver is in sweep mode, or the
  /// record overflowed its size cap).  Result is identical to solve().
  AnalysisResult solve_capture(std::span<const ExecBounds> bounds,
                               std::unique_ptr<WarmBase>& base) const override;

  /// Options::scenario_batch in worklist mode, 1 in sweep mode.
  std::size_t preferred_batch() const override;

  /// Warm-started / batched scenario fan-out (see header notes).  Routes to
  /// solve_batch() in worklist mode; sweep mode and single cold scenarios
  /// fall back to the scalar path.  Bitwise identical to per-scenario
  /// solve() in every configuration.
  void solve_many(std::span<const std::span<const ExecBounds>> scenarios,
                  const WarmBase* base,
                  std::span<AnalysisResult> results) const override;
  using PreparedAnalysis::solve_many;

  /// The batched SoA driver: solves all scenarios as parallel lanes of one
  /// round loop, each lane warm-started from `base` when non-null.
  /// Requires worklist mode; `results` must match `scenarios` in size.
  void solve_batch(std::span<const std::span<const ExecBounds>> scenarios,
                   const BaseRecord* base, BatchScratch& scratch,
                   std::span<AnalysisResult> results) const;

  /// Per-worker scratch arena (thread-local), reused by every solve() on
  /// any PreparedProblem this thread touches — across scenarios, candidates,
  /// and GA generations.
  static Scratch& thread_scratch();

  /// Per-worker batched-solve arena (thread-local), like thread_scratch().
  static BatchScratch& thread_batch_scratch();

 private:
  struct InEdge {
    std::size_t src;
    model::Time delay;
  };

  bool related(std::size_t i, std::size_t u) const noexcept {
    return (related_bits_[i * words_ + (u >> 6)] >> (u & 63)) & 1u;
  }

  /// Outcome of one worst-case node evaluation.  `raw_changed` mirrors the
  /// reference sweep's stability test (computed != stored before the guarded
  /// max); `stored_changed` reports whether the guarded max actually moved
  /// the stored window, i.e. whether readers of this node see new inputs;
  /// `sticky` means re-evaluating with unchanged inputs would report
  /// raw_changed again (computed window below the ratcheted state);
  /// `diverged` reports a bound past the horizon (the driver ORs it into
  /// the solve-level flag).
  struct UpdateOutcome {
    bool raw_changed = false;
    bool stored_changed = false;
    bool sticky = false;
    bool diverged = false;
  };

  void load_bounds(std::span<const ExecBounds> bounds, Scratch& s) const;
  void best_case(Scratch& s) const;
  /// The worst-case operator over any state view (scalar Scratch or one
  /// batch lane) — a single definition keeps the paths bitwise identical.
  template <class State>
  UpdateOutcome update_node_t(std::size_t i, State& state) const;
  UpdateOutcome update_node(std::size_t i, Scratch& s) const;
  void worst_case_worklist(Scratch& s, BaseRecord* record) const;
  void worst_case_sweep(Scratch& s) const;
  void solve_impl(std::span<const ExecBounds> bounds, Scratch& s,
                  BaseRecord* record) const;

  HolisticAnalysis::Options options_;
  std::size_t n_ = 0;      ///< application tasks
  std::size_t total_ = 0;  ///< tasks + message nodes
  std::size_t words_ = 0;  ///< 64-bit words per relation row

  // Bounds-independent node parameters.
  std::vector<const model::Processor*> pe_ref_;  ///< per task, for scaling
  std::vector<model::Time> period_;
  std::vector<std::uint32_t> graph_of_;
  model::Time horizon_ = 0;

  // Message nodes (bus contention): node n_+q exists for message q.
  std::vector<std::size_t> message_src_;
  std::vector<model::Time> message_transfer_;

  // Graph structure.
  std::vector<std::vector<InEdge>> in_edges_;
  std::vector<std::vector<std::size_t>> interferers_;
  std::vector<std::uint64_t> related_bits_;
  /// input_bits_[i]: bitset row (words_ words) over the nodes the worst-case
  /// operator reads when evaluating i — i itself, its precedence
  /// predecessors, and its interferers.  Drives the memo-copy test of the
  /// warm-started batch driver.
  std::vector<std::uint64_t> input_bits_;
  /// The same input sets as explicit node lists (CSR: input_offsets_[i] ..
  /// input_offsets_[i+1] into input_nodes_, i itself excluded).  Drives the
  /// cross-lane outcome-sharing test of the batch driver, which compares
  /// two lanes' input values directly.
  std::vector<std::uint32_t> input_nodes_;
  std::vector<std::uint32_t> input_offsets_;
  /// Nodes in dependency-respecting order (precedence edges only).
  std::vector<std::size_t> topo_order_;
  /// dependents_[u]: nodes whose worst-case equation reads u's window —
  /// precedence successors plus lower-priority same-PE tasks.
  std::vector<std::vector<std::size_t>> dependents_;
};

}  // namespace ftmc::sched
