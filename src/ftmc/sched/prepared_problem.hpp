// Prepared holistic analysis kernel: build the problem once, solve N times.
//
// Algorithm 1 analyzes one candidate (mapping + priorities) against many
// exec-bounds vectors — one per transition scenario.  Everything except the
// bounds is scenario-invariant: the flattened node set (tasks + bus message
// nodes), the precedence edges, the per-PE interferer lists, the transitive
// same-graph relation matrix, and the analysis horizon.  PreparedProblem
// captures all of that once; solve(bounds, scratch) then runs the best-case
// and worst-case fixed points against caller-owned scratch buffers with no
// per-scenario allocation (scratch grows on first use and is reused across
// scenarios and candidates).
//
// Beyond amortizing construction, the kernel is faster than the original
// monolithic HolisticAnalysis::analyze in three ways:
//   - the relation matrix is a packed 64-bit bitset row matrix instead of
//     vector<vector<bool>> (one load + mask per membership test, rows hot in
//     cache during the interference inner loop);
//   - the best-case bound is a single topological pass (it is an exact DAG
//     longest path, so sweeping to stability is redundant);
//   - the worst-case global fixed point, after the first round, only
//     re-evaluates nodes whose inputs changed (change-driven worklist)
//     instead of every node every sweep.  A reference full-sweep mode
//     (Options::worklist_fixed_point = false) keeps the original iteration
//     scheme for differential tests and the worklist-vs-sweep bench.
//
// Every mode returns bit-identical results to every other and to the
// original monolithic path (tests/test_prepared_problem.cpp).  That identity
// is by trajectory, not by fixed-point theory: the offset-aware worst-case
// operator is NOT monotone in a node's arrival (shifting a busy window right
// can drop whole interfering jobs), so different evaluation orders can
// ratchet the guarded-max state to different fixed points.  The worklist
// therefore visits dirty nodes in the reference sweep's flat order and skips
// exactly the evaluations that are provably no-ops there — same inputs as
// the previous visit implies the same computed window, which the guarded max
// already absorbed.  Nodes whose computed window stays below the ratcheted
// state ("sticky") keep the reference sweep unstable until its round budget
// exhausts; the worklist tracks them and reproduces that divergence verdict
// without burning the rounds.
#pragma once

#include <cstdint>
#include <vector>

#include "ftmc/sched/holistic.hpp"

namespace ftmc::sched {

class PreparedProblem final : public PreparedAnalysis {
 public:
  /// Caller-owned solve state.  All vectors are resized on demand and keep
  /// their capacity, so reusing one Scratch across solve() calls (and across
  /// PreparedProblems) makes the per-scenario allocation count zero.
  struct Scratch {
    // Per-solve problem inputs (bounds-dependent node parameters).
    std::vector<model::Time> c_min, c_max, release_cutoff;
    // Fixed-point state: best-case ready/finish, worst-case ready/finish.
    std::vector<model::Time> min_start, min_finish, max_arrival, max_finish;
    // Worklist mode: nodes whose inputs changed since their last visit, and
    // nodes whose last computed window differs from the ratcheted state
    // (these keep the reference sweep unstable; see worst_case_worklist).
    std::vector<std::uint8_t> dirty;
    std::vector<std::uint8_t> sticky;
    bool diverged = false;
  };

  /// Builds the bounds-independent problem structure.  All references are
  /// borrowed: arch and apps (and the backing mapping) must outlive this
  /// object; `priorities` is copied.  Throws std::invalid_argument on a
  /// mapping/priorities shape mismatch, exactly like the monolithic entry.
  PreparedProblem(const model::Architecture& arch,
                  const model::ApplicationSet& apps,
                  const model::Mapping& mapping,
                  std::span<const std::uint32_t> priorities,
                  const HolisticAnalysis::Options& options);

  /// Application tasks (result windows cover exactly these).
  std::size_t task_count() const noexcept { return n_; }
  /// Tasks plus bus message nodes (internal fixed-point width).
  std::size_t node_count() const noexcept { return total_; }

  /// Runs both fixed points for one bounds vector, leaving the solution in
  /// `scratch` (read it back via materialize).  Zero allocation once the
  /// scratch has reached this problem's size.  Thread-safe: `this` is
  /// immutable after construction; concurrent callers need distinct scratch.
  void solve(std::span<const ExecBounds> bounds, Scratch& scratch) const;

  /// Packages a solved scratch into the public result form.
  AnalysisResult materialize(const Scratch& scratch) const;

  /// PreparedAnalysis entry: solve on this worker's arena scratch.
  AnalysisResult solve(std::span<const ExecBounds> bounds) const override;

  /// Per-worker scratch arena (thread-local), reused by every solve() on
  /// any PreparedProblem this thread touches — across scenarios, candidates,
  /// and GA generations.
  static Scratch& thread_scratch();

 private:
  struct InEdge {
    std::size_t src;
    model::Time delay;
  };

  bool related(std::size_t i, std::size_t u) const noexcept {
    return (related_bits_[i * words_ + (u >> 6)] >> (u & 63)) & 1u;
  }

  /// Outcome of one worst-case node evaluation.  `raw_changed` mirrors the
  /// reference sweep's stability test (computed != stored before the guarded
  /// max); `stored_changed` reports whether the guarded max actually moved
  /// the stored window, i.e. whether readers of this node see new inputs;
  /// `sticky` means re-evaluating with unchanged inputs would report
  /// raw_changed again (computed window below the ratcheted state).
  struct UpdateOutcome {
    bool raw_changed = false;
    bool stored_changed = false;
    bool sticky = false;
  };

  void load_bounds(std::span<const ExecBounds> bounds, Scratch& s) const;
  void best_case(Scratch& s) const;
  UpdateOutcome update_node(std::size_t i, Scratch& s) const;
  void worst_case_worklist(Scratch& s) const;
  void worst_case_sweep(Scratch& s) const;

  HolisticAnalysis::Options options_;
  std::size_t n_ = 0;      ///< application tasks
  std::size_t total_ = 0;  ///< tasks + message nodes
  std::size_t words_ = 0;  ///< 64-bit words per relation row

  // Bounds-independent node parameters.
  std::vector<const model::Processor*> pe_ref_;  ///< per task, for scaling
  std::vector<model::Time> period_;
  std::vector<std::uint32_t> graph_of_;
  model::Time horizon_ = 0;

  // Message nodes (bus contention): node n_+q exists for message q.
  std::vector<std::size_t> message_src_;
  std::vector<model::Time> message_transfer_;

  // Graph structure.
  std::vector<std::vector<InEdge>> in_edges_;
  std::vector<std::vector<std::size_t>> interferers_;
  std::vector<std::uint64_t> related_bits_;
  /// Nodes in dependency-respecting order (precedence edges only).
  std::vector<std::size_t> topo_order_;
  /// dependents_[u]: nodes whose worst-case equation reads u's window —
  /// precedence successors plus lower-priority same-PE tasks.
  std::vector<std::vector<std::size_t>> dependents_;
};

}  // namespace ftmc::sched
