#include "ftmc/sched/priority.hpp"

#include <algorithm>
#include <numeric>

namespace ftmc::sched {

namespace {

/// Position of each task within its graph's topological order.
std::vector<std::uint32_t> topo_position(const model::TaskGraph& graph) {
  std::vector<std::uint32_t> position(graph.task_count(), 0);
  const auto& order = graph.topological_order();
  for (std::uint32_t i = 0; i < order.size(); ++i) position[order[i]] = i;
  return position;
}

}  // namespace

std::vector<std::uint32_t> assign_priorities(const model::ApplicationSet& apps,
                                             PriorityPolicy policy) {
  struct Key {
    int criticality_class;      // 0 = non-droppable
    model::Time period;
    std::uint32_t graph;
    std::uint32_t topo;
    std::size_t flat;
  };
  std::vector<Key> keys;
  keys.reserve(apps.task_count());
  std::vector<std::vector<std::uint32_t>> positions;
  positions.reserve(apps.graph_count());
  for (std::uint32_t g = 0; g < apps.graph_count(); ++g)
    positions.push_back(topo_position(apps.graph(model::GraphId{g})));

  for (std::size_t flat = 0; flat < apps.task_count(); ++flat) {
    const model::TaskRef ref = apps.task_ref(flat);
    const model::TaskGraph& graph = apps.graph(ref.graph_id());
    keys.push_back(Key{graph.droppable() ? 1 : 0, graph.period(), ref.graph,
                       positions[ref.graph][ref.task], flat});
  }

  auto by_policy = [policy](const Key& a, const Key& b) {
    switch (policy) {
      case PriorityPolicy::kCriticalityRateMonotonic:
        return std::tie(a.criticality_class, a.period, a.graph, a.topo) <
               std::tie(b.criticality_class, b.period, b.graph, b.topo);
      case PriorityPolicy::kRateMonotonic:
        return std::tie(a.period, a.graph, a.topo) <
               std::tie(b.period, b.graph, b.topo);
      case PriorityPolicy::kFlatIndex:
        return a.flat < b.flat;
    }
    return a.flat < b.flat;
  };
  std::stable_sort(keys.begin(), keys.end(), by_policy);

  std::vector<std::uint32_t> ranks(apps.task_count(), 0);
  for (std::uint32_t rank = 0; rank < keys.size(); ++rank)
    ranks[keys[rank].flat] = rank;
  return ranks;
}

}  // namespace ftmc::sched
