// Global fixed-priority assignment for the per-PE preemptive schedulers.
//
// The paper's flow fixes hardening/mapping statically and schedules each PE
// locally at run time; we use fixed priorities.  The default policy orders
// by criticality class first (non-droppable above droppable), then
// rate-monotonically, then by graph and intra-graph topological position as
// a deterministic tie-break that respects precedence.
#pragma once

#include <cstdint>
#include <vector>

#include "ftmc/model/application_set.hpp"

namespace ftmc::sched {

enum class PriorityPolicy {
  kCriticalityRateMonotonic,  ///< criticality class, then period (ablation)
  kRateMonotonic,             ///< default: period, then graph order (paper-style FP)
  kFlatIndex,                 ///< declaration order (for tests)
};

/// Returns the priority rank of every task in flat order; 0 is the highest
/// priority and ranks are unique.
std::vector<std::uint32_t> assign_priorities(
    const model::ApplicationSet& apps,
    PriorityPolicy policy = PriorityPolicy::kRateMonotonic);

}  // namespace ftmc::sched
