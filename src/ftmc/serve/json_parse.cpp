#include "ftmc/serve/json_parse.hpp"

#include <cctype>
#include <cmath>
#include <cstdlib>

namespace ftmc::serve {

const JsonValue* JsonValue::get(std::string_view key) const noexcept {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [name, value] : object)
    if (name == key) return &value;
  return nullptr;
}

std::string JsonValue::str_or(std::string_view key,
                              const std::string& fallback) const {
  const JsonValue* value = get(key);
  return value != nullptr && value->kind == Kind::kString ? value->string
                                                          : fallback;
}

double JsonValue::num_or(std::string_view key, double fallback) const {
  const JsonValue* value = get(key);
  return value != nullptr && value->kind == Kind::kNumber ? value->number
                                                          : fallback;
}

std::uint64_t JsonValue::u64_or(std::string_view key,
                                std::uint64_t fallback) const {
  const JsonValue* value = get(key);
  if (value == nullptr || value->kind != Kind::kNumber) return fallback;
  if (value->number < 0.0) return fallback;
  return static_cast<std::uint64_t>(value->number);
}

bool JsonValue::bool_or(std::string_view key, bool fallback) const {
  const JsonValue* value = get(key);
  return value != nullptr && value->kind == Kind::kBool ? value->boolean
                                                        : fallback;
}

namespace {

constexpr std::size_t kMaxDepth = 64;

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue run() {
    JsonValue value = parse_value(0);
    skip_whitespace();
    if (pos_ != text_.size())
      fail("trailing bytes after the JSON document");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw JsonParseError("JSON parse error at byte " + std::to_string(pos_) +
                         ": " + what);
  }

  void skip_whitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r'))
      ++pos_;
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c)
      fail(std::string("expected '") + c + "', found '" + peek() + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  JsonValue parse_value(std::size_t depth) {
    if (depth > kMaxDepth) fail("nesting deeper than 64 levels");
    skip_whitespace();
    const char c = peek();
    if (c == '{') return parse_object(depth);
    if (c == '[') return parse_array(depth);
    if (c == '"') {
      JsonValue value;
      value.kind = JsonValue::Kind::kString;
      value.string = parse_string();
      return value;
    }
    if (consume_literal("null")) return JsonValue{};
    if (consume_literal("true")) {
      JsonValue value;
      value.kind = JsonValue::Kind::kBool;
      value.boolean = true;
      return value;
    }
    if (consume_literal("false")) {
      JsonValue value;
      value.kind = JsonValue::Kind::kBool;
      value.boolean = false;
      return value;
    }
    return parse_number();
  }

  JsonValue parse_object(std::size_t depth) {
    JsonValue value;
    value.kind = JsonValue::Kind::kObject;
    expect('{');
    skip_whitespace();
    if (peek() == '}') {
      ++pos_;
      return value;
    }
    for (;;) {
      skip_whitespace();
      std::string key = parse_string();
      skip_whitespace();
      expect(':');
      value.object.emplace_back(std::move(key), parse_value(depth + 1));
      skip_whitespace();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return value;
    }
  }

  JsonValue parse_array(std::size_t depth) {
    JsonValue value;
    value.kind = JsonValue::Kind::kArray;
    expect('[');
    skip_whitespace();
    if (peek() == ']') {
      ++pos_;
      return value;
    }
    for (;;) {
      value.array.push_back(parse_value(depth + 1));
      skip_whitespace();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return value;
    }
  }

  unsigned parse_hex4() {
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = peek();
      ++pos_;
      code <<= 4;
      if (c >= '0' && c <= '9')
        code |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f')
        code |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F')
        code |= static_cast<unsigned>(c - 'A' + 10);
      else
        fail("invalid \\u escape digit");
    }
    return code;
  }

  void append_utf8(std::string& out, unsigned code) {
    if (code < 0x80) {
      out.push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (code >> 6)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else if (code < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (code >> 12)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (code >> 18)));
      out.push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20)
        fail("raw control character in string");
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char escape = text_[pos_++];
      switch (escape) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          unsigned code = parse_hex4();
          if (code >= 0xD800 && code <= 0xDBFF) {
            // Surrogate pair: require the matching low half.
            if (!consume_literal("\\u")) fail("unpaired UTF-16 surrogate");
            const unsigned low = parse_hex4();
            if (low < 0xDC00 || low > 0xDFFF)
              fail("invalid UTF-16 low surrogate");
            code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
          } else if (code >= 0xDC00 && code <= 0xDFFF) {
            fail("unpaired UTF-16 surrogate");
          }
          append_utf8(out, code);
          break;
        }
        default: fail("invalid escape character");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-'))
      ++pos_;
    if (pos_ == start || (pos_ == start + 1 && text_[start] == '-'))
      fail("invalid value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0' || !std::isfinite(value)) {
      pos_ = start;
      fail("invalid number");
    }
    JsonValue result;
    result.kind = JsonValue::Kind::kNumber;
    result.number = value;
    return result;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue parse_json(std::string_view text) { return Parser(text).run(); }

}  // namespace ftmc::serve
