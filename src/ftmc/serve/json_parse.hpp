// Minimal JSON parser for the `ftmc serve` request protocol — the read-side
// counterpart of the obs::Json writer (which stays the only *serializer* in
// the tree).  Strict RFC 8259 subset: objects, arrays, strings (with \uXXXX
// escapes), numbers, booleans, null; trailing garbage and over-deep nesting
// are rejected with JsonParseError so a malformed request fails the one
// request, never the server.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace ftmc::serve {

class JsonParseError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  /// Insertion order preserved; lookups take the first match.
  std::vector<std::pair<std::string, JsonValue>> object;

  bool is_null() const noexcept { return kind == Kind::kNull; }
  bool is_object() const noexcept { return kind == Kind::kObject; }
  bool is_string() const noexcept { return kind == Kind::kString; }

  /// Object member by key, or nullptr (also for non-objects).
  const JsonValue* get(std::string_view key) const noexcept;

  /// Typed accessors with defaults; wrong-kind members yield the default.
  std::string str_or(std::string_view key,
                     const std::string& fallback) const;
  double num_or(std::string_view key, double fallback) const;
  std::uint64_t u64_or(std::string_view key, std::uint64_t fallback) const;
  bool bool_or(std::string_view key, bool fallback) const;
};

/// Parses exactly one JSON document (surrounding whitespace allowed).
/// Throws JsonParseError with a byte offset on malformed input.
JsonValue parse_json(std::string_view text);

}  // namespace ftmc::serve
