#include "ftmc/serve/protocol.hpp"

#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

namespace ftmc::serve {

std::string frame(std::string_view payload) {
  std::string out = std::to_string(payload.size());
  out.push_back('\n');
  out.append(payload);
  return out;
}

void write_frame(int fd, std::string_view payload) {
  const std::string framed = frame(payload);
  std::size_t written = 0;
  while (written < framed.size()) {
    const ssize_t n =
        ::write(fd, framed.data() + written, framed.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw ProtocolError(std::string("frame write failed: ") +
                          std::strerror(errno));
    }
    written += static_cast<std::size_t>(n);
  }
}

bool FrameReader::fill() {
  if (buffer_.size() < 4096) buffer_.resize(4096);
  const ssize_t n = ::read(fd_, buffer_.data(), buffer_.size());
  if (n < 0) {
    if (errno == EINTR) {
      interrupted_ = true;
      return false;
    }
    throw ProtocolError(std::string("frame read failed: ") +
                        std::strerror(errno));
  }
  pos_ = 0;
  end_ = static_cast<std::size_t>(n);
  return n > 0;
}

bool FrameReader::read(std::string& payload) {
  interrupted_ = false;
  // Length line: ASCII digits up to '\n'.
  std::string length_line;
  for (;;) {
    if (pos_ == end_ && !fill()) {
      if (length_line.empty()) return false;  // clean EOF (or EINTR)
      if (interrupted_) return false;         // drain requested mid-prefix
      throw ProtocolError("EOF inside a frame length prefix");
    }
    const char c = buffer_[pos_++];
    if (c == '\n') break;
    if (c < '0' || c > '9' || length_line.size() > 9)
      throw ProtocolError("malformed frame length prefix");
    length_line.push_back(c);
  }
  if (length_line.empty())
    throw ProtocolError("malformed frame length prefix");
  const std::size_t length = std::stoul(length_line);
  if (length > kMaxFramePayload)
    throw ProtocolError("frame payload of " + length_line +
                        " bytes exceeds the 64 MiB limit");
  payload.clear();
  payload.reserve(length);
  while (payload.size() < length) {
    if (pos_ == end_ && !fill()) {
      if (interrupted_) return false;  // drain requested mid-payload
      throw ProtocolError("EOF inside a frame payload (expected " +
                          length_line + " bytes, got " +
                          std::to_string(payload.size()) + ")");
    }
    const std::size_t take =
        std::min(length - payload.size(), end_ - pos_);
    payload.append(buffer_.data() + pos_, take);
    pos_ += take;
  }
  return true;
}

}  // namespace ftmc::serve
