// Length-prefixed JSONL framing for `ftmc serve`.
//
// One frame = the payload's byte length as ASCII decimal, a single '\n',
// then exactly that many payload bytes (the JSON document).  The length
// line makes the stream self-delimiting without escaping — payloads may
// contain newlines — and trivially implementable from any language
// (tools/serve_client.py is the reference client).  The same framing runs
// over stdio (fds 0/1) and TCP sockets; both sides of the protocol use the
// helpers here.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace ftmc::serve {

class ProtocolError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// RPC surface version (docs/PROTOCOL.md).  Every request must carry it
/// as its "v" member and every response echoes it; a missing or different
/// version is rejected with the `version_mismatch` error code so protocol
/// drift fails loudly instead of half-working.
inline constexpr const char* kRpcVersion = "ftmc.rpc.v1";

/// Upper bound on one frame's payload (a malformed or hostile length
/// prefix must not allocate unbounded memory).
constexpr std::size_t kMaxFramePayload = 64u << 20;

/// A payload wrapped in its frame ("<len>\n<payload>"), for clients/tests.
std::string frame(std::string_view payload);

/// Writes one frame to `fd`, handling short writes.  Throws ProtocolError
/// on I/O failure (e.g. the peer hung up).
void write_frame(int fd, std::string_view payload);

/// Buffered frame reader over a POSIX fd (socket, pipe, or stdin).
class FrameReader {
 public:
  explicit FrameReader(int fd) : fd_(fd) {}

  /// Reads the next frame into `payload`.  Returns false on clean EOF at a
  /// frame boundary; throws ProtocolError on a malformed length prefix,
  /// EOF mid-frame, or I/O error.  EINTR during a blocking read also
  /// returns false, with was_interrupted() set (graceful-drain path).
  bool read(std::string& payload);

  /// True when the last read() returned false because the blocking read
  /// was interrupted by a signal (graceful-drain path) rather than EOF.
  bool was_interrupted() const noexcept { return interrupted_; }

 private:
  bool fill();

  int fd_;
  std::vector<char> buffer_;
  std::size_t pos_ = 0;
  std::size_t end_ = 0;
  bool interrupted_ = false;
};

}  // namespace ftmc::serve
