#include "ftmc/serve/reports.hpp"

#include "ftmc/sched/analysis.hpp"
#include "ftmc/util/table.hpp"

namespace ftmc::serve {

void write_analyze_report(std::ostream& out, const io::SystemSpec& spec,
                          const core::Candidate& candidate,
                          const core::Evaluation& evaluation) {
  out << "feasible:             "
      << (evaluation.feasible() ? "yes" : "no") << '\n'
      << "  mapping valid:      "
      << (evaluation.mapping_valid ? "yes" : "no") << '\n'
      << "  reliability (f_t):  "
      << (evaluation.reliability_ok ? "met" : "VIOLATED") << '\n'
      << "  normal state:       "
      << (evaluation.normal_schedulable ? "schedulable" : "NOT schedulable")
      << '\n'
      << "  critical state:     "
      << (evaluation.critical_schedulable ? "schedulable"
                                          : "NOT schedulable")
      << '\n'
      << "expected power:       " << evaluation.power << " mW\n"
      << "service after drops:  " << evaluation.service << '\n'
      << "transition scenarios: " << evaluation.scenario_count << '\n';
  util::Table table("\nWCRT bounds (Algorithm 1)");
  table.set_header({"application", "WCRT", "deadline", "note"});
  for (std::uint32_t g = 0; g < spec.apps.graph_count(); ++g) {
    const auto& graph = spec.apps.graph(model::GraphId{g});
    const auto wcrt = evaluation.graph_wcrt[g];
    table.add_row({graph.name(),
                   wcrt >= sched::kUnschedulable ? "unbounded"
                                                 : io::format_time(wcrt),
                   io::format_time(graph.deadline()),
                   candidate.drop[g] ? "normal state only (dropped)" : ""});
  }
  table.print(out);
}

void write_simulate_report(std::ostream& out,
                           const hardening::HardenedSystem& system,
                           const sim::MonteCarloResult& result,
                           std::size_t profiles,
                           const std::string& fault_prob_text) {
  util::Table table("Monte-Carlo response distribution (" +
                    std::to_string(profiles) + " profiles, p_fault " +
                    fault_prob_text + ")");
  table.set_header({"application", "mean", "p95", "p99", "max", "deadline",
                    "misses", "dropped"});
  for (std::uint32_t g = 0; g < system.apps.graph_count(); ++g) {
    const auto& graph = system.apps.graph(model::GraphId{g});
    const auto& dist = result.distribution[g];
    if (dist.observations == 0) {
      table.add_row({graph.name(), "always dropped", "", "", "",
                     io::format_time(graph.deadline()), "",
                     util::Table::cell(dist.dropped)});
      continue;
    }
    table.add_row({graph.name(),
                   io::format_time(static_cast<model::Time>(dist.mean)),
                   io::format_time(dist.p95), io::format_time(dist.p99),
                   io::format_time(dist.max),
                   io::format_time(graph.deadline()),
                   util::Table::cell(dist.deadline_misses),
                   util::Table::cell(dist.dropped)});
  }
  table.print(out);
  out << "profiles with a deadline miss: " << result.deadline_miss_profiles
      << " / " << profiles << '\n';
}

}  // namespace ftmc::serve
