// The analyze/simulate result renderers shared by the one-shot CLI and
// `ftmc serve`.  Both front ends MUST produce byte-identical output for
// equal inputs — the serve differential tests and the CI smoke job diff the
// daemon's "output" field against `ftmc analyze`/`ftmc simulate` stdout —
// so the rendering lives here once and each front end points a stream at
// it (std::cout for the CLI, an ostringstream for serve responses).
//
// Everything written here is a pure function of the inputs: throughput and
// progress lines go through util::log_info (stderr) in the callers, never
// through these reports.
#pragma once

#include <cstddef>
#include <ostream>
#include <string>

#include "ftmc/core/evaluator.hpp"
#include "ftmc/hardening/hardening.hpp"
#include "ftmc/io/text_format.hpp"
#include "ftmc/sim/monte_carlo.hpp"

namespace ftmc::serve {

/// The `ftmc analyze` result block: feasibility verdict lines + the
/// per-application WCRT bounds table.
void write_analyze_report(std::ostream& out, const io::SystemSpec& spec,
                          const core::Candidate& candidate,
                          const core::Evaluation& evaluation);

/// The `ftmc simulate` result block: the response-distribution table + the
/// deadline-miss summary line.  `fault_prob_text` is the user's verbatim
/// --fault-prob spelling (the table title embeds the string, not a
/// re-formatted double, so "0.30" and "0.3" render differently on purpose —
/// serve clients pass the same string through the protocol).
void write_simulate_report(std::ostream& out,
                           const hardening::HardenedSystem& system,
                           const sim::MonteCarloResult& result,
                           std::size_t profiles,
                           const std::string& fault_prob_text);

}  // namespace ftmc::serve
