#include "ftmc/serve/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <map>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "ftmc/core/eval_store.hpp"
#include "ftmc/core/evaluation_cache.hpp"
#include "ftmc/core/evaluator.hpp"
#include "ftmc/hardening/hardening.hpp"
#include "ftmc/io/text_format.hpp"
#include "ftmc/obs/json.hpp"
#include "ftmc/obs/metrics.hpp"
#include "ftmc/sched/priority.hpp"
#include "ftmc/serve/json_parse.hpp"
#include "ftmc/serve/protocol.hpp"
#include "ftmc/serve/reports.hpp"
#include "ftmc/sim/monte_carlo.hpp"
#include "ftmc/sim/prepared_sim.hpp"
#include "ftmc/util/file_io.hpp"
#include "ftmc/util/hash.hpp"
#include "ftmc/util/log.hpp"

namespace ftmc::serve {
namespace {

struct ServeCounters {
  obs::Counter requests{"serve.requests"};
  obs::Counter errors{"serve.errors"};
  obs::Counter bytes_in{"serve.bytes_in"};
  obs::Counter bytes_out{"serve.bytes_out"};
  obs::Counter connections{"serve.connections"};
};

ServeCounters& counters() {
  static ServeCounters instance;
  return instance;
}

/// Echoes the request's "id" (string or number) into the response; absent
/// or other-kind ids echo as null, so a reply always carries the field.
void echo_id(obs::Json& response, const JsonValue* id) {
  if (id != nullptr && id->kind == JsonValue::Kind::kString) {
    response.set("id", id->string);
  } else if (id != nullptr && id->kind == JsonValue::Kind::kNumber) {
    const auto integral = static_cast<std::int64_t>(id->number);
    if (static_cast<double>(integral) == id->number)
      response.set("id", obs::Json::integer(integral));
    else
      response.set("id", obs::Json::number(id->number));
  } else {
    response.set("id", obs::Json());
  }
}

}  // namespace

/// Everything expensive about one system, built once at startup.
struct Server::ResidentSystem {
  ResidentSystem(std::string path_in, io::SystemSpec spec_in)
      : path(std::move(path_in)), spec(std::move(spec_in)) {}

  std::string path;
  io::SystemSpec spec;
  std::optional<core::Candidate> candidate;
  /// Hardened view + priorities for simulate (absent without a candidate).
  std::optional<hardening::HardenedSystem> hardened;
  std::vector<std::uint32_t> priorities;
  std::unique_ptr<core::EvaluationCache> cache;  ///< L1 (optional)
  std::unique_ptr<core::EvalStore> store;        ///< L2 (optional)
  std::unique_ptr<core::Evaluator> evaluator;
  /// One prepared simulation problem per requested hyperperiod count.
  std::map<std::size_t, std::unique_ptr<sim::PreparedSim>> prepared;
};

Server::Server(ServeOptions options)
    : options_(std::move(options)),
      backend_(options_.kernel),
      pool_(options_.threads) {
  if (options_.system_paths.empty())
    throw std::runtime_error("serve: no system files given");
  for (const std::string& path : options_.system_paths) {
    for (const auto& loaded : systems_)
      if (loaded->path == path)
        throw std::runtime_error("serve: system '" + path +
                                 "' given more than once");
    const std::vector<std::uint8_t> raw = util::read_file(path);
    auto sys =
        std::make_unique<ResidentSystem>(path, io::parse_system_file(path));
    if (!options_.cache_dir.empty()) {
      // Per-system store: keys hash the candidate only, so unrelated
      // systems must never share one store (see core::store_directory).
      const std::uint64_t digest = util::fnv1a_bytes(raw);
      sys->store = std::make_unique<core::EvalStore>(
          core::store_directory(options_.cache_dir, digest));
    }
    if (options_.enable_cache)
      sys->cache = std::make_unique<core::EvaluationCache>();
    core::Evaluator::Options evaluator_options;
    evaluator_options.cache = sys->cache.get();
    evaluator_options.store = sys->store.get();
    // Same rule as the one-shot CLI: scenarios stay sequential only when
    // the user pinned --threads=1 (results are bitwise identical anyway).
    if (options_.threads != 1) evaluator_options.scenario_pool = &pool_;
    sys->evaluator = std::make_unique<core::Evaluator>(
        sys->spec.arch, sys->spec.apps, backend_, evaluator_options);
    if (sys->spec.candidate.has_value()) {
      sys->candidate = *sys->spec.candidate;
      sys->hardened = hardening::apply_hardening(
          sys->spec.apps, sys->candidate->plan, sys->candidate->base_mapping,
          sys->spec.arch.processor_count());
      sys->priorities = sched::assign_priorities(sys->hardened->apps);
    }
    util::log_info("serve: loaded ", path, " (",
                   sys->spec.apps.graph_count(), " applications, candidate ",
                   sys->candidate.has_value() ? "present" : "absent",
                   sys->store != nullptr
                       ? ", store " + sys->store->directory() + ")"
                       : std::string(")"));
    systems_.push_back(std::move(sys));
  }
}

Server::~Server() {
  try {
    flush();
  } catch (const std::exception& error) {
    util::log_warn("serve: flush on shutdown failed: ", error.what());
  }
}

bool Server::stopping() const {
  return stop_.load(std::memory_order_relaxed) ||
         (options_.stop_requested && options_.stop_requested()) ||
         (options_.max_requests != 0 &&
          stats_.requests >= options_.max_requests);
}

void Server::flush() {
  for (const auto& sys : systems_)
    if (sys->store != nullptr) sys->store->flush();
}

Server::ResidentSystem& Server::resident(const JsonValue& root) {
  const std::string name = root.str_or("system", "");
  if (name.empty()) {
    if (systems_.size() == 1) return *systems_.front();
    throw std::runtime_error(
        "request must name a \"system\" (several are loaded)");
  }
  for (const auto& sys : systems_)
    if (sys->path == name) return *sys;
  throw std::runtime_error("unknown system '" + name +
                           "' (not among the paths given at startup)");
}

obs::Json Server::handle_analyze(ResidentSystem& sys) {
  if (!sys.candidate.has_value())
    throw std::runtime_error(
        "the system file has no candidate block; add one or run "
        "`ftmc optimize` first");
  if (const auto error = sys.evaluator->structural_error(*sys.candidate);
      !error.empty())
    throw std::runtime_error("candidate invalid: " + error);
  bool cache_hit = false;
  const core::Evaluation evaluation =
      sys.evaluator->evaluate(*sys.candidate, &cache_hit);
  std::ostringstream out;
  write_analyze_report(out, sys.spec, *sys.candidate, evaluation);
  obs::Json result = obs::Json::object();
  result.set("feasible", evaluation.feasible())
      .set("power", evaluation.power)
      .set("service", evaluation.service)
      .set("scenario_count", evaluation.scenario_count)
      .set("cache_hit", cache_hit)
      .set("exit_code", evaluation.feasible() ? 0 : 1)
      .set("output", out.str());
  return result;
}

obs::Json Server::handle_evaluate(ResidentSystem& sys) {
  if (!sys.candidate.has_value())
    throw std::runtime_error(
        "the system file has no candidate block; add one or run "
        "`ftmc optimize` first");
  if (const auto error = sys.evaluator->structural_error(*sys.candidate);
      !error.empty())
    throw std::runtime_error("candidate invalid: " + error);
  bool cache_hit = false;
  const core::Evaluation evaluation =
      sys.evaluator->evaluate(*sys.candidate, &cache_hit);
  obs::Json wcrt = obs::Json::array();
  for (const model::Time bound : evaluation.graph_wcrt)
    wcrt.push(obs::Json::integer(bound));
  obs::Json result = obs::Json::object();
  result.set("mapping_valid", evaluation.mapping_valid)
      .set("reliability_ok", evaluation.reliability_ok)
      .set("normal_schedulable", evaluation.normal_schedulable)
      .set("critical_schedulable", evaluation.critical_schedulable)
      .set("feasible", evaluation.feasible())
      .set("power", evaluation.power)
      .set("service", evaluation.service)
      .set("scenario_count", evaluation.scenario_count)
      .set("scenario_solves", evaluation.scenario_solves)
      .set("graph_wcrt", std::move(wcrt))
      .set("cache_hit", cache_hit);
  return result;
}

obs::Json Server::handle_simulate(ResidentSystem& sys,
                                  const JsonValue& params) {
  if (!sys.hardened.has_value())
    throw std::runtime_error(
        "the system file has no candidate block; add one or run "
        "`ftmc optimize` first");
  sim::MonteCarloOptions mc;
  mc.profiles = params.u64_or("profiles", 1000);
  mc.seed = params.u64_or("seed", 1);
  mc.hyperperiods = params.u64_or("hyperperiods", 1);
  mc.threads = options_.threads;
  // fault_prob travels as the user's verbatim string: the report title
  // embeds the spelling (the CLI prints the --fault-prob argument, not a
  // re-formatted double), so a numeric JSON value could not stay
  // byte-identical to the one-shot output.
  if (const JsonValue* p = params.get("fault_prob");
      p != nullptr && p->kind != JsonValue::Kind::kString)
    throw std::runtime_error(
        "params.fault_prob must be a string (the verbatim --fault-prob "
        "spelling, e.g. \"0.3\")");
  const std::string fault_prob = params.str_or("fault_prob", "0.3");
  char* end = nullptr;
  mc.fault_probability = std::strtod(fault_prob.c_str(), &end);
  if (end == fault_prob.c_str() || *end != '\0')
    throw std::runtime_error("params.fault_prob '" + fault_prob +
                             "' is not a number");

  auto& prepared = sys.prepared[mc.hyperperiods];
  if (prepared == nullptr)
    prepared = std::make_unique<sim::PreparedSim>(
        sys.spec.arch, *sys.hardened, sys.candidate->drop, sys.priorities,
        sim::PrepareOptions{mc.hyperperiods, false});
  const sim::MonteCarloResult result =
      sim::monte_carlo_wcrt(*prepared, *sys.hardened, mc, &pool_);
  std::ostringstream out;
  write_simulate_report(out, *sys.hardened, result, mc.profiles, fault_prob);
  obs::Json doc = obs::Json::object();
  doc.set("profiles", mc.profiles)
      .set("deadline_miss_profiles", result.deadline_miss_profiles)
      .set("events_processed", result.events_processed)
      .set("output", out.str());
  return doc;
}

obs::Json Server::systems_json() const {
  obs::Json list = obs::Json::array();
  for (const auto& sys : systems_)
    list.push(obs::Json::object()
                  .set("system", sys->path)
                  .set("applications", sys->spec.apps.graph_count())
                  .set("candidate", sys->candidate.has_value()));
  return obs::Json::object().set("systems", std::move(list));
}

obs::Json Server::stats_json() const {
  obs::Json systems = obs::Json::array();
  for (const auto& sys : systems_) {
    obs::Json entry = obs::Json::object();
    entry.set("system", sys->path);
    if (sys->cache != nullptr) {
      const core::CacheStats cache = sys->cache->stats();
      entry.set("cache", obs::Json::object()
                             .set("hits", cache.hits)
                             .set("misses", cache.misses)
                             .set("insertions", cache.insertions)
                             .set("evictions", cache.evictions)
                             .set("byte_evictions", cache.byte_evictions)
                             .set("entries", cache.entries)
                             .set("bytes", cache.bytes));
    }
    if (sys->store != nullptr) {
      const core::EvalStoreStats store = sys->store->stats();
      entry.set("store",
                obs::Json::object()
                    .set("directory", sys->store->directory())
                    .set("hits", store.hits)
                    .set("misses", store.misses)
                    .set("appends", store.appends)
                    .set("records", store.records)
                    .set("bytes_mapped", store.bytes_mapped)
                    .set("log_bytes", store.log_bytes)
                    .set("torn_bytes_discarded", store.torn_bytes_discarded)
                    .set("index_rebuilds", store.index_rebuilds));
    }
    systems.push(std::move(entry));
  }
  return obs::Json::object()
      .set("requests", stats_.requests)
      .set("errors", stats_.errors)
      .set("bytes_in", stats_.bytes_in)
      .set("bytes_out", stats_.bytes_out)
      .set("connections", stats_.connections)
      .set("systems", std::move(systems));
}

std::string Server::handle(const std::string& request) {
  counters().requests.add(1);
  counters().bytes_in.add(request.size());
  ++stats_.requests;
  stats_.bytes_in += request.size();

  obs::Json response = obs::Json::object();
  try {
    const JsonValue root = parse_json(request);
    if (!root.is_object())
      throw std::runtime_error("request must be a JSON object");
    echo_id(response, root.get("id"));
    const std::string method = root.str_or("method", "");
    if (method.empty())
      throw std::runtime_error("request has no \"method\" member");

    obs::Json result;
    if (method == "ping") {
      result = obs::Json::object().set("pong", true);
    } else if (method == "shutdown") {
      stop_.store(true, std::memory_order_relaxed);
      result = obs::Json::object().set("stopping", true);
    } else if (method == "stats") {
      result = stats_json();
    } else if (method == "systems") {
      result = systems_json();
    } else if (method == "analyze" || method == "evaluate" ||
               method == "simulate") {
      ResidentSystem& sys = resident(root);
      static const JsonValue kNoParams{};
      const JsonValue* params = root.get("params");
      if (params != nullptr && !params->is_object() && !params->is_null())
        throw std::runtime_error("\"params\" must be an object");
      const JsonValue& p = params != nullptr ? *params : kNoParams;
      if (method == "analyze")
        result = handle_analyze(sys);
      else if (method == "evaluate")
        result = handle_evaluate(sys);
      else
        result = handle_simulate(sys, p);
    } else {
      throw std::runtime_error("unknown method '" + method + "'");
    }
    response.set("ok", true).set("result", std::move(result));
  } catch (const std::exception& error) {
    counters().errors.add(1);
    ++stats_.errors;
    response.set("ok", false).set("error", error.what());
  }

  std::string text = response.dump();
  counters().bytes_out.add(text.size());
  stats_.bytes_out += text.size();
  return text;
}

int Server::serve_fd(int in_fd, int out_fd) {
  counters().connections.add(1);
  ++stats_.connections;
  FrameReader reader(in_fd);
  std::string payload;
  for (;;) {
    if (stopping()) break;
    bool got = false;
    try {
      got = reader.read(payload);
    } catch (const ProtocolError& error) {
      // Framing is lost; there is no way to resynchronize the stream.
      util::log_error("serve: ", error.what());
      return 1;
    }
    if (!got) {
      if (reader.was_interrupted()) continue;  // re-check stopping()
      break;                                   // clean EOF
    }
    const std::string response = handle(payload);
    try {
      write_frame(out_fd, response);
    } catch (const ProtocolError& error) {
      util::log_warn("serve: ", error.what());
      return 1;
    }
  }
  flush();
  return 0;
}

int Server::serve_tcp(std::uint16_t port, const std::string& port_file) {
  const int listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd < 0)
    throw std::runtime_error(std::string("serve: socket failed: ") +
                             std::strerror(errno));
  const int enable = 1;
  ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &enable, sizeof(enable));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) < 0 ||
      ::listen(listen_fd, 8) < 0) {
    const std::string what = std::strerror(errno);
    ::close(listen_fd);
    throw std::runtime_error("serve: cannot listen on 127.0.0.1:" +
                             std::to_string(port) + ": " + what);
  }
  socklen_t addr_len = sizeof(addr);
  ::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr), &addr_len);
  bound_port_ = ntohs(addr.sin_port);
  if (!port_file.empty()) {
    // Atomic write: a client polling the file never reads a partial port.
    const std::string text = std::to_string(bound_port_) + "\n";
    util::write_file_atomic(
        port_file, std::span<const std::uint8_t>(
                       reinterpret_cast<const std::uint8_t*>(text.data()),
                       text.size()));
  }
  util::log_info("serve: listening on 127.0.0.1:", bound_port_);

  int exit_code = 0;
  while (!stopping()) {
    pollfd poll_fd{listen_fd, POLLIN, 0};
    const int ready = ::poll(&poll_fd, 1, 200);
    if (ready < 0) {
      if (errno == EINTR) continue;  // signal: re-check stopping()
      util::log_error("serve: poll failed: ", std::strerror(errno));
      exit_code = 1;
      break;
    }
    if (ready == 0) continue;  // timeout: re-check stopping()
    const int conn_fd = ::accept(listen_fd, nullptr, nullptr);
    if (conn_fd < 0) {
      if (errno == EINTR) continue;
      util::log_error("serve: accept failed: ", std::strerror(errno));
      exit_code = 1;
      break;
    }
    counters().connections.add(1);
    ++stats_.connections;
    FrameReader reader(conn_fd);
    std::string payload;
    for (;;) {
      if (stopping()) break;
      bool got = false;
      try {
        got = reader.read(payload);
      } catch (const ProtocolError& error) {
        util::log_warn("serve: dropping connection: ", error.what());
        break;
      }
      if (!got) {
        if (reader.was_interrupted()) continue;
        break;
      }
      const std::string response = handle(payload);
      try {
        write_frame(conn_fd, response);
      } catch (const ProtocolError& error) {
        util::log_warn("serve: dropping connection: ", error.what());
        break;
      }
    }
    ::close(conn_fd);
  }
  ::close(listen_fd);
  flush();
  util::log_info("serve: drained after ", stats_.requests, " requests");
  return exit_code;
}

}  // namespace ftmc::serve
