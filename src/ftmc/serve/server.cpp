#include "ftmc/serve/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <cstring>
#include <list>
#include <map>
#include <mutex>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <utility>

#include "ftmc/core/eval_store.hpp"
#include "ftmc/core/evaluation_cache.hpp"
#include "ftmc/core/evaluator.hpp"
#include "ftmc/dse/chromosome.hpp"
#include "ftmc/dse/decoder.hpp"
#include "ftmc/hardening/hardening.hpp"
#include "ftmc/io/text_format.hpp"
#include "ftmc/obs/json.hpp"
#include "ftmc/obs/metrics.hpp"
#include "ftmc/sched/priority.hpp"
#include "ftmc/serve/json_parse.hpp"
#include "ftmc/serve/protocol.hpp"
#include "ftmc/serve/reports.hpp"
#include "ftmc/sim/monte_carlo.hpp"
#include "ftmc/sim/prepared_sim.hpp"
#include "ftmc/util/file_io.hpp"
#include "ftmc/util/hash.hpp"
#include "ftmc/util/log.hpp"
#include "ftmc/util/rng.hpp"

namespace ftmc::serve {
namespace {

struct ServeCounters {
  obs::Counter requests{"serve.requests"};
  obs::Counter errors{"serve.errors"};
  obs::Counter bytes_in{"serve.bytes_in"};
  obs::Counter bytes_out{"serve.bytes_out"};
  obs::Counter connections{"serve.connections"};
  /// Session loops started (TCP connections + fd streams).
  obs::Counter sessions{"serve.sessions"};
  /// Requests currently executing in handle() across all sessions.
  obs::Gauge inflight{"serve.inflight"};
  obs::Counter batch_requests{"serve.batch.requests"};
  obs::Counter batch_items{"serve.batch.items"};
};

ServeCounters& counters() {
  static ServeCounters instance;
  return instance;
}

/// Names the errnos the accept/poll paths care about; falls back to the
/// number for everything else (the strerror text is appended either way).
std::string describe_errno(int err) {
  const char* name = nullptr;
  switch (err) {
    case EINTR: name = "EINTR"; break;
    case EAGAIN: name = "EAGAIN"; break;
    case ECONNABORTED: name = "ECONNABORTED"; break;
    case EMFILE: name = "EMFILE"; break;
    case ENFILE: name = "ENFILE"; break;
    case EBADF: name = "EBADF"; break;
    case EINVAL: name = "EINVAL"; break;
    default: break;
  }
  std::string text = name != nullptr ? std::string(name)
                                     : "errno " + std::to_string(err);
  return text + " (" + std::strerror(err) + ")";
}

/// Echoes the request's "id" (string or number) into the response; absent
/// or other-kind ids echo as null, so a reply always carries the field.
void echo_id(obs::Json& response, const JsonValue* id) {
  if (id != nullptr && id->kind == JsonValue::Kind::kString) {
    response.set("id", id->string);
  } else if (id != nullptr && id->kind == JsonValue::Kind::kNumber) {
    const auto integral = static_cast<std::int64_t>(id->number);
    if (static_cast<double>(integral) == id->number)
      response.set("id", obs::Json::integer(integral));
    else
      response.set("id", obs::Json::number(id->number));
  } else {
    response.set("id", obs::Json());
  }
}

std::uint64_t read_gene(const JsonValue& item, const char* what,
                        std::uint64_t max) {
  if (item.kind != JsonValue::Kind::kNumber)
    throw std::runtime_error(std::string(what) + " entries must be numbers");
  const double value = item.number;
  const auto integral = static_cast<std::uint64_t>(value);
  if (value < 0 || static_cast<double>(integral) != value || integral > max)
    throw std::runtime_error(std::string(what) +
                             " entries must be integers in [0, " +
                             std::to_string(max) + "]");
  return integral;
}

std::vector<std::uint8_t> read_bits(const JsonValue* value,
                                    const char* what) {
  if (value == nullptr || value->kind != JsonValue::Kind::kArray)
    throw std::runtime_error(std::string(what) +
                             " must be an array of 0/1 flags");
  std::vector<std::uint8_t> bits;
  bits.reserve(value->array.size());
  for (const JsonValue& item : value->array)
    bits.push_back(static_cast<std::uint8_t>(read_gene(item, what, 1)));
  return bits;
}

/// params.chromosome wire format — the compact row-per-task form remote DSE
/// workers assemble without knowing our struct layout:
///   {"allocation": [0/1 per PE], "keep": [0/1 per graph],
///    "tasks": [[technique, reexec, active_n, base_pe,
///               replica_pe0, replica_pe1, replica_pe2, voter_pe], ...]}
dse::Chromosome read_chromosome(const JsonValue& genes) {
  if (!genes.is_object())
    throw std::runtime_error(
        "params.chromosome must be an object with allocation/keep/tasks");
  dse::Chromosome chromosome;
  chromosome.allocation =
      read_bits(genes.get("allocation"), "params.chromosome.allocation");
  chromosome.keep = read_bits(genes.get("keep"), "params.chromosome.keep");
  const JsonValue* tasks = genes.get("tasks");
  if (tasks == nullptr || tasks->kind != JsonValue::Kind::kArray)
    throw std::runtime_error(
        "params.chromosome.tasks must be an array of 8-gene rows");
  chromosome.tasks.reserve(tasks->array.size());
  for (const JsonValue& row : tasks->array) {
    if (row.kind != JsonValue::Kind::kArray || row.array.size() != 8)
      throw std::runtime_error(
          "params.chromosome.tasks rows must be [technique, reexec, "
          "active_n, base_pe, replica_pe0..2, voter_pe]");
    const char* what = "params.chromosome.tasks";
    dse::TaskGenes task;
    task.technique =
        static_cast<dse::TechniqueGene>(read_gene(row.array[0], what, 3));
    task.reexec = static_cast<std::uint8_t>(
        read_gene(row.array[1], what, dse::kMaxReexecGene));
    task.active_n =
        static_cast<std::uint8_t>(read_gene(row.array[2], what, 3));
    task.base_pe =
        static_cast<std::uint16_t>(read_gene(row.array[3], what, 65535));
    for (std::size_t r = 0; r < dse::kReplicaSlots; ++r)
      task.replica_pe[r] = static_cast<std::uint16_t>(
          read_gene(row.array[4 + r], what, 65535));
    task.voter_pe =
        static_cast<std::uint16_t>(read_gene(row.array[7], what, 65535));
    chromosome.tasks.push_back(task);
  }
  return chromosome;
}

}  // namespace

/// Everything expensive about one system, built once at startup.  Immutable
/// while serving except `prepared` (guarded by prepared_mutex) and the
/// internally synchronized cache/store.
struct Server::ResidentSystem {
  ResidentSystem(std::string path_in, io::SystemSpec spec_in)
      : path(std::move(path_in)), spec(std::move(spec_in)) {}

  std::string path;
  io::SystemSpec spec;
  std::optional<core::Candidate> candidate;
  /// Hardened view + priorities for simulate (absent without a candidate).
  std::optional<hardening::HardenedSystem> hardened;
  std::vector<std::uint32_t> priorities;
  /// The system rendered without its candidate block; params.candidate text
  /// is appended to this and re-parsed, so inline candidates go through
  /// exactly the validation and naming the file parser applies.
  std::string body_text;
  /// Genotype decoder for params.chromosome (same repair as the GA).
  std::unique_ptr<dse::Decoder> decoder;
  std::unique_ptr<core::EvaluationCache> cache;  ///< L1 (optional)
  std::unique_ptr<core::EvalStore> store;        ///< L2 (optional)
  std::unique_ptr<core::Evaluator> evaluator;
  /// One prepared simulation problem per requested hyperperiod count.
  std::mutex prepared_mutex;
  std::map<std::size_t, std::unique_ptr<sim::PreparedSim>> prepared;
};

Server::Server(ServeOptions options)
    : options_(std::move(options)),
      backend_(options_.kernel),
      pool_(options_.threads) {
  if (options_.system_paths.empty())
    throw std::runtime_error("serve: no system files given");
  if (options_.max_connections == 0) options_.max_connections = 1;
  for (const std::string& path : options_.system_paths) {
    for (const auto& loaded : systems_)
      if (loaded->path == path)
        throw std::runtime_error("serve: system '" + path +
                                 "' given more than once");
    const std::vector<std::uint8_t> raw = util::read_file(path);
    auto sys =
        std::make_unique<ResidentSystem>(path, io::parse_system_file(path));
    if (!options_.cache_dir.empty()) {
      // Per-system store: keys hash the candidate only, so unrelated
      // systems must never share one store (see core::store_directory).
      const std::uint64_t digest = util::fnv1a_bytes(raw);
      sys->store = std::make_unique<core::EvalStore>(
          core::store_directory(options_.cache_dir, digest));
    }
    if (options_.enable_cache)
      sys->cache = std::make_unique<core::EvaluationCache>();
    core::Evaluator::Options evaluator_options;
    evaluator_options.cache = sys->cache.get();
    evaluator_options.store = sys->store.get();
    // Same rule as the one-shot CLI: scenarios stay sequential only when
    // the user pinned --threads=1 (results are bitwise identical anyway).
    if (options_.threads != 1) evaluator_options.scenario_pool = &pool_;
    sys->evaluator = std::make_unique<core::Evaluator>(
        sys->spec.arch, sys->spec.apps, backend_, evaluator_options);
    sys->body_text = io::to_text(sys->spec.arch, sys->spec.apps, nullptr);
    sys->decoder =
        std::make_unique<dse::Decoder>(sys->spec.arch, sys->spec.apps);
    if (sys->spec.candidate.has_value()) {
      sys->candidate = *sys->spec.candidate;
      sys->hardened = hardening::apply_hardening(
          sys->spec.apps, sys->candidate->plan, sys->candidate->base_mapping,
          sys->spec.arch.processor_count());
      sys->priorities = sched::assign_priorities(sys->hardened->apps);
    }
    util::log_info("serve: loaded ", path, " (",
                   sys->spec.apps.graph_count(), " applications, candidate ",
                   sys->candidate.has_value() ? "present" : "absent",
                   sys->store != nullptr
                       ? ", store " + sys->store->directory() + ")"
                       : std::string(")"));
    systems_.push_back(std::move(sys));
  }
}

Server::~Server() {
  try {
    flush();
  } catch (const std::exception& error) {
    util::log_warn("serve: flush on shutdown failed: ", error.what());
  }
}

bool Server::stopping() const {
  return stop_.load(std::memory_order_relaxed) ||
         (options_.stop_requested && options_.stop_requested()) ||
         (options_.max_requests != 0 &&
          stats_.requests.load(std::memory_order_relaxed) >=
              options_.max_requests);
}

void Server::flush() {
  for (const auto& sys : systems_)
    if (sys->store != nullptr) sys->store->flush();
}

Server::ResidentSystem& Server::resident(const JsonValue& root) {
  const std::string name = root.str_or("system", "");
  if (name.empty()) {
    if (systems_.size() == 1) return *systems_.front();
    throw std::runtime_error(
        "request must name a \"system\" (several are loaded)");
  }
  for (const auto& sys : systems_)
    if (sys->path == name) return *sys;
  throw std::runtime_error("unknown system '" + name +
                           "' (not among the paths given at startup)");
}

core::Candidate Server::request_candidate(ResidentSystem& sys,
                                          const JsonValue& params) {
  const JsonValue* text = params.get("candidate");
  const JsonValue* genes = params.get("chromosome");
  if (text != nullptr && genes != nullptr)
    throw std::runtime_error(
        "give either params.candidate or params.chromosome, not both");
  if (text != nullptr) {
    if (text->kind != JsonValue::Kind::kString)
      throw std::runtime_error(
          "params.candidate must be a string holding a text-format "
          "`candidate { ... }` block");
    std::optional<io::SystemSpec> parsed;
    try {
      parsed.emplace(io::parse_system_string(sys.body_text + "\n" +
                                             text->string + "\n"));
    } catch (const std::exception& error) {
      throw std::runtime_error(std::string("params.candidate: ") +
                               error.what());
    }
    const io::SystemSpec& combined = *parsed;
    // The block is parsed against this system's rendered arch/apps; any
    // text that alters the system itself (extra applications, processors)
    // must not masquerade as a candidate for the resident evaluator.
    if (combined.arch.processor_count() !=
            sys.spec.arch.processor_count() ||
        combined.apps.graph_count() != sys.spec.apps.graph_count() ||
        combined.apps.task_count() != sys.spec.apps.task_count())
      throw std::runtime_error(
          "params.candidate must contain only a candidate block");
    if (!combined.candidate.has_value())
      throw std::runtime_error(
          "params.candidate contains no candidate block");
    return *combined.candidate;
  }
  if (genes != nullptr) {
    dse::Chromosome chromosome = read_chromosome(*genes);
    const dse::ChromosomeShape& shape = sys.decoder->shape();
    if (!dse::shape_ok(chromosome, shape))
      throw std::runtime_error(
          "params.chromosome does not fit system '" + sys.path + "' (" +
          std::to_string(shape.processors) + " processors, " +
          std::to_string(shape.graphs) + " applications, " +
          std::to_string(shape.tasks) + " tasks) or has out-of-range genes");
    // Content-seeded decode, exactly like the GA: identical genotypes
    // repair to identical candidates wherever they are evaluated, so a
    // remote worker and an in-process run agree bitwise (params.seed is
    // the campaign seed; default 0).
    util::Rng rng(dse::chromosome_hash(chromosome, params.u64_or("seed", 0)));
    return sys.decoder->decode(chromosome, rng);
  }
  if (!sys.candidate.has_value())
    throw std::runtime_error(
        "the system file has no candidate block; pass params.candidate or "
        "params.chromosome, add one, or run `ftmc optimize` first");
  return *sys.candidate;
}

obs::Json Server::handle_analyze(ResidentSystem& sys,
                                 const JsonValue& params) {
  const core::Candidate candidate = request_candidate(sys, params);
  if (const auto error = sys.evaluator->structural_error(candidate);
      !error.empty())
    throw std::runtime_error("candidate invalid: " + error);
  bool cache_hit = false;
  const core::Evaluation evaluation =
      sys.evaluator->evaluate(candidate, &cache_hit);
  std::ostringstream out;
  write_analyze_report(out, sys.spec, candidate, evaluation);
  obs::Json result = obs::Json::object();
  result.set("feasible", evaluation.feasible())
      .set("power", evaluation.power)
      .set("service", evaluation.service)
      .set("scenario_count", evaluation.scenario_count)
      .set("cache_hit", cache_hit)
      .set("exit_code", evaluation.feasible() ? 0 : 1)
      .set("output", out.str());
  return result;
}

obs::Json Server::handle_evaluate(ResidentSystem& sys,
                                  const JsonValue& params) {
  const core::Candidate candidate = request_candidate(sys, params);
  if (const auto error = sys.evaluator->structural_error(candidate);
      !error.empty())
    throw std::runtime_error("candidate invalid: " + error);
  bool cache_hit = false;
  const core::Evaluation evaluation =
      sys.evaluator->evaluate(candidate, &cache_hit);
  obs::Json wcrt = obs::Json::array();
  for (const model::Time bound : evaluation.graph_wcrt)
    wcrt.push(obs::Json::integer(bound));
  obs::Json result = obs::Json::object();
  result.set("mapping_valid", evaluation.mapping_valid)
      .set("reliability_ok", evaluation.reliability_ok)
      .set("normal_schedulable", evaluation.normal_schedulable)
      .set("critical_schedulable", evaluation.critical_schedulable)
      .set("feasible", evaluation.feasible())
      .set("power", evaluation.power)
      .set("service", evaluation.service)
      .set("scenario_count", evaluation.scenario_count)
      .set("scenario_solves", evaluation.scenario_solves)
      .set("graph_wcrt", std::move(wcrt))
      .set("cache_hit", cache_hit);
  return result;
}

obs::Json Server::handle_simulate(ResidentSystem& sys,
                                  const JsonValue& params) {
  if (!sys.hardened.has_value())
    throw std::runtime_error(
        "the system file has no candidate block; add one or run "
        "`ftmc optimize` first");
  sim::MonteCarloOptions mc;
  mc.profiles = params.u64_or("profiles", 1000);
  mc.seed = params.u64_or("seed", 1);
  mc.hyperperiods = params.u64_or("hyperperiods", 1);
  mc.threads = options_.threads;
  // fault_prob travels as the user's verbatim string: the report title
  // embeds the spelling (the CLI prints the --fault-prob argument, not a
  // re-formatted double), so a numeric JSON value could not stay
  // byte-identical to the one-shot output.
  if (const JsonValue* p = params.get("fault_prob");
      p != nullptr && p->kind != JsonValue::Kind::kString)
    throw std::runtime_error(
        "params.fault_prob must be a string (the verbatim --fault-prob "
        "spelling, e.g. \"0.3\")");
  const std::string fault_prob = params.str_or("fault_prob", "0.3");
  char* end = nullptr;
  mc.fault_probability = std::strtod(fault_prob.c_str(), &end);
  if (end == fault_prob.c_str() || *end != '\0')
    throw std::runtime_error("params.fault_prob '" + fault_prob +
                             "' is not a number");

  sim::PreparedSim* prepared = nullptr;
  {
    // Concurrent sessions may request the same hyperperiod count at once;
    // the first builds, the rest wait and share.  A PreparedSim is
    // immutable after construction, so the pointer is safe to use outside
    // the lock.
    std::lock_guard lock(sys.prepared_mutex);
    auto& slot = sys.prepared[mc.hyperperiods];
    if (slot == nullptr)
      slot = std::make_unique<sim::PreparedSim>(
          sys.spec.arch, *sys.hardened, sys.candidate->drop, sys.priorities,
          sim::PrepareOptions{mc.hyperperiods, false});
    prepared = slot.get();
  }
  const sim::MonteCarloResult result =
      sim::monte_carlo_wcrt(*prepared, *sys.hardened, mc, &pool_);
  std::ostringstream out;
  write_simulate_report(out, *sys.hardened, result, mc.profiles, fault_prob);
  obs::Json doc = obs::Json::object();
  doc.set("profiles", mc.profiles)
      .set("deadline_miss_profiles", result.deadline_miss_profiles)
      .set("events_processed", result.events_processed)
      .set("output", out.str());
  return doc;
}

obs::Json Server::handle_batch(const JsonValue& params) {
  const JsonValue* items = params.get("requests");
  if (items == nullptr || items->kind != JsonValue::Kind::kArray)
    throw std::runtime_error(
        "params.requests must be an array of request objects");
  counters().batch_requests.add(1);
  counters().batch_items.add(items->array.size());
  std::vector<obs::Json> responses(items->array.size());
  auto run = [&](std::size_t k) {
    responses[k] = dispatch(items->array[k], /*allow_batch=*/false);
  };
  // Fan the items out across the pool; each response lands in its own slot,
  // so the result array keeps request order no matter the schedule.
  if (pool_.thread_count() > 1 && responses.size() > 1) {
    pool_.parallel_for(responses.size(), run);
  } else {
    for (std::size_t k = 0; k < responses.size(); ++k) run(k);
  }
  obs::Json list = obs::Json::array();
  for (obs::Json& response : responses) list.push(std::move(response));
  return obs::Json::object()
      .set("count", obs::Json::uinteger(items->array.size()))
      .set("results", std::move(list));
}

obs::Json Server::systems_json() const {
  obs::Json list = obs::Json::array();
  for (const auto& sys : systems_)
    list.push(obs::Json::object()
                  .set("system", sys->path)
                  .set("applications", sys->spec.apps.graph_count())
                  .set("candidate", sys->candidate.has_value()));
  return obs::Json::object().set("systems", std::move(list));
}

obs::Json Server::stats_json() const {
  obs::Json systems = obs::Json::array();
  for (const auto& sys : systems_) {
    obs::Json entry = obs::Json::object();
    entry.set("system", sys->path);
    if (sys->cache != nullptr) {
      const core::CacheStats cache = sys->cache->stats();
      entry.set("cache", obs::Json::object()
                             .set("hits", cache.hits)
                             .set("misses", cache.misses)
                             .set("insertions", cache.insertions)
                             .set("evictions", cache.evictions)
                             .set("byte_evictions", cache.byte_evictions)
                             .set("entries", cache.entries)
                             .set("bytes", cache.bytes));
    }
    if (sys->store != nullptr) {
      const core::EvalStoreStats store = sys->store->stats();
      entry.set("store",
                obs::Json::object()
                    .set("directory", sys->store->directory())
                    .set("hits", store.hits)
                    .set("misses", store.misses)
                    .set("appends", store.appends)
                    .set("records", store.records)
                    .set("bytes_mapped", store.bytes_mapped)
                    .set("log_bytes", store.log_bytes)
                    .set("torn_bytes_discarded", store.torn_bytes_discarded)
                    .set("index_rebuilds", store.index_rebuilds));
    }
    systems.push(std::move(entry));
  }
  return obs::Json::object()
      .set("requests", stats_.requests.load(std::memory_order_relaxed))
      .set("errors", stats_.errors.load(std::memory_order_relaxed))
      .set("bytes_in", stats_.bytes_in.load(std::memory_order_relaxed))
      .set("bytes_out", stats_.bytes_out.load(std::memory_order_relaxed))
      .set("connections",
           stats_.connections.load(std::memory_order_relaxed))
      .set("systems", std::move(systems));
}

obs::Json Server::dispatch(const JsonValue& root, bool allow_batch) {
  obs::Json response = obs::Json::object();
  try {
    if (!root.is_object())
      throw std::runtime_error("request must be a JSON object");
    echo_id(response, root.get("id"));
    const std::string method = root.str_or("method", "");
    if (method.empty())
      throw std::runtime_error("request has no \"method\" member");

    static const JsonValue kNoParams{};
    const JsonValue* params = root.get("params");
    if (params != nullptr && !params->is_object() && !params->is_null())
      throw std::runtime_error("\"params\" must be an object");
    const JsonValue& p = params != nullptr ? *params : kNoParams;

    obs::Json result;
    if (method == "ping") {
      result = obs::Json::object().set("pong", true);
    } else if (method == "shutdown") {
      stop_.store(true, std::memory_order_relaxed);
      result = obs::Json::object().set("stopping", true);
    } else if (method == "stats") {
      result = stats_json();
    } else if (method == "systems") {
      result = systems_json();
    } else if (method == "batch") {
      if (!allow_batch)
        throw std::runtime_error("batch items may not be \"batch\"");
      result = handle_batch(p);
    } else if (method == "analyze" || method == "evaluate" ||
               method == "simulate") {
      ResidentSystem& sys = resident(root);
      if (method == "analyze")
        result = handle_analyze(sys, p);
      else if (method == "evaluate")
        result = handle_evaluate(sys, p);
      else
        result = handle_simulate(sys, p);
    } else {
      throw std::runtime_error("unknown method '" + method + "'");
    }
    response.set("ok", true).set("result", std::move(result));
  } catch (const std::exception& error) {
    counters().errors.add(1);
    stats_.errors.fetch_add(1, std::memory_order_relaxed);
    response.set("ok", false).set("error", error.what());
  }
  return response;
}

std::string Server::handle(const std::string& request) {
  counters().requests.add(1);
  counters().bytes_in.add(request.size());
  stats_.requests.fetch_add(1, std::memory_order_relaxed);
  stats_.bytes_in.fetch_add(request.size(), std::memory_order_relaxed);
  counters().inflight.add(1);

  obs::Json response;
  try {
    const JsonValue root = parse_json(request);
    response = dispatch(root, /*allow_batch=*/true);
  } catch (const std::exception& error) {
    counters().errors.add(1);
    stats_.errors.fetch_add(1, std::memory_order_relaxed);
    response = obs::Json::object();
    response.set("ok", false).set("error", error.what());
  }
  counters().inflight.add(-1);

  std::string text = response.dump();
  counters().bytes_out.add(text.size());
  stats_.bytes_out.fetch_add(text.size(), std::memory_order_relaxed);
  return text;
}

int Server::run_session(int in_fd, int out_fd, bool tcp) {
  counters().sessions.add(1);
  FrameReader reader(in_fd);
  std::string payload;
  for (;;) {
    if (stopping()) break;
    bool got = false;
    try {
      got = reader.read(payload);
    } catch (const ProtocolError& error) {
      // Framing is lost; there is no way to resynchronize the stream.
      if (tcp) {
        util::log_warn("serve: dropping connection: ", error.what());
      } else {
        util::log_error("serve: ", error.what());
      }
      return 1;
    }
    if (!got) {
      if (reader.was_interrupted()) continue;  // re-check stopping()
      break;                                   // clean EOF
    }
    const std::string response = handle(payload);
    try {
      write_frame(out_fd, response);
    } catch (const ProtocolError& error) {
      if (tcp) {
        util::log_warn("serve: dropping connection: ", error.what());
      } else {
        util::log_warn("serve: ", error.what());
      }
      return 1;
    }
  }
  return 0;
}

int Server::serve_fd(int in_fd, int out_fd) {
  counters().connections.add(1);
  stats_.connections.fetch_add(1, std::memory_order_relaxed);
  const int exit_code = run_session(in_fd, out_fd, /*tcp=*/false);
  flush();
  return exit_code;
}

int Server::serve_tcp(std::uint16_t port, const std::string& port_file) {
  const int listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd < 0)
    throw std::runtime_error(std::string("serve: socket failed: ") +
                             std::strerror(errno));
  const int enable = 1;
  ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &enable, sizeof(enable));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  const int backlog =
      static_cast<int>(std::max<std::size_t>(8, options_.max_connections));
  if (::bind(listen_fd, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) < 0 ||
      ::listen(listen_fd, backlog) < 0) {
    const std::string what = std::strerror(errno);
    ::close(listen_fd);
    throw std::runtime_error("serve: cannot listen on 127.0.0.1:" +
                             std::to_string(port) + ": " + what);
  }
  socklen_t addr_len = sizeof(addr);
  ::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr), &addr_len);
  bound_port_.store(ntohs(addr.sin_port), std::memory_order_release);
  if (!port_file.empty()) {
    // Atomic write: a client polling the file never reads a partial port.
    const std::string text = std::to_string(bound_port()) + "\n";
    util::write_file_atomic(
        port_file, std::span<const std::uint8_t>(
                       reinterpret_cast<const std::uint8_t*>(text.data()),
                       text.size()));
  }
  util::log_info("serve: listening on 127.0.0.1:", bound_port(),
                 " (max ", options_.max_connections,
                 " concurrent connections)");

  // One dedicated thread per accepted connection.  Only this acceptor
  // thread mutates the session list or closes a session fd (always after
  // joining its thread), so a kernel-reused fd can never be shut down by
  // mistake; sessions just flag `done` and bump the slot count.
  struct TcpSession {
    int fd = -1;
    std::thread thread;
    std::atomic<bool> done{false};
  };
  std::list<TcpSession> sessions;
  std::mutex sessions_mutex;
  std::condition_variable sessions_cv;
  std::size_t active = 0;

  auto reap_finished = [&] {
    std::list<TcpSession> finished;
    {
      std::lock_guard lock(sessions_mutex);
      for (auto it = sessions.begin(); it != sessions.end();) {
        auto next = std::next(it);
        if (it->done.load(std::memory_order_acquire))
          finished.splice(finished.end(), sessions, it);
        it = next;
      }
    }
    for (TcpSession& session : finished) {
      session.thread.join();
      ::close(session.fd);
    }
  };

  int exit_code = 0;
  while (!stopping()) {
    reap_finished();
    {
      std::unique_lock lock(sessions_mutex);
      if (active >= options_.max_connections) {
        // Backpressure: at the cap, stop accepting; pending clients wait
        // in the listen backlog until a session frees the slot (or until
        // the periodic timeout re-checks stopping()).
        sessions_cv.wait_for(lock, std::chrono::milliseconds(200),
                             [&] { return active < options_.max_connections; });
        continue;
      }
    }
    pollfd poll_fd{listen_fd, POLLIN, 0};
    const int ready = ::poll(&poll_fd, 1, 200);
    if (ready < 0) {
      if (errno == EINTR) continue;  // signal: re-check stopping()
      util::log_error("serve: poll failed: ", describe_errno(errno));
      exit_code = 1;
      break;
    }
    if (ready == 0) continue;  // timeout: re-check stopping()
    const int conn_fd = ::accept(listen_fd, nullptr, nullptr);
    if (conn_fd < 0) {
      const int err = errno;
      // Transient per-connection failures (aborted handshake, signal,
      // spurious wakeup) must not end the serve loop.
      if (err == EINTR || err == ECONNABORTED || err == EAGAIN ||
          err == EWOULDBLOCK) {
        util::log_warn("serve: accept: ", describe_errno(err),
                       ", retrying");
        continue;
      }
      util::log_error("serve: accept failed: ", describe_errno(err));
      exit_code = 1;
      break;
    }
    counters().connections.add(1);
    stats_.connections.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard lock(sessions_mutex);
    sessions.emplace_back();
    TcpSession& session = sessions.back();
    session.fd = conn_fd;
    ++active;
    session.thread = std::thread([this, &session, &sessions_mutex,
                                  &sessions_cv, &active] {
      (void)run_session(session.fd, session.fd, /*tcp=*/true);
      {
        std::lock_guard session_lock(sessions_mutex);
        --active;
      }
      session.done.store(true, std::memory_order_release);
      sessions_cv.notify_one();
    });
  }
  ::close(listen_fd);

  // Graceful drain: half-close every live session so its blocking read
  // returns EOF; in-flight requests finish and their responses still go
  // out on the intact write side.  Then join and close everything.
  {
    std::lock_guard lock(sessions_mutex);
    for (TcpSession& session : sessions)
      if (!session.done.load(std::memory_order_acquire))
        ::shutdown(session.fd, SHUT_RD);
  }
  for (TcpSession& session : sessions) {
    session.thread.join();
    ::close(session.fd);
  }
  flush();
  util::log_info("serve: drained after ",
                 stats_.requests.load(std::memory_order_relaxed),
                 " requests on ",
                 stats_.connections.load(std::memory_order_relaxed),
                 " connections");
  return exit_code;
}

}  // namespace ftmc::serve
