#include "ftmc/serve/server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <cstring>
#include <list>
#include <map>
#include <mutex>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <utility>

#include "ftmc/core/eval_store.hpp"
#include "ftmc/core/evaluation_cache.hpp"
#include "ftmc/core/evaluator.hpp"
#include "ftmc/dse/chromosome.hpp"
#include "ftmc/dse/decoder.hpp"
#include "ftmc/hardening/hardening.hpp"
#include "ftmc/io/text_format.hpp"
#include "ftmc/obs/export.hpp"
#include "ftmc/obs/json.hpp"
#include "ftmc/obs/metrics.hpp"
#include "ftmc/obs/sampler.hpp"
#include "ftmc/obs/trace.hpp"
#include "ftmc/sched/priority.hpp"
#include "ftmc/serve/json_parse.hpp"
#include "ftmc/serve/protocol.hpp"
#include "ftmc/serve/reports.hpp"
#include "ftmc/sim/monte_carlo.hpp"
#include "ftmc/sim/prepared_sim.hpp"
#include "ftmc/util/file_io.hpp"
#include "ftmc/util/hash.hpp"
#include "ftmc/util/log.hpp"
#include "ftmc/util/rng.hpp"

namespace ftmc::serve {
namespace {

struct ServeCounters {
  obs::Counter requests{"serve.requests"};
  obs::Counter errors{"serve.errors"};
  obs::Counter bytes_in{"serve.bytes_in"};
  obs::Counter bytes_out{"serve.bytes_out"};
  obs::Counter connections{"serve.connections"};
  /// Session loops started (TCP connections + fd streams).
  obs::Counter sessions{"serve.sessions"};
  /// Requests currently executing in handle() across all sessions.
  obs::Gauge inflight{"serve.inflight"};
  obs::Counter batch_requests{"serve.batch.requests"};
  obs::Counter batch_items{"serve.batch.items"};
  /// Per-method request-handling latency (parse+dispatch+render, in µs) —
  /// the raw samples are not retained, so p50/p95 come from these buckets
  /// via MetricsSnapshot::quantile (the `metrics` method and ftmc_top.py).
  obs::Histogram latency_ping{"serve.latency.ping"};
  obs::Histogram latency_systems{"serve.latency.systems"};
  obs::Histogram latency_stats{"serve.latency.stats"};
  obs::Histogram latency_analyze{"serve.latency.analyze"};
  obs::Histogram latency_evaluate{"serve.latency.evaluate"};
  obs::Histogram latency_simulate{"serve.latency.simulate"};
  obs::Histogram latency_batch{"serve.latency.batch"};
  obs::Histogram latency_metrics{"serve.latency.metrics"};
  obs::Histogram latency_health{"serve.latency.health"};
  obs::Histogram latency_shutdown{"serve.latency.shutdown"};
  obs::Histogram latency_other{"serve.latency.other"};

  obs::Histogram& latency_for(const std::string& method) {
    if (method == "analyze") return latency_analyze;
    if (method == "evaluate") return latency_evaluate;
    if (method == "simulate") return latency_simulate;
    if (method == "batch") return latency_batch;
    if (method == "ping") return latency_ping;
    if (method == "metrics") return latency_metrics;
    if (method == "health") return latency_health;
    if (method == "stats") return latency_stats;
    if (method == "systems") return latency_systems;
    if (method == "shutdown") return latency_shutdown;
    return latency_other;
  }
};

ServeCounters& counters() {
  static ServeCounters instance;
  return instance;
}

std::uint64_t elapsed_us(std::chrono::steady_clock::time_point since) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - since)
          .count());
}

/// Names the errnos the accept/poll paths care about; falls back to the
/// number for everything else (the strerror text is appended either way).
std::string describe_errno(int err) {
  const char* name = nullptr;
  switch (err) {
    case EINTR: name = "EINTR"; break;
    case EAGAIN: name = "EAGAIN"; break;
    case ECONNABORTED: name = "ECONNABORTED"; break;
    case EMFILE: name = "EMFILE"; break;
    case ENFILE: name = "ENFILE"; break;
    case EBADF: name = "EBADF"; break;
    case EINVAL: name = "EINVAL"; break;
    default: break;
  }
  std::string text = name != nullptr ? std::string(name)
                                     : "errno " + std::to_string(err);
  return text + " (" + std::strerror(err) + ")";
}

/// A request failure tagged with its ftmc.rpc.v1 taxonomy code
/// (docs/PROTOCOL.md): bad_request | unknown_method | version_mismatch |
/// shutting_down | internal.  Handlers that throw a plain
/// std::runtime_error are input-validation failures and map to
/// bad_request; non-runtime exceptions (logic errors, allocation) and
/// store faults map to internal.
class RequestError : public std::runtime_error {
 public:
  RequestError(std::string code, const std::string& message,
               std::string detail = {})
      : std::runtime_error(message),
        code_(std::move(code)),
        detail_(std::move(detail)) {}

  const std::string& code() const noexcept { return code_; }
  const std::string& detail() const noexcept { return detail_; }

 private:
  std::string code_;
  std::string detail_;
};

/// Resolves an exception to its taxonomy code (`detail` receives any
/// extra context a RequestError carried).
std::string error_code_of(const std::exception& error, std::string* detail) {
  if (const auto* typed = dynamic_cast<const RequestError*>(&error)) {
    *detail = typed->detail();
    return typed->code();
  }
  if (dynamic_cast<const core::StoreError*>(&error) != nullptr)
    return "internal";
  if (dynamic_cast<const std::runtime_error*>(&error) != nullptr)
    return "bad_request";
  return "internal";
}

/// Echoes the request's "id" (string or number) into the response; absent
/// or other-kind ids echo as null, so a reply always carries the field.
void echo_id(obs::Json& response, const JsonValue* id) {
  if (id != nullptr && id->kind == JsonValue::Kind::kString) {
    response.set("id", id->string);
  } else if (id != nullptr && id->kind == JsonValue::Kind::kNumber) {
    const auto integral = static_cast<std::int64_t>(id->number);
    if (static_cast<double>(integral) == id->number)
      response.set("id", obs::Json::integer(integral));
    else
      response.set("id", obs::Json::number(id->number));
  } else {
    response.set("id", obs::Json());
  }
}

/// The request id the observation layer records: the client's "id"
/// rendered as text (strings verbatim, numbers with the same integral
/// round-trip check the echo applies), empty when absent/null — the
/// caller then generates one.  Never echoed into the response, so the
/// response bytes cannot depend on it.
std::string id_text(const JsonValue* id) {
  if (id == nullptr) return {};
  if (id->kind == JsonValue::Kind::kString) return id->string;
  if (id->kind == JsonValue::Kind::kNumber) {
    const auto integral = static_cast<std::int64_t>(id->number);
    if (static_cast<double>(integral) == id->number)
      return std::to_string(integral);
    return obs::Json::number(id->number).dump();
  }
  return {};
}

std::uint64_t read_gene(const JsonValue& item, const char* what,
                        std::uint64_t max) {
  if (item.kind != JsonValue::Kind::kNumber)
    throw std::runtime_error(std::string(what) + " entries must be numbers");
  const double value = item.number;
  const auto integral = static_cast<std::uint64_t>(value);
  if (value < 0 || static_cast<double>(integral) != value || integral > max)
    throw std::runtime_error(std::string(what) +
                             " entries must be integers in [0, " +
                             std::to_string(max) + "]");
  return integral;
}

std::vector<std::uint8_t> read_bits(const JsonValue* value,
                                    const char* what) {
  if (value == nullptr || value->kind != JsonValue::Kind::kArray)
    throw std::runtime_error(std::string(what) +
                             " must be an array of 0/1 flags");
  std::vector<std::uint8_t> bits;
  bits.reserve(value->array.size());
  for (const JsonValue& item : value->array)
    bits.push_back(static_cast<std::uint8_t>(read_gene(item, what, 1)));
  return bits;
}

/// params.chromosome wire format — the compact row-per-task form remote DSE
/// workers assemble without knowing our struct layout:
///   {"allocation": [0/1 per PE], "keep": [0/1 per graph],
///    "tasks": [[technique, reexec, active_n, base_pe,
///               replica_pe0, replica_pe1, replica_pe2, voter_pe], ...]}
dse::Chromosome read_chromosome(const JsonValue& genes) {
  if (!genes.is_object())
    throw std::runtime_error(
        "params.chromosome must be an object with allocation/keep/tasks");
  dse::Chromosome chromosome;
  chromosome.allocation =
      read_bits(genes.get("allocation"), "params.chromosome.allocation");
  chromosome.keep = read_bits(genes.get("keep"), "params.chromosome.keep");
  const JsonValue* tasks = genes.get("tasks");
  if (tasks == nullptr || tasks->kind != JsonValue::Kind::kArray)
    throw std::runtime_error(
        "params.chromosome.tasks must be an array of 8-gene rows");
  chromosome.tasks.reserve(tasks->array.size());
  for (const JsonValue& row : tasks->array) {
    if (row.kind != JsonValue::Kind::kArray || row.array.size() != 8)
      throw std::runtime_error(
          "params.chromosome.tasks rows must be [technique, reexec, "
          "active_n, base_pe, replica_pe0..2, voter_pe]");
    const char* what = "params.chromosome.tasks";
    dse::TaskGenes task;
    task.technique =
        static_cast<dse::TechniqueGene>(read_gene(row.array[0], what, 3));
    task.reexec = static_cast<std::uint8_t>(
        read_gene(row.array[1], what, dse::kMaxReexecGene));
    task.active_n =
        static_cast<std::uint8_t>(read_gene(row.array[2], what, 3));
    task.base_pe =
        static_cast<std::uint16_t>(read_gene(row.array[3], what, 65535));
    for (std::size_t r = 0; r < dse::kReplicaSlots; ++r)
      task.replica_pe[r] = static_cast<std::uint16_t>(
          read_gene(row.array[4 + r], what, 65535));
    task.voter_pe =
        static_cast<std::uint16_t>(read_gene(row.array[7], what, 65535));
    chromosome.tasks.push_back(task);
  }
  return chromosome;
}

}  // namespace

/// Everything expensive about one system, built once at startup.  Immutable
/// while serving except `prepared` (guarded by prepared_mutex) and the
/// internally synchronized cache/store.
struct Server::ResidentSystem {
  ResidentSystem(std::string path_in, io::SystemSpec spec_in)
      : path(std::move(path_in)), spec(std::move(spec_in)) {}

  std::string path;
  io::SystemSpec spec;
  std::optional<core::Candidate> candidate;
  /// Hardened view + priorities for simulate (absent without a candidate).
  std::optional<hardening::HardenedSystem> hardened;
  std::vector<std::uint32_t> priorities;
  /// The system rendered without its candidate block; params.candidate text
  /// is appended to this and re-parsed, so inline candidates go through
  /// exactly the validation and naming the file parser applies.
  std::string body_text;
  /// Genotype decoder for params.chromosome (same repair as the GA).
  std::unique_ptr<dse::Decoder> decoder;
  std::unique_ptr<core::EvaluationCache> cache;  ///< L1 (optional)
  std::unique_ptr<core::EvalStore> store;        ///< L2 (optional)
  std::unique_ptr<core::Evaluator> evaluator;
  /// One prepared simulation problem per requested hyperperiod count.
  std::mutex prepared_mutex;
  std::map<std::size_t, std::unique_ptr<sim::PreparedSim>> prepared;
};

struct Server::RequestInfo {
  std::string id;            ///< client-supplied or generated ("r<n>")
  std::string method;
  std::string system;
  bool ok = true;
  /// Taxonomy code (docs/PROTOCOL.md) when !ok: bad_request |
  /// unknown_method | version_mismatch | shutting_down | internal.
  std::string error_class;
  bool cache_known = false;  ///< analyze/evaluate report a cache outcome
  bool cache_hit = false;
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
  std::uint64_t read_us = 0;      ///< frame read (includes the wait for it)
  std::uint64_t parse_us = 0;
  std::uint64_t dispatch_us = 0;
  std::uint64_t render_us = 0;
  std::uint64_t write_us = 0;

  /// In-process handling time — what the latency histograms and --slow-ms
  /// measure (read/write depend on the peer, not on us).
  std::uint64_t handle_us() const noexcept {
    return parse_us + dispatch_us + render_us;
  }
  std::uint64_t total_us() const noexcept {
    return read_us + handle_us() + write_us;
  }
};

Server::Server(ServeOptions options)
    : options_(std::move(options)),
      backend_(options_.kernel),
      pool_(options_.threads),
      started_at_(std::chrono::steady_clock::now()) {
  if (options_.system_paths.empty())
    throw std::runtime_error("serve: no system files given");
  if (options_.max_connections == 0) options_.max_connections = 1;
  if (!options_.access_log.empty()) {
    // O_APPEND and one write() per record: records from concurrent
    // sessions never interleave, and a crash loses at most the line in
    // flight.
    access_log_fd_ = ::open(options_.access_log.c_str(),
                            O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (access_log_fd_ < 0)
      throw std::runtime_error("serve: cannot open access log '" +
                               options_.access_log + "': " +
                               std::strerror(errno));
  }
  if (options_.sample_interval_ms > 0) {
    obs::TimeSeriesSampler::Options sampler_options;
    sampler_options.interval_ms = options_.sample_interval_ms;
    if (!options_.prom_textfile.empty()) {
      // write_file_atomic (temp + rename) so a scraper never reads a
      // partial exposition.
      sampler_options.on_sample = [path = options_.prom_textfile](
                                      const obs::MetricsSnapshot& snap) {
        try {
          const std::string text = obs::prometheus_text(snap);
          util::write_file_atomic(
              path,
              std::span<const std::uint8_t>(
                  reinterpret_cast<const std::uint8_t*>(text.data()),
                  text.size()));
        } catch (const std::exception& error) {
          util::log_warn("serve: prometheus textfile export failed: ",
                         error.what());
        }
      };
    }
    sampler_ =
        std::make_unique<obs::TimeSeriesSampler>(std::move(sampler_options));
    sampler_->start();
  } else if (!options_.prom_textfile.empty()) {
    throw std::runtime_error(
        "serve: --prom-textfile requires the sampler (--sample-interval "
        "> 0)");
  }
  for (const std::string& path : options_.system_paths) {
    for (const auto& loaded : systems_)
      if (loaded->path == path)
        throw std::runtime_error("serve: system '" + path +
                                 "' given more than once");
    const std::vector<std::uint8_t> raw = util::read_file(path);
    auto sys =
        std::make_unique<ResidentSystem>(path, io::parse_system_file(path));
    if (!options_.cache_dir.empty()) {
      // Per-system store: keys hash the candidate only, so unrelated
      // systems must never share one store (see core::store_directory).
      const std::uint64_t digest = util::fnv1a_bytes(raw);
      sys->store = std::make_unique<core::EvalStore>(
          core::store_directory(options_.cache_dir, digest));
    }
    if (options_.enable_cache)
      sys->cache = std::make_unique<core::EvaluationCache>();
    core::Evaluator::Options evaluator_options;
    evaluator_options.cache = sys->cache.get();
    evaluator_options.store = sys->store.get();
    // Same rule as the one-shot CLI: scenarios stay sequential only when
    // the user pinned --threads=1 (results are bitwise identical anyway).
    if (options_.threads != 1) evaluator_options.scenario_pool = &pool_;
    sys->evaluator = std::make_unique<core::Evaluator>(
        sys->spec.arch, sys->spec.apps, backend_, evaluator_options);
    sys->body_text = io::to_text(sys->spec.arch, sys->spec.apps, nullptr);
    sys->decoder =
        std::make_unique<dse::Decoder>(sys->spec.arch, sys->spec.apps);
    if (sys->spec.candidate.has_value()) {
      sys->candidate = *sys->spec.candidate;
      sys->hardened = hardening::apply_hardening(
          sys->spec.apps, sys->candidate->plan, sys->candidate->base_mapping,
          sys->spec.arch.processor_count());
      sys->priorities = sched::assign_priorities(sys->hardened->apps);
    }
    util::log_info("serve: loaded ", path, " (",
                   sys->spec.apps.graph_count(), " applications, candidate ",
                   sys->candidate.has_value() ? "present" : "absent",
                   sys->store != nullptr
                       ? ", store " + sys->store->directory() + ")"
                       : std::string(")"));
    systems_.push_back(std::move(sys));
  }
}

Server::~Server() {
  if (sampler_ != nullptr) sampler_->stop();  // joins the sampling thread
  try {
    flush();
  } catch (const std::exception& error) {
    util::log_warn("serve: flush on shutdown failed: ", error.what());
  }
  if (access_log_fd_ >= 0) ::close(access_log_fd_);
}

bool Server::stopping() const {
  return stop_.load(std::memory_order_relaxed) ||
         (options_.stop_requested && options_.stop_requested()) ||
         (options_.max_requests != 0 &&
          stats_.requests.load(std::memory_order_relaxed) >=
              options_.max_requests);
}

void Server::flush() {
  for (const auto& sys : systems_)
    if (sys->store != nullptr) sys->store->flush();
}

Server::ResidentSystem& Server::resident(const JsonValue& root) {
  const std::string name = root.str_or("system", "");
  if (name.empty()) {
    if (systems_.size() == 1) return *systems_.front();
    throw std::runtime_error(
        "request must name a \"system\" (several are loaded)");
  }
  for (const auto& sys : systems_)
    if (sys->path == name) return *sys;
  throw std::runtime_error("unknown system '" + name +
                           "' (not among the paths given at startup)");
}

core::Candidate Server::request_candidate(ResidentSystem& sys,
                                          const JsonValue& params) {
  const JsonValue* text = params.get("candidate");
  const JsonValue* genes = params.get("chromosome");
  if (text != nullptr && genes != nullptr)
    throw std::runtime_error(
        "give either params.candidate or params.chromosome, not both");
  if (text != nullptr) {
    if (text->kind != JsonValue::Kind::kString)
      throw std::runtime_error(
          "params.candidate must be a string holding a text-format "
          "`candidate { ... }` block");
    std::optional<io::SystemSpec> parsed;
    try {
      parsed.emplace(io::parse_system_string(sys.body_text + "\n" +
                                             text->string + "\n"));
    } catch (const std::exception& error) {
      throw std::runtime_error(std::string("params.candidate: ") +
                               error.what());
    }
    const io::SystemSpec& combined = *parsed;
    // The block is parsed against this system's rendered arch/apps; any
    // text that alters the system itself (extra applications, processors)
    // must not masquerade as a candidate for the resident evaluator.
    if (combined.arch.processor_count() !=
            sys.spec.arch.processor_count() ||
        combined.apps.graph_count() != sys.spec.apps.graph_count() ||
        combined.apps.task_count() != sys.spec.apps.task_count())
      throw std::runtime_error(
          "params.candidate must contain only a candidate block");
    if (!combined.candidate.has_value())
      throw std::runtime_error(
          "params.candidate contains no candidate block");
    return *combined.candidate;
  }
  if (genes != nullptr) {
    dse::Chromosome chromosome = read_chromosome(*genes);
    const dse::ChromosomeShape& shape = sys.decoder->shape();
    if (!dse::shape_ok(chromosome, shape))
      throw std::runtime_error(
          "params.chromosome does not fit system '" + sys.path + "' (" +
          std::to_string(shape.processors) + " processors, " +
          std::to_string(shape.graphs) + " applications, " +
          std::to_string(shape.tasks) + " tasks) or has out-of-range genes");
    // Content-seeded decode, exactly like the GA: identical genotypes
    // repair to identical candidates wherever they are evaluated, so a
    // remote worker and an in-process run agree bitwise (params.seed is
    // the campaign seed; default 0).
    util::Rng rng(dse::chromosome_hash(chromosome, params.u64_or("seed", 0)));
    return sys.decoder->decode(chromosome, rng);
  }
  if (!sys.candidate.has_value())
    throw std::runtime_error(
        "the system file has no candidate block; pass params.candidate or "
        "params.chromosome, add one, or run `ftmc optimize` first");
  return *sys.candidate;
}

obs::Json Server::handle_analyze(ResidentSystem& sys,
                                 const JsonValue& params,
                                 RequestInfo* info) {
  const core::Candidate candidate = request_candidate(sys, params);
  if (const auto error = sys.evaluator->structural_error(candidate);
      !error.empty())
    throw std::runtime_error("candidate invalid: " + error);
  bool cache_hit = false;
  const core::Evaluation evaluation =
      sys.evaluator->evaluate(candidate, &cache_hit);
  if (info != nullptr) {
    info->cache_known = true;
    info->cache_hit = cache_hit;
  }
  std::ostringstream out;
  write_analyze_report(out, sys.spec, candidate, evaluation);
  obs::Json result = obs::Json::object();
  result.set("feasible", evaluation.feasible())
      .set("power", evaluation.power)
      .set("service", evaluation.service)
      .set("scenario_count", evaluation.scenario_count)
      .set("cache_hit", cache_hit)
      .set("exit_code", evaluation.feasible() ? 0 : 1)
      .set("output", out.str());
  return result;
}

obs::Json Server::handle_evaluate(ResidentSystem& sys,
                                  const JsonValue& params,
                                  RequestInfo* info) {
  const core::Candidate candidate = request_candidate(sys, params);
  if (const auto error = sys.evaluator->structural_error(candidate);
      !error.empty())
    throw std::runtime_error("candidate invalid: " + error);
  bool cache_hit = false;
  const core::Evaluation evaluation =
      sys.evaluator->evaluate(candidate, &cache_hit);
  if (info != nullptr) {
    info->cache_known = true;
    info->cache_hit = cache_hit;
  }
  obs::Json wcrt = obs::Json::array();
  for (const model::Time bound : evaluation.graph_wcrt)
    wcrt.push(obs::Json::integer(bound));
  obs::Json result = obs::Json::object();
  result.set("mapping_valid", evaluation.mapping_valid)
      .set("reliability_ok", evaluation.reliability_ok)
      .set("normal_schedulable", evaluation.normal_schedulable)
      .set("critical_schedulable", evaluation.critical_schedulable)
      .set("feasible", evaluation.feasible())
      .set("power", evaluation.power)
      .set("service", evaluation.service)
      .set("scenario_count", evaluation.scenario_count)
      .set("scenario_solves", evaluation.scenario_solves)
      .set("graph_wcrt", std::move(wcrt))
      .set("cache_hit", cache_hit);
  return result;
}

obs::Json Server::handle_simulate(ResidentSystem& sys,
                                  const JsonValue& params) {
  if (!sys.hardened.has_value())
    throw std::runtime_error(
        "the system file has no candidate block; add one or run "
        "`ftmc optimize` first");
  sim::MonteCarloOptions mc;
  mc.profiles = params.u64_or("profiles", 1000);
  mc.seed = params.u64_or("seed", 1);
  mc.hyperperiods = params.u64_or("hyperperiods", 1);
  mc.threads = options_.threads;
  // fault_prob travels as the user's verbatim string: the report title
  // embeds the spelling (the CLI prints the --fault-prob argument, not a
  // re-formatted double), so a numeric JSON value could not stay
  // byte-identical to the one-shot output.
  if (const JsonValue* p = params.get("fault_prob");
      p != nullptr && p->kind != JsonValue::Kind::kString)
    throw std::runtime_error(
        "params.fault_prob must be a string (the verbatim --fault-prob "
        "spelling, e.g. \"0.3\")");
  const std::string fault_prob = params.str_or("fault_prob", "0.3");
  char* end = nullptr;
  mc.fault_probability = std::strtod(fault_prob.c_str(), &end);
  if (end == fault_prob.c_str() || *end != '\0')
    throw std::runtime_error("params.fault_prob '" + fault_prob +
                             "' is not a number");

  sim::PreparedSim* prepared = nullptr;
  {
    // Concurrent sessions may request the same hyperperiod count at once;
    // the first builds, the rest wait and share.  A PreparedSim is
    // immutable after construction, so the pointer is safe to use outside
    // the lock.
    std::lock_guard lock(sys.prepared_mutex);
    auto& slot = sys.prepared[mc.hyperperiods];
    if (slot == nullptr)
      slot = std::make_unique<sim::PreparedSim>(
          sys.spec.arch, *sys.hardened, sys.candidate->drop, sys.priorities,
          sim::PrepareOptions{mc.hyperperiods, false});
    prepared = slot.get();
  }
  const sim::MonteCarloResult result =
      sim::monte_carlo_wcrt(*prepared, *sys.hardened, mc, &pool_);
  std::ostringstream out;
  write_simulate_report(out, *sys.hardened, result, mc.profiles, fault_prob);
  obs::Json doc = obs::Json::object();
  doc.set("profiles", mc.profiles)
      .set("deadline_miss_profiles", result.deadline_miss_profiles)
      .set("events_processed", result.events_processed)
      .set("output", out.str());
  return doc;
}

obs::Json Server::handle_batch(const JsonValue& params,
                               const std::string& request_id) {
  const JsonValue* items = params.get("requests");
  if (items == nullptr || items->kind != JsonValue::Kind::kArray)
    throw std::runtime_error(
        "params.requests must be an array of request objects");
  counters().batch_requests.add(1);
  counters().batch_items.add(items->array.size());
  std::vector<obs::Json> responses(items->array.size());
  auto run = [&](std::size_t k) {
    const JsonValue& item = items->array[k];
    if (obs::tracing_enabled()) {
      // Derive the sub-request id from the parent so the pool thread's
      // spans correlate with the batch request's access-log record.
      std::string sub =
          id_text(item.is_object() ? item.get("id") : nullptr);
      if (sub.empty()) sub = std::to_string(k);
      obs::trace_instant("serve.request_id", request_id + "#" + sub);
    }
    responses[k] = dispatch(item, /*allow_batch=*/false, nullptr, request_id);
  };
  // Fan the items out across the pool; each response lands in its own slot,
  // so the result array keeps request order no matter the schedule.
  if (pool_.thread_count() > 1 && responses.size() > 1) {
    pool_.parallel_for(responses.size(), run);
  } else {
    for (std::size_t k = 0; k < responses.size(); ++k) run(k);
  }
  obs::Json list = obs::Json::array();
  for (obs::Json& response : responses) list.push(std::move(response));
  return obs::Json::object()
      .set("count", obs::Json::uinteger(items->array.size()))
      .set("results", std::move(list));
}

obs::Json Server::systems_json() const {
  obs::Json list = obs::Json::array();
  for (const auto& sys : systems_)
    list.push(obs::Json::object()
                  .set("system", sys->path)
                  .set("applications", sys->spec.apps.graph_count())
                  .set("candidate", sys->candidate.has_value()));
  return obs::Json::object().set("systems", std::move(list));
}

obs::Json Server::stats_json() const {
  obs::Json systems = obs::Json::array();
  for (const auto& sys : systems_) {
    obs::Json entry = obs::Json::object();
    entry.set("system", sys->path);
    if (sys->cache != nullptr) {
      const core::CacheStats cache = sys->cache->stats();
      entry.set("cache", obs::Json::object()
                             .set("hits", cache.hits)
                             .set("misses", cache.misses)
                             .set("insertions", cache.insertions)
                             .set("evictions", cache.evictions)
                             .set("byte_evictions", cache.byte_evictions)
                             .set("entries", cache.entries)
                             .set("bytes", cache.bytes));
    }
    if (sys->store != nullptr) {
      const core::EvalStoreStats store = sys->store->stats();
      entry.set("store",
                obs::Json::object()
                    .set("directory", sys->store->directory())
                    .set("hits", store.hits)
                    .set("misses", store.misses)
                    .set("appends", store.appends)
                    .set("records", store.records)
                    .set("bytes_mapped", store.bytes_mapped)
                    .set("log_bytes", store.log_bytes)
                    .set("torn_bytes_discarded", store.torn_bytes_discarded)
                    .set("index_rebuilds", store.index_rebuilds));
    }
    systems.push(std::move(entry));
  }
  return obs::Json::object()
      .set("requests", stats_.requests.load(std::memory_order_relaxed))
      .set("errors", stats_.errors.load(std::memory_order_relaxed))
      .set("bytes_in", stats_.bytes_in.load(std::memory_order_relaxed))
      .set("bytes_out", stats_.bytes_out.load(std::memory_order_relaxed))
      .set("connections",
           stats_.connections.load(std::memory_order_relaxed))
      .set("systems", std::move(systems));
}

obs::Json Server::handle_metrics(const JsonValue& params) const {
  const std::string format = params.str_or("format", "json");
  const obs::MetricsSnapshot snap = obs::snapshot();
  if (format == "prometheus")
    return obs::Json::object()
        .set("format", "prometheus")
        .set("body", obs::prometheus_text(snap));
  if (format != "json")
    throw std::runtime_error(
        "params.format must be \"json\" or \"prometheus\"");
  obs::Json result = obs::Json::object();
  result.set("metrics", obs::metrics_to_json(snap));
  if (sampler_ == nullptr) {
    result.set("window", obs::Json());  // sampling off: no windowed view
    return result;
  }
  const obs::TimeSeriesSampler::Window w = sampler_->window(60.0);
  obs::Json rates =
      obs::Json::object()
          .set("requests_per_s",
               obs::Json::number(w.rate("serve.requests"), 3))
          .set("scenarios_per_s",
               obs::Json::number(w.rate("analysis.scenarios"), 3))
          .set("sim_events_per_s",
               obs::Json::number(w.rate("sim.events"), 3));
  obs::Json latency = obs::Json::object();
  static constexpr const char* kMethods[] = {
      "ping",  "systems", "stats",  "analyze",  "evaluate", "simulate",
      "batch", "metrics", "health", "shutdown", "other"};
  for (const char* m : kMethods) {
    const std::string name = std::string("serve.latency.") + m;
    const obs::MetricValue* hist = w.delta.find(name);
    if (hist == nullptr || hist->value == 0) continue;
    latency.set(
        m, obs::Json::object()
               .set("count", obs::Json::uinteger(hist->value))
               .set("p50_us", obs::Json::number(w.delta.quantile(name, 0.5), 1))
               .set("p95_us",
                    obs::Json::number(w.delta.quantile(name, 0.95), 1)));
  }
  result.set(
      "window",
      obs::Json::object()
          .set("seconds", obs::Json::number(w.seconds, 3))
          .set("samples", obs::Json::uinteger(w.samples))
          .set("rates", std::move(rates))
          .set("cache_hit_rate",
               obs::Json::number(
                   w.hit_rate("cache.eval.hits", "cache.eval.misses"), 4))
          .set("latency", std::move(latency)));
  return result;
}

obs::Json Server::health_json() const {
  obs::Json systems = obs::Json::array();
  for (const auto& sys : systems_) {
    obs::Json entry = obs::Json::object()
                          .set("system", sys->path)
                          .set("candidate", sys->candidate.has_value());
    if (sys->store != nullptr)
      entry.set("store_records",
                obs::Json::uinteger(sys->store->stats().records));
    else
      entry.set("store_records", obs::Json());
    systems.push(std::move(entry));
  }
  const double uptime = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - started_at_)
                            .count();
  return obs::Json::object()
      .set("status", stopping() ? "draining" : "ready")
      .set("uptime_s", obs::Json::number(uptime, 3))
      .set("requests", stats_.requests.load(std::memory_order_relaxed))
      .set("errors", stats_.errors.load(std::memory_order_relaxed))
      .set("inflight", stats_.inflight.load(std::memory_order_relaxed))
      .set("connections",
           stats_.connections.load(std::memory_order_relaxed))
      .set("sampling", sampler_ != nullptr)
      .set("systems", std::move(systems));
}

obs::Json Server::dispatch(const JsonValue& root, bool allow_batch,
                           RequestInfo* info,
                           const std::string& request_id) {
  obs::Json response = obs::Json::object();
  response.set("v", kRpcVersion);
  try {
    if (!root.is_object())
      throw std::runtime_error("request must be a JSON object");
    echo_id(response, root.get("id"));
    // Version gate: top-level requests must carry v; batch items may omit
    // it (they inherit the envelope's, already checked) but must match
    // when present.
    const JsonValue* version = root.get("v");
    if (version == nullptr) {
      if (allow_batch)
        throw RequestError(
            "version_mismatch",
            std::string("request has no \"v\" member; this server speaks ") +
                kRpcVersion);
    } else if (version->kind != JsonValue::Kind::kString ||
               version->string != kRpcVersion) {
      throw RequestError(
          "version_mismatch",
          std::string("unsupported protocol version; this server speaks ") +
              kRpcVersion,
          version->kind == JsonValue::Kind::kString
              ? "got \"" + version->string + "\""
              : "got a non-string \"v\"");
    }
    const std::string method = root.str_or("method", "");
    if (info != nullptr) info->method = method;
    if (method.empty())
      throw std::runtime_error("request has no \"method\" member");
    // Work-bearing methods are refused while draining so a shutdown never
    // queues new analysis behind itself; introspection (ping, health,
    // metrics, stats, systems, shutdown) still answers, which is what
    // lets monitors watch the drain.  Checked at the envelope only: a
    // batch accepted before the drain finishes all of its items.
    if (allow_batch && stopping() &&
        (method == "analyze" || method == "evaluate" ||
         method == "simulate" || method == "batch"))
      throw RequestError(
          "shutting_down",
          "server is draining; method '" + method + "' is refused",
          "introspection methods still answer during the drain");

    static const JsonValue kNoParams{};
    const JsonValue* params = root.get("params");
    if (params != nullptr && !params->is_object() && !params->is_null())
      throw std::runtime_error("\"params\" must be an object");
    const JsonValue& p = params != nullptr ? *params : kNoParams;

    obs::Json result;
    if (method == "ping") {
      result = obs::Json::object().set("pong", true);
    } else if (method == "shutdown") {
      stop_.store(true, std::memory_order_relaxed);
      result = obs::Json::object().set("stopping", true);
    } else if (method == "stats") {
      result = stats_json();
    } else if (method == "systems") {
      result = systems_json();
    } else if (method == "metrics") {
      result = handle_metrics(p);
    } else if (method == "health") {
      result = health_json();
    } else if (method == "batch") {
      if (!allow_batch)
        throw std::runtime_error("batch items may not be \"batch\"");
      result = handle_batch(p, request_id);
    } else if (method == "analyze" || method == "evaluate" ||
               method == "simulate") {
      ResidentSystem& sys = resident(root);
      if (info != nullptr) info->system = sys.path;
      if (method == "analyze")
        result = handle_analyze(sys, p, info);
      else if (method == "evaluate")
        result = handle_evaluate(sys, p, info);
      else
        result = handle_simulate(sys, p);
    } else {
      throw RequestError("unknown_method", "unknown method '" + method + "'");
    }
    response.set("ok", true).set("result", std::move(result));
  } catch (const std::exception& error) {
    counters().errors.add(1);
    stats_.errors.fetch_add(1, std::memory_order_relaxed);
    std::string detail;
    const std::string code = error_code_of(error, &detail);
    if (info != nullptr) {
      info->ok = false;
      info->error_class = code;
    }
    obs::Json err = obs::Json::object()
                        .set("code", code)
                        .set("message", error.what());
    if (!detail.empty()) err.set("detail", detail);
    response.set("ok", false).set("error", std::move(err));
  }
  return response;
}

std::string Server::handle(const std::string& request) {
  RequestInfo info;
  std::string response = handle_request(request, info);
  finish_request(info);
  return response;
}

std::string Server::handle_request(const std::string& request,
                                   RequestInfo& info) {
  counters().requests.add(1);
  counters().bytes_in.add(request.size());
  stats_.requests.fetch_add(1, std::memory_order_relaxed);
  stats_.bytes_in.fetch_add(request.size(), std::memory_order_relaxed);
  counters().inflight.add(1);
  stats_.inflight.fetch_add(1, std::memory_order_relaxed);
  info.bytes_in = request.size();

  obs::Json response;
  const auto parse_start = std::chrono::steady_clock::now();
  try {
    const JsonValue root = parse_json(request);
    info.parse_us = elapsed_us(parse_start);
    info.id = id_text(root.is_object() ? root.get("id") : nullptr);
    if (info.id.empty())
      info.id = "r" + std::to_string(next_request_id_.fetch_add(
                          1, std::memory_order_relaxed));
    obs::trace_instant("serve.request_id", info.id);
    const auto dispatch_start = std::chrono::steady_clock::now();
    response = dispatch(root, /*allow_batch=*/true, &info, info.id);
    info.dispatch_us = elapsed_us(dispatch_start);
  } catch (const std::exception& error) {
    info.parse_us = elapsed_us(parse_start);
    if (info.id.empty())
      info.id = "r" + std::to_string(next_request_id_.fetch_add(
                          1, std::memory_order_relaxed));
    counters().errors.add(1);
    stats_.errors.fetch_add(1, std::memory_order_relaxed);
    info.ok = false;
    info.error_class = "bad_request";
    response = obs::Json::object();
    response.set("v", kRpcVersion);
    response.set("ok", false).set(
        "error", obs::Json::object()
                     .set("code", "bad_request")
                     .set("message", error.what())
                     .set("detail", "the frame payload is not valid JSON"));
  }
  counters().inflight.add(-1);
  stats_.inflight.fetch_sub(1, std::memory_order_relaxed);

  const auto render_start = std::chrono::steady_clock::now();
  std::string text = response.dump();
  info.render_us = elapsed_us(render_start);
  info.bytes_out = text.size();
  counters().bytes_out.add(text.size());
  stats_.bytes_out.fetch_add(text.size(), std::memory_order_relaxed);
  return text;
}

void Server::finish_request(const RequestInfo& info) {
  counters().latency_for(info.method).record(info.handle_us());
  if (access_log_fd_ >= 0) write_access_record(info);
  if (options_.slow_ms > 0 &&
      info.handle_us() >=
          static_cast<std::uint64_t>(options_.slow_ms) * 1000) {
    util::log_warn(
        "serve: slow request id=", info.id,
        " method=", info.method.empty() ? "?" : info.method.c_str(),
        info.system.empty() ? "" : " system=" + info.system,
        " handle_us=", info.handle_us(), " (parse=", info.parse_us,
        " dispatch=", info.dispatch_us, " render=", info.render_us, ")");
  }
}

void Server::write_access_record(const RequestInfo& info) {
  const auto ts_ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count();
  obs::Json record = obs::Json::object()
                         .set("ts_ms", obs::Json::integer(ts_ms))
                         .set("id", info.id)
                         .set("method", info.method)
                         .set("system", info.system)
                         .set("ok", info.ok);
  if (!info.ok) record.set("error", info.error_class);
  if (info.cache_known)
    record.set("cache", info.cache_hit ? "hit" : "miss");
  record
      .set("bytes_in", obs::Json::uinteger(info.bytes_in))
      .set("bytes_out", obs::Json::uinteger(info.bytes_out))
      .set("us", obs::Json::object()
                     .set("read", obs::Json::uinteger(info.read_us))
                     .set("parse", obs::Json::uinteger(info.parse_us))
                     .set("dispatch", obs::Json::uinteger(info.dispatch_us))
                     .set("render", obs::Json::uinteger(info.render_us))
                     .set("write", obs::Json::uinteger(info.write_us)))
      .set("total_us", obs::Json::uinteger(info.total_us()))
      .set("slow",
           options_.slow_ms > 0 &&
               info.handle_us() >=
                   static_cast<std::uint64_t>(options_.slow_ms) * 1000);
  std::string line = record.dump();
  line.push_back('\n');
  // One write() per record, retrying EINTR (the CLI installs handlers
  // without SA_RESTART); O_APPEND makes concurrent whole-line appends
  // atomic.  A partial write (out of space) finishes the line so the file
  // stays line-framed; a hard failure warns once and drops records.
  const char* data = line.data();
  std::size_t left = line.size();
  while (left > 0) {
    const ssize_t written = ::write(access_log_fd_, data, left);
    if (written < 0) {
      if (errno == EINTR) continue;
      if (!access_log_failed_.exchange(true, std::memory_order_relaxed))
        util::log_warn("serve: access log write failed: ",
                       describe_errno(errno));
      return;
    }
    data += written;
    left -= static_cast<std::size_t>(written);
  }
}

int Server::run_session(int in_fd, int out_fd, bool tcp) {
  counters().sessions.add(1);
  FrameReader reader(in_fd);
  std::string payload;
  for (;;) {
    if (stopping()) break;
    RequestInfo info;
    bool got = false;
    const auto read_start = std::chrono::steady_clock::now();
    try {
      got = reader.read(payload);
    } catch (const ProtocolError& error) {
      // Framing is lost; there is no way to resynchronize the stream.
      if (tcp) {
        util::log_warn("serve: dropping connection: ", error.what());
      } else {
        util::log_error("serve: ", error.what());
      }
      return 1;
    }
    if (!got) {
      if (reader.was_interrupted()) continue;  // re-check stopping()
      break;                                   // clean EOF
    }
    info.read_us = elapsed_us(read_start);
    const std::string response = handle_request(payload, info);
    const auto write_start = std::chrono::steady_clock::now();
    try {
      write_frame(out_fd, response);
    } catch (const ProtocolError& error) {
      info.write_us = elapsed_us(write_start);
      finish_request(info);  // the record still lands in the access log
      if (tcp) {
        util::log_warn("serve: dropping connection: ", error.what());
      } else {
        util::log_warn("serve: ", error.what());
      }
      return 1;
    }
    info.write_us = elapsed_us(write_start);
    finish_request(info);
  }
  return 0;
}

int Server::serve_fd(int in_fd, int out_fd) {
  counters().connections.add(1);
  stats_.connections.fetch_add(1, std::memory_order_relaxed);
  const int exit_code = run_session(in_fd, out_fd, /*tcp=*/false);
  flush();
  return exit_code;
}

int Server::serve_tcp(std::uint16_t port, const std::string& port_file) {
  const int listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd < 0)
    throw std::runtime_error(std::string("serve: socket failed: ") +
                             std::strerror(errno));
  const int enable = 1;
  ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &enable, sizeof(enable));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  const int backlog =
      static_cast<int>(std::max<std::size_t>(8, options_.max_connections));
  if (::bind(listen_fd, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) < 0 ||
      ::listen(listen_fd, backlog) < 0) {
    const std::string what = std::strerror(errno);
    ::close(listen_fd);
    throw std::runtime_error("serve: cannot listen on 127.0.0.1:" +
                             std::to_string(port) + ": " + what);
  }
  socklen_t addr_len = sizeof(addr);
  ::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr), &addr_len);
  bound_port_.store(ntohs(addr.sin_port), std::memory_order_release);
  if (!port_file.empty()) {
    // Atomic write: a client polling the file never reads a partial port.
    const std::string text = std::to_string(bound_port()) + "\n";
    util::write_file_atomic(
        port_file, std::span<const std::uint8_t>(
                       reinterpret_cast<const std::uint8_t*>(text.data()),
                       text.size()));
  }
  util::log_info("serve: listening on 127.0.0.1:", bound_port(),
                 " (max ", options_.max_connections,
                 " concurrent connections)");

  // One dedicated thread per accepted connection.  Only this acceptor
  // thread mutates the session list or closes a session fd (always after
  // joining its thread), so a kernel-reused fd can never be shut down by
  // mistake; sessions just flag `done` and bump the slot count.
  struct TcpSession {
    int fd = -1;
    std::thread thread;
    std::atomic<bool> done{false};
  };
  // Closing a socket with unread bytes in its receive queue makes the
  // kernel send RST, which can revoke responses the peer has not read yet
  // (a drain legitimately leaves pipelined frames behind).  Half-close the
  // write side so the final response is followed by FIN, discard whatever
  // input is already buffered, then close on an empty queue.
  const auto close_session_fd = [](int fd) {
    ::shutdown(fd, SHUT_WR);
    char discard[4096];
    for (;;) {
      const ssize_t got = ::recv(fd, discard, sizeof(discard), MSG_DONTWAIT);
      if (got > 0) continue;
      if (got < 0 && errno == EINTR) continue;
      break;  // EOF or empty queue: nothing left to trigger an RST
    }
    ::close(fd);
  };
  std::list<TcpSession> sessions;
  std::mutex sessions_mutex;
  std::condition_variable sessions_cv;
  std::size_t active = 0;

  auto reap_finished = [&] {
    std::list<TcpSession> finished;
    {
      std::lock_guard lock(sessions_mutex);
      for (auto it = sessions.begin(); it != sessions.end();) {
        auto next = std::next(it);
        if (it->done.load(std::memory_order_acquire))
          finished.splice(finished.end(), sessions, it);
        it = next;
      }
    }
    for (TcpSession& session : finished) {
      session.thread.join();
      close_session_fd(session.fd);
    }
  };

  int exit_code = 0;
  while (!stopping()) {
    reap_finished();
    {
      std::unique_lock lock(sessions_mutex);
      if (active >= options_.max_connections) {
        // Backpressure: at the cap, stop accepting; pending clients wait
        // in the listen backlog until a session frees the slot (or until
        // the periodic timeout re-checks stopping()).
        sessions_cv.wait_for(lock, std::chrono::milliseconds(200),
                             [&] { return active < options_.max_connections; });
        continue;
      }
    }
    pollfd poll_fd{listen_fd, POLLIN, 0};
    const int ready = ::poll(&poll_fd, 1, 200);
    if (ready < 0) {
      if (errno == EINTR) continue;  // signal: re-check stopping()
      util::log_error("serve: poll failed: ", describe_errno(errno));
      exit_code = 1;
      break;
    }
    if (ready == 0) continue;  // timeout: re-check stopping()
    const int conn_fd = ::accept(listen_fd, nullptr, nullptr);
    if (conn_fd < 0) {
      const int err = errno;
      // Transient per-connection failures (aborted handshake, signal,
      // spurious wakeup) must not end the serve loop.
      if (err == EINTR || err == ECONNABORTED || err == EAGAIN ||
          err == EWOULDBLOCK) {
        util::log_warn("serve: accept: ", describe_errno(err),
                       ", retrying");
        continue;
      }
      util::log_error("serve: accept failed: ", describe_errno(err));
      exit_code = 1;
      break;
    }
    counters().connections.add(1);
    stats_.connections.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard lock(sessions_mutex);
    sessions.emplace_back();
    TcpSession& session = sessions.back();
    session.fd = conn_fd;
    ++active;
    session.thread = std::thread([this, &session, &sessions_mutex,
                                  &sessions_cv, &active] {
      (void)run_session(session.fd, session.fd, /*tcp=*/true);
      {
        std::lock_guard session_lock(sessions_mutex);
        --active;
      }
      session.done.store(true, std::memory_order_release);
      sessions_cv.notify_one();
    });
  }
  ::close(listen_fd);

  // Graceful drain: half-close every live session so its blocking read
  // returns EOF; in-flight requests finish and their responses still go
  // out on the intact write side.  Then join and close everything.
  {
    std::lock_guard lock(sessions_mutex);
    for (TcpSession& session : sessions)
      if (!session.done.load(std::memory_order_acquire))
        ::shutdown(session.fd, SHUT_RD);
  }
  for (TcpSession& session : sessions) {
    session.thread.join();
    close_session_fd(session.fd);
  }
  flush();
  util::log_info("serve: drained after ",
                 stats_.requests.load(std::memory_order_relaxed),
                 " requests on ",
                 stats_.connections.load(std::memory_order_relaxed),
                 " connections");
  return exit_code;
}

}  // namespace ftmc::serve
