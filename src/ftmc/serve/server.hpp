// `ftmc serve` — a long-lived daemon that keeps systems hot.
//
// The one-shot CLI pays the full cold path on every invocation: parse the
// system file, build the analysis backend, prepare the simulation problem,
// evaluate.  The server pays it once per system at startup and keeps the
// expensive state resident — parsed SystemSpec, hardened view, Evaluator
// wired to a shared L1 EvaluationCache and (with --cache-dir) a persistent
// L2 EvalStore, a PreparedSim per requested hyperperiod count, and one
// ThreadPool — then answers analyze/simulate/evaluate requests over the
// length-prefixed JSONL protocol of protocol.hpp, on stdio or a TCP socket.
//
// Requests are handled one at a time, in order; the resident thread pool
// fans each request out internally (transition scenarios, Monte-Carlo
// profiles), so responses stream back in request order and every "output"
// field is byte-identical to the corresponding one-shot CLI stdout (pinned
// by tests/test_serve.cpp and the CI smoke job).
//
// Request:   {"id": <string|number>, "method": "<name>",
//             "system": "<path as loaded>",   // optional with one system
//             "params": {...}}                // method-specific, optional
// Response:  {"id": <echoed>, "ok": true, "result": {...}}
//        or  {"id": <echoed>, "ok": false, "error": "<message>"}
//
// Methods: ping, systems, analyze, evaluate, simulate
//          (params: profiles, fault_prob as a STRING, seed, hyperperiods),
//          stats, shutdown.  A malformed request fails that one request
//          (ok:false), never the server; a broken *frame* ends the stream.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "ftmc/sched/holistic.hpp"
#include "ftmc/util/thread_pool.hpp"

namespace ftmc::obs {
class Json;
}

namespace ftmc::serve {

struct JsonValue;

struct ServeOptions {
  /// System files to load at startup (each stays resident for its
  /// lifetime).  Duplicates are rejected.
  std::vector<std::string> system_paths;
  /// Worker threads for intra-request fan-out (0 = hardware concurrency).
  std::size_t threads = 0;
  /// Root of the persistent evaluation store; each system gets its own
  /// subdirectory (core::store_directory).  Empty disables the L2.
  std::string cache_dir;
  /// In-process L1 evaluation cache (--no-cache turns it off).
  bool enable_cache = true;
  /// Stop after this many requests (0 = unlimited; CI/test aid).
  std::size_t max_requests = 0;
  /// WCRT-kernel toggles, same as the one-shot commands.
  sched::HolisticAnalysis::Options kernel;
  /// Polled between requests/accepts; true requests a graceful drain
  /// (SIGINT/SIGTERM handler in the CLI).
  std::function<bool()> stop_requested;
};

struct ServeStats {
  std::uint64_t requests = 0;
  std::uint64_t errors = 0;
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
  std::uint64_t connections = 0;
};

class Server {
 public:
  /// Loads every system (throws on parse errors, duplicate paths, or store
  /// damage) and builds the resident state.
  explicit Server(ServeOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Handles one request document and returns the response document (the
  /// protocol framing is the caller's job).  Never throws on bad requests —
  /// those produce ok:false responses.
  std::string handle(const std::string& request);

  /// Serves frames from `in_fd` to `out_fd` (stdio mode: 0/1) until EOF,
  /// shutdown, max_requests, or stop_requested.  Returns an exit code.
  int serve_fd(int in_fd, int out_fd);

  /// Binds 127.0.0.1:`port` (0 = ephemeral), optionally writes the bound
  /// port to `port_file` (atomically, for CI rendezvous), and serves
  /// connections one at a time until shutdown/stop_requested.
  int serve_tcp(std::uint16_t port, const std::string& port_file);

  /// Port bound by serve_tcp (0 before bind).
  std::uint16_t bound_port() const noexcept { return bound_port_; }

  /// True once a shutdown request or stop_requested() drain began.
  bool stopping() const;

  /// Flushes every system's persistent store (fsync + index rewrite).
  void flush();

  const ServeStats& stats() const noexcept { return stats_; }

 private:
  struct ResidentSystem;

  ResidentSystem& resident(const JsonValue& root);
  obs::Json handle_analyze(ResidentSystem& sys);
  obs::Json handle_evaluate(ResidentSystem& sys);
  obs::Json handle_simulate(ResidentSystem& sys, const JsonValue& params);
  obs::Json stats_json() const;
  obs::Json systems_json() const;

  ServeOptions options_;
  sched::HolisticAnalysis backend_;
  util::ThreadPool pool_;
  std::vector<std::unique_ptr<ResidentSystem>> systems_;
  std::atomic<bool> stop_{false};
  std::uint16_t bound_port_ = 0;
  ServeStats stats_;
};

}  // namespace ftmc::serve
