// `ftmc serve` — a long-lived daemon that keeps systems hot.
//
// The one-shot CLI pays the full cold path on every invocation: parse the
// system file, build the analysis backend, prepare the simulation problem,
// evaluate.  The server pays it once per system at startup and keeps the
// expensive state resident — parsed SystemSpec, hardened view, Evaluator
// wired to a shared L1 EvaluationCache and (with --cache-dir) a persistent
// L2 EvalStore, a PreparedSim per requested hyperperiod count, and one
// ThreadPool — then answers analyze/simulate/evaluate requests over the
// length-prefixed JSONL protocol of protocol.hpp, on stdio or a TCP socket.
//
// Concurrency model (see DESIGN.md "Serving" for the full rules):
//
//  - serve_tcp accepts up to `max_connections` concurrent connections; each
//    gets a dedicated session thread that reads frames, handles each request
//    inline, and writes the response before the next read — so pipelined
//    requests on one connection always answer in order.  At the connection
//    cap the acceptor simply stops accepting (backpressure: further clients
//    queue in the listen backlog) until a session ends.
//  - Resident state is shared read-mostly: systems/evaluators/decoders are
//    immutable after startup, the L1 cache and L2 store are internally
//    synchronized, the per-system PreparedSim map is guarded by a mutex,
//    and the thread pool is shared for intra-request fan-out (transition
//    scenarios, Monte-Carlo profiles, batch items).
//  - Graceful drain quiesces *all* sessions: a shutdown request or
//    stop_requested() stops the acceptor, half-closes every session socket
//    (SHUT_RD), lets in-flight responses finish writing, joins the session
//    threads, and flushes the stores.
//
// Every "output" field stays byte-identical to the corresponding one-shot
// CLI stdout regardless of concurrency (pinned by tests/test_serve.cpp and
// the CI smoke job).
//
// Request:   {"id": <string|number>, "method": "<name>",
//             "system": "<path as loaded>",   // optional with one system
//             "params": {...}}                // method-specific, optional
// Response:  {"id": <echoed>, "ok": true, "result": {...}}
//        or  {"id": <echoed>, "ok": false, "error": "<message>"}
//
// Methods: ping, systems, analyze, evaluate, simulate
//          (params: profiles, fault_prob as a STRING, seed, hyperperiods),
//          stats, batch (params.requests = array of request objects, fanned
//          out across the pool, results in request order), shutdown,
//          metrics (full ftmc.metrics.v1 snapshot + windowed rates;
//          params.format "prometheus" returns the text exposition), and
//          health (ready/draining, uptime, inflight, resident systems).
//          analyze/evaluate accept an inline candidate instead of the
//          resident one: params.candidate (a text-format `candidate {...}`
//          block) or params.chromosome (a GA genotype, decoded and repaired
//          exactly like the in-process GA) — the entry point for remote DSE
//          workers.  A malformed request fails that one request (ok:false),
//          never the server; a broken *frame* ends that stream only.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "ftmc/sched/holistic.hpp"
#include "ftmc/util/thread_pool.hpp"

namespace ftmc::obs {
class Json;
class TimeSeriesSampler;
}

namespace ftmc::core {
struct Candidate;
}

namespace ftmc::serve {

struct JsonValue;

struct ServeOptions {
  /// System files to load at startup (each stays resident for its
  /// lifetime).  Duplicates are rejected.
  std::vector<std::string> system_paths;
  /// Worker threads for intra-request fan-out (0 = hardware concurrency).
  std::size_t threads = 0;
  /// Root of the persistent evaluation store; each system gets its own
  /// subdirectory (core::store_directory).  Empty disables the L2.
  std::string cache_dir;
  /// In-process L1 evaluation cache (--no-cache turns it off).
  bool enable_cache = true;
  /// Stop after this many requests (0 = unlimited; CI/test aid).
  std::size_t max_requests = 0;
  /// Concurrent TCP sessions served at once (minimum 1).  Further clients
  /// wait in the listen backlog until a session ends (backpressure).
  std::size_t max_connections = 8;
  /// JSONL access log: one record per request with the latency breakdown
  /// (see DESIGN.md "Live serve observability").  Empty disables it.
  std::string access_log;
  /// Requests whose parse+dispatch+render time reaches this many
  /// milliseconds are escalated to the main log at Warn (0 disables).
  std::size_t slow_ms = 0;
  /// Cadence of the background metrics sampler feeding the `metrics`
  /// method's windowed rates (0 disables sampling).
  std::size_t sample_interval_ms = 1000;
  /// Prometheus textfile rewritten (write-temp+rename) on every sampler
  /// tick, for node-exporter-style collection.  Empty disables it;
  /// requires the sampler.
  std::string prom_textfile;
  /// WCRT-kernel toggles, same as the one-shot commands.
  sched::HolisticAnalysis::Options kernel;
  /// Polled between requests/accepts; true requests a graceful drain
  /// (SIGINT/SIGTERM handler in the CLI).
  std::function<bool()> stop_requested;
};

/// Aggregate request statistics; atomics because sessions record them
/// concurrently (relaxed — they are monotone tallies, never coordination).
struct ServeStats {
  std::atomic<std::uint64_t> requests{0};
  std::atomic<std::uint64_t> errors{0};
  std::atomic<std::uint64_t> bytes_in{0};
  std::atomic<std::uint64_t> bytes_out{0};
  std::atomic<std::uint64_t> connections{0};
  /// Requests currently inside handle() across all sessions (health).
  std::atomic<std::uint64_t> inflight{0};
};

class Server {
 public:
  /// Loads every system (throws on parse errors, duplicate paths, or store
  /// damage) and builds the resident state.
  explicit Server(ServeOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Handles one request document and returns the response document (the
  /// protocol framing is the caller's job).  Never throws on bad requests —
  /// those produce ok:false responses.  Thread-safe: sessions call this
  /// concurrently.
  std::string handle(const std::string& request);

  /// Serves frames from `in_fd` to `out_fd` (stdio mode: 0/1) until EOF,
  /// shutdown, max_requests, or stop_requested.  Returns an exit code.
  int serve_fd(int in_fd, int out_fd);

  /// Binds 127.0.0.1:`port` (0 = ephemeral), optionally writes the bound
  /// port to `port_file` (atomically, for CI rendezvous), and serves up to
  /// max_connections concurrent sessions until shutdown/stop_requested,
  /// then drains them all.
  int serve_tcp(std::uint16_t port, const std::string& port_file);

  /// Port bound by serve_tcp (0 before bind; atomic so another thread can
  /// poll it while serve_tcp runs).
  std::uint16_t bound_port() const noexcept {
    return bound_port_.load(std::memory_order_acquire);
  }

  /// True once a shutdown request or stop_requested() drain began.
  bool stopping() const;

  /// Flushes every system's persistent store (fsync + index rewrite).
  void flush();

  const ServeStats& stats() const noexcept { return stats_; }

 private:
  struct ResidentSystem;
  /// Per-request observation record (defined in server.cpp): request id,
  /// method, outcome, byte counts, and the read/parse/dispatch/render/
  /// write latency breakdown.  Purely observational — it is filled beside
  /// the request and emitted to the access log, the per-method latency
  /// histograms, and (past --slow-ms) the main log after the response is
  /// complete; nothing in it feeds back into response bytes.
  struct RequestInfo;

  ResidentSystem& resident(const JsonValue& root);
  /// Envelope-level dispatch shared by handle() and batch items: returns a
  /// complete {"id", "ok", ...} response document and never throws.
  /// `info` (top-level requests only, else nullptr) receives method/system/
  /// cache/error observations; `request_id` is the caller's resolved id,
  /// propagated into batch sub-request trace annotations.
  obs::Json dispatch(const JsonValue& root, bool allow_batch,
                     RequestInfo* info, const std::string& request_id);
  obs::Json handle_batch(const JsonValue& params,
                         const std::string& request_id);
  obs::Json handle_analyze(ResidentSystem& sys, const JsonValue& params,
                           RequestInfo* info);
  obs::Json handle_evaluate(ResidentSystem& sys, const JsonValue& params,
                            RequestInfo* info);
  obs::Json handle_simulate(ResidentSystem& sys, const JsonValue& params);
  obs::Json handle_metrics(const JsonValue& params) const;
  obs::Json health_json() const;
  /// The candidate a request refers to: inline params.candidate (text
  /// block) or params.chromosome (decoded genotype), else the resident one.
  core::Candidate request_candidate(ResidentSystem& sys,
                                    const JsonValue& params);
  /// handle() minus the observation epilogue: parses, dispatches, renders,
  /// and fills `info` (counters/stats included).  Sessions call this so
  /// the record can also cover the frame read/write stages.
  std::string handle_request(const std::string& request, RequestInfo& info);
  /// Emits the completed record: per-method latency histogram, access-log
  /// line, and the --slow-ms escalation.
  void finish_request(const RequestInfo& info);
  void write_access_record(const RequestInfo& info);
  /// One session: read frame -> handle inline -> write response, until
  /// EOF/stop.  Shared by serve_fd and every TCP session thread.
  int run_session(int in_fd, int out_fd, bool tcp);
  obs::Json stats_json() const;
  obs::Json systems_json() const;

  ServeOptions options_;
  sched::HolisticAnalysis backend_;
  util::ThreadPool pool_;
  std::vector<std::unique_ptr<ResidentSystem>> systems_;
  std::atomic<bool> stop_{false};
  std::atomic<std::uint16_t> bound_port_{0};
  ServeStats stats_;
  /// Feeds the `metrics` method's windowed rates; started at construction,
  /// joined in the destructor (after the graceful drain).
  std::unique_ptr<obs::TimeSeriesSampler> sampler_;
  std::chrono::steady_clock::time_point started_at_;
  int access_log_fd_ = -1;  ///< O_APPEND fd; -1 when access logging is off
  std::atomic<bool> access_log_failed_{false};
  std::atomic<std::uint64_t> next_request_id_{1};
};

}  // namespace ftmc::serve
