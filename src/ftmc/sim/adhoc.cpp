#include "ftmc/sim/adhoc.hpp"

#include "ftmc/sim/prepared_sim.hpp"

namespace ftmc::sim {

std::vector<model::Time> adhoc_wcrt(
    const model::Architecture& arch, const hardening::HardenedSystem& system,
    const core::DropSet& drop,
    const std::vector<std::uint32_t>& priorities) {
  const PreparedSim prepared(arch, system, drop, priorities);
  AlwaysFaults faults;
  WcetExecution durations;
  RunOptions options;
  options.start_in_critical_state = true;
  // The estimator only reads per-graph responses; skip trace construction.
  options.trace = TraceLevel::kResponses;
  const SimResult& result =
      prepared.run(faults, durations, options, PreparedSim::thread_scratch());
  return result.graph_response;
}

}  // namespace ftmc::sim
