#include "ftmc/sim/adhoc.hpp"

namespace ftmc::sim {

std::vector<model::Time> adhoc_wcrt(
    const model::Architecture& arch, const hardening::HardenedSystem& system,
    const core::DropSet& drop,
    const std::vector<std::uint32_t>& priorities) {
  const Simulator simulator(arch, system, drop, priorities);
  AlwaysFaults faults;
  WcetExecution durations;
  SimOptions options;
  options.start_in_critical_state = true;
  const SimResult result = simulator.run(faults, durations, options);
  return result.graph_response;
}

}  // namespace ftmc::sim
