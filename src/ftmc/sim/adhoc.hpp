// The "Adhoc" estimator of Table 2: an artificial worst-case trace built by
// assuming the system enters the critical state at the very beginning of the
// hyperperiod — all re-executable tasks maximally re-execute with wcet' of
// Eq. (1), all passive standbys are activated, every task runs at WCET, and
// all dropped applications are detached from time zero.
//
// This is a plausible-looking but *unsafe* estimate: because of scheduling
// anomalies, mixed normal/critical interleavings can produce longer response
// times than the all-faults-from-zero trace (the paper shows WC-Sim beating
// Adhoc on some mappings).
#pragma once

#include <vector>

#include "ftmc/sim/simulator.hpp"

namespace ftmc::sim {

/// Per-graph response time of the ad-hoc worst-case trace (-1 for dropped
/// applications, which do not execute at all in this trace).
std::vector<model::Time> adhoc_wcrt(
    const model::Architecture& arch, const hardening::HardenedSystem& system,
    const core::DropSet& drop, const std::vector<std::uint32_t>& priorities);

}  // namespace ftmc::sim
