// Pluggable stochastic models of the trace simulator: where faults strike
// and how long each execution attempt actually takes.
//
// A "failure profile" in the paper's sense (Section 5.1, WC-Sim) is one
// concrete realization of these two models over a simulation run.
#pragma once

#include <unordered_set>

#include "ftmc/model/ids.hpp"
#include "ftmc/model/time.hpp"
#include "ftmc/sched/analysis.hpp"
#include "ftmc/util/rng.hpp"

namespace ftmc::sim {

/// Identifies one execution attempt of one job.
struct AttemptKey {
  std::size_t flat_task = 0;  ///< task in T' (flat index)
  std::size_t instance = 0;   ///< release index within the simulation
  int attempt = 0;            ///< 1-based attempt number

  bool operator==(const AttemptKey&) const = default;
};

struct AttemptKeyHash {
  std::size_t operator()(const AttemptKey& key) const noexcept {
    std::size_t h = key.flat_task * 0x9e3779b97f4a7c15ULL;
    h ^= key.instance + 0x9e3779b9 + (h << 6) + (h >> 2);
    h ^= static_cast<std::size_t>(key.attempt) + 0x9e3779b9 + (h << 6) +
         (h >> 2);
    return h;
  }
};

/// Decides whether a given execution attempt is hit by a transient fault.
/// Called exactly once per attempt, in simulation order.
class FaultModel {
 public:
  virtual ~FaultModel() = default;
  virtual bool attempt_faults(const AttemptKey& key) = 0;
};

/// Fault-free run.
class NoFaults final : public FaultModel {
 public:
  bool attempt_faults(const AttemptKey&) override { return false; }
};

/// Every attempt faults (drives maximal re-execution / standby activation).
class AlwaysFaults final : public FaultModel {
 public:
  bool attempt_faults(const AttemptKey&) override { return true; }
};

/// Independent per-attempt faults with fixed probability.
class RandomFaults final : public FaultModel {
 public:
  RandomFaults(util::Rng rng, double probability)
      : rng_(rng), probability_(probability) {}
  bool attempt_faults(const AttemptKey&) override {
    return rng_.chance(probability_);
  }

 private:
  util::Rng rng_;
  double probability_;
};

/// Faults exactly at an enumerated set of attempts (deterministic scenarios:
/// the motivational example, regression tests).
class PlannedFaults final : public FaultModel {
 public:
  void add(AttemptKey key) { faults_.insert(key); }
  bool attempt_faults(const AttemptKey& key) override {
    return faults_.contains(key);
  }

 private:
  std::unordered_set<AttemptKey, AttemptKeyHash> faults_;
};

/// Draws the actual duration of one attempt within its [bcet, wcet] bounds
/// (already scaled to the executing PE).
class ExecTimeModel {
 public:
  virtual ~ExecTimeModel() = default;
  virtual model::Time attempt_duration(const AttemptKey& key,
                                       model::Time bcet,
                                       model::Time wcet) = 0;
};

/// Every attempt takes its WCET.
class WcetExecution final : public ExecTimeModel {
 public:
  model::Time attempt_duration(const AttemptKey&, model::Time,
                               model::Time wcet) override {
    return wcet;
  }
};

/// Every attempt takes its BCET.
class BcetExecution final : public ExecTimeModel {
 public:
  model::Time attempt_duration(const AttemptKey&, model::Time bcet,
                               model::Time) override {
    return bcet;
  }
};

/// Uniformly random duration in [bcet, wcet].
class UniformExecution final : public ExecTimeModel {
 public:
  explicit UniformExecution(util::Rng rng) : rng_(rng) {}
  model::Time attempt_duration(const AttemptKey&, model::Time bcet,
                               model::Time wcet) override {
    if (wcet <= bcet) return wcet;
    return rng_.uniform_int(bcet, wcet);
  }

 private:
  util::Rng rng_;
};

}  // namespace ftmc::sim
