#include "ftmc/sim/monte_carlo.hpp"

#include <algorithm>
#include <atomic>
#include <mutex>

#include "ftmc/util/stats.hpp"
#include "ftmc/util/thread_pool.hpp"

namespace ftmc::sim {

MonteCarloResult monte_carlo_wcrt(
    const model::Architecture& arch, const hardening::HardenedSystem& system,
    const core::DropSet& drop, const std::vector<std::uint32_t>& priorities,
    const MonteCarloOptions& options) {
  const Simulator simulator(arch, system, drop, priorities);
  const std::size_t graphs = system.apps.graph_count();

  MonteCarloResult result;
  result.worst_response.assign(graphs, -1);
  result.distribution.assign(graphs, ResponseDistribution{});
  result.profiles = options.profiles;

  std::mutex merge_mutex;
  std::atomic<std::size_t> miss_count{0};

  // Per-graph response samples, merged at the end for percentiles.
  std::vector<std::vector<double>> samples(graphs);

  util::ThreadPool pool(options.threads);
  const std::size_t workers = pool.thread_count();
  const std::size_t chunk =
      (options.profiles + workers - 1) / std::max<std::size_t>(workers, 1);

  pool.parallel_for(workers, [&](std::size_t worker) {
    const std::size_t begin = worker * chunk;
    const std::size_t end = std::min(options.profiles, begin + chunk);
    std::vector<model::Time> local_worst(graphs, -1);
    std::vector<std::vector<double>> local_samples(graphs);
    std::vector<std::size_t> local_dropped(graphs, 0);
    std::vector<std::size_t> local_misses(graphs, 0);
    std::size_t local_miss = 0;

    for (std::size_t profile = begin; profile < end; ++profile) {
      // Independent, reproducible stream per profile.
      util::Rng base(options.seed + 0x51ed270b * profile);
      RandomFaults faults(base.split(), options.fault_probability);
      UniformExecution durations(base.split());
      SimOptions sim_options;
      sim_options.hyperperiods = options.hyperperiods;
      const SimResult sim = simulator.run(faults, durations, sim_options);
      for (std::size_t g = 0; g < graphs; ++g) {
        const model::Time response = sim.graph_response[g];
        if (response < 0) {
          ++local_dropped[g];
          continue;
        }
        local_worst[g] = std::max(local_worst[g], response);
        local_samples[g].push_back(static_cast<double>(response));
        if (response >
            system.apps.graph(model::GraphId{static_cast<std::uint32_t>(g)})
                .deadline())
          ++local_misses[g];
      }
      if (sim.deadline_miss) ++local_miss;
    }

    std::lock_guard lock(merge_mutex);
    for (std::size_t g = 0; g < graphs; ++g) {
      result.worst_response[g] =
          std::max(result.worst_response[g], local_worst[g]);
      samples[g].insert(samples[g].end(), local_samples[g].begin(),
                        local_samples[g].end());
      result.distribution[g].dropped += local_dropped[g];
      result.distribution[g].deadline_misses += local_misses[g];
    }
    miss_count += local_miss;
  });

  for (std::size_t g = 0; g < graphs; ++g) {
    ResponseDistribution& dist = result.distribution[g];
    std::vector<double>& sample_set = samples[g];
    dist.observations = sample_set.size();
    if (sample_set.empty()) continue;
    // One streaming pass for the mean, one sort shared by min/max/p95/p99
    // (percentile() would re-copy and re-sort the samples per call).
    util::RunningStats stats;
    for (const double sample : sample_set) stats.add(sample);
    std::sort(sample_set.begin(), sample_set.end());
    dist.mean = stats.mean();
    dist.min = static_cast<model::Time>(sample_set.front());
    dist.max = static_cast<model::Time>(sample_set.back());
    dist.p95 =
        static_cast<model::Time>(util::percentile_sorted(sample_set, 0.95));
    dist.p99 =
        static_cast<model::Time>(util::percentile_sorted(sample_set, 0.99));
  }

  result.deadline_miss_profiles = miss_count;
  return result;
}

}  // namespace ftmc::sim
