#include "ftmc/sim/monte_carlo.hpp"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>

#include "ftmc/obs/metrics.hpp"
#include "ftmc/obs/trace.hpp"
#include "ftmc/sim/prepared_sim.hpp"
#include "ftmc/util/stats.hpp"
#include "ftmc/util/thread_pool.hpp"

namespace ftmc::sim {

namespace {

struct McCounters {
  obs::Counter campaigns{"mc.campaigns"};
  obs::Counter profiles{"mc.profiles"};
};

McCounters& mc_counters() {
  static McCounters counters;
  return counters;
}

}  // namespace

MonteCarloResult monte_carlo_wcrt(
    const model::Architecture& arch, const hardening::HardenedSystem& system,
    const core::DropSet& drop, const std::vector<std::uint32_t>& priorities,
    const MonteCarloOptions& options) {
  // Build the static problem once; every profile below only re-runs it.
  const PreparedSim prepared(arch, system, drop, priorities,
                             PrepareOptions{options.hyperperiods, false});
  return monte_carlo_wcrt(prepared, system, options, nullptr);
}

MonteCarloResult monte_carlo_wcrt(const PreparedSim& prepared,
                                  const hardening::HardenedSystem& system,
                                  const MonteCarloOptions& options,
                                  util::ThreadPool* external_pool) {
  obs::Span campaign_span("mc.campaign");
  mc_counters().campaigns.add(1);
  const std::size_t graphs = system.apps.graph_count();

  MonteCarloResult result;
  result.worst_response.assign(graphs, -1);
  result.distribution.assign(graphs, ResponseDistribution{});
  result.profiles = options.profiles;

  std::mutex merge_mutex;
  std::atomic<std::size_t> miss_count{0};
  std::atomic<std::size_t> events_total{0};
  // Fault-triggered re-executions and standby activations make profile cost
  // uneven, so profiles are handed out dynamically instead of in static
  // per-worker chunks: no worker idles while another drains a heavy stretch.
  std::atomic<std::size_t> next_profile{0};

  // Per-graph response samples, merged at the end for percentiles.  The
  // merge order varies with thread scheduling; every order-sensitive
  // statistic (mean included) is computed after the canonical sort, so the
  // result is bit-identical across thread counts and runs.
  std::vector<std::vector<double>> samples(graphs);

  RunOptions run_options;
  run_options.max_events = options.max_events;
  run_options.trace = options.trace;

  std::optional<util::ThreadPool> owned_pool;
  if (external_pool == nullptr) owned_pool.emplace(options.threads);
  util::ThreadPool& pool = external_pool ? *external_pool : *owned_pool;
  const std::size_t workers =
      std::min(std::max<std::size_t>(pool.thread_count(), 1),
               std::max<std::size_t>(options.profiles, 1));

  pool.parallel_for(workers, [&](std::size_t) {
    obs::Span worker_span("mc.worker");
    // One scratch arena per worker thread, shared across all its profiles
    // (and with any other campaign this thread ever runs).
    PreparedSim::Scratch& scratch = PreparedSim::thread_scratch();
    std::vector<model::Time> local_worst(graphs, -1);
    std::vector<std::vector<double>> local_samples(graphs);
    std::vector<std::size_t> local_dropped(graphs, 0);
    std::vector<std::size_t> local_misses(graphs, 0);
    std::size_t local_miss = 0;
    std::size_t local_events = 0;
    std::uint64_t local_profiles = 0;

    for (;;) {
      const std::size_t profile =
          next_profile.fetch_add(1, std::memory_order_relaxed);
      if (profile >= options.profiles) break;
      ++local_profiles;
      // Independent, reproducible stream per profile.
      const std::uint64_t profile_seed =
          options.seed + 0x51ed270b * static_cast<std::uint64_t>(profile);
      try {
        util::Rng base(profile_seed);
        RandomFaults faults(base.split(), options.fault_probability);
        UniformExecution durations(base.split());
        const SimResult& sim =
            prepared.run(faults, durations, run_options, scratch);
        local_events += sim.events;
        for (std::size_t g = 0; g < graphs; ++g) {
          const model::Time response = sim.graph_response[g];
          if (response < 0) {
            ++local_dropped[g];
            continue;
          }
          local_worst[g] = std::max(local_worst[g], response);
          local_samples[g].push_back(static_cast<double>(response));
          if (response >
              system.apps.graph(model::GraphId{static_cast<std::uint32_t>(g)})
                  .deadline())
            ++local_misses[g];
        }
        if (sim.deadline_miss) ++local_miss;
      } catch (const std::exception& error) {
        // Surface which profile of the campaign blew up (event budget, bad
        // model...) instead of a bare kernel error from the fan-out.
        throw std::runtime_error(
            "monte_carlo_wcrt: profile " + std::to_string(profile) + " of " +
            std::to_string(options.profiles) + " (seed " +
            std::to_string(profile_seed) + ") failed: " + error.what());
      }
    }

    std::lock_guard lock(merge_mutex);
    for (std::size_t g = 0; g < graphs; ++g) {
      result.worst_response[g] =
          std::max(result.worst_response[g], local_worst[g]);
      samples[g].insert(samples[g].end(), local_samples[g].begin(),
                        local_samples[g].end());
      result.distribution[g].dropped += local_dropped[g];
      result.distribution[g].deadline_misses += local_misses[g];
    }
    miss_count += local_miss;
    events_total += local_events;
    mc_counters().profiles.add(local_profiles);
  });

  for (std::size_t g = 0; g < graphs; ++g) {
    ResponseDistribution& dist = result.distribution[g];
    std::vector<double>& sample_set = samples[g];
    dist.observations = sample_set.size();
    if (sample_set.empty()) continue;
    // Sort first: min/max/p95/p99 index into the sorted set, and the mean
    // accumulates over it in sorted (therefore deterministic) order —
    // accumulating in merge order would drift with thread scheduling.
    std::sort(sample_set.begin(), sample_set.end());
    util::RunningStats stats;
    for (const double sample : sample_set) stats.add(sample);
    dist.mean = stats.mean();
    dist.min = static_cast<model::Time>(sample_set.front());
    dist.max = static_cast<model::Time>(sample_set.back());
    dist.p95 =
        static_cast<model::Time>(util::percentile_sorted(sample_set, 0.95));
    dist.p99 =
        static_cast<model::Time>(util::percentile_sorted(sample_set, 0.99));
  }

  result.deadline_miss_profiles = miss_count;
  result.events_processed = events_total;
  return result;
}

}  // namespace ftmc::sim
