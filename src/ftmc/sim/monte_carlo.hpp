// Monte-Carlo worst-case search ("WC-Sim" of Table 2): simulate many random
// failure profiles (random per-attempt faults + random execution times) and
// record the maximum observed response time per graph.  This is a *lower*
// bound on the true WCRT — the paper uses it to show that simulation
// coverage alone is not a safe analysis.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "ftmc/sim/prepared_sim.hpp"
#include "ftmc/sim/simulator.hpp"
#include "ftmc/util/rng.hpp"
#include "ftmc/util/thread_pool.hpp"

namespace ftmc::sim {

struct MonteCarloOptions {
  std::size_t profiles = 10'000;  ///< paper: 10,000 failure profiles
  /// Probability that a given execution attempt is hit by a fault.  Chosen
  /// high (vs. realistic lambda*C) so the search actually visits faulty and
  /// mixed schedules.
  double fault_probability = 0.3;
  std::size_t hyperperiods = 1;
  std::uint64_t seed = 1;
  /// Worker threads (0 = hardware concurrency).
  std::size_t threads = 0;
  /// Per-profile event budget (throws, wrapped with profile context).
  std::size_t max_events = 50'000'000;
  /// Trace detail per profile.  The campaign aggregates only per-graph
  /// responses, so anything above kResponses is pure overhead — exposed for
  /// A/B measurement (`ftmc simulate --trace-level`, bench_sim_kernel).
  TraceLevel trace = TraceLevel::kResponses;
};

/// Response-time distribution of one graph over the simulated profiles.
struct ResponseDistribution {
  std::size_t observations = 0;  ///< profiles in which the graph completed
  std::size_t dropped = 0;       ///< profiles in which it was dropped
  std::size_t deadline_misses = 0;
  double mean = 0.0;
  model::Time min = -1;
  model::Time max = -1;
  model::Time p95 = -1;
  model::Time p99 = -1;
};

struct MonteCarloResult {
  /// Max observed response per graph (-1: dropped in every profile).
  std::vector<model::Time> worst_response;
  /// Per-graph response-time distributions across profiles.
  std::vector<ResponseDistribution> distribution;
  /// Profiles in which any non-dropped graph missed its deadline.
  std::size_t deadline_miss_profiles = 0;
  std::size_t profiles = 0;
  /// Simulation events processed across all profiles (kernel throughput
  /// counter; order-independent sum, so deterministic).
  std::size_t events_processed = 0;
};

/// Runs `options.profiles` independent simulations and aggregates maxima.
MonteCarloResult monte_carlo_wcrt(const model::Architecture& arch,
                                  const hardening::HardenedSystem& system,
                                  const core::DropSet& drop,
                                  const std::vector<std::uint32_t>& priorities,
                                  const MonteCarloOptions& options = {});

/// Same campaign over an already-built PreparedSim (`ftmc serve` keeps one
/// resident per system, so repeated simulate requests skip the prepare).
/// `system` must be the hardened system `prepared` was built from, and
/// `prepared`'s hyperperiods must match `options.hyperperiods`.  When `pool`
/// is non-null the profiles run on it (options.threads is ignored);
/// otherwise a pool with options.threads workers is created per call.
/// Results are bit-identical to the owning overload for equal inputs.
MonteCarloResult monte_carlo_wcrt(const PreparedSim& prepared,
                                  const hardening::HardenedSystem& system,
                                  const MonteCarloOptions& options,
                                  util::ThreadPool* pool = nullptr);

}  // namespace ftmc::sim
