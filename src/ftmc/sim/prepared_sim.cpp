#include "ftmc/sim/prepared_sim.hpp"

#include <algorithm>
#include <functional>
#include <limits>
#include <stdexcept>

#include "ftmc/core/exec_model.hpp"
#include "ftmc/hardening/reliability.hpp"
#include "ftmc/obs/metrics.hpp"
#include "ftmc/obs/trace.hpp"

namespace ftmc::sim {

namespace {

constexpr model::Time kNever = std::numeric_limits<model::Time>::max();

/// Event-loop counters: tallied in plain locals during a run and flushed
/// once at the end, so the loop's control flow and output stay bitwise
/// identical whether anyone is watching or not.
struct SimCounters {
  obs::Counter runs{"sim.runs"};
  obs::Counter events{"sim.events"};
  obs::Counter heap_pushes{"sim.heap_pushes"};
  obs::Counter heap_pops{"sim.heap_pops"};
  obs::Counter dispatch_wakeups{"sim.dispatch_wakeups"};
  obs::Counter replica_activations{"sim.replica_activations"};
  obs::Counter preemptions{"sim.preemptions"};
};

SimCounters& sim_counters() {
  static SimCounters counters;
  return counters;
}

/// Execution-time bounds of a single attempt on the task's PE (scaled).
sched::ExecBounds attempt_bounds(const model::Task& task,
                                 const hardening::HardenedTaskInfo& info,
                                 const model::Processor& pe) {
  model::Time bcet = task.bcet;
  model::Time wcet = task.wcet;
  if (info.pays_detection) {
    bcet += task.detection_overhead;
    wcet += task.detection_overhead;
  }
  return {hardening::scaled_time(pe, bcet), hardening::scaled_time(pe, wcet)};
}

/// The legacy event order: (time, kind, seq), with (kind, seq) packed into
/// one key word.  seq numbers are unique, so this is a total order — any
/// correct heap pops the exact same sequence the legacy std::priority_queue
/// did.
struct EventGreater {
  bool operator()(const PreparedSim::Event& a,
                  const PreparedSim::Event& b) const noexcept {
    if (a.time != b.time) return a.time > b.time;
    return a.key > b.key;
  }
};

}  // namespace

PreparedSim::PreparedSim(const model::Architecture& arch,
                         const hardening::HardenedSystem& system,
                         core::DropSet drop,
                         std::vector<std::uint32_t> priorities,
                         const PrepareOptions& options)
    : arch_(&arch), system_(&system), drop_(std::move(drop)) {
  core::validate_drop_set(system.apps, drop_);
  if (priorities.size() != system.apps.task_count())
    throw std::invalid_argument("PreparedSim: priorities size mismatch");
  if (!system.mapping.within(arch.processor_count()))
    throw std::invalid_argument("PreparedSim: mapping out of range");
  if (options.hyperperiods == 0)
    throw std::invalid_argument("PreparedSim: hyperperiods must be positive");

  const model::ApplicationSet& apps = system.apps;
  n_tasks_ = apps.task_count();
  hyperperiods_ = options.hyperperiods;
  hyper_ = apps.hyperperiod();
  sim_end_ = hyper_ * static_cast<model::Time>(hyperperiods_);

  // ---- Static per-node tables (legacy construction order) ----------------
  struct MessageSpec {
    std::size_t src, dst;
    model::Time transfer;
  };
  std::vector<MessageSpec> messages;
  if (options.bus_contention) {
    for (std::uint32_t g = 0; g < apps.graph_count(); ++g) {
      const model::TaskGraph& graph = apps.graph(model::GraphId{g});
      for (const model::Channel& channel : graph.channels()) {
        const std::size_t src = apps.flat_index({g, channel.src});
        const std::size_t dst = apps.flat_index({g, channel.dst});
        if (system.mapping.processor_of_flat(src) !=
                system.mapping.processor_of_flat(dst) &&
            arch.transfer_time(channel.size_bytes) > 0)
          messages.push_back(
              {src, dst, arch.transfer_time(channel.size_bytes)});
      }
    }
  }
  total_ = n_tasks_ + messages.size();
  const std::size_t bus_pe = arch.processor_count();
  pe_count_ = arch.processor_count() + (options.bus_contention ? 1 : 0);

  period_.resize(total_);
  pe_of_.resize(total_);
  bounds_.resize(total_);
  max_attempts_.assign(total_, 1);
  graph_of_.resize(total_);
  node_prio_.resize(total_);
  message_src_.assign(total_, SIZE_MAX);
  role_.assign(total_, hardening::TaskRole::kOriginal);
  reexecutions_.assign(total_, 0);
  in_degree_.assign(total_, 0);

  // Edge lists are built in the legacy insertion order (message edges first
  // for bus runs, then plain channel edges) because delivery events inherit
  // their seq — and thus their same-instant ordering — from it.
  std::vector<std::vector<OutEdge>> out_edges(total_);

  for (std::size_t i = 0; i < n_tasks_; ++i) {
    const model::TaskRef ref = apps.task_ref(i);
    period_[i] = apps.graph(ref.graph_id()).period();
    pe_of_[i] = system.mapping.processor_of_flat(i).value;
    bounds_[i] = attempt_bounds(apps.task(ref), system.info[i],
                                arch.processor(model::ProcessorId{
                                    static_cast<std::uint32_t>(pe_of_[i])}));
    max_attempts_[i] = system.info[i].reexecutions + 1;
    graph_of_[i] = ref.graph;
    node_prio_[i] = priorities[i];
    role_[i] = system.info[i].role;
    reexecutions_[i] = system.info[i].reexecutions;
  }
  for (std::size_t q = 0; q < messages.size(); ++q) {
    const std::size_t node = n_tasks_ + q;
    period_[node] = period_[messages[q].src];
    pe_of_[node] = bus_pe;
    bounds_[node] = {messages[q].transfer, messages[q].transfer};
    graph_of_[node] = graph_of_[messages[q].src];
    node_prio_[node] =
        (static_cast<std::uint64_t>(priorities[messages[q].src]) << 16) | q;
    message_src_[node] = messages[q].src;
    out_edges[messages[q].src].push_back(OutEdge{node, 0});
    ++in_degree_[node];
    out_edges[node].push_back(OutEdge{messages[q].dst, 0});
    ++in_degree_[messages[q].dst];
  }
  for (std::uint32_t g = 0; g < apps.graph_count(); ++g) {
    const model::TaskGraph& graph = apps.graph(model::GraphId{g});
    for (const model::Channel& channel : graph.channels()) {
      const std::size_t src = apps.flat_index({g, channel.src});
      const std::size_t dst = apps.flat_index({g, channel.dst});
      const model::Time delay =
          pe_of_[src] == pe_of_[dst] ? 0
                                     : arch.transfer_time(channel.size_bytes);
      // On bus runs, remote channels with a real transfer time became
      // message nodes above; everything else keeps the plain delivery edge.
      if (options.bus_contention && pe_of_[src] != pe_of_[dst] && delay > 0)
        continue;
      out_edges[src].push_back(OutEdge{dst, delay});
      ++in_degree_[dst];
    }
  }

  out_begin_.assign(total_ + 1, 0);
  for (std::size_t i = 0; i < total_; ++i)
    out_begin_[i + 1] = out_begin_[i] + out_edges[i].size();
  out_edges_.reserve(out_begin_[total_]);
  for (const auto& list : out_edges)
    out_edges_.insert(out_edges_.end(), list.begin(), list.end());

  // Standbys observe the active replicas of their origin; voters tally all
  // replicas of theirs.  Precomputing both lists replaces the legacy
  // all-task scans on every standby release and voter finish.
  primaries_of_.assign(total_, {});
  voter_replicas_.assign(total_, {});
  for (std::size_t i = 0; i < n_tasks_; ++i) {
    if (role_[i] == hardening::TaskRole::kPassiveReplica) {
      for (std::size_t u = 0; u < n_tasks_; ++u)
        if (role_[u] == hardening::TaskRole::kActiveReplica &&
            system.info[u].origin == system.info[i].origin)
          primaries_of_[i].push_back(u);
    } else if (role_[i] == hardening::TaskRole::kVoter) {
      for (std::size_t u = 0; u < n_tasks_; ++u)
        if ((role_[u] == hardening::TaskRole::kActiveReplica ||
             role_[u] == hardening::TaskRole::kPassiveReplica) &&
            system.info[u].origin == system.info[i].origin)
          voter_replicas_[i].push_back(u);
    }
  }

  // ---- Job table skeleton ------------------------------------------------
  job_base_.resize(total_);
  for (std::size_t i = 0; i < total_; ++i) {
    job_base_[i] = job_flat_.size();
    const auto releases = static_cast<std::size_t>(sim_end_ / period_[i]);
    for (std::size_t r = 0; r < releases; ++r) {
      job_flat_.push_back(i);
      job_instance_.push_back(r);
      job_release_.push_back(static_cast<model::Time>(r) * period_[i]);
    }
  }

  // Critical-state entry can only cancel jobs of dropped applications in
  // the current hyperperiod: list them per hyperperiod, ascending job id
  // (the legacy scan order).
  dropped_jobs_.assign(hyperperiods_, {});
  for (std::size_t j = 0; j < job_flat_.size(); ++j)
    if (drop_[graph_of_[job_flat_[j]]])
      dropped_jobs_[static_cast<std::size_t>(job_release_[j] / hyper_)]
          .push_back(j);

  graph_meta_.reserve(apps.graph_count());
  for (std::uint32_t g = 0; g < apps.graph_count(); ++g) {
    const model::TaskGraph& graph = apps.graph(model::GraphId{g});
    GraphMeta meta;
    meta.period = graph.period();
    meta.deadline = graph.deadline();
    meta.instances = static_cast<std::size_t>(sim_end_ / graph.period());
    meta.sink_begin = sink_job_base_.size();
    for (std::uint32_t sink : graph.sinks())
      sink_job_base_.push_back(job_base_[apps.flat_index({g, sink})]);
    meta.sink_end = sink_job_base_.size();
    graph_meta_.push_back(meta);
  }

  // ---- Initial event-heap contents (legacy push order) -------------------
  std::uint64_t seq = 0;
  for (std::size_t h = 1; h <= hyperperiods_; ++h)
    initial_events_.push_back(
        Event{static_cast<model::Time>(h) * hyper_,
              event_key(EventKind::kHyperperiodBoundary, seq++), SIZE_MAX});
  for (std::size_t j = 0; j < job_flat_.size(); ++j)
    if (in_degree_[job_flat_[j]] == 0)
      initial_events_.push_back(Event{
          job_release_[j], event_key(EventKind::kRelease, seq++), j});
  initial_seq_ = seq;
  std::make_heap(initial_events_.begin(), initial_events_.end(),
                 EventGreater{});
}

const SimResult& PreparedSim::run(FaultModel& faults,
                                  ExecTimeModel& durations,
                                  const RunOptions& options,
                                  Scratch& scratch) const {
  obs::Span run_span("sim.run");
  const bool trace_segments = options.trace == TraceLevel::kFull;
  const bool trace_jobs = options.trace != TraceLevel::kResponses;

  // ---- Reset scratch (no allocation once sized) --------------------------
  scratch.jobs.resize(job_flat_.size());
  scratch.pes.resize(pe_count_);
  scratch.completion.assign(pe_count_, kNever);
  scratch.dispatch_pending.assign(pe_count_, 0);
  const std::uint64_t epoch = ++scratch.epoch;
  for (Scratch::PeSlot& pe : scratch.pes) {
    pe.running = SIZE_MAX;
    pe.segment_start = 0;
    pe.ready.clear();
  }
  scratch.heap.assign(initial_events_.begin(), initial_events_.end());
  scratch.deferred.clear();
  scratch.raw_segments.clear();
  std::uint64_t seq = initial_seq_;

  SimResult& result = scratch.result;
  result.jobs.clear();
  result.segments.clear();
  result.responses.clear();
  result.critical_entry.assign(hyperperiods_, -1);
  result.graph_response.assign(graph_meta_.size(), -1);
  result.deadline_miss = false;
  result.unsafe_result = false;
  result.events = 0;

  std::vector<Scratch::JobSlot>& jobs = scratch.jobs;
  auto touch = [&](std::size_t j) -> Scratch::JobSlot& {
    Scratch::JobSlot& slot = jobs[j];
    if (slot.epoch != epoch) {
      slot.epoch = epoch;
      slot.remaining = 0;
      slot.ready_time = -1;
      slot.start_time = -1;
      slot.finish_time = -1;
      slot.pending_inputs = in_degree_[job_flat_[j]];
      slot.attempts = 0;
      slot.state = JobState::kWaiting;
      slot.result_faulty = false;
      slot.in_ready_set = false;
    }
    return slot;
  };

  // Plain local tallies (flushed once after the loop): the initial heap
  // contents count as pushes so pops never exceed pushes in a snapshot.
  std::uint64_t tally_heap_pushes = initial_events_.size();
  std::uint64_t tally_heap_pops = 0;
  std::uint64_t tally_dispatches = 0;
  std::uint64_t tally_activations = 0;
  std::uint64_t tally_preemptions = 0;

  constexpr EventGreater event_greater{};
  bool now_valid = false;  // false until the main loop sets `now`
  model::Time now = 0;
  auto heap_push = [&](model::Time time, EventKind kind, std::size_t job) {
    // An event raised at the instant being processed is always a delivery
    // and always ranks after every pending heap entry at this instant
    // (deliveries are the largest kind; its seq is the largest yet).  The
    // FIFO replays them in push order == seq order, so draining the heap
    // first and the FIFO second pops the identical total order — without
    // two O(log n) heap operations per same-instant event.
    if (now_valid && time == now) {
      scratch.deferred.push_back(Event{time, event_key(kind, seq++), job});
      return;
    }
    scratch.heap.push_back(Event{time, event_key(kind, seq++), job});
    std::push_heap(scratch.heap.begin(), scratch.heap.end(), event_greater);
    ++tally_heap_pushes;
  };
  auto heap_pop_top = [&] {
    std::pop_heap(scratch.heap.begin(), scratch.heap.end(), event_greater);
    scratch.heap.pop_back();
    ++tally_heap_pops;
  };

  auto ready_push = [&](Scratch::PeSlot& pe, std::size_t j) {
    pe.ready.emplace_back(node_prio_[job_flat_[j]], j);
    std::push_heap(pe.ready.begin(), pe.ready.end(), std::greater<>{});
    scratch.dispatch_pending[pe_of_[job_flat_[j]]] = 1;
  };
  /// Drops lazily-deleted entries (jobs cancelled while queued) off the top.
  auto ready_purge = [&](Scratch::PeSlot& pe) {
    while (!pe.ready.empty() && !jobs[pe.ready.front().second].in_ready_set) {
      std::pop_heap(pe.ready.begin(), pe.ready.end(), std::greater<>{});
      pe.ready.pop_back();
    }
  };

  bool critical = false;
  std::size_t events = 0;

  auto close_segment = [&](std::size_t pe_index, model::Time at) {
    Scratch::PeSlot& pe = scratch.pes[pe_index];
    if (trace_segments && pe.running != SIZE_MAX && at > pe.segment_start)
      scratch.raw_segments.push_back(ExecSegment{
          model::ProcessorId{static_cast<std::uint32_t>(pe_index)},
          pe.running, pe.segment_start, at});
  };

  auto push_deliveries = [&](std::size_t j, model::Time at, bool zero_delay) {
    const std::size_t flat = job_flat_[j];
    const std::size_t instance = job_instance_[j];
    for (std::size_t e = out_begin_[flat]; e < out_begin_[flat + 1]; ++e) {
      const OutEdge& edge = out_edges_[e];
      heap_push(at + (zero_delay ? 0 : edge.delay), EventKind::kDelivery,
                job_id(edge.dst, instance));
    }
  };

  auto finish_job = [&](std::size_t j, model::Time at, JobState state,
                        bool zero_delay_outputs) {
    Scratch::JobSlot& job = jobs[j];
    const std::size_t flat = job_flat_[j];
    job.state = state;
    job.finish_time = at;
    // Voter verdict: with too few correct executed replicas, the voted
    // result is wrong.
    if (!is_message(flat) && role_[flat] == hardening::TaskRole::kVoter &&
        !job.result_faulty) {
      std::size_t executed = 0, correct = 0;
      for (const std::size_t u : voter_replicas_[flat]) {
        const Scratch::JobSlot& replica = touch(job_id(u, job_instance_[j]));
        if (replica.state == JobState::kFinished) {
          ++executed;
          if (!replica.result_faulty) ++correct;
        }
      }
      if (executed > 0 && 2 * correct <= executed) job.result_faulty = true;
    }
    if (job.result_faulty && !is_message(flat) &&
        (role_[flat] == hardening::TaskRole::kOriginal ||
         role_[flat] == hardening::TaskRole::kVoter))
      result.unsafe_result = true;
    push_deliveries(j, at, zero_delay_outputs);
  };

  auto enter_critical = [&](model::Time at) {
    if (critical) return;
    critical = true;
    const auto h = static_cast<std::size_t>(std::min<model::Time>(
        at / hyper_, static_cast<model::Time>(hyperperiods_) - 1));
    if (result.critical_entry[h] < 0) result.critical_entry[h] = at;
    for (const std::size_t j : dropped_jobs_[h]) {
      Scratch::JobSlot& job = touch(j);
      if (job.state == JobState::kFinished ||
          job.state == JobState::kCancelled ||
          job.state == JobState::kSkipped)
        continue;
      if (job.start_time >= 0) continue;  // started jobs run to completion
      // Queued jobs stay in their PE heap as ghosts; clearing in_ready_set
      // is the lazy deletion.
      job.in_ready_set = false;
      job.state = JobState::kCancelled;
    }
  };

  // Declared before make_ready: a ready zero-length job finishes on the
  // spot and may cascade further readiness through zero-delay deliveries
  // (those go through the heap, so no recursion).
  auto start_attempt_duration = [&](std::size_t j) {
    Scratch::JobSlot& job = jobs[j];
    const std::size_t flat = job_flat_[j];
    if (is_message(flat)) {
      // Transfers take their fixed fabric time; a skipped producer sent
      // nothing, so its message is free.
      const Scratch::JobSlot& producer =
          touch(job_id(message_src_[flat], job_instance_[j]));
      job.remaining = producer.state == JobState::kSkipped
                          ? 0
                          : bounds_[flat].wcet;
      return;
    }
    const AttemptKey key{flat, job_instance_[j], job.attempts + 1};
    job.remaining =
        durations.attempt_duration(key, bounds_[flat].bcet, bounds_[flat].wcet);
  };

  auto make_ready = [&](std::size_t j, model::Time at) {
    Scratch::JobSlot& job = jobs[j];
    const std::size_t flat = job_flat_[j];
    if (job.state != JobState::kWaiting) return;
    job.ready_time = at;

    if (!is_message(flat) &&
        role_[flat] == hardening::TaskRole::kPassiveReplica) {
      // Activation decision: any primary with a faulty result?
      bool activated = false;
      for (const std::size_t u : primaries_of_[flat]) {
        const Scratch::JobSlot& primary = touch(job_id(u, job_instance_[j]));
        if (primary.state == JobState::kFinished && primary.result_faulty)
          activated = true;
      }
      if (!activated) {
        job.state = JobState::kSkipped;
        job.finish_time = at;
        push_deliveries(j, at, /*zero_delay=*/true);
        return;
      }
      ++tally_activations;
      enter_critical(at);
      // The critical entry above may have cancelled this very job (standbys
      // of a dropped application).
      if (job.state == JobState::kCancelled) return;
    }

    job.state = JobState::kReady;
    start_attempt_duration(j);
    if (job.remaining == 0) {
      job.attempts += 1;
      finish_job(j, at, JobState::kFinished, /*zero_delay_outputs=*/false);
      return;
    }
    ready_push(scratch.pes[pe_of_[flat]], j);
    job.in_ready_set = true;
  };

  auto complete_attempt = [&](std::size_t pe_index, model::Time at) {
    Scratch::PeSlot& pe = scratch.pes[pe_index];
    const std::size_t j = pe.running;
    Scratch::JobSlot& job = jobs[j];
    const std::size_t flat = job_flat_[j];
    close_segment(pe_index, at);
    pe.running = SIZE_MAX;
    scratch.completion[pe_index] = kNever;
    scratch.dispatch_pending[pe_index] = 1;
    job.attempts += 1;

    // Fabric transfers are fault-transparent (Section 2.1); only real
    // tasks consult the fault model.
    const AttemptKey key{flat, job_instance_[j], job.attempts};
    const bool faulted = !is_message(flat) && faults.attempt_faults(key);

    if (faulted) {
      const bool reexecutable =
          role_[flat] == hardening::TaskRole::kOriginal &&
          reexecutions_[flat] > 0;
      if (reexecutable && job.attempts < max_attempts_[flat]) {
        enter_critical(at);
        job.state = JobState::kReady;
        start_attempt_duration(j);
        if (job.remaining == 0) {
          job.attempts += 1;
          finish_job(j, at, JobState::kFinished, false);
          return;
        }
        ready_push(pe, j);
        job.in_ready_set = true;
        return;
      }
      if (reexecutable) enter_critical(at);  // exhausted: still a transition
      job.result_faulty = true;
    }
    finish_job(j, at, JobState::kFinished, false);
  };

  auto dispatch = [&](std::size_t pe_index, model::Time at) {
    Scratch::PeSlot& pe = scratch.pes[pe_index];
    ready_purge(pe);
    if (pe.ready.empty()) return;
    const auto [best_prio, best_job] = pe.ready.front();
    if (pe.running != SIZE_MAX) {
      if (node_prio_[job_flat_[pe.running]] <= best_prio) return;
      // Preempt.  The preempted job's rank is above best_prio, so pushing
      // it cannot displace the captured front.
      ++tally_preemptions;
      close_segment(pe_index, at);
      jobs[pe.running].remaining = scratch.completion[pe_index] - at;
      ready_push(pe, pe.running);
      jobs[pe.running].in_ready_set = true;
      pe.running = SIZE_MAX;
    }
    std::pop_heap(pe.ready.begin(), pe.ready.end(), std::greater<>{});
    pe.ready.pop_back();
    jobs[best_job].in_ready_set = false;
    pe.running = best_job;
    pe.segment_start = at;
    scratch.completion[pe_index] = at + jobs[best_job].remaining;
    if (jobs[best_job].start_time < 0) jobs[best_job].start_time = at;
  };

  if (options.start_in_critical_state) enter_critical(0);

  // ---- Main loop ---------------------------------------------------------
  // Running attempts are tracked by their ABSOLUTE completion instant
  // (scratch.completion, kNever when idle): time advances by jumping `now`,
  // with no per-iteration "subtract delta from every running job" pass —
  // a job's remaining work is reconstructed only on preemption.
  const std::vector<model::Time>& completion = scratch.completion;
  for (;;) {
    model::Time t_next = kNever;
    if (!scratch.heap.empty()) t_next = scratch.heap.front().time;
    for (const model::Time done : completion) t_next = std::min(t_next, done);
    if (t_next == kNever) break;
    now = t_next;
    now_valid = true;
    scratch.deferred.clear();
    std::size_t deferred_head = 0;

    // Hyperperiod boundaries first: the critical state resets before
    // anything else happening at the boundary instant.
    while (!scratch.heap.empty() && scratch.heap.front().time == now &&
           scratch.heap.front().kind() == EventKind::kHyperperiodBoundary) {
      heap_pop_top();
      critical = false;
    }

    // Completions.
    for (std::size_t p = 0; p < scratch.pes.size(); ++p)
      if (completion[p] == now) complete_attempt(p, now);

    // Releases and deliveries at `now` (may cascade through zero-length
    // jobs).  Heap entries at `now` drain first; same-instant cascades land
    // in the FIFO and replay afterwards in seq order — the identical total
    // order (see heap_push).  No heap entry at `now` appears mid-drain,
    // because every same-instant push is deferred.
    for (;;) {
      Event event;
      if (!scratch.heap.empty() && scratch.heap.front().time == now) {
        event = scratch.heap.front();
        heap_pop_top();
      } else if (deferred_head < scratch.deferred.size()) {
        event = scratch.deferred[deferred_head++];
      } else {
        break;
      }
      ++events;
      if (events > options.max_events)
        throw std::runtime_error("PreparedSim: event budget exceeded (" +
                                 std::to_string(options.max_events) +
                                 " events)");
      switch (event.kind()) {
        case EventKind::kHyperperiodBoundary:
          critical = false;
          break;
        case EventKind::kRelease: {
          Scratch::JobSlot& job = touch(event.job);
          if (job.state != JobState::kWaiting) break;  // e.g. cancelled
          make_ready(event.job, now);
          break;
        }
        case EventKind::kDelivery: {
          Scratch::JobSlot& job = touch(event.job);
          if (job.state == JobState::kCancelled) break;
          if (--job.pending_inputs == 0) make_ready(event.job, now);
          break;
        }
      }
    }

    // Per-PE decisions are independent, so skipping PEs whose state is
    // untouched since their last dispatch cannot change any outcome.
    for (std::size_t p = 0; p < scratch.pes.size(); ++p)
      if (scratch.dispatch_pending[p]) {
        scratch.dispatch_pending[p] = 0;
        ++tally_dispatches;
        dispatch(p, now);
      }
  }

  {
    SimCounters& counters = sim_counters();
    counters.runs.add(1);
    counters.events.add(events);
    counters.heap_pushes.add(tally_heap_pushes);
    counters.heap_pops.add(tally_heap_pops);
    counters.dispatch_wakeups.add(tally_dispatches);
    counters.replica_activations.add(tally_activations);
    counters.preemptions.add(tally_preemptions);
  }

  // ---- Finalize ----------------------------------------------------------
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    Scratch::JobSlot& job = touch(j);
    if (job.state == JobState::kWaiting || job.state == JobState::kReady) {
      if (drop_[graph_of_[job_flat_[j]]]) {
        job.state = JobState::kCancelled;
      } else {
        throw std::logic_error(
            "PreparedSim: non-droppable job never finished");
      }
    }
  }

  if (trace_jobs) {
    // Message jobs are an internal artifact: drop them from the public
    // trace and remap the execution segments' job references accordingly
    // (bus segments vanish with them).
    scratch.public_index.assign(jobs.size(), SIZE_MAX);
    result.jobs.reserve(jobs.size());
    for (std::size_t j = 0; j < jobs.size(); ++j) {
      const Scratch::JobSlot& job = jobs[j];
      const std::size_t flat = job_flat_[j];
      if (is_message(flat)) continue;
      scratch.public_index[j] = result.jobs.size();
      JobRecord record;
      record.flat_task = flat;
      record.instance = job_instance_[j];
      record.release_time = job_release_[j];
      record.ready_time = job.ready_time;
      record.start_time = job.start_time;
      record.finish_time = job.finish_time;
      record.attempts = job.attempts;
      record.result_faulty = job.result_faulty;
      record.state = job.state;
      result.jobs.push_back(record);
    }
    if (trace_segments) {
      result.segments.reserve(scratch.raw_segments.size());
      for (const ExecSegment& segment : scratch.raw_segments) {
        if (scratch.public_index[segment.job] == SIZE_MAX) continue;
        ExecSegment remapped = segment;
        remapped.job = scratch.public_index[segment.job];
        result.segments.push_back(remapped);
      }
    }
  }

  for (std::uint32_t g = 0; g < graph_meta_.size(); ++g) {
    const GraphMeta& meta = graph_meta_[g];
    for (std::size_t r = 0; r < meta.instances; ++r) {
      InstanceResponse response;
      response.graph = model::GraphId{g};
      response.instance = r;
      response.release_time = static_cast<model::Time>(r) * meta.period;
      model::Time finish = 0;
      bool dropped = false;
      for (std::size_t s = meta.sink_begin; s < meta.sink_end; ++s) {
        const Scratch::JobSlot& job = jobs[sink_job_base_[s] + r];
        if (job.state != JobState::kFinished &&
            job.state != JobState::kSkipped) {
          dropped = true;
          break;
        }
        finish = std::max(finish, job.finish_time);
      }
      if (dropped) {
        response.response = -1;
      } else {
        response.response = finish - response.release_time;
        response.deadline_met = response.response <= meta.deadline;
        if (!response.deadline_met) result.deadline_miss = true;
        result.graph_response[g] =
            std::max(result.graph_response[g], response.response);
      }
      if (trace_jobs) result.responses.push_back(response);
    }
  }
  result.events = events;
  return result;
}

PreparedSim::Scratch& PreparedSim::thread_scratch() {
  thread_local Scratch scratch;
  return scratch;
}

}  // namespace ftmc::sim
