// Prepared simulation kernel: build the static problem once, run N times.
//
// Monte-Carlo fault injection, the Adhoc estimator, and the Table-2 safety
// experiments all simulate ONE fixed candidate (arch, hardened system, drop
// set, priorities) under MANY fault/execution-time realizations.  The
// original Simulator::run() rebuilt every static table — message specs, flat
// node/period/edge arrays, the whole job table — and re-allocated the event
// queue, the per-PE ready sets, and the full trace on every call.
// PreparedSim hoists everything derivable from the candidate into a
// build-once object, mirroring sched::PreparedProblem:
//
//   - flat node tables (period, PE, exec bounds, priority, role, attempts);
//   - CSR out-edge lists (tasks + bus message nodes, legacy edge order);
//   - the job table skeleton (per-node job bases, release times) and the
//     initial event-heap contents (hyperperiod boundaries + root releases);
//   - per-standby primary lists and per-voter replica lists, so standby
//     activation and the voter verdict index straight into the replicas of
//     their origin instead of scanning all tasks;
//   - per-hyperperiod lists of dropped-application jobs, so critical-state
//     entry cancels only candidates instead of scanning the job table.
//
// run(faults, durations, options, scratch) is re-entrant and allocation-free
// once the caller-owned Scratch has grown to the problem size: job slots are
// epoch-stamped (reset is a counter bump, not a clear), the event queue is a
// flat binary heap on a reused vector, the per-PE ready queues are flat
// lazy-deletion heaps, and the SimResult vectors are recycled.  The
// TraceLevel option controls how much output is materialized — at
// kResponses (the Monte-Carlo setting) no job records, segments, or
// per-instance responses are built at all.
//
// Determinism and identity: the event comparator (time, kind, seq) is a
// total order — seq numbers are unique and assigned in the legacy order —
// so the flat heap pops the exact event sequence the legacy
// std::priority_queue popped, and every output field is bit-identical to
// the reference implementation (reference_sim.hpp) at every trace level
// (tests/test_sim_kernel.cpp).  A PreparedSim is immutable after
// construction: concurrent run() calls only need distinct Scratch.
#pragma once

#include <cstdint>
#include <vector>

#include "ftmc/core/mc_analysis.hpp"
#include "ftmc/hardening/hardening.hpp"
#include "ftmc/sched/analysis.hpp"
#include "ftmc/sim/models.hpp"
#include "ftmc/sim/trace.hpp"

namespace ftmc::sim {

/// Structure-determining parameters, fixed at prepare time: they change the
/// node/job tables, not just the run.
struct PrepareOptions {
  /// Number of hyperperiods to simulate (sets the job-table size).
  std::size_t hyperperiods = 1;
  /// Model the fabric as one shared preemptable bus: remote transfers
  /// become jobs on a bus pseudo-PE at their producer's priority.  Must
  /// match the analysis-side option for the safety relation to hold.
  bool bus_contention = false;
};

/// Per-run parameters: vary freely across run() calls on one PreparedSim.
struct RunOptions {
  /// Hard cap on processed events (throws std::runtime_error beyond).
  std::size_t max_events = 50'000'000;
  /// Enter the critical state at time 0 (the "Adhoc" estimator setting).
  bool start_in_critical_state = false;
  /// How much trace output to materialize (simulation itself is identical).
  TraceLevel trace = TraceLevel::kFull;
};

class PreparedSim {
 public:
  enum class EventKind : std::uint8_t {
    kHyperperiodBoundary = 0,
    kRelease = 1,
    kDelivery = 2,
  };

  /// (kind, seq) packed into one word: kind in the top byte, the unique
  /// sequence number below.  A single integer compare then orders events
  /// exactly like the legacy (kind, seq) tie-break.
  static constexpr std::uint64_t event_key(EventKind kind,
                                           std::uint64_t seq) noexcept {
    return (static_cast<std::uint64_t>(kind) << 56) | seq;
  }

  struct Event {
    model::Time time;
    std::uint64_t key;  ///< event_key(kind, seq)
    std::size_t job;    ///< unused for boundaries

    EventKind kind() const noexcept {
      return static_cast<EventKind>(key >> 56);
    }
  };

  /// Caller-owned run state.  Buffers grow on first use against a problem
  /// and keep their capacity, so reusing one Scratch across runs (and across
  /// PreparedSims) makes the steady-state allocation count zero.
  struct Scratch {
    /// Mutable per-job state; `epoch` stamps which run last touched a slot,
    /// so a run resets the table by bumping `Scratch::epoch` instead of
    /// rewriting every slot.
    struct JobSlot {
      std::uint64_t epoch = 0;
      model::Time remaining = 0;
      model::Time ready_time = -1;
      model::Time start_time = -1;
      model::Time finish_time = -1;
      int pending_inputs = 0;
      int attempts = 0;
      JobState state = JobState::kWaiting;
      bool result_faulty = false;
      bool in_ready_set = false;
    };

    struct PeSlot {
      std::size_t running = SIZE_MAX;
      model::Time segment_start = 0;
      /// Min-heap of (priority rank, job id) with lazy deletion: an entry is
      /// live iff its job's in_ready_set flag is still set (critical-state
      /// cancellation only clears the flag; ghosts are purged on access).
      std::vector<std::pair<std::uint64_t, std::size_t>> ready;
    };

    std::vector<JobSlot> jobs;
    std::vector<PeSlot> pes;
    /// Absolute completion instant of each PE's running attempt (kNever =
    /// idle); the time-advance scan reads this flat array instead of
    /// decrementing per-job remaining work every iteration.
    std::vector<model::Time> completion;
    /// PEs whose running/ready state changed since their last dispatch;
    /// only these are re-examined at the end of an iteration.
    std::vector<std::uint8_t> dispatch_pending;
    std::vector<Event> heap;                 ///< flat binary event heap
    /// Same-instant events raised while processing the current instant.
    /// Any such event is a delivery whose (kind, seq) rank is after every
    /// heap entry at that instant, so a FIFO pass after the heap drain
    /// replays the exact heap order without the push/pop_heap traffic.
    std::vector<Event> deferred;
    std::vector<ExecSegment> raw_segments;   ///< internal job ids (kFull)
    std::vector<std::size_t> public_index;   ///< internal -> public job id
    SimResult result;
    std::uint64_t epoch = 0;
  };

  /// Builds every bounds-independent table.  arch and system are borrowed
  /// and must outlive this object; drop and priorities are copied.  Throws
  /// std::invalid_argument on shape mismatches, exactly like the legacy
  /// Simulator constructor.
  PreparedSim(const model::Architecture& arch,
              const hardening::HardenedSystem& system, core::DropSet drop,
              std::vector<std::uint32_t> priorities,
              const PrepareOptions& options = {});

  /// One simulation run against caller-owned scratch.  Returns a reference
  /// to scratch.result (valid until the scratch's next run).  Thread-safe:
  /// `this` is immutable after construction; concurrent callers need
  /// distinct Scratch (the fault/exec models are per-caller anyway).
  const SimResult& run(FaultModel& faults, ExecTimeModel& durations,
                       const RunOptions& options, Scratch& scratch) const;

  /// Application tasks (trace records cover exactly these).
  std::size_t task_count() const noexcept { return n_tasks_; }
  /// Tasks plus bus message nodes.
  std::size_t node_count() const noexcept { return total_; }
  /// Jobs in the simulated horizon (all nodes, all releases).
  std::size_t job_count() const noexcept { return job_flat_.size(); }

  /// Per-worker scratch arena, reused by every run() this thread issues on
  /// any PreparedSim — across profiles, candidates, and campaigns.
  static Scratch& thread_scratch();

 private:
  struct OutEdge {
    std::size_t dst;
    model::Time delay;
  };

  const model::Architecture* arch_;
  const hardening::HardenedSystem* system_;
  core::DropSet drop_;

  std::size_t n_tasks_ = 0;  ///< application tasks
  std::size_t total_ = 0;    ///< tasks + message nodes
  std::size_t pe_count_ = 0; ///< PEs incl. the bus pseudo-PE if present
  std::size_t hyperperiods_ = 1;
  model::Time hyper_ = 0;
  model::Time sim_end_ = 0;

  // Per-node tables (size total_).
  std::vector<model::Time> period_;
  std::vector<std::size_t> pe_of_;
  std::vector<sched::ExecBounds> bounds_;
  std::vector<int> max_attempts_;
  std::vector<std::uint32_t> graph_of_;
  std::vector<std::uint64_t> node_prio_;
  std::vector<std::size_t> message_src_;  ///< SIZE_MAX for task nodes
  std::vector<hardening::TaskRole> role_;
  std::vector<int> reexecutions_;
  std::vector<int> in_degree_;

  // CSR out-edges in the legacy insertion order (delivery seq order).
  std::vector<std::size_t> out_begin_;  ///< size total_ + 1
  std::vector<OutEdge> out_edges_;

  /// Standby -> active replicas of its origin (activation decision).
  std::vector<std::vector<std::size_t>> primaries_of_;
  /// Voter -> all replicas of its origin (verdict inputs).
  std::vector<std::vector<std::size_t>> voter_replicas_;

  // Job table skeleton.
  std::vector<std::size_t> job_base_;      ///< size total_
  std::vector<std::size_t> job_flat_;      ///< per job
  std::vector<std::size_t> job_instance_;  ///< per job
  std::vector<model::Time> job_release_;   ///< per job

  /// Per hyperperiod h: jobs of dropped applications released inside
  /// [h*hyper, (h+1)*hyper), ascending job id — the only cancellation
  /// candidates on critical-state entry.
  std::vector<std::vector<std::size_t>> dropped_jobs_;

  /// Per-graph finalize table: everything the end-of-run response scan
  /// needs, so finalize touches no ApplicationSet accessors (flat_index,
  /// graph(), sinks() are out-of-line calls on the seed's per-run path).
  struct GraphMeta {
    model::Time period;
    model::Time deadline;
    std::size_t instances;   ///< graph releases inside the horizon
    std::size_t sink_begin;  ///< [begin, end) into sink_job_base_
    std::size_t sink_end;
  };
  std::vector<GraphMeta> graph_meta_;
  /// job_base_ of each graph's sink tasks (sink job id = base + instance).
  std::vector<std::size_t> sink_job_base_;

  /// Event-heap contents at time zero (boundaries + root releases) and the
  /// first free sequence number after them.
  std::vector<Event> initial_events_;
  std::uint64_t initial_seq_ = 0;

  bool is_message(std::size_t node) const noexcept {
    return node >= n_tasks_;
  }
  std::size_t job_id(std::size_t flat, std::size_t instance) const noexcept {
    return job_base_[flat] + instance;
  }
};

}  // namespace ftmc::sim
