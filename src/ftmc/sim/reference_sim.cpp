#include "ftmc/sim/reference_sim.hpp"

#include <algorithm>
#include <limits>
#include <queue>
#include <set>
#include <stdexcept>

#include "ftmc/core/exec_model.hpp"
#include "ftmc/hardening/reliability.hpp"

namespace ftmc::sim::reference {

namespace {

constexpr model::Time kNever = std::numeric_limits<model::Time>::max();

struct OutEdge {
  std::size_t dst;
  model::Time delay;
};

/// Execution-time bounds of a single attempt on the task's PE (scaled).
sched::ExecBounds attempt_bounds(const model::Task& task,
                                 const hardening::HardenedTaskInfo& info,
                                 const model::Processor& pe) {
  model::Time bcet = task.bcet;
  model::Time wcet = task.wcet;
  if (info.pays_detection) {
    bcet += task.detection_overhead;
    wcet += task.detection_overhead;
  }
  return {hardening::scaled_time(pe, bcet), hardening::scaled_time(pe, wcet)};
}

struct Job {
  std::size_t flat = 0;
  std::size_t instance = 0;
  model::Time release_time = 0;
  int pending_inputs = 0;
  model::Time remaining = 0;
  JobState state = JobState::kWaiting;
  model::Time ready_time = -1;
  model::Time start_time = -1;
  model::Time finish_time = -1;
  int attempts = 0;
  bool result_faulty = false;
  bool in_ready_set = false;
};

enum class EventKind : std::uint8_t {
  kHyperperiodBoundary = 0,
  kRelease = 1,
  kDelivery = 2,
};

struct Event {
  model::Time time;
  EventKind kind;
  std::uint64_t seq;
  std::size_t job;  // unused for boundaries

  bool operator>(const Event& other) const {
    if (time != other.time) return time > other.time;
    if (kind != other.kind) return kind > other.kind;
    return seq > other.seq;
  }
};

struct PeState {
  std::size_t running = SIZE_MAX;
  model::Time segment_start = 0;
  /// (priority rank, job id) — begin() is the highest-priority ready job.
  std::set<std::pair<std::uint64_t, std::size_t>> ready;
};

}  // namespace

SimResult run(const model::Architecture& arch,
              const hardening::HardenedSystem& system,
              const core::DropSet& drop,
              const std::vector<std::uint32_t>& priorities,
              FaultModel& faults, ExecTimeModel& durations,
              const SimOptions& options) {
  core::validate_drop_set(system.apps, drop);
  if (priorities.size() != system.apps.task_count())
    throw std::invalid_argument("Simulator: priorities size mismatch");
  if (!system.mapping.within(arch.processor_count()))
    throw std::invalid_argument("Simulator: mapping out of range");

  const model::ApplicationSet& apps = system.apps;
  const std::size_t n_tasks = apps.task_count();
  const model::Time hyper = apps.hyperperiod();
  const model::Time sim_end =
      hyper * static_cast<model::Time>(options.hyperperiods);

  // ---- Static per-node tables -------------------------------------------
  // Remote channels either add a fixed latency (default) or become explicit
  // message nodes on a shared-bus pseudo-PE (options.bus_contention); in the
  // latter case node ids n_tasks.. are messages.
  struct MessageSpec {
    std::size_t src, dst;
    model::Time transfer;
  };
  std::vector<MessageSpec> messages;
  if (options.bus_contention) {
    for (std::uint32_t g = 0; g < apps.graph_count(); ++g) {
      const model::TaskGraph& graph = apps.graph(model::GraphId{g});
      for (const model::Channel& channel : graph.channels()) {
        const std::size_t src = apps.flat_index({g, channel.src});
        const std::size_t dst = apps.flat_index({g, channel.dst});
        if (system.mapping.processor_of_flat(src) !=
                system.mapping.processor_of_flat(dst) &&
            arch.transfer_time(channel.size_bytes) > 0)
          messages.push_back(
              {src, dst, arch.transfer_time(channel.size_bytes)});
      }
    }
  }
  const std::size_t total = n_tasks + messages.size();
  const std::size_t bus_pe = arch.processor_count();

  std::vector<model::Time> period(total);
  std::vector<std::size_t> pe_of(total);
  std::vector<sched::ExecBounds> bounds(total);
  std::vector<std::vector<OutEdge>> out_edges(total);
  std::vector<int> in_degree(total, 0);
  std::vector<int> max_attempts(total, 1);
  std::vector<std::vector<std::size_t>> primaries_of(total);
  std::vector<std::uint32_t> graph_of(total);
  std::vector<std::uint64_t> node_prio(total);
  std::vector<std::size_t> message_src(total, SIZE_MAX);

  for (std::size_t i = 0; i < n_tasks; ++i) {
    const model::TaskRef ref = apps.task_ref(i);
    period[i] = apps.graph(ref.graph_id()).period();
    pe_of[i] = system.mapping.processor_of_flat(i).value;
    bounds[i] = attempt_bounds(apps.task(ref), system.info[i],
                               arch.processor(model::ProcessorId{
                                   static_cast<std::uint32_t>(pe_of[i])}));
    max_attempts[i] = system.info[i].reexecutions + 1;
    graph_of[i] = ref.graph;
    node_prio[i] = priorities[i];
  }
  for (std::size_t q = 0; q < messages.size(); ++q) {
    const std::size_t node = n_tasks + q;
    period[node] = period[messages[q].src];
    pe_of[node] = bus_pe;
    bounds[node] = {messages[q].transfer, messages[q].transfer};
    graph_of[node] = graph_of[messages[q].src];
    node_prio[node] =
        (static_cast<std::uint64_t>(priorities[messages[q].src]) << 16) | q;
    message_src[node] = messages[q].src;
    out_edges[messages[q].src].push_back(OutEdge{node, 0});
    ++in_degree[node];
    out_edges[node].push_back(OutEdge{messages[q].dst, 0});
    ++in_degree[messages[q].dst];
  }
  auto is_message = [&](std::size_t node) { return node >= n_tasks; };

  if (!options.bus_contention) {
    for (std::uint32_t g = 0; g < apps.graph_count(); ++g) {
      const model::TaskGraph& graph = apps.graph(model::GraphId{g});
      for (const model::Channel& channel : graph.channels()) {
        const std::size_t src = apps.flat_index({g, channel.src});
        const std::size_t dst = apps.flat_index({g, channel.dst});
        const model::Time delay =
            pe_of[src] == pe_of[dst]
                ? 0
                : arch.transfer_time(channel.size_bytes);
        out_edges[src].push_back(OutEdge{dst, delay});
        ++in_degree[dst];
      }
    }
  } else {
    // Channels not turned into messages (local or zero-latency) keep the
    // plain delivery edge.
    for (std::uint32_t g = 0; g < apps.graph_count(); ++g) {
      const model::TaskGraph& graph = apps.graph(model::GraphId{g});
      for (const model::Channel& channel : graph.channels()) {
        const std::size_t src = apps.flat_index({g, channel.src});
        const std::size_t dst = apps.flat_index({g, channel.dst});
        const model::Time delay =
            pe_of[src] == pe_of[dst]
                ? 0
                : arch.transfer_time(channel.size_bytes);
        if (pe_of[src] != pe_of[dst] && delay > 0) continue;  // is a message
        out_edges[src].push_back(OutEdge{dst, delay});
        ++in_degree[dst];
      }
    }
  }
  // Standbys observe the active replicas of their origin.
  for (std::size_t i = 0; i < n_tasks; ++i) {
    if (system.info[i].role != hardening::TaskRole::kPassiveReplica)
      continue;
    for (std::size_t u = 0; u < n_tasks; ++u)
      if (system.info[u].role == hardening::TaskRole::kActiveReplica &&
          system.info[u].origin == system.info[i].origin)
        primaries_of[i].push_back(u);
  }

  // ---- Job table --------------------------------------------------------
  std::vector<std::size_t> job_base(total);
  std::vector<Job> jobs;
  for (std::size_t i = 0; i < total; ++i) {
    job_base[i] = jobs.size();
    const auto releases = static_cast<std::size_t>(sim_end / period[i]);
    for (std::size_t r = 0; r < releases; ++r) {
      Job job;
      job.flat = i;
      job.instance = r;
      job.release_time = static_cast<model::Time>(r) * period[i];
      job.pending_inputs = in_degree[i];
      jobs.push_back(job);
    }
  }
  auto job_id = [&](std::size_t flat, std::size_t instance) {
    return job_base[flat] + instance;
  };

  // ---- Event queue & PE state -------------------------------------------
  std::priority_queue<Event, std::vector<Event>, std::greater<>> heap;
  std::uint64_t seq = 0;
  for (std::size_t h = 1; h <= options.hyperperiods; ++h)
    heap.push(Event{static_cast<model::Time>(h) * hyper,
                    EventKind::kHyperperiodBoundary, seq++, SIZE_MAX});
  for (std::size_t j = 0; j < jobs.size(); ++j)
    if (jobs[j].pending_inputs == 0)
      heap.push(Event{jobs[j].release_time, EventKind::kRelease, seq++, j});

  std::vector<PeState> pes(arch.processor_count() +
                           (options.bus_contention ? 1 : 0));
  SimResult result;
  result.critical_entry.assign(options.hyperperiods, -1);
  bool critical = false;
  model::Time now = 0;
  std::size_t events = 0;

  auto close_segment = [&](std::size_t pe, model::Time at) {
    PeState& state = pes[pe];
    if (state.running != SIZE_MAX && at > state.segment_start)
      result.segments.push_back(ExecSegment{
          model::ProcessorId{static_cast<std::uint32_t>(pe)}, state.running,
          state.segment_start, at});
  };

  // Deliver one finished job's outputs (forward declaration pattern via
  // std::function is avoided by queuing through the heap only).
  auto push_deliveries = [&](std::size_t j, model::Time at,
                             bool zero_delay) {
    for (const OutEdge& edge : out_edges[jobs[j].flat]) {
      heap.push(Event{at + (zero_delay ? 0 : edge.delay),
                      EventKind::kDelivery, seq++,
                      job_id(edge.dst, jobs[j].instance)});
    }
  };

  auto finish_job = [&](std::size_t j, model::Time at, JobState state,
                        bool zero_delay_outputs) {
    Job& job = jobs[j];
    job.state = state;
    job.finish_time = at;
    // Voter verdict: with too few correct executed replicas, the voted
    // result is wrong.  (Message nodes have no info entry — the is_message
    // guard keeps the lookup in bounds on bus-contention runs.)
    if (!is_message(job.flat) &&
        system.info[job.flat].role == hardening::TaskRole::kVoter &&
        !job.result_faulty) {
      std::size_t executed = 0, correct = 0;
      for (std::size_t u = 0; u < n_tasks; ++u) {
        const auto role = system.info[u].role;
        if ((role != hardening::TaskRole::kActiveReplica &&
             role != hardening::TaskRole::kPassiveReplica) ||
            system.info[u].origin != system.info[job.flat].origin)
          continue;
        const Job& replica = jobs[job_id(u, job.instance)];
        if (replica.state == JobState::kFinished) {
          ++executed;
          if (!replica.result_faulty) ++correct;
        }
      }
      if (executed > 0 && 2 * correct <= executed) job.result_faulty = true;
    }
    push_deliveries(j, at, zero_delay_outputs);
  };

  auto enter_critical = [&](model::Time at) {
    if (critical) return;
    critical = true;
    const auto h = static_cast<std::size_t>(
        std::min<model::Time>(at / hyper,
                              static_cast<model::Time>(options.hyperperiods) - 1));
    if (result.critical_entry[h] < 0) result.critical_entry[h] = at;
    const model::Time window_begin = static_cast<model::Time>(h) * hyper;
    const model::Time window_end = window_begin + hyper;
    for (std::size_t j = 0; j < jobs.size(); ++j) {
      Job& job = jobs[j];
      if (!drop[graph_of[job.flat]]) continue;
      if (job.release_time < window_begin || job.release_time >= window_end)
        continue;
      if (job.state == JobState::kFinished ||
          job.state == JobState::kCancelled ||
          job.state == JobState::kSkipped)
        continue;
      if (job.start_time >= 0) continue;  // started jobs run to completion
      if (job.state == JobState::kReady && job.in_ready_set) {
        pes[pe_of[job.flat]].ready.erase({node_prio[job.flat], j});
        job.in_ready_set = false;
      }
      job.state = JobState::kCancelled;
    }
  };

  // Declared before make_ready: a ready zero-length job finishes on the
  // spot and may cascade further readiness through zero-delay deliveries
  // (those go through the heap, so no recursion).
  auto start_attempt_duration = [&](std::size_t j) {
    Job& job = jobs[j];
    if (is_message(job.flat)) {
      // Transfers take their fixed fabric time; a skipped producer sent
      // nothing, so its message is free.
      const Job& producer =
          jobs[job_id(message_src[job.flat], job.instance)];
      job.remaining = producer.state == JobState::kSkipped
                          ? 0
                          : bounds[job.flat].wcet;
      return;
    }
    const AttemptKey key{job.flat, job.instance, job.attempts + 1};
    job.remaining = durations.attempt_duration(key, bounds[job.flat].bcet,
                                               bounds[job.flat].wcet);
  };

  auto make_ready = [&](std::size_t j, model::Time at) {
    Job& job = jobs[j];
    if (job.state != JobState::kWaiting) return;
    job.ready_time = at;

    if (!is_message(job.flat) &&
        system.info[job.flat].role ==
            hardening::TaskRole::kPassiveReplica) {
      // Activation decision: any primary with a faulty result?
      bool activated = false;
      for (std::size_t u : primaries_of[job.flat]) {
        const Job& primary = jobs[job_id(u, job.instance)];
        if (primary.state == JobState::kFinished && primary.result_faulty)
          activated = true;
      }
      if (!activated) {
        job.state = JobState::kSkipped;
        job.finish_time = at;
        push_deliveries(j, at, /*zero_delay=*/true);
        return;
      }
      enter_critical(at);
      // A cancelled standby cannot happen: standbys belong to hardened
      // (typically critical) graphs; if its graph *is* dropped and we just
      // entered critical, this very job might have been cancelled above.
      if (job.state == JobState::kCancelled) return;
    }

    job.state = JobState::kReady;
    start_attempt_duration(j);
    if (job.remaining == 0) {
      job.attempts += 1;
      finish_job(j, at, JobState::kFinished, /*zero_delay_outputs=*/false);
      return;
    }
    pes[pe_of[job.flat]].ready.insert({node_prio[job.flat], j});
    job.in_ready_set = true;
  };

  auto complete_attempt = [&](std::size_t pe_index, model::Time at) {
    PeState& pe = pes[pe_index];
    const std::size_t j = pe.running;
    Job& job = jobs[j];
    close_segment(pe_index, at);
    pe.running = SIZE_MAX;
    job.attempts += 1;

    // Fabric transfers are fault-transparent (Section 2.1); only real
    // tasks consult the fault model.
    const AttemptKey key{job.flat, job.instance, job.attempts};
    const bool faulted =
        !is_message(job.flat) && faults.attempt_faults(key);

    if (faulted) {
      const auto& info = system.info[job.flat];
      const bool reexecutable =
          info.role == hardening::TaskRole::kOriginal &&
          info.reexecutions > 0;
      if (reexecutable && job.attempts < max_attempts[job.flat]) {
        enter_critical(at);
        job.state = JobState::kReady;
        start_attempt_duration(j);
        if (job.remaining == 0) {
          job.attempts += 1;
          finish_job(j, at, JobState::kFinished, false);
          return;
        }
        pe.ready.insert({node_prio[job.flat], j});
        job.in_ready_set = true;
        return;
      }
      if (reexecutable) enter_critical(at);  // exhausted: still a transition
      job.result_faulty = true;
    }
    finish_job(j, at, JobState::kFinished, false);
  };

  auto dispatch = [&](std::size_t pe_index, model::Time at) {
    PeState& pe = pes[pe_index];
    if (pe.ready.empty()) return;
    const auto [best_prio, best_job] = *pe.ready.begin();
    if (pe.running != SIZE_MAX) {
      if (node_prio[jobs[pe.running].flat] <= best_prio) return;
      // Preempt.
      close_segment(pe_index, at);
      pe.ready.insert({node_prio[jobs[pe.running].flat], pe.running});
      jobs[pe.running].in_ready_set = true;
      pe.running = SIZE_MAX;
    }
    pe.ready.erase(pe.ready.begin());
    jobs[best_job].in_ready_set = false;
    pe.running = best_job;
    pe.segment_start = at;
    if (jobs[best_job].start_time < 0) jobs[best_job].start_time = at;
  };

  if (options.start_in_critical_state) enter_critical(0);

  // ---- Main loop ---------------------------------------------------------
  for (;;) {
    model::Time t_next = kNever;
    if (!heap.empty()) t_next = heap.top().time;
    for (const PeState& pe : pes)
      if (pe.running != SIZE_MAX)
        t_next = std::min(t_next, now + jobs[pe.running].remaining);
    if (t_next == kNever) break;

    // Advance running jobs.
    const model::Time delta = t_next - now;
    for (PeState& pe : pes)
      if (pe.running != SIZE_MAX) jobs[pe.running].remaining -= delta;
    now = t_next;

    // Hyperperiod boundaries first: the critical state resets before
    // anything else happening at the boundary instant.
    while (!heap.empty() && heap.top().time == now &&
           heap.top().kind == EventKind::kHyperperiodBoundary) {
      heap.pop();
      critical = false;
    }

    // Completions.
    for (std::size_t p = 0; p < pes.size(); ++p) {
      if (pes[p].running != SIZE_MAX && jobs[pes[p].running].remaining <= 0)
        complete_attempt(p, now);
    }

    // Releases and deliveries at `now` (may cascade through zero-length
    // jobs; all cascades re-enter via the heap).
    while (!heap.empty() && heap.top().time == now) {
      const Event event = heap.top();
      heap.pop();
      ++events;
      if (events > options.max_events)
        throw std::runtime_error("Simulator: event budget exceeded");
      switch (event.kind) {
        case EventKind::kHyperperiodBoundary:
          critical = false;
          break;
        case EventKind::kRelease: {
          Job& job = jobs[event.job];
          if (job.state != JobState::kWaiting) break;  // e.g. cancelled
          make_ready(event.job, now);
          break;
        }
        case EventKind::kDelivery: {
          Job& job = jobs[event.job];
          if (job.state == JobState::kCancelled) break;
          if (--job.pending_inputs == 0) make_ready(event.job, now);
          break;
        }
      }
    }

    for (std::size_t p = 0; p < pes.size(); ++p) dispatch(p, now);
  }

  // ---- Finalize -----------------------------------------------------------
  for (Job& job : jobs) {
    if (job.state == JobState::kWaiting || (job.state == JobState::kReady)) {
      if (drop[graph_of[job.flat]]) {
        job.state = JobState::kCancelled;
      } else {
        throw std::logic_error("Simulator: non-droppable job never finished");
      }
    }
  }

  // Message jobs are an internal artifact: drop them from the public trace
  // and remap the execution segments' job references accordingly (bus
  // segments vanish with them).
  std::vector<std::size_t> public_index(jobs.size(), SIZE_MAX);
  result.jobs.reserve(jobs.size());
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    const Job& job = jobs[j];
    if (is_message(job.flat)) continue;
    public_index[j] = result.jobs.size();
    JobRecord record;
    record.flat_task = job.flat;
    record.instance = job.instance;
    record.release_time = job.release_time;
    record.ready_time = job.ready_time;
    record.start_time = job.start_time;
    record.finish_time = job.finish_time;
    record.attempts = job.attempts;
    record.result_faulty = job.result_faulty;
    record.state = job.state;
    result.jobs.push_back(record);
    if (job.result_faulty &&
        (system.info[job.flat].role == hardening::TaskRole::kOriginal ||
         system.info[job.flat].role == hardening::TaskRole::kVoter))
      result.unsafe_result = true;
  }
  std::vector<ExecSegment> public_segments;
  public_segments.reserve(result.segments.size());
  for (const ExecSegment& segment : result.segments) {
    if (public_index[segment.job] == SIZE_MAX) continue;
    ExecSegment remapped = segment;
    remapped.job = public_index[segment.job];
    public_segments.push_back(remapped);
  }
  result.segments = std::move(public_segments);

  result.graph_response.assign(apps.graph_count(), -1);
  for (std::uint32_t g = 0; g < apps.graph_count(); ++g) {
    const model::TaskGraph& graph = apps.graph(model::GraphId{g});
    const auto instances =
        static_cast<std::size_t>(sim_end / graph.period());
    for (std::size_t r = 0; r < instances; ++r) {
      InstanceResponse response;
      response.graph = model::GraphId{g};
      response.instance = r;
      response.release_time =
          static_cast<model::Time>(r) * graph.period();
      model::Time finish = 0;
      bool dropped = false;
      for (std::uint32_t sink : graph.sinks()) {
        const Job& job = jobs[job_id(apps.flat_index({g, sink}), r)];
        if (job.state != JobState::kFinished &&
            job.state != JobState::kSkipped) {
          dropped = true;
          break;
        }
        finish = std::max(finish, job.finish_time);
      }
      if (dropped) {
        response.response = -1;
      } else {
        response.response = finish - response.release_time;
        response.deadline_met = response.response <= graph.deadline();
        if (!response.deadline_met) result.deadline_miss = true;
        result.graph_response[g] =
            std::max(result.graph_response[g], response.response);
      }
      result.responses.push_back(response);
    }
  }
  result.events = events;
  return result;
}

}  // namespace ftmc::sim::reference
