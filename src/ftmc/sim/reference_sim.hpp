// Reference implementation of the trace simulator — the original monolithic
// Simulator::run() preserved verbatim (modulo the `events` output counter).
//
// Differential-test-only reference — not a production entry point (the
// same role sched's RebuildPerSolve plays for the analysis stack).  The
// production path is the prepared kernel (ftmc/sim/prepared_sim.hpp); this
// copy exists so the differential tests (tests/test_sim_kernel.cpp) and
// the bench_sim_kernel seed arm always compare the kernel against the code
// it replaced rather than against itself.  It rebuilds every static table
// per call, allocates freely, and always materializes the full trace
// (SimOptions::trace is ignored — output is TraceLevel::kFull).
#pragma once

#include <cstdint>
#include <vector>

#include "ftmc/sim/simulator.hpp"

namespace ftmc::sim::reference {

/// One full simulation run, legacy style: validate, build all tables, run,
/// materialize the complete trace.  Semantics and output are bit-identical
/// to PreparedSim::run at TraceLevel::kFull.
SimResult run(const model::Architecture& arch,
              const hardening::HardenedSystem& system,
              const core::DropSet& drop,
              const std::vector<std::uint32_t>& priorities,
              FaultModel& faults, ExecTimeModel& durations,
              const SimOptions& options = {});

}  // namespace ftmc::sim::reference
