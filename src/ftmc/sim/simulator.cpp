#include "ftmc/sim/simulator.hpp"

#include <stdexcept>
#include <utility>

#include "ftmc/sim/prepared_sim.hpp"

namespace ftmc::sim {

const char* to_string(JobState state) noexcept {
  switch (state) {
    case JobState::kWaiting: return "waiting";
    case JobState::kReady: return "ready";
    case JobState::kFinished: return "finished";
    case JobState::kCancelled: return "cancelled";
    case JobState::kSkipped: return "skipped";
  }
  return "?";
}

const char* to_string(TraceLevel level) noexcept {
  switch (level) {
    case TraceLevel::kResponses: return "responses";
    case TraceLevel::kJobs: return "jobs";
    case TraceLevel::kFull: return "full";
  }
  return "?";
}

Simulator::Simulator(const model::Architecture& arch,
                     const hardening::HardenedSystem& system,
                     core::DropSet drop,
                     std::vector<std::uint32_t> priorities)
    : arch_(&arch),
      system_(&system),
      drop_(std::move(drop)),
      priorities_(std::move(priorities)) {
  core::validate_drop_set(system.apps, drop_);
  if (priorities_.size() != system.apps.task_count())
    throw std::invalid_argument("Simulator: priorities size mismatch");
  if (!system.mapping.within(arch.processor_count()))
    throw std::invalid_argument("Simulator: mapping out of range");
}

SimResult Simulator::run(FaultModel& faults, ExecTimeModel& durations,
                         const SimOptions& options) const {
  // Thin adapter over the prepared kernel: one prepare, one fresh scratch.
  const PreparedSim prepared(
      *arch_, *system_, drop_, priorities_,
      PrepareOptions{options.hyperperiods, options.bus_contention});
  PreparedSim::Scratch scratch;
  prepared.run(faults, durations,
               RunOptions{options.max_events, options.start_in_critical_state,
                          options.trace},
               scratch);
  return std::move(scratch.result);
}

}  // namespace ftmc::sim
