// Trace-accurate discrete-event simulator of the hardened system.
//
// Semantics (matching the analysis model of Section 3):
//  - Synchronous periodic releases; every graph instance r of graph t is
//    released at r * pr_t.  Precedence via channels; inter-PE channels add
//    the fabric transfer latency.
//  - Per-PE fixed-priority preemptive scheduling with the same global
//    priority ranks used by the analysis.
//  - Re-execution: a faulted attempt (detected at its end) re-runs up to k
//    times; the first re-execution switches the system to the critical
//    state.
//  - Passive replication: the standby runs only if a primary produced a
//    faulty result; its activation switches to the critical state.
//  - Active replication: replicas always run; faults are masked by the
//    voter (no state change, no timing effect).
//  - Task dropping: on critical-state entry, all not-yet-started jobs of
//    dropped applications in the current hyperperiod are cancelled
//    (started jobs run to completion); the state resets at the hyperperiod
//    boundary.
//
// The simulator never produces a response time above Algorithm 1's bound —
// that safety relation is exercised extensively in the property tests.
//
// Simulator is the one-shot convenience wrapper: each run() prepares the
// static problem and runs the prepared kernel against a fresh scratch.
// Repeated simulation of one candidate (Monte-Carlo campaigns, the Adhoc
// estimator) should use ftmc/sim/prepared_sim.hpp directly — prepare once,
// run N times against reused scratch.
#pragma once

#include <cstdint>
#include <vector>

#include "ftmc/core/mc_analysis.hpp"
#include "ftmc/hardening/hardening.hpp"
#include "ftmc/sim/models.hpp"
#include "ftmc/sim/trace.hpp"

namespace ftmc::sim {

struct SimOptions {
  /// Number of hyperperiods to simulate.
  std::size_t hyperperiods = 1;
  /// Hard cap on processed events (throws std::runtime_error beyond).
  std::size_t max_events = 50'000'000;
  /// Enter the critical state at time 0 (dropped applications are detached
  /// from the start) — used by the "Adhoc" estimator.
  bool start_in_critical_state = false;
  /// Model the fabric as one shared (preemptable) bus: remote transfers
  /// become jobs on a bus pseudo-resource at their producer's priority and
  /// contend with each other.  Must match the analysis-side option for the
  /// safety relation to be meaningful.
  bool bus_contention = false;
  /// How much trace output to materialize (see TraceLevel); the simulation
  /// itself is identical at every level.
  TraceLevel trace = TraceLevel::kFull;
};

class Simulator {
 public:
  /// All references must outlive the simulator.
  Simulator(const model::Architecture& arch,
            const hardening::HardenedSystem& system,
            core::DropSet drop,
            std::vector<std::uint32_t> priorities);

  SimResult run(FaultModel& faults, ExecTimeModel& durations,
                const SimOptions& options = {}) const;

 private:
  const model::Architecture* arch_;
  const hardening::HardenedSystem* system_;
  core::DropSet drop_;
  std::vector<std::uint32_t> priorities_;
};

}  // namespace ftmc::sim
