#include "ftmc/sim/trace.hpp"

#include <algorithm>
#include <ostream>
#include <vector>

namespace ftmc::sim {

void render_gantt(std::ostream& os, const model::Architecture& arch,
                  const model::ApplicationSet& apps, const SimResult& result,
                  model::Time span, model::Time resolution) {
  if (span <= 0 || resolution <= 0) return;
  const auto columns = static_cast<std::size_t>(
      (span + resolution - 1) / resolution);

  std::size_t label_width = 0;
  for (const auto& processor : arch.processors())
    label_width = std::max(label_width, processor.name.size());

  for (std::uint32_t p = 0; p < arch.processor_count(); ++p) {
    std::string row(columns, '.');
    for (const ExecSegment& segment : result.segments) {
      if (segment.pe.value != p) continue;
      const JobRecord& job = result.jobs[segment.job];
      const std::string& name =
          apps.task(apps.task_ref(job.flat_task)).name;
      const char mark = name.empty() ? '#' : name.front();
      const auto from = static_cast<std::size_t>(
          std::max<model::Time>(0, segment.from / resolution));
      const auto to = static_cast<std::size_t>(std::min<model::Time>(
          static_cast<model::Time>(columns),
          (segment.to + resolution - 1) / resolution));
      for (std::size_t c = from; c < to && c < columns; ++c) row[c] = mark;
    }
    const std::string& label = arch.processor(model::ProcessorId{p}).name;
    os << label << std::string(label_width - label.size(), ' ') << " |" << row
       << "|\n";
  }
  os << std::string(label_width, ' ') << " 0" << std::string(columns - 1, ' ')
     << span << " (x" << resolution << ")\n";
}

}  // namespace ftmc::sim
