// Simulation output: per-job records, per-PE execution segments (for Gantt
// rendering), and per-graph observed response times.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "ftmc/model/application_set.hpp"
#include "ftmc/model/architecture.hpp"
#include "ftmc/model/ids.hpp"
#include "ftmc/model/time.hpp"

namespace ftmc::sim {

enum class JobState : std::uint8_t {
  kWaiting,    ///< inputs not yet available (only transiently / deadlock)
  kReady,      ///< dispatched or queued
  kFinished,   ///< completed all attempts
  kCancelled,  ///< dropped with its application in the critical state
  kSkipped,    ///< passive standby that was never activated
};

const char* to_string(JobState state) noexcept;

/// How much of the trace a simulation run materializes.  The simulation
/// itself (event order, fault decisions, response times) is identical at
/// every level; lower levels only skip building output vectors.
enum class TraceLevel : std::uint8_t {
  /// Aggregates only: graph_response, responses-free deadline_miss,
  /// unsafe_result, critical_entry, events.  `jobs`, `segments`, and
  /// `responses` stay empty — the Monte-Carlo profile setting.
  kResponses,
  /// Adds per-job records and per-instance responses (no segments).
  kJobs,
  /// Everything, including per-PE execution segments (Gantt rendering).
  kFull,
};

const char* to_string(TraceLevel level) noexcept;

/// One job = one release of one task of T'.
struct JobRecord {
  std::size_t flat_task = 0;
  std::size_t instance = 0;      ///< release index of its graph
  model::Time release_time = 0;
  model::Time ready_time = -1;
  model::Time start_time = -1;   ///< first dispatch (-1 if never ran)
  model::Time finish_time = -1;
  int attempts = 0;              ///< executions performed (re-executions + 1)
  bool result_faulty = false;    ///< fault survived all hardening
  JobState state = JobState::kWaiting;
};

/// Contiguous execution of one job on one PE (preemption splits segments).
struct ExecSegment {
  model::ProcessorId pe;
  std::size_t job = 0;  ///< index into SimResult::jobs
  model::Time from = 0;
  model::Time to = 0;
};

/// Response-time observation of one graph instance.
struct InstanceResponse {
  model::GraphId graph;
  std::size_t instance = 0;
  model::Time release_time = 0;
  model::Time response = -1;  ///< -1 if the instance was dropped
  bool deadline_met = true;
};

struct SimResult {
  std::vector<JobRecord> jobs;
  std::vector<ExecSegment> segments;
  std::vector<InstanceResponse> responses;
  /// Time of the first critical-state entry per hyperperiod (-1: none).
  std::vector<model::Time> critical_entry;
  /// Max observed response per graph over non-dropped instances (-1 if all
  /// instances were dropped).
  std::vector<model::Time> graph_response;
  /// Any non-dropped instance missed its deadline.
  bool deadline_miss = false;
  /// Any task's hardening was exhausted by faults (unsafe result).
  bool unsafe_result = false;
  /// Release/delivery/boundary events processed by the kernel's event loop
  /// (the unit `SimOptions::max_events` budgets).
  std::size_t events = 0;

  model::Time response_of(model::GraphId graph) const {
    return graph_response.at(graph.value);
  }
};

/// Renders an ASCII Gantt chart of the first `span` time units (one row per
/// PE, one column per `resolution` time units).  Used by the motivational
/// example and debugging.
void render_gantt(std::ostream& os, const model::Architecture& arch,
                  const model::ApplicationSet& apps, const SimResult& result,
                  model::Time span, model::Time resolution);

}  // namespace ftmc::sim
