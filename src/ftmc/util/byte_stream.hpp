// Little-endian field streams shared by every on-disk format.
//
// Every multi-byte integer is written least-significant byte first and every
// double as the little-endian bytes of its IEEE-754 bit pattern, so payloads
// (and their digests) are identical across platforms and verifiable from
// tools/check_metrics.py.  The checkpoint codec (ftmc/dse/checkpoint.cpp) and
// the persistent evaluation store (ftmc/core/eval_store.cpp) both build their
// record formats on these primitives; a decode past the end of the buffer or
// an absurd sequence length throws ByteStreamError with the caller-supplied
// context string, so the error names which artifact is damaged.
#pragma once

#include <bit>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace ftmc::util {

class ByteStreamError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class ByteWriter {
 public:
  std::vector<std::uint8_t> take() { return std::move(bytes_); }
  std::size_t size() const { return bytes_.size(); }

  void u8(std::uint8_t value) { bytes_.push_back(value); }
  void u32(std::uint32_t value) {
    for (int i = 0; i < 4; ++i)
      bytes_.push_back(static_cast<std::uint8_t>(value >> (8 * i)));
  }
  void u64(std::uint64_t value) {
    for (int i = 0; i < 8; ++i)
      bytes_.push_back(static_cast<std::uint8_t>(value >> (8 * i)));
  }
  void i64(std::int64_t value) { u64(static_cast<std::uint64_t>(value)); }
  void f64(double value) { u64(std::bit_cast<std::uint64_t>(value)); }
  void size(std::size_t value) { u64(static_cast<std::uint64_t>(value)); }

  void bytes8(std::span<const std::uint8_t> values) {
    size(values.size());
    bytes_.insert(bytes_.end(), values.begin(), values.end());
  }
  void bits(const std::vector<bool>& values) {
    size(values.size());
    for (bool bit : values) u8(bit ? 1 : 0);
  }

 private:
  std::vector<std::uint8_t> bytes_;
};

class ByteReader {
 public:
  /// `context` prefixes every error message ("checkpoint payload",
  /// "store record", ...) so a truncation names the damaged artifact.
  explicit ByteReader(std::span<const std::uint8_t> bytes,
                      std::string context = "byte stream")
      : bytes_(bytes), context_(std::move(context)) {}

  std::size_t remaining() const { return bytes_.size() - offset_; }
  std::size_t offset() const { return offset_; }

  std::uint8_t u8() {
    need(1);
    return bytes_[offset_++];
  }
  std::uint32_t u32() {
    need(4);
    std::uint32_t value = 0;
    for (int i = 0; i < 4; ++i)
      value |= static_cast<std::uint32_t>(bytes_[offset_++]) << (8 * i);
    return value;
  }
  std::uint64_t u64() {
    need(8);
    std::uint64_t value = 0;
    for (int i = 0; i < 8; ++i)
      value |= static_cast<std::uint64_t>(bytes_[offset_++]) << (8 * i);
    return value;
  }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64() { return std::bit_cast<double>(u64()); }

  /// Length prefix for a sequence whose elements take >= `element_bytes`
  /// each; rejects lengths the remaining payload cannot possibly hold, so a
  /// corrupted count fails loudly instead of allocating gigabytes.
  std::size_t length(std::size_t element_bytes) {
    const std::uint64_t count = u64();
    if (element_bytes != 0 && count > remaining() / element_bytes)
      throw ByteStreamError(context_ + " is truncated: sequence length " +
                            std::to_string(count) +
                            " exceeds the remaining " +
                            std::to_string(remaining()) + " bytes");
    return static_cast<std::size_t>(count);
  }

  std::vector<std::uint8_t> bytes8() {
    const std::size_t count = length(1);
    need(count);
    std::vector<std::uint8_t> values(bytes_.begin() + offset_,
                                     bytes_.begin() + offset_ + count);
    offset_ += count;
    return values;
  }
  std::vector<bool> bits() {
    const std::size_t count = length(1);
    std::vector<bool> values(count);
    for (std::size_t i = 0; i < count; ++i) values[i] = u8() != 0;
    return values;
  }

 private:
  void need(std::size_t count) const {
    if (count > remaining())
      throw ByteStreamError(context_ + " is truncated: need " +
                            std::to_string(count) + " more bytes at offset " +
                            std::to_string(offset_));
  }

  std::span<const std::uint8_t> bytes_;
  std::size_t offset_ = 0;
  std::string context_;
};

}  // namespace ftmc::util
