#include "ftmc/util/file_io.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <stdexcept>

namespace ftmc::util {
namespace {

[[noreturn]] void fail(const std::string& path, const char* what) {
  throw std::runtime_error(std::string(what) + " '" + path +
                           "': " + std::strerror(errno));
}

/// Directory part of `path` ("." when it has none) — for the post-rename
/// directory fsync.
std::string directory_of(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

void fsync_directory(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return;  // best effort: some filesystems refuse dir fds
  ::fsync(fd);
  ::close(fd);
}

}  // namespace

bool file_exists(const std::string& path) {
  struct stat info;
  return ::stat(path.c_str(), &info) == 0;
}

std::vector<std::uint8_t> read_file(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) fail(path, "cannot read");
  std::vector<std::uint8_t> bytes;
  std::uint8_t chunk[1 << 16];
  for (;;) {
    const ssize_t got = ::read(fd, chunk, sizeof chunk);
    if (got < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      fail(path, "cannot read");
    }
    if (got == 0) break;
    bytes.insert(bytes.end(), chunk, chunk + got);
  }
  ::close(fd);
  return bytes;
}

void write_file_atomic(const std::string& path,
                       std::span<const std::uint8_t> bytes) {
  const std::string temp = path + ".tmp";
  const int fd = ::open(temp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) fail(temp, "cannot write");
  std::size_t written = 0;
  while (written < bytes.size()) {
    const ssize_t put =
        ::write(fd, bytes.data() + written, bytes.size() - written);
    if (put < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      ::unlink(temp.c_str());
      fail(temp, "cannot write");
    }
    written += static_cast<std::size_t>(put);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    ::unlink(temp.c_str());
    fail(temp, "cannot fsync");
  }
  ::close(fd);
  if (::rename(temp.c_str(), path.c_str()) != 0) {
    ::unlink(temp.c_str());
    fail(path, "cannot rename into");
  }
  fsync_directory(directory_of(path));
}

void rotate_files(const std::string& path, std::size_t keep) {
  if (keep <= 1 || !file_exists(path)) return;
  // Oldest first: path.(keep-2) -> path.(keep-1), ..., path -> path.1.
  for (std::size_t slot = keep - 1; slot >= 1; --slot) {
    const std::string from =
        slot == 1 ? path : path + "." + std::to_string(slot - 1);
    if (!file_exists(from)) continue;
    const std::string to = path + "." + std::to_string(slot);
    if (::rename(from.c_str(), to.c_str()) != 0)
      fail(to, "cannot rotate checkpoint into");
  }
  fsync_directory(directory_of(path));
}

}  // namespace ftmc::util
