// Crash-safe file persistence for checkpoints and other replace-the-whole-
// file artifacts.
//
// write_file_atomic follows the classic durable-replace protocol: the bytes
// go to a temporary file in the destination directory, are flushed and
// fsync'd there, and only then rename(2)d over the destination (atomic on
// POSIX), followed by an fsync of the directory so the rename itself is
// durable.  A reader therefore observes either the complete old file or the
// complete new file — never a torn mix — and a crash at any point leaves a
// loadable artifact behind.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace ftmc::util {

/// True when `path` names an existing filesystem entry.
bool file_exists(const std::string& path);

/// Whole file as bytes.  Throws std::runtime_error naming the path on any
/// I/O failure.
std::vector<std::uint8_t> read_file(const std::string& path);

/// Durably replaces `path` with `bytes` (temp file + fsync + atomic rename
/// + directory fsync).  Throws std::runtime_error naming the path on any
/// I/O failure; the destination is never left partially written.
void write_file_atomic(const std::string& path,
                       std::span<const std::uint8_t> bytes);

/// Keep-last-K rotation for write_file_atomic targets: shifts `path` into
/// `path.1`, `path.1` into `path.2`, ... discarding `path.(keep-1)`.  With
/// keep <= 1 (or when `path` does not exist) this is a no-op — the next
/// atomic write simply replaces the file.  Renames within one directory, so
/// every rotated slot is always a complete snapshot.
void rotate_files(const std::string& path, std::size_t keep);

}  // namespace ftmc::util
