// Stable 64-bit content hashing for cache keys and fingerprints.
//
// The evaluation-memoization layer (ftmc/core/evaluation_cache.hpp) keys
// cached results by a hash of the decoded candidate, so the hash must be
// deterministic across runs, platforms, and library versions — std::hash
// guarantees none of that.  FNV-1a over an explicit byte feed gives a
// stable, order-sensitive digest; the final avalanche step (splitmix64's
// finalizer) decorrelates the low bits used for shard selection.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <type_traits>
#include <vector>

namespace ftmc::util {

/// Incremental FNV-1a (64-bit) hasher with a strong finalizer.
class Fnv1aHasher {
 public:
  static constexpr std::uint64_t kOffsetBasis = 0xcbf29ce484222325ULL;
  static constexpr std::uint64_t kPrime = 0x00000100000001b3ULL;

  Fnv1aHasher() noexcept = default;
  explicit Fnv1aHasher(std::uint64_t seed) noexcept { feed(seed); }

  void feed_byte(std::uint8_t byte) noexcept {
    state_ = (state_ ^ byte) * kPrime;
  }

  /// Feeds any trivially-copyable value byte-wise (host byte order; the
  /// digest is only required to be stable for a fixed platform ABI).
  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void feed(const T& value) noexcept {
    std::uint8_t bytes[sizeof(T)];
    std::memcpy(bytes, &value, sizeof(T));
    for (std::uint8_t byte : bytes) feed_byte(byte);
  }

  /// Length-prefixed span feed, so {1,2},{3} and {1},{2,3} differ.
  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void feed_range(std::span<const T> values) noexcept {
    feed(static_cast<std::uint64_t>(values.size()));
    for (const T& value : values) feed(value);
  }

  /// vector<bool> has no contiguous storage; feed packed words.
  void feed_bits(const std::vector<bool>& bits) noexcept {
    feed(static_cast<std::uint64_t>(bits.size()));
    std::uint64_t word = 0;
    std::size_t filled = 0;
    for (bool bit : bits) {
      word = (word << 1) | static_cast<std::uint64_t>(bit);
      if (++filled == 64) {
        feed(word);
        word = 0;
        filled = 0;
      }
    }
    if (filled > 0) feed(word);
  }

  /// Finalized digest (splitmix64 avalanche over the FNV state).
  std::uint64_t digest() const noexcept {
    std::uint64_t z = state_ + 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_ = kOffsetBasis;
};

/// One-shot digest of a derived element stream: `feed(hasher, i)` is called
/// for each i in [0, n) and pushes the i-th element's bytes into the hasher.
/// Every ad-hoc "hash this sequence of fields" site (scenario-bounds dedup in
/// core/mc_analysis.cpp, lane-signature dedup in sched/prepared_problem.cpp)
/// funnels through here so there is exactly one FNV-1a construction in the
/// codebase, pinned by tests/test_hash.cpp.
template <typename FeedFn>
std::uint64_t fnv1a_stream(std::size_t n, FeedFn&& feed) {
  Fnv1aHasher hasher;
  for (std::size_t i = 0; i < n; ++i) feed(hasher, i);
  return hasher.digest();
}

/// Finalized digest of a raw byte span (checkpoint payloads, store records).
inline std::uint64_t fnv1a_bytes(std::span<const std::uint8_t> bytes) noexcept {
  Fnv1aHasher hasher;
  for (std::uint8_t byte : bytes) hasher.feed_byte(byte);
  return hasher.digest();
}

}  // namespace ftmc::util
