#include "ftmc/util/log.hpp"

#include <iostream>

namespace ftmc::util {

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::set_sink(std::ostream* sink) noexcept {
  std::lock_guard lock(mutex_);
  sink_ = sink;
}

void Logger::write(LogLevel level, const std::string& message) {
  static constexpr const char* kNames[] = {"DEBUG", "INFO", "WARN", "ERROR"};
  std::lock_guard lock(mutex_);
  std::ostream& out = sink_ != nullptr ? *sink_ : std::clog;
  out << '[' << kNames[static_cast<int>(level)] << "] " << message << '\n';
}

}  // namespace ftmc::util
