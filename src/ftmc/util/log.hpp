// Lightweight leveled logging.  The DSE engine logs generation progress at
// Info; analysis internals log at Debug and are silent by default.
#pragma once

#include <mutex>
#include <ostream>
#include <sstream>
#include <string>

namespace ftmc::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Process-global logging configuration.  Thread-safe.
class Logger {
 public:
  static Logger& instance();

  void set_level(LogLevel level) noexcept { level_ = level; }
  LogLevel level() const noexcept { return level_; }

  /// Redirects output (default std::clog). Caller keeps ownership; pass
  /// nullptr to restore the default sink.
  void set_sink(std::ostream* sink) noexcept;

  void write(LogLevel level, const std::string& message);

 private:
  Logger() = default;
  LogLevel level_ = LogLevel::kWarn;
  std::ostream* sink_ = nullptr;
  std::mutex mutex_;
};

namespace detail {
template <typename... Args>
void log(LogLevel level, const Args&... args) {
  auto& logger = Logger::instance();
  if (level < logger.level()) return;
  std::ostringstream out;
  (out << ... << args);
  logger.write(level, out.str());
}
}  // namespace detail

template <typename... Args>
void log_debug(const Args&... args) {
  detail::log(LogLevel::kDebug, args...);
}
template <typename... Args>
void log_info(const Args&... args) {
  detail::log(LogLevel::kInfo, args...);
}
template <typename... Args>
void log_warn(const Args&... args) {
  detail::log(LogLevel::kWarn, args...);
}
template <typename... Args>
void log_error(const Args&... args) {
  detail::log(LogLevel::kError, args...);
}

}  // namespace ftmc::util
