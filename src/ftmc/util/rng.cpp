#include "ftmc/util/rng.hpp"

#include <cmath>
#include <numbers>

namespace ftmc::util {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
  // All-zero state would be absorbing; splitmix64 cannot produce four zero
  // outputs from any seed, but keep the guard explicit.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
}

Rng::result_type Rng::operator()() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  if (lo > hi) throw std::invalid_argument("Rng::uniform_int: lo > hi");
  const std::uint64_t range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>((*this)());  // full range
  // Rejection sampling to remove modulo bias.
  const std::uint64_t limit = max() - max() % range;
  std::uint64_t draw = (*this)();
  while (draw >= limit) draw = (*this)();
  return lo + static_cast<std::int64_t>(draw % range);
}

std::size_t Rng::index(std::size_t n) {
  if (n == 0) throw std::invalid_argument("Rng::index: n == 0");
  return static_cast<std::size_t>(
      uniform_int(0, static_cast<std::int64_t>(n) - 1));
}

double Rng::uniform_real(double lo, double hi) noexcept {
  // 53 top bits -> double in [0,1).
  const double unit =
      static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  return lo + unit * (hi - lo);
}

bool Rng::chance(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform_real() < p;
}

double Rng::exponential(double lambda) {
  if (lambda <= 0.0)
    throw std::invalid_argument("Rng::exponential: lambda <= 0");
  double u = uniform_real();
  // Avoid log(0).
  if (u <= 0.0) u = 0x1.0p-53;
  return -std::log(u) / lambda;
}

double Rng::normal(double mean, double stddev) noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return mean + stddev * cached_normal_;
  }
  double u1 = uniform_real();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double u2 = uniform_real();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return mean + stddev * r * std::cos(theta);
}

Rng Rng::split() { return Rng((*this)() ^ 0xd1b54a32d192ed03ULL); }

RngState Rng::state() const noexcept {
  return RngState{{state_[0], state_[1], state_[2], state_[3]},
                  has_cached_normal_, cached_normal_};
}

void Rng::restore(const RngState& state) {
  if ((state.words[0] | state.words[1] | state.words[2] | state.words[3]) ==
      0)
    throw std::invalid_argument("Rng::restore: all-zero state");
  for (std::size_t i = 0; i < 4; ++i) state_[i] = state.words[i];
  has_cached_normal_ = state.has_cached_normal;
  cached_normal_ = state.cached_normal;
}

}  // namespace ftmc::util
