// Deterministic pseudo-random number generation for reproducible experiments.
//
// All stochastic components of the library (synthetic benchmark generation,
// genetic operators, Monte-Carlo fault injection) draw from Rng so that a
// fixed seed reproduces a run bit-for-bit across platforms.  The generator is
// xoshiro256**, seeded through SplitMix64 as its authors recommend.
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <span>
#include <stdexcept>
#include <vector>

namespace ftmc::util {

/// Complete serializable generator state: the four xoshiro256** words plus
/// the Box–Muller half-pair cache of normal().  restore() resumes the exact
/// output sequence, so a checkpointed consumer (the DSE engine) replays the
/// same draws it would have made uninterrupted.
struct RngState {
  std::array<std::uint64_t, 4> words{};
  bool has_cached_normal = false;
  double cached_normal = 0.0;

  bool operator==(const RngState&) const = default;
};

/// xoshiro256** 1.0 — fast, high-quality 64-bit PRNG with 2^256-1 period.
/// Satisfies std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four 64-bit words of state via SplitMix64 from `seed`.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  /// Next raw 64-bit output.
  result_type operator()() noexcept;

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform size_t index in [0, n). Requires n > 0.
  std::size_t index(std::size_t n);

  /// Uniform real in [lo, hi).
  double uniform_real(double lo = 0.0, double hi = 1.0) noexcept;

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool chance(double p) noexcept;

  /// Exponentially distributed variate with rate `lambda` (> 0).
  double exponential(double lambda);

  /// Gaussian variate (Box–Muller) with the given mean / standard deviation.
  double normal(double mean, double stddev) noexcept;

  /// Uniformly chosen element of a non-empty span.
  template <typename T>
  const T& pick(std::span<const T> items) {
    if (items.empty()) throw std::invalid_argument("Rng::pick: empty span");
    return items[index(items.size())];
  }
  template <typename T>
  const T& pick(const std::vector<T>& items) {
    return pick(std::span<const T>(items));
  }

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      using std::swap;
      swap(items[i - 1], items[index(i)]);
    }
  }

  /// Derives an independent child generator (for per-thread / per-candidate
  /// streams) without perturbing this generator's primary sequence more than
  /// one draw.
  Rng split();

  /// Snapshot of the full generator state (checkpointing).
  RngState state() const noexcept;

  /// Resumes from a snapshot; subsequent draws continue the captured
  /// sequence bit-for-bit.  An all-zero primary state is rejected (it is
  /// absorbing and no genuine snapshot can contain it).
  void restore(const RngState& state);

 private:
  std::uint64_t state_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace ftmc::util
