#include "ftmc/util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ftmc::util {

void RunningStats::add(double sample) noexcept {
  if (count_ == 0) {
    min_ = max_ = sample;
  } else {
    min_ = std::min(min_, sample);
    max_ = std::max(max_, sample);
  }
  ++count_;
  const double delta = sample - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (sample - mean_);
}

double RunningStats::min() const noexcept { return min_; }
double RunningStats::max() const noexcept { return max_; }
double RunningStats::mean() const noexcept { return mean_; }

double RunningStats::variance() const noexcept {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double percentile(std::vector<double> samples, double q) {
  if (samples.empty()) throw std::invalid_argument("percentile: no samples");
  std::sort(samples.begin(), samples.end());
  return percentile_sorted(samples, q);
}

double percentile_sorted(std::span<const double> sorted, double q) {
  if (sorted.empty()) throw std::invalid_argument("percentile: no samples");
  if (q < 0.0 || q > 1.0) throw std::invalid_argument("percentile: q out of range");
  const double position = q * static_cast<double>(sorted.size() - 1);
  const auto lower = static_cast<std::size_t>(position);
  const auto upper = std::min(lower + 1, sorted.size() - 1);
  const double fraction = position - static_cast<double>(lower);
  return sorted[lower] + fraction * (sorted[upper] - sorted[lower]);
}

}  // namespace ftmc::util
