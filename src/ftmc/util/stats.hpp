// Small descriptive-statistics helpers used by the Monte-Carlo simulator and
// the experiment benches (min/max/mean/percentiles over WCRT samples).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace ftmc::util {

/// Streaming accumulator: O(1) memory for min/max/mean/variance (Welford).
class RunningStats {
 public:
  void add(double sample) noexcept;

  std::size_t count() const noexcept { return count_; }
  double min() const noexcept;
  double max() const noexcept;
  double mean() const noexcept;
  /// Unbiased sample variance; 0 for fewer than two samples.
  double variance() const noexcept;
  double stddev() const noexcept;

 private:
  std::size_t count_ = 0;
  double min_ = 0.0;
  double max_ = 0.0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

/// Percentile of a sample set via linear interpolation (q in [0,1]).
/// Copies and sorts; intended for bench-sized sample vectors.
double percentile(std::vector<double> samples, double q);

/// Same interpolation over an already ascending-sorted sample set — no copy,
/// no sort.  Callers needing several percentiles of one sample set sort once
/// and query this repeatedly.
double percentile_sorted(std::span<const double> sorted, double q);

}  // namespace ftmc::util
